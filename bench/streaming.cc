// Streaming PCOR bench: epoch-snapshotted appends plus tree-aggregated
// continual release over the reduced salary workload.
//
// Three phases, one BENCH_JSON line each:
//   * `streaming_append` — stream the whole dataset through Append,
//     sealing every PCOR_STREAM_SEAL_EVERY rows; appends/s INCLUDES the
//     periodic copy-on-seal index rebuilds (the honest cost of the
//     current seal path — see docs/streaming.md).
//   * `streaming_release` — T = PCOR_STREAM_RELEASES continual releases
//     against the sealed tip via ReleaseAsOfNow, reporting releases/s and
//     the memo invalidation count.
//   * `streaming_epsilon` — the accountant's tree-composed cumulative vs
//     the naive T-fresh-budgets baseline and their ratio.
//
// Enforced acceptance bars (exit non-zero on violation):
//   * every sealed row lands: the final epoch equals the dataset size;
//   * every continual release succeeds (the planted outliers verify at
//     the tip epoch);
//   * NEVER RELAXED: for T >= 4 the tree-composed epsilon is strictly
//     below the naive per-release sum, and matches
//     TreeAccountant::CumulativeFor to within summation ulp (the
//     accountant adds marginals one release at a time). No PCOR_RELAX_*
//     var waives this — it is arithmetic, not timing.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/simd.h"
#include "src/common/timer.h"
#include "src/search/streaming.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.2);
  PrintEnv(env,
           "streaming PCOR: epoch-snapshotted appends + tree-aggregated "
           "continual release (BFS, eps=0.2, n=20, lof detector)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;
  const Dataset& full = setup->workload.data.dataset;

  const size_t seal_every =
      std::max<size_t>(64, strings::EnvSizeOr("PCOR_STREAM_SEAL_EVERY", 2048));
  const size_t releases_target = std::max<size_t>(
      8, strings::EnvSizeOr("PCOR_STREAM_RELEASES", 4 * env.reps));

  PcorOptions release;
  release.sampler = SamplerKind::kBfs;
  release.num_samples = 20;
  release.total_epsilon = 0.2;

  BenchJsonEmitter emitter;
  bool ok = true;

  // Phase 1: appends + periodic seals.
  StreamingPcorEngine stream(full.schema(), *setup->detector);
  WallTimer append_timer;
  for (size_t r = 0; r < full.num_rows(); ++r) {
    std::vector<uint32_t> codes(full.num_attributes());
    for (size_t a = 0; a < full.num_attributes(); ++a) {
      codes[a] = full.code(r, a);
    }
    Status appended = stream.Append(codes, full.metric(r));
    if (!appended.ok()) {
      std::printf("append %zu: %s\n", r, appended.ToString().c_str());
      return 1;
    }
    if ((r + 1) % seal_every == 0) stream.SealEpoch();
  }
  const uint64_t final_epoch = stream.SealEpoch();
  const double append_wall = append_timer.ElapsedSeconds();
  const StreamingStats after_append = stream.stats();
  const double appends_per_s =
      static_cast<double>(full.num_rows()) / std::max(append_wall, 1e-9);
  report::SectionHeader("streaming appends (copy-on-seal included)");
  std::printf("%zu rows in %.3fs (%.0f appends/s), %llu seals of <= %zu "
              "rows, final epoch %llu\n",
              full.num_rows(), append_wall, appends_per_s,
              static_cast<unsigned long long>(after_append.seals), seal_every,
              static_cast<unsigned long long>(final_epoch));
  if (final_epoch != full.num_rows()) {
    std::printf("ERROR: final epoch %llu != %zu dataset rows\n",
                static_cast<unsigned long long>(final_epoch), full.num_rows());
    ok = false;
  }
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_append\",\"rows\":%zu,\"seals\":%llu,"
      "\"seal_every\":%zu,\"wall_s\":%.6f,\"appends_per_s\":%.1f,"
      "\"final_epoch\":%llu,\"kernel_backend\":\"%s\"}",
      full.num_rows(), static_cast<unsigned long long>(after_append.seals),
      seal_every, append_wall, appends_per_s,
      static_cast<unsigned long long>(final_epoch),
      simd::ActiveBackendName()));

  // Phase 2: continual releases against the sealed tip.
  WallTimer release_timer;
  size_t failures = 0;
  double eps_per_release = 0.0;
  for (size_t t = 0; t < releases_target; ++t) {
    const uint32_t v_row = setup->outliers[t % setup->outliers.size()];
    Rng rng(env.seed + t);
    auto released = stream.ReleaseAsOfNow(v_row, release, &rng);
    if (!released.ok()) {
      ++failures;
      continue;
    }
    eps_per_release = released->release.epsilon_spent;
  }
  const double release_wall = release_timer.ElapsedSeconds();
  const StreamingStats stats = stream.stats();
  const double releases_per_s =
      static_cast<double>(stats.releases) / std::max(release_wall, 1e-9);
  report::SectionHeader("continual release (as-of-now, tree-charged)");
  std::printf("%llu releases in %.3fs (%.1f releases/s), %zu failures, "
              "%zu memo invalidations across seals\n",
              static_cast<unsigned long long>(stats.releases), release_wall,
              releases_per_s, failures, stats.cache_invalidations);
  if (failures != 0) {
    std::printf("ERROR: %zu continual releases failed (planted outliers "
                "must verify at the tip epoch)\n",
                failures);
    ok = false;
  }
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_release\",\"releases\":%llu,\"failures\":%zu,"
      "\"wall_s\":%.6f,\"releases_per_s\":%.2f,\"epoch\":%llu,"
      "\"cache_invalidations\":%zu,\"kernel_backend\":\"%s\"}",
      static_cast<unsigned long long>(stats.releases), failures, release_wall,
      releases_per_s, static_cast<unsigned long long>(stats.epoch),
      stats.cache_invalidations, simd::ActiveBackendName()));

  // Phase 3: the O(log T) accounting win. Never relaxed.
  const uint64_t T = stats.releases;
  const double eps_tree = stats.cumulative_epsilon;
  const double eps_naive = stats.naive_epsilon;
  const double ratio = eps_naive > 0.0 ? eps_tree / eps_naive : 1.0;
  report::SectionHeader("epsilon accounting (tree vs naive)");
  std::printf("T=%llu releases at eps=%.3g: tree %.4f vs naive %.4f "
              "(ratio %.4f, %llu levels)\n",
              static_cast<unsigned long long>(T), eps_per_release, eps_tree,
              eps_naive, ratio,
              static_cast<unsigned long long>(TreeAccountant::LevelsFor(T)));
  if (T >= 4) {
    if (!(eps_tree < eps_naive)) {
      std::printf("ERROR: tree-composed epsilon %.6f must be strictly below "
                  "naive %.6f for T >= 4 (never relaxed)\n",
                  eps_tree, eps_naive);
      ok = false;
    }
    // The accountant sums marginals one release at a time while
    // CumulativeFor multiplies levels * eps — ulp drift, not slack.
    const double expected = TreeAccountant::CumulativeFor(T, eps_per_release);
    if (std::fabs(eps_tree - expected) > 1e-9 * std::max(1.0, expected)) {
      std::printf("ERROR: accountant cumulative %.12f != CumulativeFor(%llu) "
                  "= %.12f\n",
                  eps_tree, static_cast<unsigned long long>(T), expected);
      ok = false;
    }
  }
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_epsilon\",\"releases\":%llu,"
      "\"eps_per_release\":%.4f,\"eps_tree\":%.4f,\"eps_naive\":%.4f,"
      "\"ratio\":%.4f,\"levels\":%llu,\"kernel_backend\":\"%s\"}",
      static_cast<unsigned long long>(T), eps_per_release, eps_tree,
      eps_naive, ratio,
      static_cast<unsigned long long>(TreeAccountant::LevelsFor(T)),
      simd::ActiveBackendName()));

  if (!emitter.ok()) {
    std::printf("BENCH_JSON validation failures: %zu\n", emitter.failures());
  }
  return (ok && emitter.ok()) ? 0 : 1;
}
