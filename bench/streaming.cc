// Streaming PCOR bench: epoch-snapshotted appends plus tree-aggregated
// continual release over the reduced salary workload.
//
// Four phases, one BENCH_JSON line each (two for streaming_seal):
//   * `streaming_append` — stream the whole dataset through Append,
//     sealing every PCOR_STREAM_SEAL_EVERY rows; appends/s INCLUDES the
//     periodic incremental (segmented) seals — the honest cost of the
//     default seal path (see docs/streaming.md).
//   * `streaming_release` — T = PCOR_STREAM_RELEASES continual releases
//     against the sealed tip via ReleaseAsOfNow, reporting releases/s and
//     the memo invalidation count.
//   * `streaming_epsilon` — the accountant's tree-composed cumulative vs
//     the naive T-fresh-budgets baseline and their ratio.
//   * `streaming_seal` — seals/s at PCOR_STREAM_SEAL_EPOCHS (default 64)
//     evenly-sized epochs, segmented vs the copy-on-seal ablation
//     (StreamingOptions::segmented_seal false), timing SealEpoch calls
//     only; one line per mode plus the speedup.
//
// Enforced acceptance bars (exit non-zero on violation):
//   * every sealed row lands: the final epoch equals the dataset size;
//   * every continual release succeeds (the planted outliers verify at
//     the tip epoch);
//   * segmented seals/s >= 2x copy-on-seal seals/s whenever the run seals
//     >= 64 epochs (PCOR_RELAX_STREAMING=1 downgrades to a warning for
//     noisy/smoke environments);
//   * NEVER RELAXED: both seal modes release bit-identically from their
//     tips under the same seed — the segment layout may never move an
//     answer;
//   * NEVER RELAXED: for T >= 4 the tree-composed epsilon is strictly
//     below the naive per-release sum, and matches
//     TreeAccountant::CumulativeFor to within summation ulp (the
//     accountant adds marginals one release at a time). Only the seals/s
//     bar is timing; the equivalence and arithmetic bars always hold.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/simd.h"
#include "src/common/timer.h"
#include "src/search/streaming.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.2);
  PrintEnv(env,
           "streaming PCOR: epoch-snapshotted appends + tree-aggregated "
           "continual release (BFS, eps=0.2, n=20, lof detector)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;
  const Dataset& full = setup->workload.data.dataset;

  const size_t seal_every =
      std::max<size_t>(64, strings::EnvSizeOr("PCOR_STREAM_SEAL_EVERY", 2048));
  const size_t releases_target = std::max<size_t>(
      8, strings::EnvSizeOr("PCOR_STREAM_RELEASES", 4 * env.reps));

  PcorOptions release;
  release.sampler = SamplerKind::kBfs;
  release.num_samples = 20;
  release.total_epsilon = 0.2;

  BenchJsonEmitter emitter;
  bool ok = true;

  // Phase 1: appends + periodic seals.
  StreamingPcorEngine stream(full.schema(), *setup->detector);
  WallTimer append_timer;
  for (size_t r = 0; r < full.num_rows(); ++r) {
    std::vector<uint32_t> codes(full.num_attributes());
    for (size_t a = 0; a < full.num_attributes(); ++a) {
      codes[a] = full.code(r, a);
    }
    Status appended = stream.Append(codes, full.metric(r));
    if (!appended.ok()) {
      std::printf("append %zu: %s\n", r, appended.ToString().c_str());
      return 1;
    }
    if ((r + 1) % seal_every == 0) stream.SealEpoch();
  }
  const uint64_t final_epoch = stream.SealEpoch();
  const double append_wall = append_timer.ElapsedSeconds();
  const StreamingStats after_append = stream.stats();
  const double appends_per_s =
      static_cast<double>(full.num_rows()) / std::max(append_wall, 1e-9);
  report::SectionHeader("streaming appends (periodic seals included)");
  std::printf("%zu rows in %.3fs (%.0f appends/s), %llu seals of <= %zu "
              "rows, final epoch %llu\n",
              full.num_rows(), append_wall, appends_per_s,
              static_cast<unsigned long long>(after_append.seals), seal_every,
              static_cast<unsigned long long>(final_epoch));
  if (final_epoch != full.num_rows()) {
    std::printf("ERROR: final epoch %llu != %zu dataset rows\n",
                static_cast<unsigned long long>(final_epoch), full.num_rows());
    ok = false;
  }
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_append\",\"rows\":%zu,\"seals\":%llu,"
      "\"seal_every\":%zu,\"wall_s\":%.6f,\"appends_per_s\":%.1f,"
      "\"final_epoch\":%llu,\"kernel_backend\":\"%s\"}",
      full.num_rows(), static_cast<unsigned long long>(after_append.seals),
      seal_every, append_wall, appends_per_s,
      static_cast<unsigned long long>(final_epoch),
      simd::ActiveBackendName()));

  // Phase 2: continual releases against the sealed tip.
  WallTimer release_timer;
  size_t failures = 0;
  double eps_per_release = 0.0;
  for (size_t t = 0; t < releases_target; ++t) {
    const uint32_t v_row = setup->outliers[t % setup->outliers.size()];
    Rng rng(env.seed + t);
    auto released = stream.ReleaseAsOfNow(v_row, release, &rng);
    if (!released.ok()) {
      ++failures;
      continue;
    }
    eps_per_release = released->release.epsilon_spent;
  }
  const double release_wall = release_timer.ElapsedSeconds();
  const StreamingStats stats = stream.stats();
  const double releases_per_s =
      static_cast<double>(stats.releases) / std::max(release_wall, 1e-9);
  report::SectionHeader("continual release (as-of-now, tree-charged)");
  std::printf("%llu releases in %.3fs (%.1f releases/s), %zu failures, "
              "%zu memo invalidations across seals\n",
              static_cast<unsigned long long>(stats.releases), release_wall,
              releases_per_s, failures, stats.cache_invalidations);
  if (failures != 0) {
    std::printf("ERROR: %zu continual releases failed (planted outliers "
                "must verify at the tip epoch)\n",
                failures);
    ok = false;
  }
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_release\",\"releases\":%llu,\"failures\":%zu,"
      "\"wall_s\":%.6f,\"releases_per_s\":%.2f,\"epoch\":%llu,"
      "\"cache_invalidations\":%zu,\"kernel_backend\":\"%s\"}",
      static_cast<unsigned long long>(stats.releases), failures, release_wall,
      releases_per_s, static_cast<unsigned long long>(stats.epoch),
      stats.cache_invalidations, simd::ActiveBackendName()));

  // Phase 3: the O(log T) accounting win. Never relaxed.
  const uint64_t T = stats.releases;
  const double eps_tree = stats.cumulative_epsilon;
  const double eps_naive = stats.naive_epsilon;
  const double ratio = eps_naive > 0.0 ? eps_tree / eps_naive : 1.0;
  report::SectionHeader("epsilon accounting (tree vs naive)");
  std::printf("T=%llu releases at eps=%.3g: tree %.4f vs naive %.4f "
              "(ratio %.4f, %llu levels)\n",
              static_cast<unsigned long long>(T), eps_per_release, eps_tree,
              eps_naive, ratio,
              static_cast<unsigned long long>(TreeAccountant::LevelsFor(T)));
  if (T >= 4) {
    if (!(eps_tree < eps_naive)) {
      std::printf("ERROR: tree-composed epsilon %.6f must be strictly below "
                  "naive %.6f for T >= 4 (never relaxed)\n",
                  eps_tree, eps_naive);
      ok = false;
    }
    // The accountant sums marginals one release at a time while
    // CumulativeFor multiplies levels * eps — ulp drift, not slack.
    const double expected = TreeAccountant::CumulativeFor(T, eps_per_release);
    if (std::fabs(eps_tree - expected) > 1e-9 * std::max(1.0, expected)) {
      std::printf("ERROR: accountant cumulative %.12f != CumulativeFor(%llu) "
                  "= %.12f\n",
                  eps_tree, static_cast<unsigned long long>(T), expected);
      ok = false;
    }
  }
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_epsilon\",\"releases\":%llu,"
      "\"eps_per_release\":%.4f,\"eps_tree\":%.4f,\"eps_naive\":%.4f,"
      "\"ratio\":%.4f,\"levels\":%llu,\"kernel_backend\":\"%s\"}",
      static_cast<unsigned long long>(T), eps_per_release, eps_tree,
      eps_naive, ratio,
      static_cast<unsigned long long>(TreeAccountant::LevelsFor(T)),
      simd::ActiveBackendName()));

  // Phase 4: seal cost, segmented vs copy-on-seal. Same rows, same epoch
  // boundaries, same everything except StreamingOptions::segmented_seal;
  // only the SealEpoch calls are timed. The equivalence gate then demands
  // bit-identical releases from both tips — never relaxed.
  const size_t seal_epochs = std::max<size_t>(
      8, strings::EnvSizeOr("PCOR_STREAM_SEAL_EPOCHS", 64));
  const size_t rows_per_epoch =
      std::max<size_t>(1, full.num_rows() / seal_epochs);
  const bool relax_streaming =
      strings::EnvSizeOr("PCOR_RELAX_STREAMING", 0) != 0;
  report::SectionHeader("seal cost (segmented vs copy-on-seal)");
  double seals_per_s_by_mode[2] = {0.0, 0.0};
  std::shared_ptr<const EpochSnapshot> tip_by_mode[2];
  uint64_t seals_done = 0;
  for (const bool segmented : {true, false}) {
    StreamingOptions mode_options;
    mode_options.segmented_seal = segmented;
    StreamingPcorEngine sealer(full.schema(), *setup->detector, mode_options);
    double seal_wall = 0.0;
    seals_done = 0;
    std::vector<uint32_t> codes(full.num_attributes());
    for (size_t r = 0; r < full.num_rows(); ++r) {
      for (size_t a = 0; a < full.num_attributes(); ++a) {
        codes[a] = full.code(r, a);
      }
      sealer.Append(codes, full.metric(r)).CheckOK();
      if ((r + 1) % rows_per_epoch == 0 || r + 1 == full.num_rows()) {
        WallTimer seal_timer;
        sealer.SealEpoch();
        seal_wall += seal_timer.ElapsedSeconds();
        ++seals_done;
      }
    }
    const StreamingStats seal_stats = sealer.stats();
    const double seals_per_s =
        static_cast<double>(seals_done) / std::max(seal_wall, 1e-9);
    seals_per_s_by_mode[segmented ? 0 : 1] = seals_per_s;
    tip_by_mode[segmented ? 0 : 1] = sealer.Pin();
    const char* mode = segmented ? "segmented" : "copy_on_seal";
    std::printf("%s: %llu seals of ~%zu rows in %.3fs (%.1f seals/s), "
                "%zu segments at tip, %llu compactions\n",
                mode, static_cast<unsigned long long>(seals_done),
                rows_per_epoch, seal_wall, seals_per_s, seal_stats.segments,
                static_cast<unsigned long long>(seal_stats.compactions));
    emitter.Emit(strings::Format(
        "{\"bench\":\"streaming_seal\",\"mode\":\"%s\",\"rows\":%zu,"
        "\"seals\":%llu,\"rows_per_epoch\":%zu,\"seal_wall_s\":%.6f,"
        "\"seals_per_s\":%.2f,\"tip_segments\":%zu,\"compactions\":%llu,"
        "\"kernel_backend\":\"%s\"}",
        mode, full.num_rows(), static_cast<unsigned long long>(seals_done),
        rows_per_epoch, seal_wall, seals_per_s, seal_stats.segments,
        static_cast<unsigned long long>(seal_stats.compactions),
        simd::ActiveBackendName()));
  }

  // Equivalence gate: identical seed, identical targets, the two tips must
  // release identically. Arithmetic, never relaxed.
  {
    std::vector<uint32_t> targets(setup->outliers.begin(),
                                  setup->outliers.end());
    const BatchReleaseReport seg = tip_by_mode[0]->engine->ReleaseBatch(
        std::span<const uint32_t>(targets), release, env.seed, 1);
    const BatchReleaseReport cow = tip_by_mode[1]->engine->ReleaseBatch(
        std::span<const uint32_t>(targets), release, env.seed, 1);
    size_t mismatches = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
      const PcorRelease& a = seg.entries[i].release;
      const PcorRelease& b = cow.entries[i].release;
      if (seg.entries[i].status.ok() != cow.entries[i].status.ok() ||
          a.context != b.context || a.description != b.description ||
          a.epsilon_spent != b.epsilon_spent ||
          a.num_candidates != b.num_candidates ||
          a.utility_score != b.utility_score) {
        ++mismatches;
      }
    }
    if (mismatches != 0) {
      std::printf("ERROR: %zu of %zu releases differ between segmented and "
                  "copy-on-seal tips (never relaxed)\n",
                  mismatches, targets.size());
      ok = false;
    } else {
      std::printf("equivalence gate: %zu/%zu releases bit-identical across "
                  "seal modes\n",
                  targets.size(), targets.size());
    }
  }

  const double seal_speedup =
      seals_per_s_by_mode[1] > 0.0
          ? seals_per_s_by_mode[0] / seals_per_s_by_mode[1]
          : 0.0;
  std::printf("segmented/copy-on-seal seal throughput: %.2fx\n",
              seal_speedup);
  emitter.Emit(strings::Format(
      "{\"bench\":\"streaming_seal\",\"mode\":\"speedup\",\"seals\":%llu,"
      "\"segmented_seals_per_s\":%.2f,\"copy_seals_per_s\":%.2f,"
      "\"speedup\":%.3f,\"kernel_backend\":\"%s\"}",
      static_cast<unsigned long long>(seals_done), seals_per_s_by_mode[0],
      seals_per_s_by_mode[1], seal_speedup, simd::ActiveBackendName()));
  if (seals_done >= 64 && seal_speedup < 2.0) {
    if (relax_streaming) {
      std::printf("WARNING: segmented seal speedup %.2fx below the 2x bar "
                  "at %llu epochs (relaxed by PCOR_RELAX_STREAMING)\n",
                  seal_speedup, static_cast<unsigned long long>(seals_done));
    } else {
      std::printf("ERROR: segmented seal speedup %.2fx below the 2x bar at "
                  "%llu epochs (PCOR_RELAX_STREAMING=1 to relax)\n",
                  seal_speedup, static_cast<unsigned long long>(seals_done));
      ok = false;
    }
  }

  if (!emitter.ok()) {
    std::printf("BENCH_JSON validation failures: %zu\n", emitter.failures());
  }
  return (ok && emitter.ok()) ? 0 : 1;
}
