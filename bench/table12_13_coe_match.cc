// Reproduces Table 12 (salary) and Table 13 (homicide): how often the OCDP
// assumption COE(D1, V) = COE(D2, V) holds between a dataset and neighbors
// at record distance Delta in {1, 5, 10, 25}, for the Grubbs / LOF /
// Histogram detectors (Section 6.7, objective i). Match is reported as the
// average Jaccard similarity of the two context sets (and exact-equality
// rate), since the paper does not pin down its formula.
#include "bench/bench_util.h"
#include "src/context/coe.h"
#include "src/data/neighbor.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

struct MatchRow {
  std::string detector;
  double avg_jaccard[4] = {0, 0, 0, 0};
  double equal_rate[4] = {0, 0, 0, 0};
};

void RunDataset(const char* title, const Workload& workload,
                const BenchEnv& env, TableRenderer* table,
                const char* paper_note) {
  const size_t deltas[4] = {1, 5, 10, 25};
  const size_t neighbors_per_delta =
      strings::EnvSizeOr("PCOR_NEIGHBORS", 4);

  report::SectionHeader(title);
  std::printf("dataset: %zu rows, t = %zu; %zu outliers x %zu neighbors "
              "per delta (paper: 100 x 50)\n",
              workload.data.dataset.num_rows(),
              workload.data.dataset.schema().total_values(), env.outliers,
              neighbors_per_delta);

  for (const char* detector_name : {"grubbs", "lof", "histogram"}) {
    auto detector = MakeDetector(detector_name);
    detector.status().CheckOK();
    PopulationIndex index(workload.data.dataset);
    OutlierVerifier verifier(index, **detector);
    Rng rng(env.seed + 17);
    auto outliers = SelectQueryOutliers(
        verifier, workload.data.planted_outlier_rows, env.outliers, &rng);
    if (outliers.empty()) {
      std::printf("  %s: no verified outliers, skipped\n", detector_name);
      continue;
    }

    MatchRow row;
    row.detector = detector_name;
    for (size_t d = 0; d < 4; ++d) {
      RunningStats jaccard;
      size_t equal = 0, total = 0;
      for (uint32_t v_row : outliers) {
        auto base_coe = EnumerateCoe(verifier, v_row);
        if (!base_coe.ok()) continue;
        for (size_t k = 0; k < neighbors_per_delta; ++k) {
          NeighborOptions options;
          options.delta = deltas[d];
          options.protected_rows = {v_row};
          auto neighbor = MakeNeighbor(workload.data.dataset, options, &rng);
          if (!neighbor.ok()) continue;
          PopulationIndex index2(neighbor->dataset);
          OutlierVerifier verifier2(index2, **detector);
          const uint32_t row2 = neighbor->row_mapping[v_row];
          auto coe2 = EnumerateCoe(verifier2, row2);
          if (!coe2.ok()) continue;
          auto match = CompareCoe(*base_coe, *coe2);
          jaccard.Add(match.jaccard);
          equal += (match.only_left == 0 && match.only_right == 0);
          ++total;
        }
      }
      if (total > 0) {
        row.avg_jaccard[d] = jaccard.mean();
        row.equal_rate[d] = static_cast<double>(equal) / total;
      }
    }
    table->AddRow({row.detector,
                   strings::Format("%.1f%%", 100 * row.avg_jaccard[0]),
                   strings::Format("%.1f%%", 100 * row.avg_jaccard[1]),
                   strings::Format("%.1f%%", 100 * row.avg_jaccard[2]),
                   strings::Format("%.1f%%", 100 * row.avg_jaccard[3])});
    std::printf("  %s exact-equality rate: %.0f%% / %.0f%% / %.0f%% / "
                "%.0f%% at delta 1/5/10/25\n",
                detector_name, 100 * row.equal_rate[0],
                100 * row.equal_rate[1], 100 * row.equal_rate[2],
                100 * row.equal_rate[3]);
  }
  std::printf("%s", table->Render().c_str());
  report::Note(paper_note);
  report::Note(
      "expected shape: match decreases with delta; histogram degrades "
      "fastest (bin boundaries move with every record)");
}

}  // namespace

int main() {
  // Every (outlier, neighbor) pair costs a full COE enumeration, so this
  // bench defaults to a quarter-scale dataset — the paper made the same
  // concession, running Section 6.7 on deliberately reduced datasets "to
  // run several experiments in a reasonable amount of time".
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.25);
  PrintEnv(env, "Table 12/13: COE match between neighboring datasets");

  auto salary = MakeReducedSalaryWorkload(env.scale);
  salary.status().CheckOK();
  TableRenderer t12({"Algorithm", "dD=1", "dD=5", "dD=10", "dD=25"});
  RunDataset("Table 12 (measured): COE match, salary dataset", *salary, env,
             &t12,
             "paper: grubbs 99.8/96.9/94.5/91.9, lof 89/87.9/86.7/85.7, "
             "histogram 95.5/82.1/70.8/58.8 (%)");

  auto homicide = MakeReducedHomicideWorkload(env.scale);
  homicide.status().CheckOK();
  TableRenderer t13({"Algorithm", "dD=1", "dD=5", "dD=10", "dD=25"});
  RunDataset("Table 13 (measured): COE match, homicide dataset", *homicide,
             env, &t13,
             "paper: grubbs 100/100/100/97.8, lof 99.9/99.5/98.7/97.7, "
             "histogram 98.5/85.2/69.3/53.3 (%)");
  return 0;
}
