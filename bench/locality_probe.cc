// Verifies the paper's locality hypothesis (Section 5.2): "if V is an
// outlier in C, it is more probable to be an outlier in a connected vertex
// than in some randomly chosen vertex" — for a detector from each of the
// paper's three categories (hypothesis testing / distribution fitting /
// distance based), plus the extra baselines. This hypothesis is what makes
// graph-based sampling beat uniform sampling; Section 6.5 infers it
// indirectly from BFS succeeding under every detector, and this bench
// measures it directly.
#include "bench/bench_util.h"
#include "src/context/context_graph.h"
#include "src/context/starting_context.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env, "Locality probe (Section 5.2 hypothesis, all detectors)");

  TableRenderer table({"Detector", "P[neighbor matches]",
                       "P[random vertex matches]", "locality ratio"});
  const size_t probes = strings::EnvSizeOr("PCOR_PROBES", 300);

  for (const char* detector_name :
       {"grubbs", "histogram", "lof", "iqr", "zscore"}) {
    auto setup = MakeSalarySetup(env, detector_name);
    if (!setup) {
      std::printf("skipping %s (no verified outliers)\n", detector_name);
      continue;
    }
    ContextGraph graph(setup->workload.data.dataset.schema());
    RunningStats neighbor_rate, random_rate;
    Rng rng(env.seed + 5);
    for (uint32_t v_row : setup->outliers) {
      StartingContextOptions start_options;
      auto seed_ctx = FindStartingContext(setup->engine->verifier(), v_row,
                                          start_options, &rng);
      if (!seed_ctx.ok()) continue;
      LocalityStats stats =
          MeasureLocality(setup->engine->verifier(), graph, v_row, *seed_ctx,
                          probes, &rng);
      neighbor_rate.Add(stats.neighbor_match_rate);
      random_rate.Add(stats.random_match_rate);
    }
    if (neighbor_rate.count() == 0) continue;
    const double ratio =
        random_rate.mean() > 0
            ? neighbor_rate.mean() / random_rate.mean()
            : std::numeric_limits<double>::infinity();
    table.AddRow({detector_name,
                  strings::Format("%.3f", neighbor_rate.mean()),
                  strings::Format("%.3f", random_rate.mean()),
                  strings::Format("%.1fx", ratio)});
  }

  report::SectionHeader("Locality (measured)");
  std::printf("%s", table.Render().c_str());
  report::Note(
      "hypothesis holds when the ratio is > 1 for every detector; the "
      "paper claims it for all three evaluated categories (Section 6.5)");
  return 0;
}
