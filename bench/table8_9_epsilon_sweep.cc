// Reproduces Table 8 (runtime) and Table 9 (utility) plus Figure 4: the
// privacy / utility / performance trade-off as the OCDP budget epsilon
// varies over {0.05, 0.1, 0.2, 0.4} with BFS sampling and LOF (Section
// 6.6, n = 50).
#include "bench/bench_util.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env, "Table 8/9 + Figure 4: epsilon sweep (BFS, LOF, n=50)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  TableRenderer perf({"eps", "Tmin", "Tmax", "Tavg", "Sampling"});
  TableRenderer util({"eps", "Utility", "CI(90%)", "Sampling"});
  struct Series {
    std::string name;
    std::vector<double> utilities;
  };
  std::vector<Series> all_series;
  std::vector<double> means;

  for (double eps : {0.05, 0.1, 0.2, 0.4}) {
    auto result = RunConfig(*setup, env, SamplerKind::kBfs,
                            UtilityKind::kPopulationSize, eps, 50);
    if (!result.ok()) {
      std::printf("eps=%.2f failed: %s\n", eps,
                  result.status().ToString().c_str());
      continue;
    }
    auto runtime = result->runtime();
    auto ci = result->utility_ci(0.90);
    perf.AddRow({strings::Format("%.2f", eps),
                 report::FormatRuntime(runtime.min_seconds),
                 report::FormatRuntime(runtime.max_seconds),
                 report::FormatRuntime(runtime.avg_seconds), "BFS"});
    util.AddRow({strings::Format("%.2f", eps),
                 strings::Format("%.2f", ci.mean),
                 report::FormatUtilityCi(ci), "BFS"});
    all_series.push_back(
        {strings::Format("eps=%.2f", eps), result->utility_ratios});
    means.push_back(ci.mean);
  }

  report::SectionHeader("Table 8 (measured): epsilon sweep, runtime");
  std::printf("%s", perf.Render().c_str());
  report::Note(
      "paper: 15m/16m/17m/17m average across eps — epsilon has almost no "
      "runtime effect");

  report::SectionHeader("Table 9 (measured): epsilon sweep, utility");
  std::printf("%s", util.Render().c_str());
  report::Note(
      "paper: 0.67 (0.62,0.71) @0.05, 0.82 (0.78,0.85) @0.1, "
      "0.90 (0.88,0.93) @0.2, 0.92 (0.90,0.94) @0.4");
  report::Note(
      "expected shape: utility rises with eps and plateaus near eps=0.2");
  if (means.size() == 4) {
    const bool rising = means[0] <= means[2] + 0.05;
    const bool plateau = std::abs(means[3] - means[2]) <
                         std::abs(means[2] - means[0]) + 0.05;
    std::printf("shape check: rising=%s plateau-after-0.2=%s\n",
                rising ? "yes" : "NO", plateau ? "yes" : "NO");
  }

  report::SectionHeader("Figure 4 data: utility distributions per epsilon");
  for (const auto& series : all_series) {
    report::PrintHistogram("Fig 4 utility: " + series.name,
                           series.utilities, 0.0, 1.0, 10);
  }
  return 0;
}
