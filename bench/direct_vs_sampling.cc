// Reproduces the paper's headline claim (Section 1.2): on the full 51k-row
// salary dataset the direct differentially-private approach takes ~3 days
// while BFS-sampled PCOR takes ~37 minutes. The direct approach is
// O(2^t) (Theorem 4.2), so we measure its per-context cost at the reduced
// t, fit the exponential model, and extrapolate to the full schema; BFS is
// measured directly at both shapes.
#include <cmath>

#include "bench/bench_util.h"
#include "src/common/timer.h"
#include "src/context/coe.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env, "Direct approach vs sampled PCOR (Section 1.2 headline)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;
  const Dataset& dataset = setup->workload.data.dataset;
  const size_t t = dataset.schema().total_values();
  const size_t m = dataset.num_attributes();
  const uint32_t v_row = setup->outliers.front();

  // --- Direct approach, measured at the reduced shape (fresh verifier so
  // the memo cache does not hide the enumeration cost).
  PopulationIndex index(dataset);
  VerifierOptions no_cache;
  no_cache.enable_cache = false;
  OutlierVerifier cold_verifier(index, *setup->detector, no_cache);
  WallTimer timer;
  auto coe = EnumerateCoe(cold_verifier, v_row);
  const double direct_seconds = timer.ElapsedSeconds();
  coe.status().CheckOK();
  const double contexts_enumerated =
      std::pow(2.0, static_cast<double>(t - m));
  const double per_context = direct_seconds / contexts_enumerated;

  std::printf("\ndirect enumeration at t=%zu: %s for %.0f contexts "
              "(%.3g s/context), |COE| = %zu\n",
              t, report::FormatRuntime(direct_seconds).c_str(),
              contexts_enumerated, per_context, coe->size());

  // --- Extrapolate the direct approach to the paper's full salary schema
  // (t = 25, m = 3) and full row count via the O(2^t) model. Per-context
  // cost scales ~linearly with rows.
  const double full_rows = 51000.0;
  const double row_factor = full_rows / dataset.num_rows();
  const double full_contexts = std::pow(2.0, 25.0 - 3.0);
  const double projected_direct =
      per_context * row_factor * full_contexts;
  std::printf("projected direct approach at t=25, 51k rows: %s\n",
              report::FormatRuntime(projected_direct).c_str());
  report::Note("paper measured ~3 days on a 132-core, 1TB machine");

  // --- BFS-sampled PCOR, measured against a COLD engine (memoization
  // off), so the comparison with the cold direct enumeration is fair.
  PcorEngine cold_engine(dataset, *setup->detector, no_cache);
  PcorOptions bfs_options;
  bfs_options.sampler = SamplerKind::kBfs;
  bfs_options.num_samples = 50;
  bfs_options.total_epsilon = 0.2;
  RunningStats bfs_seconds;
  std::vector<double> utilities;
  PopulationSizeUtility max_utility(setup->engine->verifier());
  const size_t bfs_trials = std::min<size_t>(env.reps, 10);
  for (size_t trial = 0; trial < bfs_trials; ++trial) {
    Rng rng(env.seed + trial);
    WallTimer bfs_timer;
    auto release = cold_engine.Release(v_row, bfs_options, &rng);
    bfs_seconds.Add(bfs_timer.ElapsedSeconds());
    if (release.ok()) {
      utilities.push_back(release->utility_score /
                          setup->reference.MaxUtility(v_row, max_utility));
    }
  }
  std::printf("\nBFS-sampled PCOR (cold cache): Tavg %s over %zu trials\n",
              report::FormatRuntime(bfs_seconds.mean()).c_str(),
              bfs_seconds.count());
  // BFS probes n*t contexts per release; project to the full shape.
  const double projected_bfs =
      bfs_seconds.mean() * row_factor * (25.0 / t);
  std::printf("projected BFS at t=25, 51k rows: %s\n",
              report::FormatRuntime(projected_bfs).c_str());
  report::Note("paper measured ~37 minutes average");

  const double speedup = projected_direct / std::max(projected_bfs, 1e-9);
  std::printf("\nprojected speedup of sampling over direct: %.0fx "
              "(paper: 3 days / 37 min = ~117x)\n", speedup);
  const auto ci = MeanConfidenceInterval(utilities, 0.90);
  std::printf("utility retained by BFS: %.2f of the direct maximum "
              "(paper: 0.90)\n", ci.mean);
  return 0;
}
