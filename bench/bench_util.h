#pragma once

// Shared setup for the table-reproduction benchmarks.
//
// Every bench honors three environment variables so the same binaries scale
// from a quick CI run to the paper's full methodology:
//   PCOR_REPS    trials per configuration   (default 30;  paper: 200)
//   PCOR_SCALE   dataset scale in (0, 1]    (default 1.0 = the paper's
//                reduced-dataset size; COE-enumeration benches default
//                lower, see their headers)
//   PCOR_OUTLIERS query outliers per pool   (default 4;   paper: up to 200)

#include <cstdio>
#include <memory>

#include "src/common/string_util.h"
#include "src/common/threading.h"
#include "src/exp/experiment.h"
#include "src/exp/report.h"
#include "src/exp/workloads.h"
#include "src/outlier/detector.h"
#include "src/search/pcor.h"

namespace pcor {
namespace bench {

struct BenchEnv {
  size_t reps = 30;
  double scale = 1.0;
  size_t outliers = 4;
  size_t threads = DefaultThreadCount();
  uint64_t seed = 2021;
};

inline BenchEnv ReadBenchEnv(double default_scale = 1.0) {
  BenchEnv env;
  env.reps = strings::EnvSizeOr("PCOR_REPS", env.reps);
  env.scale = strings::EnvDoubleOr("PCOR_SCALE", default_scale);
  env.outliers = strings::EnvSizeOr("PCOR_OUTLIERS", env.outliers);
  env.threads = strings::EnvSizeOr("PCOR_THREADS", env.threads);
  env.seed = strings::EnvSizeOr("PCOR_SEED", env.seed);
  return env;
}

inline void PrintEnv(const BenchEnv& env, const char* what) {
  std::printf(
      "%s\n(PCOR_REPS=%zu trials, PCOR_SCALE=%.3g dataset scale, "
      "%zu query outliers, %zu threads; paper: 200 trials, full scale)\n",
      what, env.reps, env.scale, env.outliers, env.threads);
}

/// One (workload, detector, engine, outlier pool, reference) bundle.
struct Setup {
  Workload workload;
  std::unique_ptr<OutlierDetector> detector;
  std::unique_ptr<PcorEngine> engine;
  std::vector<uint32_t> outliers;
  ReferenceTable reference;
};

/// Builds the paper's default experimental substrate: reduced salary
/// dataset + the named detector. Returns nullptr (with a message) when no
/// planted outlier verifies under the detector.
inline std::unique_ptr<Setup> MakeSalarySetup(const BenchEnv& env,
                                              const std::string& detector) {
  auto bundle = std::make_unique<Setup>();
  auto workload = MakeReducedSalaryWorkload(env.scale);
  if (!workload.ok()) {
    std::printf("workload: %s\n", workload.status().ToString().c_str());
    return nullptr;
  }
  bundle->workload = std::move(*workload);
  auto det = MakeDetector(detector);
  if (!det.ok()) {
    std::printf("detector: %s\n", det.status().ToString().c_str());
    return nullptr;
  }
  bundle->detector = std::move(*det);
  bundle->engine = std::make_unique<PcorEngine>(
      bundle->workload.data.dataset, *bundle->detector);
  Rng rng(env.seed);
  // Over-sample candidates, then keep the most *significant* outliers —
  // the ones whose best explanation context covers the largest population.
  // The paper's utility metric equates population with significance
  // (Section 3.2.1); querying insignificant outliers (max context a few
  // percent of the data) pins eps1 * u << 1 where every mechanism is
  // near-uniform. Recorded in EXPERIMENTS.md.
  std::vector<uint32_t> candidates = SelectQueryOutliers(
      bundle->engine->verifier(), bundle->workload.data.planted_outlier_rows,
      env.outliers * 3, &rng);
  if (candidates.empty()) {
    std::printf("no planted outlier verifies under detector '%s'\n",
                detector.c_str());
    return nullptr;
  }
  auto reference =
      ReferenceTable::Build(bundle->engine->verifier(), candidates,
                            CoeOptions{}, env.threads);
  if (!reference.ok()) {
    std::printf("reference: %s\n", reference.status().ToString().c_str());
    return nullptr;
  }
  bundle->reference = std::move(*reference);
  PopulationSizeUtility significance(bundle->engine->verifier());
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](uint32_t a, uint32_t b) {
                     return bundle->reference.MaxUtility(a, significance) >
                            bundle->reference.MaxUtility(b, significance);
                   });
  if (candidates.size() > env.outliers) candidates.resize(env.outliers);
  std::sort(candidates.begin(), candidates.end());
  bundle->outliers = std::move(candidates);
  return bundle;
}

/// Runs one experiment configuration against a setup.
inline Result<ExperimentResult> RunConfig(const Setup& setup,
                                          const BenchEnv& env,
                                          SamplerKind sampler,
                                          UtilityKind utility,
                                          double epsilon, size_t num_samples) {
  TrialConfig config;
  config.sampler = sampler;
  config.utility = utility;
  config.total_epsilon = epsilon;
  config.num_samples = num_samples;
  config.trials = env.reps;
  config.seed = env.seed;
  config.threads = env.threads;
  return RunPcorExperiment(*setup.engine, setup.outliers, setup.reference,
                           config);
}

}  // namespace bench
}  // namespace pcor
