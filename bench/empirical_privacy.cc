// Reproduces the Section 6.7 (objective ii) experiment: when neighboring
// datasets do NOT induce equal COE sets (so the OCDP precondition fails),
// measure the maximum selection-probability ratio over the shared contexts
// and compare it to the unconstrained-DP bound e^eps. The paper found no
// violation at eps = 0.2 across 200 outlier samples and three detectors;
// this bench reports the measured maxima.
#include <cmath>

#include "bench/bench_util.h"
#include "src/data/neighbor.h"
#include "src/dp/ocdp.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  // COE enumeration per (outlier, neighbor) pair — quarter scale by
  // default, like the paper's Section 6.7 setup.
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.25);
  PrintEnv(env,
           "Section 6.7(ii): empirical privacy ratio on non-matching COEs "
           "(eps = 0.2 => eps1 = 0.1, bound e^0.2)");

  auto workload = MakeReducedSalaryWorkload(env.scale);
  workload.status().CheckOK();
  const double eps1 = 0.1;  // direct approach: eps = 2*eps1 = 0.2
  const size_t neighbors_per_outlier =
      strings::EnvSizeOr("PCOR_NEIGHBORS", 6);

  TableRenderer table({"Detector", "pairs", "coe-equal", "max ratio",
                       "bound e^0.2", "viol(eq)", "viol(noneq)"});

  for (const char* detector_name : {"grubbs", "lof", "histogram"}) {
    auto detector = MakeDetector(detector_name);
    detector.status().CheckOK();
    PopulationIndex index(workload->data.dataset);
    OutlierVerifier verifier(index, **detector);
    Rng rng(env.seed + 31);
    auto outliers = SelectQueryOutliers(
        verifier, workload->data.planted_outlier_rows, env.outliers, &rng);
    if (outliers.empty()) {
      std::printf("%s: no verified outliers, skipped\n", detector_name);
      continue;
    }

    double max_ratio = 1.0;
    size_t pairs = 0, equal = 0;
    size_t violations_equal = 0, violations_nonequal = 0;
    for (uint32_t v_row : outliers) {
      for (size_t k = 0; k < neighbors_per_outlier; ++k) {
        NeighborOptions options;
        options.delta = 1;
        options.protected_rows = {v_row};
        auto neighbor = MakeNeighbor(workload->data.dataset, options, &rng);
        if (!neighbor.ok()) continue;
        PopulationIndex index2(neighbor->dataset);
        OutlierVerifier verifier2(index2, **detector);
        auto result = MeasureEmpiricalPrivacy(
            verifier, verifier2, v_row, neighbor->row_mapping[v_row], eps1);
        if (!result.ok()) continue;
        ++pairs;
        equal += result->coe_equal;
        max_ratio = std::max(max_ratio, result->max_ratio);
        if (!result->within_bound) {
          // On f-neighbors the bound is Theorem 4.1 — a violation there
          // would be a bug. On non-equal COEs it is only the paper's
          // empirical observation (Section 6.7(ii)).
          (result->coe_equal ? violations_equal : violations_nonequal) += 1;
        }
      }
    }
    table.AddRow({detector_name, strings::Format("%zu", pairs),
                  strings::Format("%.0f%%",
                                  pairs ? 100.0 * equal / pairs : 0.0),
                  strings::Format("%.4f", max_ratio),
                  strings::Format("%.4f", std::exp(2 * eps1)),
                  strings::Format("%zu", violations_equal),
                  strings::Format("%zu", violations_nonequal)});
  }

  report::SectionHeader("Empirical privacy (measured)");
  std::printf("%s", table.Render().c_str());
  report::Note(
      "paper: across all experiments the ratio stayed below e^eps for "
      "eps = 0.2 — no instance violating unconstrained DP was found");
  report::Note(
      "viol(eq) must be 0 (Theorem 4.1). viol(noneq) counts pairs whose "
      "COE sets differ AND whose shared-context ratio exceeds the bound — "
      "the paper observed none on its datasets; a non-zero count here "
      "quantifies how far the OCDP relaxation can stretch on synthetic "
      "data when a high-utility context enters/leaves COE");
  return 0;
}
