// Micro-benchmarks for the sampling layer: per-release cost of each
// algorithm on the reduced salary workload, plus the detector-memoization
// ablation (cache on vs off) from DESIGN.md.
#include <benchmark/benchmark.h>

#include "src/context/starting_context.h"
#include "src/exp/workloads.h"
#include "src/outlier/lof.h"
#include "src/search/pcor.h"

namespace {

using namespace pcor;

struct SearchFixture {
  Workload workload;
  LofDetector detector;
  std::unique_ptr<PcorEngine> engine;
  uint32_t v_row = 0;

  SearchFixture() {
    auto w = MakeReducedSalaryWorkload(/*scale=*/0.05);
    w.status().CheckOK();
    workload = std::move(*w);
    engine = std::make_unique<PcorEngine>(workload.data.dataset, detector);
    Rng rng(5);
    auto outliers = SelectQueryOutliers(
        engine->verifier(), workload.data.planted_outlier_rows, 1, &rng);
    if (!outliers.empty()) v_row = outliers.front();
  }
};

SearchFixture& Fixture() {
  static auto* fixture = new SearchFixture();
  return *fixture;
}

void RunRelease(benchmark::State& state, SamplerKind kind) {
  auto& fixture = Fixture();
  PcorOptions options;
  options.sampler = kind;
  options.num_samples = static_cast<size_t>(state.range(0));
  options.total_epsilon = 0.2;
  options.max_probes = 5'000'000;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto release = fixture.engine->Release(fixture.v_row, options, &rng);
    benchmark::DoNotOptimize(release);
  }
}

void BM_ReleaseRandomWalk(benchmark::State& state) {
  RunRelease(state, SamplerKind::kRandomWalk);
}
BENCHMARK(BM_ReleaseRandomWalk)->Arg(25)->Arg(50);

void BM_ReleaseDfs(benchmark::State& state) {
  RunRelease(state, SamplerKind::kDfs);
}
BENCHMARK(BM_ReleaseDfs)->Arg(25)->Arg(50);

void BM_ReleaseBfs(benchmark::State& state) {
  RunRelease(state, SamplerKind::kBfs);
}
BENCHMARK(BM_ReleaseBfs)->Arg(25)->Arg(50);

void BM_ReleaseUniform(benchmark::State& state) {
  RunRelease(state, SamplerKind::kUniform);
}
BENCHMARK(BM_ReleaseUniform)->Arg(10);

// Ablation: the same BFS release against a verifier with memoization
// disabled — every context probe reruns the detector.
void BM_ReleaseBfsNoCache(benchmark::State& state) {
  auto& fixture = Fixture();
  VerifierOptions no_cache;
  no_cache.enable_cache = false;
  PcorEngine engine(fixture.workload.data.dataset, fixture.detector,
                    no_cache);
  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = static_cast<size_t>(state.range(0));
  options.total_epsilon = 0.2;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto release = engine.Release(fixture.v_row, options, &rng);
    benchmark::DoNotOptimize(release);
  }
}
BENCHMARK(BM_ReleaseBfsNoCache)->Arg(25);

void BM_StartingContextSearch(benchmark::State& state) {
  auto& fixture = Fixture();
  StartingContextOptions options;
  uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    auto start = FindStartingContext(fixture.engine->verifier(),
                                     fixture.v_row, options, &rng);
    benchmark::DoNotOptimize(start);
  }
}
BENCHMARK(BM_StartingContextSearch);

}  // namespace

BENCHMARK_MAIN();
