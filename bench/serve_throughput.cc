// Serving front-end throughput/latency bench: closed-loop client threads
// submit releases to a PcorServer (micro-batch coalescing over
// ReleaseBatch) and the bench sweeps the client count, reporting p50/p99
// submit-to-completion latency and releases/sec — as aggregate
// `serve_throughput` BENCH_JSON lines plus one `serve_throughput_tenant`
// line per tenant (with a "tenant" field), so CI trend tracking can diff
// per-tenant fairness regressions, not just totals.
//
// Three enforced acceptance bars (exit non-zero on violation):
//   * the synthetic workload must sustain > 1 release/sec/core at the
//     highest client count (PCOR_RELAX_SERVE=1 downgrades to a note, for
//     emulated/overloaded hosts);
//   * a budget-capped client must see exactly floor(cap/eps) releases and
//     typed kPrivacyBudgetExceeded rejections for the rest — never a
//     silently clipped release;
//   * weighted-fair QoS: against a saturating weight-10 flood tenant, a
//     weight-1 tenant's releases/sec must stay within 2x of its
//     weight-proportional share. Algebraically this is a wall-RATIO bar —
//     the light tenant's last completion must land within ~85% of the
//     total wall — so it is independent of absolute host speed, but batch
//     shapes on a starved host can still distort it; PCOR_RELAX_FAIRNESS=1
//     relaxes it to a note (CI enforces it only in the bench-json job,
//     like the other timing-sensitive bars).
#include <algorithm>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/simd.h"
#include "src/exp/serving.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

// One `serve_throughput_tenant` line per tenant of a workload, keyed by the
// sweep section it came from.
void EmitTenantLines(BenchJsonEmitter& emitter, const char* section,
                     size_t clients, const ServingResult& result) {
  for (const TenantResult& tenant : result.tenants) {
    emitter.Emit(strings::Format(
        "{\"bench\":\"serve_throughput_tenant\",\"section\":\"%s\","
        "\"clients\":%zu,\"tenant\":\"%s\",\"released\":%zu,"
        "\"failed\":%zu,\"rejected_budget\":%zu,\"rejected_queue\":%zu,"
        "\"wall_s\":%.6f,\"releases_per_s\":%.2f,\"p50_ms\":%.3f,"
        "\"p99_ms\":%.3f,\"kernel_backend\":\"%s\"}",
        section, clients, tenant.id.c_str(), tenant.released, tenant.failed,
        tenant.rejected_budget, tenant.rejected_queue, tenant.wall_seconds,
        tenant.releases_per_second(), tenant.latency_quantile(0.50) * 1e3,
        tenant.latency_quantile(0.99) * 1e3, simd::ActiveBackendName()));
  }
}

}  // namespace

int main() {
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.2);
  PrintEnv(env,
           "serving front-end: PcorServer micro-batching over ReleaseBatch "
           "(BFS, eps=0.2, n=20, lof detector)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  PcorOptions release;
  release.sampler = SamplerKind::kBfs;
  release.num_samples = 20;
  release.total_epsilon = 0.2;

  const size_t total_requests =
      std::max<size_t>(64, env.reps * setup->outliers.size());
  const size_t cores = DefaultThreadCount();

  BenchJsonEmitter emitter;
  TableRenderer table({"Clients", "Requests", "Wall", "Releases/s", "p50",
                       "p99", "Batches", "MaxCoalesce", "Probe caps"});
  bool ok = true;
  double peak_releases_per_s = 0.0;
  for (size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                         size_t{16}}) {
    ServingConfig config;
    config.clients = clients;
    config.requests_per_client =
        std::max<size_t>(8, total_requests / clients);
    config.serve.release = release;
    config.serve.max_batch = 32;
    config.serve.max_delay_us = 100;
    config.serve.queue_capacity = 256;
    config.serve.seed = env.seed;
    auto result = RunServingWorkload(*setup->engine, setup->outliers, config);
    if (!result.ok()) {
      std::printf("serving workload: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const size_t requests = clients * config.requests_per_client;
    if (result->released + result->failed != requests ||
        result->rejected_budget != 0 || result->rejected_queue != 0) {
      std::printf("ERROR: %zu clients: %zu released + %zu failed != %zu "
                  "requests (rejected: %zu budget, %zu queue)\n",
                  clients, result->released, result->failed, requests,
                  result->rejected_budget, result->rejected_queue);
      ok = false;
    }
    const double p50_ms = result->latency_quantile(0.50) * 1e3;
    const double p99_ms = result->latency_quantile(0.99) * 1e3;
    peak_releases_per_s =
        std::max(peak_releases_per_s, result->releases_per_second());
    table.AddRow({strings::Format("%zu", clients),
                  strings::Format("%zu", requests),
                  report::FormatRuntime(result->wall_seconds),
                  strings::Format("%.1f", result->releases_per_second()),
                  strings::Format("%.2fms", p50_ms),
                  strings::Format("%.2fms", p99_ms),
                  strings::Format("%zu", result->batches),
                  strings::Format("%zu", result->max_coalesced),
                  strings::Format("%zu", result->hit_probe_cap)});
    emitter.Emit(strings::Format(
        "{\"bench\":\"serve_throughput\",\"clients\":%zu,\"requests\":%zu,"
        "\"released\":%zu,\"failed\":%zu,\"wall_s\":%.6f,"
        "\"releases_per_s\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"batches\":%zu,\"max_coalesced\":%zu,\"epsilon_spent\":%.4f,"
        "\"kernel_backend\":\"%s\"}",
        clients, requests, result->released, result->failed,
        result->wall_seconds, result->releases_per_second(), p50_ms, p99_ms,
        result->batches, result->max_coalesced, result->epsilon_spent,
        simd::ActiveBackendName()));
    EmitTenantLines(emitter, "sweep", clients, *result);
  }

  report::SectionHeader("PcorServer scaling (closed-loop clients)");
  std::printf("%s", table.Render().c_str());
  report::Note(
      "p50/p99 are submit-to-completion latencies; coalescing trades a "
      "bounded delay (max_delay_us) for batched execution on the shared "
      "verifier cache");

  // Bar 1: > 1 release/sec/core on the synthetic workload.
  const double per_core = peak_releases_per_s / static_cast<double>(cores);
  const bool relax = strings::EnvSizeOr("PCOR_RELAX_SERVE", 0) != 0;
  std::printf("peak throughput: %.1f releases/s over %zu cores "
              "(%.2f per core; bar: > 1)\n",
              peak_releases_per_s, cores, per_core);
  if (per_core <= 1.0) {
    if (relax) {
      report::Note("below the per-core bar, tolerated (PCOR_RELAX_SERVE=1)");
    } else {
      std::printf("ERROR: sustained %.2f releases/sec/core (need > 1)\n",
                  per_core);
      ok = false;
    }
  }

  // Bar 2: budget-capped clients are rejected with a typed Status, never a
  // silently clipped release. cap = 5 * eps admits exactly 5 per client.
  {
    ServingConfig config;
    config.clients = 2;
    config.requests_per_client = 8;
    config.serve.release = release;
    config.serve.seed = env.seed + 1;
    config.serve.per_client_epsilon_cap = 5 * release.total_epsilon;
    auto result = RunServingWorkload(*setup->engine, setup->outliers, config);
    if (!result.ok()) {
      std::printf("capped workload: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const size_t expect_admitted = 5 * config.clients;
    const size_t expect_rejected =
        config.clients * config.requests_per_client - expect_admitted;
    std::printf("budget cap: %zu admitted (expect %zu), %zu typed budget "
                "rejections (expect %zu), %zu other rejections\n",
                result->released + result->failed, expect_admitted,
                result->rejected_budget, expect_rejected,
                result->rejected_queue);
    if (result->released + result->failed != expect_admitted ||
        result->rejected_budget != expect_rejected ||
        result->rejected_queue != 0) {
      std::printf("ERROR: budget cap did not reject exactly the overflow "
                  "with typed statuses\n");
      ok = false;
    }
  }

  // Bar 3: weighted-fair QoS under a 10:1 weight skew. A "heavy" tenant
  // floods 200 requests up-front (the queue is sized to admit them all, so
  // the scheduler alone decides the pick order); a "light" tenant floods
  // its 8 concurrently. Under FIFO the light tenant would wait behind the
  // entire heavy backlog (~1/26 of the service rate); deficit round robin
  // must keep it within 2x of its weight-proportional share (1/11).
  {
    ServingConfig config;
    config.serve.release = release;
    config.serve.scheduling = SchedulingPolicy::kWeightedFair;
    config.serve.max_batch = 32;
    config.serve.max_delay_us = 100;
    config.serve.queue_capacity = 1024;
    config.serve.seed = env.seed + 2;

    TenantWorkload heavy;
    heavy.id = "heavy";
    heavy.tenant.weight = 10.0;
    heavy.requests_per_thread = 200;
    heavy.flood = true;
    TenantWorkload light;
    light.id = "light";
    light.tenant.weight = 1.0;
    light.requests_per_thread = 8;
    light.flood = true;
    config.tenants = {heavy, light};

    auto result = RunServingWorkload(*setup->engine, setup->outliers, config);
    if (!result.ok()) {
      std::printf("fairness workload: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    report::SectionHeader("weighted-fair QoS (weights 10:1, heavy flood)");
    TableRenderer fairness_table(
        {"Tenant", "Weight", "Released", "Wall", "Releases/s", "p99"});
    for (const TenantResult& tenant : result->tenants) {
      const double weight = tenant.id == "heavy" ? 10.0 : 1.0;
      fairness_table.AddRow(
          {tenant.id, strings::Format("%.0f", weight),
           strings::Format("%zu", tenant.released),
           report::FormatRuntime(tenant.wall_seconds),
           strings::Format("%.2f", tenant.releases_per_second()),
           strings::Format("%.2fms", tenant.latency_quantile(0.99) * 1e3)});
      emitter.Emit(strings::Format(
          "{\"bench\":\"serve_fairness\",\"tenant\":\"%s\",\"weight\":%.0f,"
          "\"released\":%zu,\"wall_s\":%.6f,\"releases_per_s\":%.2f,"
          "\"p99_ms\":%.3f,\"kernel_backend\":\"%s\"}",
          tenant.id.c_str(), weight, tenant.released, tenant.wall_seconds,
          tenant.releases_per_second(),
          tenant.latency_quantile(0.99) * 1e3, simd::ActiveBackendName()));
    }
    std::printf("%s", fairness_table.Render().c_str());

    const TenantResult& light_result = result->tenants[1];
    const double service_rate = result->releases_per_second();
    const double fair_share = service_rate * (1.0 / 11.0);
    const double floor = 0.5 * fair_share;
    const bool relax_fair =
        strings::EnvSizeOr("PCOR_RELAX_FAIRNESS", 0) != 0;
    std::printf("light tenant: %.2f releases/s; weight-proportional share "
                "%.2f, enforced floor %.2f (within 2x)\n",
                light_result.releases_per_second(), fair_share, floor);
    if (result->rejected_queue != 0 || result->rejected_budget != 0) {
      // rejected_queue lumps every non-budget refusal (global capacity,
      // depth bound, ...); neither tenant has a depth bound here, so any
      // count means the queue failed to admit the floods whole.
      std::printf("ERROR: fairness workload saw rejections (%zu non-budget, "
                  "%zu budget) — the queue must admit both floods whole\n",
                  result->rejected_queue, result->rejected_budget);
      ok = false;
    }
    if (light_result.releases_per_second() < floor) {
      if (relax_fair) {
        report::Note(
            "below the fairness floor, tolerated (PCOR_RELAX_FAIRNESS=1)");
      } else {
        std::printf("ERROR: light tenant starved: %.2f releases/s < %.2f "
                    "(half of its weight-proportional share)\n",
                    light_result.releases_per_second(), floor);
        ok = false;
      }
    }
  }

  if (!emitter.ok()) {
    std::printf("BENCH_JSON validation failures: %zu\n", emitter.failures());
  }
  return (ok && emitter.ok()) ? 0 : 1;
}
