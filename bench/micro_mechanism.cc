// Micro-benchmarks for the Exponential mechanism — the ablation DESIGN.md
// calls out: Gumbel-max sampling vs normalized inverse-CDF sampling, and
// the cost of exact probability computation (used by the OCDP experiments).
#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/dp/mechanism.h"

namespace {

std::vector<double> MakeScores(size_t n) {
  pcor::Rng rng(7);
  std::vector<double> scores(n);
  for (auto& s : scores) s = rng.NextDouble() * 1000.0;
  return scores;
}

void BM_ChooseGumbel(benchmark::State& state) {
  const auto scores = MakeScores(static_cast<size_t>(state.range(0)));
  pcor::ExponentialMechanism mech(0.1, 1.0, pcor::ExpMechSampling::kGumbel);
  pcor::Rng rng(11);
  for (auto _ : state) {
    auto pick = mech.Choose(scores, &rng);
    benchmark::DoNotOptimize(pick);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChooseGumbel)->Range(16, 1 << 14);

void BM_ChooseNormalized(benchmark::State& state) {
  const auto scores = MakeScores(static_cast<size_t>(state.range(0)));
  pcor::ExponentialMechanism mech(0.1, 1.0,
                                  pcor::ExpMechSampling::kNormalized);
  pcor::Rng rng(11);
  for (auto _ : state) {
    auto pick = mech.Choose(scores, &rng);
    benchmark::DoNotOptimize(pick);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChooseNormalized)->Range(16, 1 << 14);

void BM_Probabilities(benchmark::State& state) {
  const auto scores = MakeScores(static_cast<size_t>(state.range(0)));
  pcor::ExponentialMechanism mech(0.1, 1.0);
  for (auto _ : state) {
    auto p = mech.Probabilities(scores);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Probabilities)->Range(16, 1 << 14);

void BM_LaplaceNoise(benchmark::State& state) {
  pcor::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextLaplace(2.0));
  }
}
BENCHMARK(BM_LaplaceNoise);

}  // namespace

BENCHMARK_MAIN();
