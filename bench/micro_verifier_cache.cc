// Micro-benchmark for the f_M verification hot path: the same deterministic
// release trace driven through OutlierVerifier caches with different
// policies — no cache, the pre-LRU wholesale-clear ablation, and the
// sharded LRU — at several memory budgets. The acceptance bar for the LRU
// refactor is beating wholesale-clear on hit rate at equal budget.
//
// Besides the ASCII table, every configuration emits one machine-readable
// `BENCH_JSON {...}` line so CI can start tracking the hot path over time.
#include <cinttypes>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/simd.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

struct Ablation {
  const char* mode;    // "none" | "clear_all" | "sharded_lru"
  size_t budget_bytes; // 0 = unbounded / not applicable
  double hit_rate = 0.0;
  VerifierStats stats{};
  double seconds = 0.0;
};

double HitRate(const VerifierStats& stats) {
  const size_t probes = stats.cache_hits + stats.cache_misses;
  return probes == 0 ? 0.0
                     : static_cast<double>(stats.cache_hits) /
                           static_cast<double>(probes);
}

}  // namespace

int main() {
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.1);
  PrintEnv(env,
           "micro: verifier cache ablation (no cache vs. wholesale clear "
           "vs. sharded LRU; BFS, eps=0.2, n=20)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  const size_t kBatchSize =
      std::max<size_t>(100, env.reps * setup->outliers.size());
  std::vector<uint32_t> rows(kBatchSize);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = setup->outliers[i % setup->outliers.size()];
  }
  std::printf("trace: %zu releases over %zu distinct outliers, %zu rows\n",
              rows.size(), setup->outliers.size(),
              setup->workload.data.dataset.num_rows());

  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = 20;
  options.total_epsilon = 0.2;

  // Budgets chosen to straddle the trace's working set: at the tight end
  // both policies shed constantly and the *policy* decides what survives.
  const std::vector<size_t> budgets = {32 << 10, 128 << 10, 1 << 20};

  std::vector<Ablation> ablations;
  ablations.push_back({"none", 0});
  for (size_t budget : budgets) ablations.push_back({"clear_all", budget});
  for (size_t budget : budgets) ablations.push_back({"sharded_lru", budget});
  ablations.push_back({"sharded_lru", 0});  // unbounded reference

  // All policies must release identically on every entry of the trace —
  // entry 0 runs on a near-cold cache, so only the tail would expose an
  // eviction bug.
  std::vector<ContextVec> reference_releases;
  bool identical = true;
  for (Ablation& ablation : ablations) {
    VerifierOptions verifier_options;
    verifier_options.max_cache_bytes = ablation.budget_bytes;
    if (std::string(ablation.mode) == "none") {
      verifier_options.enable_cache = false;
    } else if (std::string(ablation.mode) == "clear_all") {
      // The pre-LRU verifier: one shard, dropped wholesale when full.
      verifier_options.wholesale_clear = true;
      verifier_options.num_shards = 1;
    } else {
      // Pin the shard count: the auto default is one shard per hardware
      // thread, which would slice the per-shard budget differently across
      // machines and make the CI-gated hit-rate comparison non-portable.
      verifier_options.num_shards = 4;
    }
    PcorEngine engine(setup->workload.data.dataset, *setup->detector,
                      verifier_options);
    // Single-threaded so every configuration sees the exact same
    // deterministic probe sequence — hit rates are directly comparable.
    const BatchReleaseReport report = engine.ReleaseBatch(
        std::span<const uint32_t>(rows), options, env.seed,
        /*num_threads=*/1);
    ablation.stats = engine.verifier().Stats();
    ablation.hit_rate = HitRate(ablation.stats);
    ablation.seconds = report.seconds;
    if (report.failures != 0) {
      std::printf("ERROR: %zu failures under mode %s\n", report.failures,
                  ablation.mode);
      return 1;
    }
    if (reference_releases.empty()) {
      reference_releases.reserve(report.entries.size());
      for (const BatchEntry& entry : report.entries) {
        reference_releases.push_back(entry.release.context);
      }
    } else {
      for (size_t i = 0; i < report.entries.size(); ++i) {
        if (report.entries[i].release.context != reference_releases[i]) {
          identical = false;  // eviction must be answer-invariant
          break;
        }
      }
    }
  }

  BenchJsonEmitter emitter;
  TableRenderer table({"Policy", "Budget KiB", "Wall", "Hit rate", "f_evals",
                       "Evictions", "Resident KiB"});
  for (const Ablation& ablation : ablations) {
    table.AddRow(
        {ablation.mode,
         ablation.budget_bytes == 0
             ? std::string("inf")
             : strings::Format("%zu", ablation.budget_bytes >> 10),
         report::FormatRuntime(ablation.seconds),
         strings::Format("%.4f", ablation.hit_rate),
         strings::Format("%zu", ablation.stats.evaluations),
         strings::Format("%zu", ablation.stats.cache_evictions),
         strings::Format("%zu", ablation.stats.resident_bytes >> 10)});
    emitter.Emit(strings::Format(
        "{\"bench\":\"micro_verifier_cache\",\"mode\":\"%s\","
        "\"budget_bytes\":%zu,\"hits\":%zu,\"misses\":%zu,"
        "\"hit_rate\":%.6f,\"evictions\":%zu,\"resident_bytes\":%zu,"
        "\"f_evals\":%zu,\"wall_s\":%.6f,\"kernel_backend\":\"%s\"}",
        ablation.mode, ablation.budget_bytes, ablation.stats.cache_hits,
        ablation.stats.cache_misses, ablation.hit_rate,
        ablation.stats.cache_evictions, ablation.stats.resident_bytes,
        ablation.stats.evaluations, ablation.seconds,
        simd::ActiveBackendName()));
  }
  report::SectionHeader("f_M cache ablation");
  std::printf("%s", table.Render().c_str());

  // Acceptance: at equal budget, sharded LRU must not lose to wholesale
  // clears, and must win outright somewhere.
  bool lru_wins = false;
  bool lru_never_loses = true;
  for (size_t budget : budgets) {
    double clear_rate = 0.0, lru_rate = 0.0;
    for (const Ablation& ablation : ablations) {
      if (ablation.budget_bytes != budget) continue;
      if (std::string(ablation.mode) == "clear_all") {
        clear_rate = ablation.hit_rate;
      } else if (std::string(ablation.mode) == "sharded_lru") {
        lru_rate = ablation.hit_rate;
      }
    }
    if (lru_rate > clear_rate + 1e-9) lru_wins = true;
    if (lru_rate < clear_rate - 1e-9) lru_never_loses = false;
    std::printf("budget %6zu KiB: clear_all=%.4f sharded_lru=%.4f  %s\n",
                budget >> 10, clear_rate, lru_rate,
                lru_rate >= clear_rate ? "LRU >=" : "LRU LOSES");
  }
  report::Note(
      "equal-budget comparison; 'none' and the unbounded row bracket the "
      "achievable range");
  std::printf("answer invariance across policies: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");
  std::printf("sharded LRU vs wholesale clear: %s\n",
              lru_wins && lru_never_loses ? "WINS" : "DOES NOT WIN");
  if (!emitter.ok()) {
    std::printf("BENCH_JSON validation failures: %zu\n", emitter.failures());
  }
  return (identical && lru_wins && lru_never_loses && emitter.ok()) ? 0 : 1;
}
