// Million-row hot-path benchmark: a 1M-row x 160-value salary dataset
// probed with ~1000 contexts through the compressed population index, with
// machine-readable BENCH_JSON lines and three enforced bars:
//
//   - compressed-index working set must be <= 50% of the dense index on
//     this sparse-context workload (deterministic; always enforced);
//   - enforced probes/sec floor on the PopulationCount hot path,
//     relaxable with PCOR_RELAX_MILLION=1 for noisy/smoke environments;
//   - sharded scatter-gather speedup: single-caller probes/s through
//     ShardedPopulationIndex at shard_count = ncores must be >= 1.5x the
//     1-shard baseline on multi-core hosts (>= 4 cores; warned elsewhere),
//     relaxable with PCOR_RELAX_MILLION=1.
//
// Before timing anything, every context's population count is
// cross-checked dense-vs-compressed — a mismatch is an immediate non-zero
// exit, so the throughput number can never come from a wrong kernel. The
// sharded tier gets the same treatment at every shard count, and that
// equivalence gate is never relaxed.
//
// Scaling knobs (CI smoke-runs at a fraction of the defaults):
//   PCOR_MILLION_ROWS      dataset rows          (default 1,000,000)
//   PCOR_MILLION_CONTEXTS  probe contexts        (default 1,000)
//   PCOR_RELAX_MILLION     1 = warn instead of fail on the probes/sec bar
//   PCOR_THREADS           probe threads         (default: all cores)
//   PCOR_SEED              dataset + context seed
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/random.h"
#include "src/common/simd.h"
#include "src/common/string_util.h"
#include "src/common/threading.h"
#include "src/context/detector_cache.h"
#include "src/context/population_index.h"
#include "src/context/sharded_population_index.h"
#include "src/data/salary_generator.h"
#include "src/outlier/detector.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ContextVec RandomContext(const Schema& schema, double density, Rng* rng) {
  ContextVec c(schema.total_values());
  for (size_t bit = 0; bit < c.num_bits(); ++bit) {
    if (rng->NextBernoulli(density)) c.Set(bit);
  }
  return c;
}

ContextVec RandomSingletonContext(const Schema& schema, Rng* rng) {
  ContextVec c(schema.total_values());
  size_t base = 0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const size_t domain = schema.attribute(a).domain_size();
    c.Set(base + rng->NextBounded(domain));
    base += domain;
  }
  return c;
}

}  // namespace

int main() {
  const size_t rows = strings::EnvSizeOr("PCOR_MILLION_ROWS", 1'000'000);
  const size_t num_contexts =
      strings::EnvSizeOr("PCOR_MILLION_CONTEXTS", 1'000);
  const bool relax = strings::EnvSizeOr("PCOR_RELAX_MILLION", 0) != 0;
  const size_t threads =
      strings::EnvSizeOr("PCOR_THREADS", DefaultThreadCount());
  const uint64_t seed = strings::EnvSizeOr("PCOR_SEED", 2021);
  // The floor assumes at least the CI runner class of hardware; it is the
  // regression tripwire, not a marketing number. PCOR_RELAX_MILLION turns
  // a miss into a warning for smoke runs and saturated machines.
  const double floor_probes_per_s =
      strings::EnvDoubleOr("PCOR_MILLION_FLOOR", 300.0);

  std::printf(
      "million-row hot path: %zu rows, %zu contexts, %zu threads, "
      "backend=%s\n",
      rows, num_contexts, threads, simd::ActiveBackendName());

  // High-cardinality domains (64/48/48) keep every value bitmap at
  // ~1/48..1/64 density — the sparse regime the compressed index exists
  // for (array containers, ~2 bytes per set bit).
  SalaryDatasetSpec spec;
  spec.num_rows = rows;
  spec.num_jobs = 64;
  spec.num_employers = 48;
  spec.num_years = 48;
  spec.num_planted = rows / 500;
  spec.seed = seed;
  double t0 = Now();
  auto generated = GenerateSalaryDataset(spec);
  if (!generated.ok()) {
    std::printf("dataset: %s\n", generated.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = generated->dataset;
  std::printf("dataset generated in %.2fs (t=%zu attribute values)\n",
              Now() - t0, dataset.schema().total_values());

  t0 = Now();
  const PopulationIndex compressed(dataset, IndexStorage::kCompressed);
  const double compressed_build_s = Now() - t0;
  t0 = Now();
  const PopulationIndex dense(dataset, IndexStorage::kDense);
  const double dense_build_s = Now() - t0;
  const PopulationIndexStats compressed_stats = compressed.MemoryStats();
  const PopulationIndexStats dense_stats = dense.MemoryStats();
  const double ratio = static_cast<double>(compressed_stats.bitmap_bytes) /
                       static_cast<double>(dense_stats.bitmap_bytes);
  std::printf(
      "index build: compressed %.2fs (%.1f MiB), dense %.2fs (%.1f MiB), "
      "ratio %.3f (chunks: %zu empty / %zu array / %zu dense)\n",
      compressed_build_s, compressed_stats.bitmap_bytes / 1048576.0,
      dense_build_s, dense_stats.bitmap_bytes / 1048576.0, ratio,
      compressed_stats.empty_chunks, compressed_stats.array_chunks,
      compressed_stats.dense_chunks);

  // The probe mix: half all-singleton exact contexts (the search frontier
  // shape, taking the compressed container-fold fast path) and half random
  // multi-value contexts (the union+intersect general path).
  Rng rng(seed + 1);
  std::vector<ContextVec> contexts;
  contexts.reserve(num_contexts);
  for (size_t i = 0; i < num_contexts; ++i) {
    if (i % 2 == 0) {
      contexts.push_back(RandomSingletonContext(dataset.schema(), &rng));
    } else {
      contexts.push_back(
          RandomContext(dataset.schema(), i % 4 == 1 ? 0.5 : 0.25, &rng));
    }
  }

  // Exact equivalence gate: every probe, both storages, identical counts
  // and overlaps. This is the bench's precondition, not a statistic.
  size_t mismatches = 0;
  for (const ContextVec& c : contexts) {
    if (dense.PopulationCount(c) != compressed.PopulationCount(c)) {
      ++mismatches;
      std::printf("EQUIVALENCE MISMATCH count: %s\n", c.ToBitString().c_str());
    }
  }
  for (size_t i = 0; i + 1 < contexts.size() && i < 100; i += 2) {
    if (dense.OverlapCount(contexts[i], contexts[i + 1]) !=
        compressed.OverlapCount(contexts[i], contexts[i + 1])) {
      ++mismatches;
      std::printf("EQUIVALENCE MISMATCH overlap at pair %zu\n", i);
    }
  }
  if (mismatches != 0) {
    std::printf("FAILED: %zu dense/compressed mismatches\n", mismatches);
    return 1;
  }
  std::printf("equivalence: %zu counts + overlaps identical across storages\n",
              contexts.size());

  // Timed hot path: PopulationCount over the context set, fanned across a
  // (NUMA-aware when PCOR_PIN_THREADS=1) thread pool, repeated until the
  // run is long enough to time.
  size_t passes = 1;
  double elapsed = 0.0;
  while (true) {
    t0 = Now();
    for (size_t pass = 0; pass < passes; ++pass) {
      ParallelFor(contexts.size(), threads, [&](size_t i) {
        volatile size_t sink = compressed.PopulationCount(contexts[i]);
        (void)sink;
      });
    }
    elapsed = Now() - t0;
    if (elapsed >= 0.5 || passes >= 64) break;
    passes *= 2;
  }
  const double probes = static_cast<double>(passes * contexts.size());
  const double probes_per_s = probes / elapsed;
  std::printf("hot path: %.0f probes in %.2fs = %.0f probes/s\n", probes,
              elapsed, probes_per_s);

  // Verifier-cache hit rate over a double-probed prefix of the context
  // set: second probes must be memo hits.
  const OutlierDetector* detector = nullptr;
  auto zscore = MakeDetector("zscore");
  if (!zscore.ok()) {
    std::printf("detector: %s\n", zscore.status().ToString().c_str());
    return 1;
  }
  detector = zscore->get();
  VerifierOptions verifier_options;
  verifier_options.numa_aware = true;
  verifier_options.adaptive_budget = true;
  OutlierVerifier verifier(compressed, *detector, verifier_options);
  const size_t cache_probes = std::min<size_t>(contexts.size(), 200);
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < cache_probes; ++i) {
      verifier.OutliersInContext(contexts[i]);
    }
  }
  const VerifierStats cache_stats = verifier.Stats();
  const double hit_rate =
      cache_stats.cache_hits + cache_stats.cache_misses == 0
          ? 0.0
          : static_cast<double>(cache_stats.cache_hits) /
                static_cast<double>(cache_stats.cache_hits +
                                    cache_stats.cache_misses);
  std::printf("verifier cache: %zu hits / %zu misses (hit rate %.3f)\n",
              cache_stats.cache_hits, cache_stats.cache_misses, hit_rate);

  // Sharded scatter-gather tier: the same PopulationCount workload issued
  // from ONE caller thread through ShardedPopulationIndex, so the measured
  // speedup is intra-probe parallelism (each probe scatters shard
  // sub-probes across the index's pool), not batch fan-out. The 1-shard
  // configuration is the baseline and carries the dispatch overhead of the
  // same code path.
  const size_t ncores = DefaultThreadCount();
  std::vector<size_t> shard_tiers = {1};
  if (ncores >= 4) shard_tiers.push_back(4);
  if (ncores > 1 && ncores != 4) shard_tiers.push_back(ncores);
  std::vector<size_t> expected_counts(contexts.size());
  for (size_t i = 0; i < contexts.size(); ++i) {
    expected_counts[i] = compressed.PopulationCount(contexts[i]);
  }
  struct ShardedResult {
    size_t shards = 0;
    double build_s = 0.0;
    double probes = 0.0;
    double wall_s = 0.0;
    double probes_per_s = 0.0;
  };
  std::vector<ShardedResult> sharded_results;
  for (size_t shard_count : shard_tiers) {
    ShardedIndexOptions sharded_options;
    sharded_options.shard_count = shard_count;
    sharded_options.storage = IndexStorage::kCompressed;
    sharded_options.probe_threads = threads;
    t0 = Now();
    const ShardedPopulationIndex sharded(dataset, sharded_options);
    ShardedResult result;
    result.shards = sharded.shard_count();
    result.build_s = Now() - t0;
    // Sharded equivalence gate — never relaxed: bit-identical counts at
    // every shard count or the bench fails before timing anything.
    for (size_t i = 0; i < contexts.size(); ++i) {
      if (sharded.PopulationCount(contexts[i]) != expected_counts[i]) {
        ++mismatches;
        std::printf("EQUIVALENCE MISMATCH sharded(%zu) count: %s\n",
                    shard_count, contexts[i].ToBitString().c_str());
      }
    }
    if (mismatches != 0) {
      std::printf("FAILED: %zu sharded/unsharded mismatches\n", mismatches);
      return 1;
    }
    size_t sharded_passes = 1;
    double sharded_elapsed = 0.0;
    while (true) {
      t0 = Now();
      for (size_t pass = 0; pass < sharded_passes; ++pass) {
        for (const ContextVec& c : contexts) {
          volatile size_t sink = sharded.PopulationCount(c);
          (void)sink;
        }
      }
      sharded_elapsed = Now() - t0;
      if (sharded_elapsed >= 0.5 || sharded_passes >= 64) break;
      sharded_passes *= 2;
    }
    result.probes = static_cast<double>(sharded_passes * contexts.size());
    result.wall_s = sharded_elapsed;
    result.probes_per_s = result.probes / sharded_elapsed;
    std::printf(
        "sharded hot path: %zu shards, build %.2fs, %.0f probes in %.2fs = "
        "%.0f probes/s (x%.2f vs 1 shard)\n",
        result.shards, result.build_s, result.probes, result.wall_s,
        result.probes_per_s,
        sharded_results.empty()
            ? 1.0
            : result.probes_per_s / sharded_results.front().probes_per_s);
    sharded_results.push_back(result);
  }

  BenchJsonEmitter emitter;
  emitter.Emit(strings::Format(
      "{\"bench\":\"million_rows\",\"rows\":%zu,\"contexts\":%zu,"
      "\"threads\":%zu,\"probes\":%.0f,\"wall_s\":%.4f,"
      "\"probes_per_s\":%.1f,\"floor_probes_per_s\":%.1f,"
      "\"enforced\":%s,\"kernel_backend\":\"%s\",\"storage\":\"%s\"}",
      rows, num_contexts, threads, probes, elapsed, probes_per_s,
      floor_probes_per_s, relax ? "false" : "true",
      simd::ActiveBackendName(),
      compressed.storage() == IndexStorage::kCompressed ? "compressed"
                                                        : "dense"));
  emitter.Emit(strings::Format(
      "{\"bench\":\"million_rows_memory\",\"rows\":%zu,"
      "\"dense_bytes\":%zu,\"compressed_bytes\":%zu,"
      "\"compressed_ratio\":%.4f,\"empty_chunks\":%zu,"
      "\"array_chunks\":%zu,\"dense_chunks\":%zu,"
      "\"compressed_build_s\":%.3f,\"dense_build_s\":%.3f}",
      rows, dense_stats.bitmap_bytes, compressed_stats.bitmap_bytes, ratio,
      compressed_stats.empty_chunks, compressed_stats.array_chunks,
      compressed_stats.dense_chunks, compressed_build_s, dense_build_s));
  emitter.Emit(strings::Format(
      "{\"bench\":\"million_rows_cache\",\"probes\":%zu,\"hits\":%zu,"
      "\"misses\":%zu,\"hit_rate\":%.4f}",
      2 * cache_probes, cache_stats.cache_hits, cache_stats.cache_misses,
      hit_rate));
  // The >=1.5x bar applies only where there are cores to scatter over;
  // single- and dual-core hosts report the numbers without judging them.
  const bool speedup_bar_applies = ncores >= 4 && sharded_results.size() > 1;
  const double shard1_probes_per_s = sharded_results.front().probes_per_s;
  const double sharded_speedup =
      sharded_results.back().probes_per_s / shard1_probes_per_s;
  for (const auto& r : sharded_results) {
    emitter.Emit(strings::Format(
        "{\"bench\":\"million_rows_sharded\",\"rows\":%zu,\"contexts\":%zu,"
        "\"shards\":%zu,\"probe_threads\":%zu,\"probes\":%.0f,"
        "\"wall_s\":%.4f,\"probes_per_s\":%.1f,\"build_s\":%.3f,"
        "\"speedup_vs_1shard\":%.3f,\"bar_enforced\":%s}",
        rows, num_contexts, r.shards, threads, r.probes, r.wall_s,
        r.probes_per_s, r.build_s, r.probes_per_s / shard1_probes_per_s,
        speedup_bar_applies && !relax ? "true" : "false"));
  }

  bool failed = !emitter.ok();
  // Memory bar: deterministic, never relaxed. The whole point of the
  // compressed index is cutting the sparse working set at least in half.
  if (ratio > 0.5) {
    std::printf("FAILED: compressed/dense memory ratio %.3f > 0.50\n", ratio);
    failed = true;
  }
  if (probes_per_s < floor_probes_per_s) {
    if (relax) {
      std::printf(
          "WARNING: probes/s %.0f below floor %.0f "
          "(relaxed by PCOR_RELAX_MILLION)\n",
          probes_per_s, floor_probes_per_s);
    } else {
      std::printf("FAILED: probes/s %.0f below floor %.0f\n", probes_per_s,
                  floor_probes_per_s);
      failed = true;
    }
  }
  if (!speedup_bar_applies) {
    std::printf(
        "sharded speedup bar: skipped (%zu cores; needs >= 4 to judge)\n",
        ncores);
  } else if (sharded_speedup < 1.5) {
    if (relax) {
      std::printf(
          "WARNING: sharded speedup x%.2f below x1.50 "
          "(relaxed by PCOR_RELAX_MILLION)\n",
          sharded_speedup);
    } else {
      std::printf("FAILED: sharded speedup x%.2f below x1.50 at %zu shards\n",
                  sharded_speedup, sharded_results.back().shards);
      failed = true;
    }
  } else {
    std::printf("sharded speedup: x%.2f at %zu shards (bar x1.50)\n",
                sharded_speedup, sharded_results.back().shards);
  }
  std::printf("%s\n", failed ? "RESULT: FAIL" : "RESULT: OK");
  return failed ? 1 : 0;
}
