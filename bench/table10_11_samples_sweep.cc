// Reproduces Table 10 (runtime) and Table 11 (utility) plus Figure 5: the
// effect of the sample count n over {25, 50, 100, 200} with BFS sampling,
// LOF and fixed eps = 0.2 (Section 6.6). The interesting non-monotonicity:
// larger n visits more contexts (runtime grows ~linearly, utility grows)
// until the per-draw eps1 = eps/(2n+2) becomes so small that the internal
// Exponential-mechanism draws turn uniform — at n = 200 utility drops.
#include "bench/bench_util.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env, "Table 10/11 + Figure 5: sample-count sweep "
                "(BFS, LOF, eps=0.2)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  TableRenderer perf({"#Samples", "Tmin", "Tmax", "Tavg", "Sampling"});
  TableRenderer util({"#Samples", "Utility", "CI(90%)", "Sampling"});
  struct Series {
    std::string name;
    std::vector<double> utilities;
    std::vector<double> runtimes;
  };
  std::vector<Series> all_series;
  std::vector<double> avg_runtimes;

  for (size_t n : {25ul, 50ul, 100ul, 200ul}) {
    auto result = RunConfig(*setup, env, SamplerKind::kBfs,
                            UtilityKind::kPopulationSize, 0.2, n);
    if (!result.ok()) {
      std::printf("n=%zu failed: %s\n", n,
                  result.status().ToString().c_str());
      continue;
    }
    auto runtime = result->runtime();
    auto ci = result->utility_ci(0.90);
    perf.AddRow({strings::Format("%zu", n),
                 report::FormatRuntime(runtime.min_seconds),
                 report::FormatRuntime(runtime.max_seconds),
                 report::FormatRuntime(runtime.avg_seconds), "BFS"});
    util.AddRow({strings::Format("%zu", n),
                 strings::Format("%.2f", ci.mean),
                 report::FormatUtilityCi(ci), "BFS"});
    all_series.push_back({strings::Format("n=%zu", n),
                          result->utility_ratios, result->runtimes});
    avg_runtimes.push_back(runtime.avg_seconds);
  }

  report::SectionHeader("Table 10 (measured): sample count, runtime");
  std::printf("%s", perf.Render().c_str());
  report::Note("paper: 7m @25, 16m @50, 37m @100, 99m @200 (Tavg)");
  if (avg_runtimes.size() == 4) {
    std::printf("shape check: runtime grows with n: %s\n",
                (avg_runtimes[0] <= avg_runtimes[3]) ? "yes" : "NO");
  }

  report::SectionHeader("Table 11 (measured): sample count, utility");
  std::printf("%s", util.Render().c_str());
  report::Note(
      "paper: 0.85 (0.81,0.88) @25, 0.88 (0.85,0.91) @50, "
      "0.90 (0.88,0.93) @100, 0.84 (0.81,0.87) @200");
  report::Note(
      "expected shape: utility peaks near n=100 then drops at n=200 "
      "because eps1 = eps/(2n+2) shrinks (Theorem 5.7)");

  report::SectionHeader("Figure 5 data: distributions per n");
  for (const auto& series : all_series) {
    report::PrintHistogram("Fig 5 utility: " + series.name,
                           series.utilities, 0.0, 1.0, 10);
  }
  for (const auto& series : all_series) {
    double max_rt = 0;
    for (double r : series.runtimes) max_rt = std::max(max_rt, r);
    report::PrintHistogram("Fig 5 runtime (s): " + series.name,
                           series.runtimes, 0.0, std::max(max_rt, 1e-3), 10);
  }
  return 0;
}
