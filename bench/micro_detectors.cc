// Micro-benchmark for the SIMD detector kernels: every registered detector
// runs the same populations under the forced-scalar path and the
// runtime-dispatched path (SSE2/AVX2 when the CPU has it), verifying that
// both flag the *identical* outlier index set (the kernels' lane-canonical
// parity contract) and reporting the speedup per population size.
//
// One validated `BENCH_JSON {...}` line per (detector, n) feeds the CI
// BENCH_results.json artifact. Exit is non-zero on parity mismatch, on a
// BENCH_JSON line that fails to parse, or — on AVX2 hosts, unless
// PCOR_RELAX_SPEEDUP=1 — when zscore/grubbs miss the 1.5x speedup bar at
// n >= 4096 (the tentpole's acceptance criterion; informational elsewhere).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/random.h"
#include "src/common/simd.h"
#include "src/common/string_util.h"
#include "src/common/timer.h"
#include "src/exp/report.h"
#include "src/outlier/detector.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

std::vector<double> MakeValues(size_t n) {
  Rng rng(3);
  std::vector<double> values(n);
  for (auto& v : values) v = 100.0 + 15.0 * rng.NextGaussian();
  // A handful of planted outliers keeps Grubbs' remove-and-retest loop
  // honest (several full passes) without dominating the population.
  for (size_t i = 0; i < std::max<size_t>(1, n / 1024); ++i) {
    values[(i * 131 + n / 2) % n] = 400.0 + 10.0 * static_cast<double>(i);
  }
  return values;
}

/// Median-of-reps wall time for one full Detect() over `values`.
double TimeDetect(const OutlierDetector& detector,
                  const std::vector<double>& values, size_t reps,
                  std::vector<size_t>* flagged) {
  std::vector<double> times;
  times.reserve(reps);
  for (size_t r = 0; r < reps; ++r) {
    WallTimer timer;
    detector.Detect(values, flagged);
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  const simd::Backend best = simd::BestSupportedBackend();
  const bool enforce_speedup =
      best == simd::Backend::kAvx2 &&
      strings::EnvSizeOr("PCOR_RELAX_SPEEDUP", 0) == 0;
  std::printf(
      "micro: detector kernels, scalar vs dispatched (best backend: %s; "
      "speedup bar %s)\n",
      simd::BackendName(best), enforce_speedup ? "ENFORCED" : "informational");

  const size_t max_n =
      strings::EnvSizeOr("PCOR_BENCH_MAX_N", size_t{1} << 16);
  std::vector<size_t> sizes;
  for (size_t n = 1024; n <= max_n; n *= 4) sizes.push_back(n);

  BenchJsonEmitter emitter;
  TableRenderer table({"Detector", "n", "Scalar", "Dispatched", "Speedup",
                       "Outliers", "Parity"});
  bool parity_ok = true;
  bool speedup_ok = true;

  for (const std::string& name : RegisteredDetectorNames()) {
    auto detector = MakeDetector(name);
    if (!detector.ok()) {
      std::printf("detector %s: %s\n", name.c_str(),
                  detector.status().ToString().c_str());
      return 1;
    }
    for (size_t n : sizes) {
      const std::vector<double> values = MakeValues(n);
      // Repetitions scale inversely with n so every cell costs roughly the
      // same wall time; LOF pays an extra sort per call, hence the floor.
      const size_t reps = std::max<size_t>(
          5, strings::EnvSizeOr("PCOR_REPS", 0) != 0
                 ? strings::EnvSizeOr("PCOR_REPS", 0)
                 : (size_t{1} << 21) / n);

      simd::SetBackendForTest(simd::Backend::kScalar);
      std::vector<size_t> scalar_flagged;
      const double scalar_s =
          TimeDetect(**detector, values, reps, &scalar_flagged);

      simd::SetBackendForTest(best);
      std::vector<size_t> simd_flagged;
      const double simd_s =
          TimeDetect(**detector, values, reps, &simd_flagged);

      const bool identical = scalar_flagged == simd_flagged;
      parity_ok = parity_ok && identical;
      const double speedup = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
      const bool bar_applies =
          enforce_speedup && n >= 4096 &&
          (name == "zscore" || name == "grubbs");
      if (bar_applies && speedup < 1.5) speedup_ok = false;

      table.AddRow({name, strings::Format("%zu", n),
                    strings::Format("%.1f us", scalar_s * 1e6),
                    strings::Format("%.1f us", simd_s * 1e6),
                    strings::Format("%.2fx%s", speedup,
                                    bar_applies && speedup < 1.5 ? " MISS"
                                                                 : ""),
                    strings::Format("%zu", simd_flagged.size()),
                    identical ? "OK" : "MISMATCH"});
      emitter.Emit(strings::Format(
          "{\"bench\":\"micro_detectors\",\"detector\":\"%s\",\"n\":%zu,"
          "\"backend\":\"%s\",\"scalar_ns_per_elem\":%.3f,"
          "\"simd_ns_per_elem\":%.3f,\"speedup\":%.3f,\"outliers\":%zu,"
          "\"parity\":%s}",
          name.c_str(), n, simd::BackendName(best),
          scalar_s * 1e9 / static_cast<double>(n),
          simd_s * 1e9 / static_cast<double>(n), speedup,
          simd_flagged.size(), identical ? "true" : "false"));
    }
  }

  report::SectionHeader("detector kernels: scalar vs dispatched");
  std::printf("%s", table.Render().c_str());
  report::Note(
      "median of repeated full Detect() calls; parity requires the exact "
      "same flagged index set from both paths");
  std::printf("scalar/SIMD parity: %s\n", parity_ok ? "IDENTICAL" : "MISMATCH");
  if (enforce_speedup) {
    std::printf("zscore/grubbs >= 1.5x at n >= 4096: %s\n",
                speedup_ok ? "PASS" : "FAIL");
  }
  if (!emitter.ok()) {
    std::printf("BENCH_JSON validation failures: %zu\n", emitter.failures());
  }
  return (parity_ok && speedup_ok && emitter.ok()) ? 0 : 1;
}
