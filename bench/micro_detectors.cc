// Micro-benchmarks for the outlier detectors, including the DESIGN.md
// ablation: windowed 1-D exact LOF vs the naive O(n^2) formulation.
#include <benchmark/benchmark.h>

#include <cmath>

#include "src/common/random.h"
#include "src/outlier/grubbs.h"
#include "src/outlier/histogram_detector.h"
#include "src/outlier/iqr.h"
#include "src/outlier/lof.h"
#include "src/outlier/zscore.h"

namespace {

std::vector<double> MakeValues(size_t n) {
  pcor::Rng rng(3);
  std::vector<double> values(n);
  for (auto& v : values) v = 100.0 + 15.0 * rng.NextGaussian();
  values[n / 2] = 400.0;  // one planted outlier
  return values;
}

void BM_Grubbs(benchmark::State& state) {
  const auto values = MakeValues(static_cast<size_t>(state.range(0)));
  pcor::GrubbsDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Grubbs)->Range(256, 1 << 15);

void BM_Histogram(benchmark::State& state) {
  const auto values = MakeValues(static_cast<size_t>(state.range(0)));
  pcor::HistogramDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Histogram)->Range(256, 1 << 15);

void BM_LofWindowed(benchmark::State& state) {
  const auto values = MakeValues(static_cast<size_t>(state.range(0)));
  pcor::LofDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_LofWindowed)->Range(256, 1 << 15);

// Naive O(n^2) LOF scoring, for the ablation comparison only.
void BM_LofNaive(benchmark::State& state) {
  const auto values = MakeValues(static_cast<size_t>(state.range(0)));
  const size_t n = values.size();
  const size_t k = 10;
  for (auto _ : state) {
    std::vector<std::vector<size_t>> knn(n);
    std::vector<double> kdist(n);
    for (size_t i = 0; i < n; ++i) {
      std::vector<size_t> others;
      others.reserve(n - 1);
      for (size_t j = 0; j < n; ++j) {
        if (j != i) others.push_back(j);
      }
      std::partial_sort(others.begin(), others.begin() + k, others.end(),
                        [&](size_t a, size_t b) {
                          return std::abs(values[a] - values[i]) <
                                 std::abs(values[b] - values[i]);
                        });
      others.resize(k);
      kdist[i] = std::abs(values[others.back()] - values[i]);
      knn[i] = std::move(others);
    }
    std::vector<double> lrd(n);
    for (size_t i = 0; i < n; ++i) {
      double reach = 0;
      for (size_t j : knn[i]) {
        reach += std::max(kdist[j], std::abs(values[i] - values[j]));
      }
      lrd[i] = reach > 0 ? k / reach : 1e300;
    }
    double acc = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j : knn[i]) acc += lrd[j] / lrd[i];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_LofNaive)->Range(256, 1 << 12);

void BM_Zscore(benchmark::State& state) {
  const auto values = MakeValues(static_cast<size_t>(state.range(0)));
  pcor::ZscoreDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Zscore)->Range(256, 1 << 15);

void BM_Iqr(benchmark::State& state) {
  const auto values = MakeValues(static_cast<size_t>(state.range(0)));
  pcor::IqrDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(values));
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_Iqr)->Range(256, 1 << 15);

}  // namespace

BENCHMARK_MAIN();
