// Reproduces Table 4 (runtime) and Table 5 (utility) plus Figure 2: DFS vs
// BFS under the *overlap* utility (Section 6.4) — the context is scored by
// its population's intersection with the starting context C_V. Paper setup:
// LOF, eps = 0.2, n = 50.
#include "bench/bench_util.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env,
           "Table 4/5 + Figure 2: overlap-with-starting-context utility "
           "(LOF, eps=0.2, n=50)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  TableRenderer perf({"Algorithm", "Tmin", "Tmax", "Tavg", "eps"});
  TableRenderer util({"Algorithm", "Utility", "CI(90%)", "eps"});
  struct Series {
    std::string name;
    std::vector<double> utilities;
    std::vector<double> runtimes;
  };
  std::vector<Series> all_series;

  for (SamplerKind kind : {SamplerKind::kDfs, SamplerKind::kBfs}) {
    auto result = RunConfig(*setup, env, kind,
                            UtilityKind::kOverlapWithStart, 0.2, 50);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", SamplerKindName(kind).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    auto runtime = result->runtime();
    auto ci = result->utility_ci(0.90);
    perf.AddRow({SamplerKindName(kind),
                 report::FormatRuntime(runtime.min_seconds),
                 report::FormatRuntime(runtime.max_seconds),
                 report::FormatRuntime(runtime.avg_seconds), "0.2"});
    util.AddRow({SamplerKindName(kind), strings::Format("%.2f", ci.mean),
                 report::FormatUtilityCi(ci), "0.2"});
    all_series.push_back(
        {SamplerKindName(kind), result->utility_ratios, result->runtimes});
  }

  report::SectionHeader("Table 4 (measured): overlap utility, runtime");
  std::printf("%s", perf.Render().c_str());
  report::Note("paper: dfs 3m/47m/19m, bfs 5m/48m/20m");
  report::Note(
      "expected shape: overlap runs faster than the population-size "
      "utility of Table 2 (cheaper scoring, earlier convergence)");

  report::SectionHeader("Table 5 (measured): overlap utility, utility");
  std::printf("%s", util.Render().c_str());
  report::Note("paper: dfs 0.88 (0.86,0.91), bfs 0.97 (0.95,0.98)");
  report::Note("expected shape: bfs >= dfs");

  report::SectionHeader("Figure 2 data: distributions");
  for (const auto& series : all_series) {
    report::PrintHistogram("Fig 2 utility: " + series.name,
                           series.utilities, 0.0, 1.0, 10);
  }
  for (const auto& series : all_series) {
    double max_rt = 0;
    for (double r : series.runtimes) max_rt = std::max(max_rt, r);
    report::PrintHistogram("Fig 2 runtime (s): " + series.name,
                           series.runtimes, 0.0, std::max(max_rt, 1e-3), 10);
  }
  return 0;
}
