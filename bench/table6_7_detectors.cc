// Reproduces Table 6 (runtime) and Table 7 (utility) plus Figure 3: PCOR
// with the Grubbs and Histogram detectors under BFS sampling (Section 6.5).
// Paper setup: reduced salary dataset (11,000 rows, 14 attribute values),
// n = 50, eps = 0.2. LOF numbers (from Tables 2/3) are included for
// reference, demonstrating detector-agnosticism.
#include "bench/bench_util.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env,
           "Table 6/7 + Figure 3: detector sweep under BFS "
           "(eps=0.2, n=50, population-size utility)");

  TableRenderer perf({"Detector", "Tmin", "Tmax", "Tavg", "Sampling"});
  TableRenderer util({"Detector", "Utility", "CI(90%)", "Sampling"});
  struct Series {
    std::string name;
    std::vector<double> utilities;
    std::vector<double> runtimes;
  };
  std::vector<Series> all_series;

  for (const char* detector : {"grubbs", "histogram", "lof"}) {
    auto setup = MakeSalarySetup(env, detector);
    if (!setup) {
      std::printf("skipping %s (no verified outliers)\n", detector);
      continue;
    }
    auto result = RunConfig(*setup, env, SamplerKind::kBfs,
                            UtilityKind::kPopulationSize, 0.2, 50);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", detector,
                  result.status().ToString().c_str());
      continue;
    }
    auto runtime = result->runtime();
    auto ci = result->utility_ci(0.90);
    perf.AddRow({detector, report::FormatRuntime(runtime.min_seconds),
                 report::FormatRuntime(runtime.max_seconds),
                 report::FormatRuntime(runtime.avg_seconds), "BFS"});
    util.AddRow({detector, strings::Format("%.2f", ci.mean),
                 report::FormatUtilityCi(ci), "BFS"});
    all_series.push_back(
        {detector, result->utility_ratios, result->runtimes});
  }

  report::SectionHeader("Table 6 (measured): detector sweep, runtime");
  std::printf("%s", perf.Render().c_str());
  report::Note("paper: grubbs 0.5m/1m/0.8m, histogram 2m/4m/3.4m");
  report::Note(
      "expected shape: grubbs fastest (single statistic), histogram "
      "next, lof slowest");

  report::SectionHeader("Table 7 (measured): detector sweep, utility");
  std::printf("%s", util.Render().c_str());
  report::Note("paper: grubbs 0.86 (0.84,0.89), histogram 0.89 (0.87,0.91)");
  report::Note(
      "expected shape: all detectors achieve high utility under BFS — "
      "PCOR is detector-agnostic, and locality holds for all of them");

  report::SectionHeader("Figure 3 data: distributions");
  for (const auto& series : all_series) {
    report::PrintHistogram("Fig 3 utility: " + series.name,
                           series.utilities, 0.0, 1.0, 10);
  }
  for (const auto& series : all_series) {
    double max_rt = 0;
    for (double r : series.runtimes) max_rt = std::max(max_rt, r);
    report::PrintHistogram("Fig 3 runtime (s): " + series.name,
                           series.runtimes, 0.0, std::max(max_rt, 1e-3), 10);
  }
  return 0;
}
