// Open-loop trace replay bench: latency-honest load generation.
//
// Every other serving bench here is closed-loop — client threads block on
// their futures before submitting again, so the measured p99 only covers
// requests the server was ready for (coordinated omission). This bench
// replays recorded-style traces open-loop: a TraceDriver fires each event
// at its scheduled time no matter how far behind the server is, and the
// report puts SCHEDULED-to-completion percentiles (what a clocked client
// population actually experiences) next to submit-to-completion ones
// (what closed-loop benches report). The difference at p99 is the
// omission gap.
//
// Sections (each emits one `trace_replay` BENCH_JSON line; the flood
// section adds one `trace_replay_tenant` line per tenant):
//   * flood    — steady tenants plus a burst aggressor over a small
//                admission queue (kBlock backpressure), the canonical
//                omission demonstration;
//   * diurnal  — sinusoidal Poisson arrivals, the day/night curve;
//   * storm    — budget-exhaustion: admission order equals trace order,
//                so the typed kPrivacyBudgetExceeded rejection count is
//                exact arithmetic;
//   * streaming— mixed Append/Seal/Release interleave on a streaming
//                server, replayed with 1 and 16 collector threads.
//
// Enforced bars:
//   * never relaxed: scheduled p99 >= submit p99 on every section (the
//     scheduled latency dominates pointwise by construction — a violation
//     is a histogram/driver bug, not a slow host);
//   * never relaxed: storm rejection arithmetic is exact, and every
//     release event reaches exactly one terminal outcome;
//   * never relaxed: the streaming trace's release digest and epoch are
//     bit-identical at 1 and 16 collector threads;
//   * PCOR_RELAX_TRACE=1 relaxes to a note: the flood trace must show a
//     strictly positive omission gap (a fast-enough host could in
//     principle keep up; CI enforces it in the bench-json job only).
//
// Knobs: PCOR_TRACE_EVENTS scales the flood burst (default 192);
// PCOR_REPS/PCOR_SCALE/PCOR_SEED as the other benches.
#include <algorithm>
#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "src/common/simd.h"
#include "src/exp/trace.h"
#include "src/exp/trace_driver.h"
#include "src/outlier/zscore.h"
#include "src/search/streaming.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

double Ms(int64_t us) { return static_cast<double>(us) / 1e3; }

void EmitSection(BenchJsonEmitter& emitter, const char* section,
                 const TraceReplayResult& r, uint64_t queue_high_water) {
  const int64_t sched_p99 = r.scheduled.PercentileUs(0.99);
  const int64_t submit_p99 = r.submitted.PercentileUs(0.99);
  emitter.Emit(strings::Format(
      "{\"bench\":\"trace_replay\",\"section\":\"%s\",\"releases\":%zu,"
      "\"released\":%zu,\"failed\":%zu,\"rejected_budget\":%zu,"
      "\"rejected_other\":%zu,\"appends\":%zu,\"seals\":%zu,"
      "\"late\":%zu,\"max_lag_ms\":%.3f,\"queue_high_water\":%llu,"
      "\"sched_p50_ms\":%.3f,\"sched_p99_ms\":%.3f,\"sched_p999_ms\":%.3f,"
      "\"submit_p50_ms\":%.3f,\"submit_p99_ms\":%.3f,"
      "\"omission_gap_ms\":%.3f,\"wall_s\":%.6f,"
      "\"kernel_backend\":\"%s\"}",
      section, r.releases, r.released, r.failed, r.rejected_budget,
      r.rejected_other, r.appends, r.seals, r.driver.late,
      Ms(r.driver.max_lag_us),
      static_cast<unsigned long long>(queue_high_water),
      Ms(r.scheduled.PercentileUs(0.50)), Ms(sched_p99),
      Ms(r.scheduled.PercentileUs(0.999)),
      Ms(r.submitted.PercentileUs(0.50)), Ms(submit_p99),
      Ms(sched_p99 - submit_p99), r.wall_seconds,
      simd::ActiveBackendName()));
}

void PrintSection(const char* section, const TraceReplayResult& r) {
  std::printf(
      "%-9s events=%zu released=%zu failed=%zu rej_budget=%zu rej_other=%zu "
      "late=%zu\n          sched p50/p99/p999 = %.2f/%.2f/%.2f ms   "
      "submit p50/p99 = %.2f/%.2f ms   gap(p99) = %.2f ms\n",
      section, r.releases, r.released, r.failed, r.rejected_budget,
      r.rejected_other, r.driver.late, Ms(r.scheduled.PercentileUs(0.50)),
      Ms(r.scheduled.PercentileUs(0.99)),
      Ms(r.scheduled.PercentileUs(0.999)),
      Ms(r.submitted.PercentileUs(0.50)),
      Ms(r.submitted.PercentileUs(0.99)),
      Ms(r.scheduled.PercentileUs(0.99) - r.submitted.PercentileUs(0.99)));
}

// Never-relaxed invariants every section must hold: pointwise-dominant
// scheduled percentiles and one terminal outcome per release event.
bool CheckInvariants(const char* section, const TraceReplayResult& r) {
  bool ok = true;
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    if (r.scheduled.PercentileUs(q) < r.submitted.PercentileUs(q)) {
      std::printf(
          "ERROR: %s: scheduled p%g (%lld us) < submit p%g (%lld us) — "
          "scheduled latency must dominate pointwise\n",
          section, q * 100,
          static_cast<long long>(r.scheduled.PercentileUs(q)), q * 100,
          static_cast<long long>(r.submitted.PercentileUs(q)));
      ok = false;
    }
  }
  const size_t terminal = r.released + r.failed + r.exceptions +
                          r.rejected_budget + r.rejected_other;
  if (terminal != r.releases || r.scheduled.count() != r.releases ||
      r.submitted.count() != r.releases) {
    std::printf(
        "ERROR: %s: %zu release events but %zu terminal outcomes "
        "(%zu/%zu latency samples)\n",
        section, r.releases, terminal, r.scheduled.count(),
        r.submitted.count());
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.2);
  const size_t flood_events =
      strings::EnvSizeOr("PCOR_TRACE_EVENTS", 192);
  const bool relax_trace = strings::EnvSizeOr("PCOR_RELAX_TRACE", 0) != 0;
  PrintEnv(env,
           "open-loop trace replay: scheduled- vs submit-to-completion "
           "latency (BFS, lof detector; PCOR_TRACE_EVENTS scales the "
           "flood)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  PcorOptions release;
  release.sampler = SamplerKind::kBfs;
  release.num_samples = 20;
  release.total_epsilon = 0.2;

  BenchJsonEmitter emitter;
  bool ok = true;

  // ---- flood: the coordinated-omission demonstration -------------------
  {
    FloodTraceOptions trace_options;
    trace_options.duration_us = 400'000;
    trace_options.baseline_interval_us = 5'000;
    trace_options.flood_at_us = 100'000;
    trace_options.flood_events = std::max<size_t>(16, flood_events);
    trace_options.seed = env.seed;
    const std::vector<TraceEvent> trace = MakeFloodTrace(trace_options);

    ServeOptions serve;
    serve.release = release;
    serve.max_batch = 16;
    serve.max_delay_us = 100;
    // Small queue + blocking backpressure: the flood fills the queue, the
    // dispatch loop blocks in SubmitAsync, and every event scheduled
    // behind the burst goes out late — which is exactly what the
    // scheduled percentiles are there to expose.
    serve.queue_capacity = 64;
    serve.backpressure = BackpressurePolicy::kBlock;
    serve.seed = env.seed;
    PcorServer server(*setup->engine, serve);

    TraceReplayOptions replay;
    replay.collector_threads = 4;
    auto result = ReplayTrace(server, trace, setup->outliers, replay);
    if (!result.ok()) {
      std::printf("flood replay: %s\n", result.status().ToString().c_str());
      return 1;
    }
    server.Shutdown();
    const ServerStats stats = server.stats();
    PrintSection("flood", *result);
    EmitSection(emitter, "flood", *result, stats.queue_high_water);
    for (const TenantReplayStats& tenant : result->tenants) {
      emitter.Emit(strings::Format(
          "{\"bench\":\"trace_replay_tenant\",\"section\":\"flood\","
          "\"tenant\":\"%s\",\"releases\":%zu,\"released\":%zu,"
          "\"failed\":%zu,\"rejected_budget\":%zu,\"rejected_other\":%zu,"
          "\"sched_p50_ms\":%.3f,\"sched_p99_ms\":%.3f,"
          "\"submit_p99_ms\":%.3f}",
          tenant.id.c_str(), tenant.releases, tenant.released,
          tenant.failed, tenant.rejected_budget, tenant.rejected_other,
          Ms(tenant.scheduled.PercentileUs(0.50)),
          Ms(tenant.scheduled.PercentileUs(0.99)),
          Ms(tenant.submitted.PercentileUs(0.99))));
    }
    ok = CheckInvariants("flood", *result) && ok;
    const int64_t gap_us = result->scheduled.PercentileUs(0.99) -
                           result->submitted.PercentileUs(0.99);
    if (gap_us <= 0) {
      if (relax_trace) {
        std::printf(
            "note: flood omission gap %.3f ms not positive "
            "(PCOR_RELAX_TRACE=1)\n",
            Ms(gap_us));
      } else {
        std::printf(
            "ERROR: flood trace shows no omission gap (%.3f ms) — the "
            "open-loop driver should outrun this queue; set "
            "PCOR_RELAX_TRACE=1 only for hosts fast enough to keep up\n",
            Ms(gap_us));
        ok = false;
      }
    }
  }

  // ---- diurnal: rate-swinging Poisson arrivals -------------------------
  {
    DiurnalTraceOptions trace_options;
    trace_options.duration_us = 500'000;
    trace_options.period_us = 250'000;
    trace_options.trough_releases_per_sec = 40;
    trace_options.peak_releases_per_sec = 400;
    trace_options.seed = env.seed;
    const std::vector<TraceEvent> trace = MakeDiurnalTrace(trace_options);

    ServeOptions serve;
    serve.release = release;
    serve.max_batch = 32;
    serve.max_delay_us = 100;
    serve.queue_capacity = 256;
    serve.seed = env.seed;
    PcorServer server(*setup->engine, serve);

    TraceReplayOptions replay;
    replay.collector_threads = 4;
    auto result = ReplayTrace(server, trace, setup->outliers, replay);
    if (!result.ok()) {
      std::printf("diurnal replay: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    server.Shutdown();
    PrintSection("diurnal", *result);
    EmitSection(emitter, "diurnal", *result,
                server.stats().queue_high_water);
    ok = CheckInvariants("diurnal", *result) && ok;
  }

  // ---- storm: budget exhaustion with exact arithmetic ------------------
  {
    BudgetStormTraceOptions trace_options;
    trace_options.tenant_count = 4;
    trace_options.events_per_tenant = 8;
    // 0.25 and 1.0 are exact binary doubles: 4 admissions spend the cap
    // to the bit, the 5th is over. floor arithmetic without float fuzz.
    trace_options.epsilon_per_release = 0.25;
    trace_options.interval_us = 1'000;
    const std::vector<TraceEvent> trace =
        MakeBudgetStormTrace(trace_options);

    ServeOptions serve;
    serve.release = release;
    serve.max_batch = 16;
    serve.max_delay_us = 100;
    serve.queue_capacity = 256;
    serve.per_client_epsilon_cap = 1.0;
    serve.seed = env.seed;
    PcorServer server(*setup->engine, serve);

    TraceReplayOptions replay;
    replay.collector_threads = 2;
    auto result = ReplayTrace(server, trace, setup->outliers, replay);
    if (!result.ok()) {
      std::printf("storm replay: %s\n",
                  result.status().ToString().c_str());
      return 1;
    }
    server.Shutdown();
    PrintSection("storm", *result);
    EmitSection(emitter, "storm", *result, server.stats().queue_high_water);
    ok = CheckInvariants("storm", *result) && ok;
    // Admission order equals trace order (single dispatch thread), so per
    // tenant exactly floor(cap/eps) = 4 admissions succeed and the other
    // 4 are typed budget rejections. Never relaxed: this is arithmetic.
    const size_t expected_admitted = trace_options.tenant_count * 4;
    const size_t expected_rejected =
        trace_options.tenant_count * trace_options.events_per_tenant -
        expected_admitted;
    if (result->rejected_budget != expected_rejected ||
        result->released + result->failed != expected_admitted) {
      std::printf(
          "ERROR: storm: expected %zu admissions + %zu budget rejections, "
          "got %zu released + %zu failed, %zu rejected\n",
          expected_admitted, expected_rejected, result->released,
          result->failed, result->rejected_budget);
      ok = false;
    }
  }

  // ---- streaming: mixed append/seal/release, digest-stable -------------
  {
    Schema schema;
    schema.AddAttribute("A", {"a0", "a1", "a2"}).CheckOK();
    schema.AddAttribute("B", {"b0", "b1", "b2"}).CheckOK();
    ZscoreOptions zopts;
    zopts.threshold = 3.0;
    zopts.min_population = 4;
    ZscoreDetector detector(zopts);

    StreamingTraceOptions trace_options;
    trace_options.epochs = 3;
    trace_options.appends_per_epoch = 4;
    trace_options.rows_per_append = 16;
    trace_options.releases_per_epoch = 8;
    trace_options.epoch_interval_us = 50'000;
    trace_options.seed = env.seed;
    const std::vector<TraceEvent> trace =
        MakeStreamingTrace(trace_options);

    // Pool: planted-outlier row ids (stride 17) sealed by the FIRST
    // epoch, so every release is valid under the seal barrier.
    const uint64_t first_epoch_rows =
        trace_options.appends_per_epoch * trace_options.rows_per_append;
    std::vector<uint32_t> pool;
    for (uint64_t row = 0; row < first_epoch_rows; row += 17) {
      pool.push_back(static_cast<uint32_t>(row));
    }

    auto run = [&](size_t collector_threads,
                   TraceReplayResult* out) -> bool {
      StreamingPcorEngine stream(schema, detector);
      ServeOptions serve;
      serve.release = release;
      serve.release.num_samples = 8;
      serve.release.total_epsilon = 0.4;
      serve.max_batch = 16;
      serve.max_delay_us = 100;
      serve.queue_capacity = 256;
      serve.seed = env.seed;
      PcorServer server(stream, serve);
      TraceReplayOptions replay;
      replay.collector_threads = collector_threads;
      replay.row_source = MakeUniformRowSource(schema, env.seed);
      auto result = ReplayTrace(server, trace, pool, replay);
      if (!result.ok()) {
        std::printf("streaming replay (%zu collectors): %s\n",
                    collector_threads, result.status().ToString().c_str());
        return false;
      }
      server.Shutdown();
      *out = std::move(*result);
      return true;
    };

    TraceReplayResult one, sixteen;
    if (!run(1, &one) || !run(16, &sixteen)) return 1;
    PrintSection("streaming", one);
    EmitSection(emitter, "streaming", one, 0);
    ok = CheckInvariants("streaming", one) && ok;
    // Never relaxed: the determinism contract extended to the open-loop
    // path — collector threading must not perturb any release payload or
    // the epoch numbering.
    if (one.release_digest != sixteen.release_digest ||
        one.final_epoch != sixteen.final_epoch) {
      std::printf(
          "ERROR: streaming replay not bit-identical across collector "
          "threads: digest %llx vs %llx, epoch %llu vs %llu\n",
          static_cast<unsigned long long>(one.release_digest),
          static_cast<unsigned long long>(sixteen.release_digest),
          static_cast<unsigned long long>(one.final_epoch),
          static_cast<unsigned long long>(sixteen.final_epoch));
      ok = false;
    }
    if (one.appends != sixteen.appends || one.seals != sixteen.seals ||
        one.append_errors + sixteen.append_errors != 0) {
      std::printf("ERROR: streaming replay append/seal accounting drifted "
                  "(%zu/%zu appends, %zu/%zu seals, %zu+%zu errors)\n",
                  one.appends, sixteen.appends, one.seals, sixteen.seals,
                  one.append_errors, sixteen.append_errors);
      ok = false;
    }
  }

  if (!emitter.ok()) return 1;
  if (!ok) {
    std::printf("FAILED: trace replay acceptance bars violated\n");
    return 1;
  }
  std::printf("ok: open-loop bars held (scheduled >= submit at every "
              "quantile; storm arithmetic exact; streaming digest stable)\n");
  return 0;
}
