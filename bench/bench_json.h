#pragma once

// BENCH_JSON emission with syntax validation.
//
// CI collects every `BENCH_JSON {...}` line the benches print into
// BENCH_results.json (see the bench-json workflow job). A malformed line
// would silently corrupt that artifact, so every bench routes its lines
// through BenchJsonEmitter: the line is parsed as JSON *before* printing,
// a parse failure is reported on stderr, and the bench's main() turns
// `!emitter.ok()` into a non-zero exit — format drift fails the pipeline
// instead of poisoning the perf history.

#include <cctype>
#include <cstdio>
#include <string>
#include <string_view>

namespace pcor {
namespace bench {

namespace json_detail {

inline void SkipWs(std::string_view s, size_t* i) {
  while (*i < s.size() && (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\n' ||
                           s[*i] == '\r')) {
    ++*i;
  }
}

inline bool ParseValue(std::string_view s, size_t* i);  // forward

inline bool ParseLiteral(std::string_view s, size_t* i,
                         std::string_view lit) {
  if (s.substr(*i, lit.size()) != lit) return false;
  *i += lit.size();
  return true;
}

inline bool ParseString(std::string_view s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return false;
  ++*i;
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) return false;
      const char e = s[*i];
      if (e == 'u') {
        for (int h = 0; h < 4; ++h) {
          ++*i;
          if (*i >= s.size() || !std::isxdigit(static_cast<unsigned char>(
                                    s[*i]))) {
            return false;
          }
        }
      } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                 e != 'n' && e != 'r' && e != 't') {
        return false;
      }
    } else if (static_cast<unsigned char>(c) < 0x20) {
      return false;  // raw control character inside a string
    }
    ++*i;
  }
  return false;  // unterminated
}

inline bool ParseNumber(std::string_view s, size_t* i) {
  const size_t start = *i;
  if (*i < s.size() && s[*i] == '-') ++*i;
  size_t digits = 0;
  while (*i < s.size() && std::isdigit(static_cast<unsigned char>(s[*i]))) {
    ++*i;
    ++digits;
  }
  if (digits == 0) return false;
  if (digits > 1 && s[start + (s[start] == '-' ? 1 : 0)] == '0') {
    return false;  // leading zero
  }
  if (*i < s.size() && s[*i] == '.') {
    ++*i;
    size_t frac = 0;
    while (*i < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[*i]))) {
      ++*i;
      ++frac;
    }
    if (frac == 0) return false;
  }
  if (*i < s.size() && (s[*i] == 'e' || s[*i] == 'E')) {
    ++*i;
    if (*i < s.size() && (s[*i] == '+' || s[*i] == '-')) ++*i;
    size_t exp = 0;
    while (*i < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[*i]))) {
      ++*i;
      ++exp;
    }
    if (exp == 0) return false;
  }
  return true;
}

inline bool ParseObject(std::string_view s, size_t* i) {
  ++*i;  // consume '{'
  SkipWs(s, i);
  if (*i < s.size() && s[*i] == '}') {
    ++*i;
    return true;
  }
  while (true) {
    SkipWs(s, i);
    if (!ParseString(s, i)) return false;
    SkipWs(s, i);
    if (*i >= s.size() || s[*i] != ':') return false;
    ++*i;
    if (!ParseValue(s, i)) return false;
    SkipWs(s, i);
    if (*i >= s.size()) return false;
    if (s[*i] == ',') {
      ++*i;
      continue;
    }
    if (s[*i] == '}') {
      ++*i;
      return true;
    }
    return false;
  }
}

inline bool ParseArray(std::string_view s, size_t* i) {
  ++*i;  // consume '['
  SkipWs(s, i);
  if (*i < s.size() && s[*i] == ']') {
    ++*i;
    return true;
  }
  while (true) {
    if (!ParseValue(s, i)) return false;
    SkipWs(s, i);
    if (*i >= s.size()) return false;
    if (s[*i] == ',') {
      ++*i;
      continue;
    }
    if (s[*i] == ']') {
      ++*i;
      return true;
    }
    return false;
  }
}

inline bool ParseValue(std::string_view s, size_t* i) {
  SkipWs(s, i);
  if (*i >= s.size()) return false;
  switch (s[*i]) {
    case '{':
      return ParseObject(s, i);
    case '[':
      return ParseArray(s, i);
    case '"':
      return ParseString(s, i);
    case 't':
      return ParseLiteral(s, i, "true");
    case 'f':
      return ParseLiteral(s, i, "false");
    case 'n':
      return ParseLiteral(s, i, "null");
    default:
      return ParseNumber(s, i);
  }
}

}  // namespace json_detail

/// \brief True iff `s` is one complete, syntactically valid JSON value.
inline bool ValidJson(std::string_view s) {
  size_t i = 0;
  if (!json_detail::ParseValue(s, &i)) return false;
  json_detail::SkipWs(s, &i);
  return i == s.size();
}

/// \brief Validating BENCH_JSON printer; see the file comment.
class BenchJsonEmitter {
 public:
  /// \brief Prints `BENCH_JSON <json>` when `json` parses; otherwise
  /// reports the bad line on stderr and latches failure.
  void Emit(const std::string& json) {
    if (!ValidJson(json)) {
      std::fprintf(stderr, "BENCH_JSON VALIDATION FAILED: %s\n",
                   json.c_str());
      ++failures_;
      return;
    }
    std::printf("BENCH_JSON %s\n", json.c_str());
  }

  size_t failures() const { return failures_; }
  bool ok() const { return failures_ == 0; }

 private:
  size_t failures_ = 0;
};

}  // namespace bench
}  // namespace pcor
