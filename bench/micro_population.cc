// Micro-benchmarks for the population engine — the bitmap-index-vs-naive
// row scan ablation from DESIGN.md. The bitmap index is what makes f_M
// cheap enough for graph search.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "src/context/population_index.h"
#include "src/data/salary_generator.h"

namespace {

using pcor::ContextVec;
using pcor::Dataset;
using pcor::GeneratedData;
using pcor::PopulationIndex;

const Dataset& SharedDataset(size_t rows) {
  static auto* cache =
      new std::map<size_t, std::unique_ptr<GeneratedData>>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    pcor::SalaryDatasetSpec spec = pcor::ReducedSalarySpec();
    spec.num_rows = rows;
    spec.num_planted = 10;
    auto data = pcor::GenerateSalaryDataset(spec);
    data.status().CheckOK();
    it = cache
             ->emplace(rows, std::make_unique<GeneratedData>(
                                 std::move(*data)))
             .first;
  }
  return it->second->dataset;
}

ContextVec MidContext(const pcor::Schema& schema) {
  ContextVec c(schema.total_values());
  for (size_t bit = 0; bit < c.num_bits(); bit += 2) c.Set(bit);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    c.Set(schema.value_offset(a));  // at least one value per attribute
  }
  return c;
}

void BM_PopulationCountBitmap(benchmark::State& state) {
  const Dataset& dataset = SharedDataset(static_cast<size_t>(state.range(0)));
  PopulationIndex index(dataset);
  ContextVec c = MidContext(dataset.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.PopulationCount(c));
  }
  state.SetItemsProcessed(state.iterations() * dataset.num_rows());
}
BENCHMARK(BM_PopulationCountBitmap)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_PopulationCountNaive(benchmark::State& state) {
  const Dataset& dataset = SharedDataset(static_cast<size_t>(state.range(0)));
  ContextVec c = MidContext(dataset.schema());
  const pcor::Schema& schema = dataset.schema();
  for (auto _ : state) {
    size_t count = 0;
    for (uint32_t row = 0; row < dataset.num_rows(); ++row) {
      if (pcor::context_ops::ContainsRow(schema, dataset, row, c)) ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * dataset.num_rows());
}
BENCHMARK(BM_PopulationCountNaive)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IndexConstruction(benchmark::State& state) {
  const Dataset& dataset = SharedDataset(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    PopulationIndex index(dataset);
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(state.iterations() * dataset.num_rows());
}
BENCHMARK(BM_IndexConstruction)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_OverlapCount(benchmark::State& state) {
  const Dataset& dataset = SharedDataset(static_cast<size_t>(state.range(0)));
  PopulationIndex index(dataset);
  ContextVec c1 = MidContext(dataset.schema());
  ContextVec c2 = pcor::context_ops::FullContext(dataset.schema());
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.OverlapCount(c1, c2));
  }
}
BENCHMARK(BM_OverlapCount)->Arg(10000)->Arg(50000);

void BM_MetricExtraction(benchmark::State& state) {
  const Dataset& dataset = SharedDataset(static_cast<size_t>(state.range(0)));
  PopulationIndex index(dataset);
  ContextVec c = MidContext(dataset.schema());
  for (auto _ : state) {
    auto metric = index.MetricOf(c);
    benchmark::DoNotOptimize(metric);
  }
}
BENCHMARK(BM_MetricExtraction)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
