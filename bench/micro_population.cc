// Population-engine micro-benchmark — the bitmap-index-vs-naive row-scan
// ablation from DESIGN.md, self-contained (no external benchmark library)
// so the CI bench-json job can run it and collect its lines into the same
// BENCH_results.json artifact as the million-row numbers.
//
// Emits one validated BENCH_JSON probe line per backend — naive row scan,
// dense index, compressed index — over an identical context mix, plus a
// build/memory line per storage. The dense and compressed lines double as
// the single-threaded single-shard baseline next to million_rows_sharded
// in the artifact. Counts are cross-checked across all three backends
// before timing; a mismatch exits non-zero.
//
// Scaling knobs (CI smoke-runs at a fraction of the defaults):
//   PCOR_MICRO_ROWS      dataset rows    (default 50,000)
//   PCOR_MICRO_CONTEXTS  probe contexts  (default 200)
//   PCOR_SEED            dataset + context seed
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/context/population_index.h"
#include "src/data/salary_generator.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ContextVec RandomContext(const Schema& schema, double density, Rng* rng) {
  ContextVec c(schema.total_values());
  for (size_t bit = 0; bit < c.num_bits(); ++bit) {
    if (rng->NextBernoulli(density)) c.Set(bit);
  }
  return c;
}

ContextVec RandomSingletonContext(const Schema& schema, Rng* rng) {
  ContextVec c(schema.total_values());
  size_t base = 0;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const size_t domain = schema.attribute(a).domain_size();
    c.Set(base + rng->NextBounded(domain));
    base += domain;
  }
  return c;
}

struct Timing {
  double probes = 0.0;
  double wall_s = 0.0;
  double probes_per_s = 0.0;
  double ns_per_probe = 0.0;
};

// Pass-doubling timer: repeats `probe_all` until the run is long enough to
// time, like the million-row bench.
template <typename ProbeAll>
Timing TimeProbes(size_t contexts_per_pass, const ProbeAll& probe_all) {
  Timing timing;
  size_t passes = 1;
  while (true) {
    const double t0 = Now();
    for (size_t pass = 0; pass < passes; ++pass) probe_all();
    timing.wall_s = Now() - t0;
    if (timing.wall_s >= 0.3 || passes >= 256) break;
    passes *= 2;
  }
  timing.probes = static_cast<double>(passes * contexts_per_pass);
  timing.probes_per_s = timing.probes / timing.wall_s;
  timing.ns_per_probe = 1e9 * timing.wall_s / timing.probes;
  return timing;
}

}  // namespace

int main() {
  const size_t rows = strings::EnvSizeOr("PCOR_MICRO_ROWS", 50'000);
  const size_t num_contexts = strings::EnvSizeOr("PCOR_MICRO_CONTEXTS", 200);
  const uint64_t seed = strings::EnvSizeOr("PCOR_SEED", 2021);

  SalaryDatasetSpec spec = ReducedSalarySpec();
  spec.num_rows = rows;
  spec.num_planted = rows / 500 + 1;
  spec.seed = seed;
  auto generated = GenerateSalaryDataset(spec);
  if (!generated.ok()) {
    std::printf("dataset: %s\n", generated.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = generated->dataset;
  const Schema& schema = dataset.schema();
  std::printf("micro population: %zu rows, %zu contexts, t=%zu values\n",
              rows, num_contexts, schema.total_values());

  double t0 = Now();
  const PopulationIndex dense(dataset, IndexStorage::kDense);
  const double dense_build_s = Now() - t0;
  t0 = Now();
  const PopulationIndex compressed(dataset, IndexStorage::kCompressed);
  const double compressed_build_s = Now() - t0;

  // Same probe mix as the million-row bench: half exact contexts (the
  // compressed fold fast path), half random multi-value contexts.
  Rng rng(seed + 1);
  std::vector<ContextVec> contexts;
  contexts.reserve(num_contexts);
  for (size_t i = 0; i < num_contexts; ++i) {
    if (i % 2 == 0) {
      contexts.push_back(RandomSingletonContext(schema, &rng));
    } else {
      contexts.push_back(
          RandomContext(schema, i % 4 == 1 ? 0.5 : 0.25, &rng));
    }
  }

  // Cross-backend equivalence gate before timing: naive row scan, dense
  // and compressed must report identical counts on every context.
  std::vector<size_t> naive_counts(contexts.size());
  size_t mismatches = 0;
  for (size_t i = 0; i < contexts.size(); ++i) {
    size_t count = 0;
    for (uint32_t row = 0; row < dataset.num_rows(); ++row) {
      if (context_ops::ContainsRow(schema, dataset, row, contexts[i])) {
        ++count;
      }
    }
    naive_counts[i] = count;
    if (dense.PopulationCount(contexts[i]) != count ||
        compressed.PopulationCount(contexts[i]) != count) {
      ++mismatches;
      std::printf("EQUIVALENCE MISMATCH: %s\n",
                  contexts[i].ToBitString().c_str());
    }
  }
  if (mismatches != 0) {
    std::printf("FAILED: %zu backend mismatches\n", mismatches);
    return 1;
  }
  std::printf("equivalence: %zu counts identical across all backends\n",
              contexts.size());

  const Timing naive = TimeProbes(contexts.size(), [&] {
    for (const ContextVec& c : contexts) {
      size_t count = 0;
      for (uint32_t row = 0; row < dataset.num_rows(); ++row) {
        if (context_ops::ContainsRow(schema, dataset, row, c)) ++count;
      }
      volatile size_t sink = count;
      (void)sink;
    }
  });
  const Timing dense_probe = TimeProbes(contexts.size(), [&] {
    for (const ContextVec& c : contexts) {
      volatile size_t sink = dense.PopulationCount(c);
      (void)sink;
    }
  });
  const Timing compressed_probe = TimeProbes(contexts.size(), [&] {
    for (const ContextVec& c : contexts) {
      volatile size_t sink = compressed.PopulationCount(c);
      (void)sink;
    }
  });

  std::printf("naive:      %.0f probes/s (%.0f ns/probe)\n",
              naive.probes_per_s, naive.ns_per_probe);
  std::printf("dense:      %.0f probes/s (%.0f ns/probe, x%.1f vs naive)\n",
              dense_probe.probes_per_s, dense_probe.ns_per_probe,
              dense_probe.probes_per_s / naive.probes_per_s);
  std::printf("compressed: %.0f probes/s (%.0f ns/probe, x%.1f vs naive)\n",
              compressed_probe.probes_per_s, compressed_probe.ns_per_probe,
              compressed_probe.probes_per_s / naive.probes_per_s);

  const PopulationIndexStats dense_stats = dense.MemoryStats();
  const PopulationIndexStats compressed_stats = compressed.MemoryStats();

  BenchJsonEmitter emitter;
  const auto emit_probe_line = [&](const char* storage, const Timing& t) {
    emitter.Emit(strings::Format(
        "{\"bench\":\"micro_population\",\"storage\":\"%s\",\"rows\":%zu,"
        "\"contexts\":%zu,\"probes\":%.0f,\"wall_s\":%.4f,"
        "\"probes_per_s\":%.1f,\"ns_per_probe\":%.1f}",
        storage, rows, num_contexts, t.probes, t.wall_s, t.probes_per_s,
        t.ns_per_probe));
  };
  emit_probe_line("naive", naive);
  emit_probe_line("dense", dense_probe);
  emit_probe_line("compressed", compressed_probe);
  emitter.Emit(strings::Format(
      "{\"bench\":\"micro_population_build\",\"rows\":%zu,"
      "\"dense_build_s\":%.4f,\"compressed_build_s\":%.4f,"
      "\"dense_bytes\":%zu,\"compressed_bytes\":%zu}",
      rows, dense_build_s, compressed_build_s, dense_stats.bitmap_bytes,
      compressed_stats.bitmap_bytes));

  // Sanity bar, never relaxed: if the bitmap index cannot beat a naive
  // O(rows) scan per probe, something is deeply wrong with the build.
  bool failed = !emitter.ok();
  if (dense_probe.probes_per_s <= naive.probes_per_s ||
      compressed_probe.probes_per_s <= naive.probes_per_s) {
    std::printf("FAILED: an index backend is no faster than the naive scan\n");
    failed = true;
  }
  std::printf("%s\n", failed ? "RESULT: FAIL" : "RESULT: OK");
  return failed ? 1 : 0;
}
