// Micro-benchmark for the batched release engine: ReleaseBatch over >= 100
// query outliers at 1/2/4/8 worker threads. Records wall time, speedup over
// the single-thread run, and shared-cache statistics, and verifies that
// every multi-thread run releases bit-identical contexts to the 1-thread
// run for the same seed (the engine's determinism contract). Every thread
// count emits one validated BENCH_JSON line for the CI perf artifact.
#include "bench/bench_json.h"
#include "bench/bench_util.h"

using namespace pcor;
using namespace pcor::bench;

namespace {

bool SameReleases(const BatchReleaseReport& a, const BatchReleaseReport& b) {
  if (a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    const BatchEntry& x = a.entries[i];
    const BatchEntry& y = b.entries[i];
    if (x.status.ok() != y.status.ok()) return false;
    if (!x.status.ok()) continue;
    if (x.release.context != y.release.context ||
        x.release.utility_score != y.release.utility_score ||
        x.release.probes != y.release.probes) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  BenchEnv env = ReadBenchEnv(/*default_scale=*/0.2);
  PrintEnv(env,
           "micro: batched release engine (BFS, eps=0.2, n=20, "
           "population-size utility)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;

  // >= 100 releases regardless of how many distinct outliers the pool
  // holds: cycle the pool, exactly like the paper's repeated trials.
  const size_t kBatchSize =
      std::max<size_t>(100, env.reps * setup->outliers.size());
  std::vector<uint32_t> rows(kBatchSize);
  for (size_t i = 0; i < rows.size(); ++i) {
    rows[i] = setup->outliers[i % setup->outliers.size()];
  }
  std::printf("batch: %zu releases over %zu distinct outliers, %zu rows\n",
              rows.size(), setup->outliers.size(),
              setup->workload.data.dataset.num_rows());

  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = 20;
  options.total_epsilon = 0.2;

  BenchJsonEmitter emitter;
  TableRenderer table({"Threads", "Wall", "Speedup", "Releases/s", "f_evals",
                       "Cache hits", "Evictions", "Resident MB", "Failures"});
  double base_seconds = 0.0;
  BatchReleaseReport baseline;
  bool identical = true;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const BatchReleaseReport report = setup->engine->ReleaseBatch(
        std::span<const uint32_t>(rows), options, env.seed, threads);
    if (threads == 1) {
      base_seconds = report.seconds;
      baseline = report;
    } else if (!SameReleases(baseline, report)) {
      identical = false;
      std::printf("ERROR: %zu-thread releases differ from 1-thread!\n",
                  threads);
    }
    table.AddRow({strings::Format("%zu", threads),
                  report::FormatRuntime(report.seconds),
                  strings::Format("%.2fx", base_seconds / report.seconds),
                  strings::Format("%.1f",
                                  static_cast<double>(rows.size()) /
                                      report.seconds),
                  strings::Format("%zu", report.total_f_evaluations),
                  strings::Format("%zu", report.cache_hits),
                  strings::Format("%zu", report.cache_evictions),
                  strings::Format("%.2f",
                                  static_cast<double>(
                                      report.verifier_stats.resident_bytes) /
                                      (1024.0 * 1024.0)),
                  strings::Format("%zu", report.failures)});
    emitter.Emit(strings::Format(
        "{\"bench\":\"micro_batch_release\",\"threads\":%zu,"
        "\"releases\":%zu,\"wall_s\":%.6f,\"speedup\":%.3f,"
        "\"releases_per_s\":%.1f,\"f_evals\":%zu,\"cache_hits\":%zu,"
        "\"failures\":%zu,\"kernel_backend\":\"%s\"}",
        threads, rows.size(), report.seconds,
        base_seconds / report.seconds,
        static_cast<double>(rows.size()) / report.seconds,
        report.total_f_evaluations, report.cache_hits, report.failures,
        report.kernel_backend.c_str()));
  }

  report::SectionHeader("ReleaseBatch scaling");
  std::printf("%s", table.Render().c_str());
  report::Note(
      "speedup is bounded by the machine's core count; the later runs "
      "also start with a warm shared verifier cache (see f_evals)");
  std::printf("determinism across thread counts: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");
  if (!emitter.ok()) {
    std::printf("BENCH_JSON validation failures: %zu\n", emitter.failures());
  }
  return (identical && emitter.ok()) ? 0 : 1;
}
