// Reproduces Table 2 (sampling methods, runtime) and Table 3 (sampling
// methods, utility) of the paper, plus the Figure 1 histogram panels —
// utility and runtime distributions per sampler. Setup per Section 6.3:
// reduced salary dataset, LOF detector, population-size utility, eps = 0.2,
// n = 50 samples.
#include "bench/bench_util.h"

using namespace pcor;
using namespace pcor::bench;

int main() {
  BenchEnv env = ReadBenchEnv();
  PrintEnv(env,
           "Table 2/3 + Figure 1: sampling method comparison "
           "(LOF, eps=0.2, n=50, population-size utility)");

  auto setup = MakeSalarySetup(env, "lof");
  if (!setup) return 1;
  std::printf("dataset: %zu rows, t = %zu attribute values, %zu outliers\n",
              setup->workload.data.dataset.num_rows(),
              setup->workload.data.dataset.schema().total_values(),
              setup->outliers.size());

  const SamplerKind kinds[] = {SamplerKind::kUniform,
                               SamplerKind::kRandomWalk, SamplerKind::kDfs,
                               SamplerKind::kBfs};

  TableRenderer perf({"Algorithm", "Tmin", "Tmax", "Tavg", "eps"});
  TableRenderer util({"Algorithm", "Utility", "CI(90%)", "eps"});
  struct Series {
    std::string name;
    std::vector<double> utilities;
    std::vector<double> runtimes;
  };
  std::vector<Series> all_series;

  for (SamplerKind kind : kinds) {
    auto result = RunConfig(*setup, env, kind,
                            UtilityKind::kPopulationSize, 0.2, 50);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", SamplerKindName(kind).c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    auto runtime = result->runtime();
    auto ci = result->utility_ci(0.90);
    perf.AddRow({SamplerKindName(kind),
                 report::FormatRuntime(runtime.min_seconds),
                 report::FormatRuntime(runtime.max_seconds),
                 report::FormatRuntime(runtime.avg_seconds), "0.2"});
    util.AddRow({SamplerKindName(kind),
                 strings::Format("%.2f", ci.mean),
                 report::FormatUtilityCi(ci), "0.2"});
    all_series.push_back(
        {SamplerKindName(kind), result->utility_ratios, result->runtimes});
  }

  report::SectionHeader("Table 2 (measured): runtime per sampling method");
  std::printf("%s", perf.Render().c_str());
  report::Note(
      "paper (51k rows, 1TB/132-core box): uniform 7m/24h/97m, "
      "random_walk 15s/109s/51s, dfs 8m/80m/40m, bfs 6m/61m/37m");
  report::Note(
      "expected shape: uniform has a heavy Tmax tail; random_walk is "
      "fastest; bfs <= dfs");

  report::SectionHeader("Table 3 (measured): utility per sampling method");
  std::printf("%s", util.Render().c_str());
  report::Note(
      "paper: uniform 0.65 (0.64,0.67), random_walk 0.57 (0.55,0.60), "
      "dfs 0.88 (0.85,0.90), bfs 0.90 (0.88,0.93)");
  report::Note(
      "expected shape: bfs >= dfs >> random_walk; uniform in between");

  report::SectionHeader("Figure 1 data: utility / runtime distributions");
  for (const auto& series : all_series) {
    report::PrintHistogram("Fig 1 utility: " + series.name,
                           series.utilities, 0.0, 1.0, 10);
  }
  for (const auto& series : all_series) {
    double max_rt = 0;
    for (double r : series.runtimes) max_rt = std::max(max_rt, r);
    report::PrintHistogram("Fig 1 runtime (s): " + series.name,
                           series.runtimes, 0.0, std::max(max_rt, 1e-3), 10);
  }
  return 0;
}
