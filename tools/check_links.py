#!/usr/bin/env python3
"""Markdown link checker for intra-repo links.

Usage: check_links.py <file-or-dir> [...]

Scans the given markdown files (directories are walked for *.md) for
inline links `[text](target)` and verifies every *intra-repo* target:

  * relative file targets must exist (resolved against the linking file);
  * `#anchor` fragments (own-file or on a linked .md) must match a heading
    in the target file, using GitHub's slugification;
  * absolute URLs (http/https/mailto) are skipped — this job gates repo
    self-consistency, not the internet.

It also verifies *code paths* quoted in inline backtick spans: a span
that (after collapsing hard-wrap whitespace) starts with `src/`,
`tests/`, `bench/`, `tools/`, `examples/`, `docs/` or `.github/` is a
claim that the path exists in the repository, checked from the repo
root. `{h,cc}`-style brace groups expand to every alternative, a `*`
makes the span a glob (at least one match required), and spans with
placeholder characters (`<name>`, `$VAR`, ...) are skipped.

Exits non-zero listing every dead link/path, so CI fails on doc rot.
Stdlib only; no third-party dependencies.
"""

import glob as globlib
import os
import re
import sys

# Target forms: (path), (<path with spaces>), (path "title"), (path 'title').
LINK_RE = re.compile(
    r"\[[^\]]*\]\(\s*(?:<([^<>]+)>|([^()\s]+(?:\([^()\s]*\)[^()\s]*)?))"
    r"(?:\s+(?:\"[^\"]*\"|'[^']*'))?\s*\)"
)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)

# Inline code spans that claim a repository path exists.
CODE_SPAN_RE = re.compile(r"`([^`]+)`")
PATH_PREFIXES = ("src/", "tests/", "bench/", "tools/", "examples/",
                 "docs/", ".github/")
# Characters that mark a span as a template, not a literal path.
PLACEHOLDER_CHARS = set("<>$()|'\" ")
BRACE_RE = re.compile(r"\{([^{}]+)\}")


def expand_braces(path: str) -> list:
    """`src/x.{h,cc}` -> [`src/x.h`, `src/x.cc`] (nested groups too)."""
    match = BRACE_RE.search(path)
    if not match:
        return [path]
    expanded = []
    for alt in match.group(1).split(","):
        expanded.extend(
            expand_braces(path[: match.start()] + alt + path[match.end():])
        )
    return expanded


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces->dashes."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linkified heading
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def heading_slugs(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        content = f.read()
    content = CODE_FENCE_RE.sub("", content)  # '# comment' inside fences
    slugs = set()
    counts = {}
    for match in HEADING_RE.finditer(content):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def collect_markdown(args) -> list:
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md")
                )
        elif arg.endswith(".md"):
            files.append(arg)
        else:
            print(f"warning: skipping non-markdown argument {arg}")
    return sorted(set(files))


def check_code_paths(md_path: str, content: str, repo_root: str) -> list:
    """Backtick spans naming repo paths must point at something real."""
    errors = []
    for match in CODE_SPAN_RE.finditer(content):
        # Docs hard-wrap long paths; the span survives with an embedded
        # newline + indent. Collapse all whitespace before classifying.
        span = re.sub(r"\s+", "", match.group(1))
        if not span.startswith(PATH_PREFIXES):
            continue
        if PLACEHOLDER_CHARS.intersection(span):
            continue  # `tests/<name>`-style templates are not claims
        for candidate in expand_braces(span):
            if "*" in candidate:
                if not globlib.glob(os.path.join(repo_root, candidate)):
                    errors.append(f"{md_path}: dead path glob `{span}` "
                                  f"(nothing matches {candidate})")
            elif not os.path.exists(os.path.join(repo_root, candidate)):
                errors.append(f"{md_path}: dead path `{span}` "
                              f"({candidate} does not exist)")
    return errors


def check_file(md_path: str, repo_root: str) -> list:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    content = CODE_FENCE_RE.sub("", content)
    errors.extend(check_code_paths(md_path, content, repo_root))
    for match in LINK_RE.finditer(content):
        target = match.group(1) or match.group(2)
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, https:, mailto:
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part)
            )
            if not os.path.exists(resolved):
                errors.append(f"{md_path}: dead link '{target}' "
                              f"({resolved} does not exist)")
                continue
        else:
            resolved = md_path
        if fragment:
            if not resolved.endswith(".md") or not os.path.isfile(resolved):
                continue  # only anchor-check markdown targets
            if fragment.lower() not in heading_slugs(resolved):
                errors.append(f"{md_path}: dead anchor '{target}' "
                              f"(no heading '#{fragment}' in {resolved})")
    return errors


def main(argv) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    files = collect_markdown(argv[1:])
    if not files:
        print("error: no markdown files found in the given paths")
        return 2
    repo_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    errors = []
    for md in files:
        errors.extend(check_file(md, repo_root))
    for error in errors:
        print(error)
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} dead links/paths)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
