#include "src/serve/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/random.h"

namespace pcor {

namespace {
using std::chrono::microseconds;
using std::chrono::steady_clock;
}  // namespace

PcorServer::PcorServer(const PcorEngine& engine, ServeOptions options)
    : engine_(&engine),
      stream_(nullptr),
      options_(std::move(options)),
      accountant_(options_.per_client_epsilon_cap),
      queue_(std::max<size_t>(1, options_.queue_capacity),
             options_.scheduling),
      dispatcher_([this] { DispatcherLoop(); }) {}

PcorServer::PcorServer(StreamingPcorEngine& stream, ServeOptions options)
    : engine_(nullptr),
      stream_(&stream),
      options_(std::move(options)),
      accountant_(options_.per_client_epsilon_cap),
      queue_(std::max<size_t>(1, options_.queue_capacity),
             options_.scheduling),
      dispatcher_([this] { DispatcherLoop(); }) {}

PcorServer::~PcorServer() { Shutdown(/*drain=*/true); }

uint64_t PcorServer::RequestSeed(uint64_t server_seed,
                                 std::string_view client_id, uint64_t k) {
  // Fold the client id into the server seed character by character (every
  // step avalanches, so "c1"/"c2" land in unrelated stream families), then
  // apply the same Weyl-step + finalizer mix ReleaseBatch uses per index.
  uint64_t h = SplitMix64Mix(server_seed ^ 0x243f6a8885a308d3ULL);
  for (const char c : client_id) {
    h = SplitMix64Mix(h ^ static_cast<unsigned char>(c));
  }
  return SplitMix64Mix(h + 0x9e3779b97f4a7c15ULL * (k + 1));
}

Status PcorServer::RegisterTenant(std::string_view tenant_id,
                                  const TenantConfig& config) {
  PCOR_RETURN_NOT_OK(ValidateTenantConfig(config));
  queue_.RegisterTenant(tenant_id, config.weight, config.max_queue_depth);
  // Registration is an upsert of the WHOLE config: an unset epsilon_cap
  // restores inheritance of the server-wide default, it does not keep a
  // stale override from an earlier registration.
  if (config.epsilon_cap.has_value()) {
    accountant_.SetCap(tenant_id, *config.epsilon_cap);
  } else {
    accountant_.ClearCap(tenant_id);
  }
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (config.stream_level_epsilon.has_value()) {
      level_price_[std::string(tenant_id)] = *config.stream_level_epsilon;
    } else {
      auto it = level_price_.find(tenant_id);
      if (it != level_price_.end()) level_price_.erase(it);
    }
  }
  return Status::OK();
}

Result<Future<BatchEntry>> PcorServer::SubmitAsync(
    const BatchRequest& request, std::string_view client_id) {
  // A bad per-request override is the submitter's bug: reject it before
  // anything is charged or sequenced, so the tenant's budget and stream
  // indices are exactly as if the call never happened.
  if (request.options.has_value()) {
    Status valid = ValidatePcorOptions(*request.options);
    if (!valid.ok()) {
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_invalid;
      return valid;
    }
  }
  const double eps = request.options ? request.options->total_epsilon
                                     : options_.release.total_epsilon;
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutting_down_) {
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_queue;
      return Status::Unavailable("server is shutting down");
    }
  }

  Pending pending;
  pending.client_id = std::string(client_id);
  pending.request = request;
  pending.request.use_explicit_seed = true;
  uint64_t my_seq = 0;
  uint64_t prev_levels = 0;
  double cost = eps;
  const bool tree_charged =
      stream_ != nullptr &&
      options_.streaming_charge == StreamingChargePolicy::kTreeSchedule;
  if (stream_ == nullptr) {
    // Classic mode: charge the full per-release epsilon, then claim the
    // client's next stream slot.
    Status charged = accountant_.Charge(client_id, cost);
    if (!charged.ok()) {
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_budget;
      return charged;
    }
    pending.cost = cost;
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutting_down_) {
      lock.unlock();
      accountant_.Refund(client_id, cost);
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_queue;
      return Status::Unavailable("server is shutting down");
    }
    auto it = clients_.find(client_id);
    if (it == clients_.end()) {
      it = clients_.emplace(pending.client_id, StreamState{}).first;
    }
    my_seq = it->second.seq;
    pending.request.rng_seed = RequestSeed(options_.seed, client_id, my_seq);
    ++it->second.seq;
  } else {
    // Streaming mode: the charge depends on the tenant's stream position
    // (under kTreeSchedule) and on its paid tree levels, so the slot
    // claim and the ledger charge happen atomically under state_mu_ — a
    // refused charge hands the slot straight back, and no concurrent
    // submission for this client can have claimed a later slot in
    // between. The accountant's mutex is a leaf; taking it under
    // state_mu_ cannot invert any lock order.
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutting_down_) {
      lock.unlock();
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_queue;
      return Status::Unavailable("server is shutting down");
    }
    auto it = clients_.find(client_id);
    if (it == clients_.end()) {
      it = clients_.emplace(pending.client_id, StreamState{}).first;
    }
    StreamState& state = it->second;
    if (state.seq == 0 && state.levels_paid == 0) {
      // Stream start: pin this stream's level price. One stream buys all
      // its levels at one price — later re-registrations cannot re-price
      // levels already bought.
      auto price_it = level_price_.find(client_id);
      state.level_price = price_it != level_price_.end()
                              ? price_it->second
                              : options_.release.total_epsilon;
    }
    if (tree_charged && eps > state.level_price * (1.0 + 1e-12)) {
      // The tree schedule prices LEVELS, not requests: a release more
      // expensive than the paid level would ride levels that never
      // covered it, voiding the schedule's composition bound. Reject
      // before anything is charged or sequenced.
      lock.unlock();
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_invalid;
      return Status::InvalidArgument(
          "streaming tree-schedule admission requires the request's "
          "effective total_epsilon to be at most the tenant's level "
          "price (TenantConfig::stream_level_epsilon, default "
          "ServeOptions::release.total_epsilon); submit a cheaper "
          "request, raise the level price, or use "
          "StreamingChargePolicy::kPerRelease");
    }
    my_seq = state.seq;
    const uint64_t position = my_seq + 1;
    const uint64_t needed = TreeAccountant::LevelsFor(position);
    prev_levels = state.levels_paid;
    // The tree marginal is priced off the levels the ledger actually
    // holds, not off the position's power-of-two-ness: a burned
    // level-opening slot keeps its levels paid, and a refunded one gives
    // them back, so the marginal can never discount a level nobody paid
    // for.
    const double marginal =
        needed > prev_levels
            ? static_cast<double>(needed - prev_levels) * state.level_price
            : 0.0;
    cost = tree_charged ? marginal : eps;
    Status charged = accountant_.Charge(client_id, cost);
    if (!charged.ok()) {
      lock.unlock();
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected_budget;
      return charged;
    }
    state.seq = position;
    if (needed > state.levels_paid) state.levels_paid = needed;
    pending.request.rng_seed = RequestSeed(options_.seed, client_id, my_seq);
    pending.cost = cost;
    pending.stream_index = position;
    pending.naive_cost = eps;
  }
  Future<BatchEntry> future = pending.promise.GetFuture();

  // The DRR charge is the request's PER-RELEASE epsilon (not the tree
  // marginal, which is zero for most kTreeSchedule admissions), so a
  // tenant's fair share holds in work per second: one expensive release
  // costs as many scheduling credits as many cheap ones. In classic mode
  // and under kPerRelease, eps and the ledger charge coincide.
  QueueOp pushed =
      options_.backpressure == BackpressurePolicy::kBlock
          ? queue_.Push(client_id, std::move(pending), eps)
          : queue_.TryPush(client_id, std::move(pending), eps);
  if (pushed != QueueOp::kOk) {
    // Nothing ran against the data: roll the admission back. state_mu_
    // was released between admission and this push, so a concurrent
    // submission for this client may have claimed a later slot; the slot
    // is returned only when none did — an unconditional decrement could
    // hand an already-admitted request's seed to the next submission, and
    // two releases must never share an Rng stream. A slot that cannot be
    // reclaimed is burned, and under kTreeSchedule a burned slot KEEPS
    // its charge and its paid levels: concurrent submissions priced
    // their marginals off those levels, so refunding would let them ride
    // a level nobody paid for. Per-release charges (classic mode,
    // kPerRelease) are position-independent and always refunded.
    bool slot_returned = false;
    {
      std::unique_lock<std::mutex> lock(state_mu_);
      auto it = clients_.find(client_id);
      if (it != clients_.end() && it->second.seq == my_seq + 1) {
        --it->second.seq;
        if (stream_ != nullptr) it->second.levels_paid = prev_levels;
        slot_returned = true;
      }
    }
    if (!tree_charged || slot_returned) accountant_.Refund(client_id, cost);
    std::unique_lock<std::mutex> stats_lock(stats_mu_);
    if (pushed == QueueOp::kTenantFull) {
      ++stats_.rejected_depth;
      return Status::ResourceExhausted("tenant queue depth exceeded");
    }
    ++stats_.rejected_queue;
    if (pushed == QueueOp::kFull) {
      return Status::ResourceExhausted("admission queue is full");
    }
    return Status::Unavailable("server is shutting down");
  }
  const size_t depth = queued_.fetch_add(1, std::memory_order_relaxed) + 1;
  size_t high_water = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > high_water &&
         !queue_high_water_.compare_exchange_weak(
             high_water, depth, std::memory_order_relaxed)) {
  }
  {
    std::unique_lock<std::mutex> stats_lock(stats_mu_);
    ++stats_.submitted;
    if (stream_ != nullptr) stats_.naive_epsilon_spent += eps;
  }
  return future;
}

std::vector<Result<Future<BatchEntry>>> PcorServer::SubmitMany(
    std::span<const BatchRequest> requests, std::string_view client_id) {
  std::vector<Result<Future<BatchEntry>>> futures;
  futures.reserve(requests.size());
  for (const BatchRequest& request : requests) {
    futures.push_back(SubmitAsync(request, client_id));
  }
  return futures;
}

Status PcorServer::SubmitAppend(const Row& row) {
  if (stream_ == nullptr) {
    return Status::FailedPrecondition(
        "SubmitAppend requires a streaming-mode server");
  }
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutting_down_) {
      return Status::Unavailable("server is shutting down");
    }
  }
  PCOR_RETURN_NOT_OK(stream_->Append(row));
  std::unique_lock<std::mutex> stats_lock(stats_mu_);
  ++stats_.appends;
  return Status::OK();
}

Status PcorServer::SubmitAppends(std::span<const Row> rows) {
  for (const Row& row : rows) {
    PCOR_RETURN_NOT_OK(SubmitAppend(row));
  }
  return Status::OK();
}

Result<uint64_t> PcorServer::SealEpoch() {
  if (stream_ == nullptr) {
    return Status::FailedPrecondition(
        "SealEpoch requires a streaming-mode server");
  }
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (shutting_down_) {
      return Status::Unavailable("server is shutting down");
    }
  }
  const uint64_t epoch = stream_->SealEpoch();
  std::unique_lock<std::mutex> stats_lock(stats_mu_);
  ++stats_.epochs_sealed;
  return epoch;
}

void PcorServer::Shutdown(bool drain) {
  // Serializes concurrent Shutdown callers (including the destructor): the
  // first runs the teardown, later ones block here until it finished and
  // then find the dispatcher already joined.
  std::unique_lock<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::unique_lock<std::mutex> lock(state_mu_);
    if (!shutting_down_) {
      shutting_down_ = true;
      abort_pending_.store(!drain, std::memory_order_relaxed);
    }
  }
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void PcorServer::DispatcherLoop() {
  while (true) {
    Pending first;
    if (queue_.Pop(&first) == QueueOp::kClosed) return;
    queued_.fetch_sub(1, std::memory_order_relaxed);

    std::vector<Pending> batch;
    batch.push_back(std::move(first));
    const auto deadline =
        steady_clock::now() + microseconds(options_.max_delay_us);
    while (batch.size() < std::max<size_t>(1, options_.max_batch)) {
      Pending next;
      const QueueOp op = queue_.PopFor(&next, deadline - steady_clock::now());
      if (op != QueueOp::kOk) break;  // timed out, or closed and drained
      queued_.fetch_sub(1, std::memory_order_relaxed);
      batch.push_back(std::move(next));
    }

    if (abort_pending_.load(std::memory_order_relaxed)) {
      // Abort-mode shutdown: complete undispatched work with a typed
      // kUnavailable entry and return the untouched budget charges.
      // (Tree-mode paid levels are not rolled back here — the server is
      // shutting down, so no later admission can ride them; the refund
      // only makes ServerStats::tree_epsilon_spent an over-estimate of
      // the final ledger, the safe direction.)
      double naive_refunded = 0.0;
      for (Pending& pending : batch) {
        BatchEntry entry;
        entry.v_row = pending.request.v_row;
        entry.rng_seed = pending.request.rng_seed;
        entry.status = Status::Unavailable("server shut down before dispatch");
        accountant_.Refund(pending.client_id, pending.cost);
        naive_refunded += pending.naive_cost;
        pending.promise.Set(std::move(entry));
      }
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      stats_.failed += batch.size();
      stats_.naive_epsilon_spent -= naive_refunded;
      continue;
    }
    ExecuteBatch(std::move(batch));
  }
}

void PcorServer::ExecuteBatch(std::vector<Pending> batch) {
  std::vector<BatchRequest> requests;
  requests.reserve(batch.size());
  for (const Pending& pending : batch) requests.push_back(pending.request);

  // Streaming mode: pin ONE snapshot for the whole micro-batch — a batch
  // never straddles epochs — and execute against its engine. The pin keeps
  // the epoch's dataset and index alive however many appends/seals race
  // this dispatch. Before the first seal there is nothing to release
  // against: entries fail typed and keep their admission charge (the slot
  // is burned; see the class comment).
  std::shared_ptr<const EpochSnapshot> snapshot;
  const PcorEngine* engine = engine_;
  if (stream_ != nullptr) {
    snapshot = stream_->Pin();
    engine = snapshot->engine.get();
    if (engine == nullptr) {
      for (Pending& pending : batch) {
        BatchEntry entry;
        entry.v_row = pending.request.v_row;
        entry.rng_seed = pending.request.rng_seed;
        entry.status = Status::FailedPrecondition(
            "no sealed epoch yet: append rows and SealEpoch before "
            "releasing");
        pending.promise.Set(std::move(entry));
      }
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.batches;
      stats_.max_coalesced = std::max(stats_.max_coalesced, batch.size());
      stats_.failed += batch.size();
      return;
    }
  }

  try {
    if (options_.pre_batch_hook) {
      options_.pre_batch_hook(std::span<const BatchRequest>(requests));
    }
    BatchReleaseReport report = engine->ReleaseBatch(
        std::span<const BatchRequest>(requests), options_.release,
        options_.seed, options_.release_threads);
    if (stream_ != nullptr) {
      // Annotate entries with the epsilon admission actually charged —
      // the full effective epsilon under kPerRelease, the tree marginal
      // under kTreeSchedule (the engine stamped the epoch already).
      // Failed entries carry no release to annotate.
      for (size_t i = 0; i < batch.size(); ++i) {
        BatchEntry& entry = report.entries[i];
        if (!entry.status.ok()) continue;
        entry.release.stream_release_index = batch[i].stream_index;
        entry.release.stream_epsilon_charged = batch[i].cost;
      }
    }
    {
      std::unique_lock<std::mutex> stats_lock(stats_mu_);
      ++stats_.batches;
      stats_.max_coalesced = std::max(stats_.max_coalesced, batch.size());
      stats_.released += report.entries.size() - report.failures;
      stats_.failed += report.failures;
      stats_.hit_probe_cap += report.hit_probe_cap;
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.Set(std::move(report.entries[i]));
    }
  } catch (const std::exception& e) {
    FailBatchWith(&batch, e.what());
  } catch (...) {
    FailBatchWith(&batch, "non-std exception during micro-batch execution");
  }
}

void PcorServer::FailBatchWith(std::vector<Pending>* batch,
                               const char* what) {
  // The engine itself is Status-based and should never throw; a throwing
  // pre_batch_hook (or a bug below us) must surface at every waiting
  // client rather than kill the dispatcher. Every future gets its OWN
  // self-contained ServeError — never one shared refcounted exception
  // object (or a shared COW message buffer), whose teardown would then
  // race across the consumer threads (see ServeError and Future::Get).
  {
    std::unique_lock<std::mutex> stats_lock(stats_mu_);
    ++stats_.batches;
    stats_.max_coalesced = std::max(stats_.max_coalesced, batch->size());
    stats_.failed += batch->size();
  }
  for (Pending& pending : *batch) {
    pending.promise.SetException(std::make_exception_ptr(ServeError(what)));
  }
}

ServerStats PcorServer::stats() const {
  ServerStats snapshot;
  {
    std::unique_lock<std::mutex> stats_lock(stats_mu_);
    snapshot = stats_;
  }
  snapshot.queue_high_water =
      queue_high_water_.load(std::memory_order_relaxed);
  snapshot.epsilon_spent = accountant_.TotalSpent();
  if (stream_ != nullptr) {
    snapshot.epoch = stream_->current_epoch();
    // The tree schedule's position: paid levels times the stream's
    // pinned price, summed over tenants. Under kTreeSchedule this equals
    // the streaming admissions' ledger charges; under kPerRelease it is
    // the advisory what-the-tree-would-have-charged number.
    std::unique_lock<std::mutex> lock(state_mu_);
    for (const auto& [id, state] : clients_) {
      snapshot.tree_epsilon_spent +=
          static_cast<double>(state.levels_paid) * state.level_price;
    }
  }
  return snapshot;
}

}  // namespace pcor
