#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/mpmc_queue.h"
#include "src/common/status.h"
#include "src/serve/budget_accountant.h"

namespace pcor {

/// \brief How the dispatcher picks the next admitted request.
enum class SchedulingPolicy {
  /// One global arrival order across all tenants — the pre-QoS behavior.
  /// A tenant flooding the queue delays everyone admitted after it.
  kFifo,
  /// Deficit round robin over per-tenant FIFO queues: each round a tenant
  /// of weight w earns w units of service credit and is served while its
  /// credit covers the cost of its front request (costs default to 1, so
  /// with unit costs this is classic per-request DRR). Pushers may charge
  /// a request's actual epsilon as its cost, making the fair share hold in
  /// privacy budget per second rather than requests per second — a tenant
  /// of expensive queries cannot crowd out one of cheap queries.
  kWeightedFair,
};

/// \brief Per-tenant quality-of-service configuration, registered on
/// PcorServer::RegisterTenant. Tenants that never register get weight 1,
/// no per-tenant depth bound, and the server-wide epsilon cap.
struct TenantConfig {
  /// Relative scheduling share under kWeightedFair: against a saturating
  /// competitor, a tenant receives weight/(sum of active weights) of the
  /// dispatch slots. Must be finite and positive. Ignored under kFifo.
  double weight = 1.0;
  /// Bound on this tenant's admitted-but-undispatched requests; pushing
  /// past it is a typed door rejection (kResourceExhausted, refunded)
  /// regardless of the backpressure policy — a tenant at its depth bound
  /// must fail fast, never dig into the shared capacity by blocking.
  /// 0 means no per-tenant bound (the global queue_capacity still applies).
  size_t max_queue_depth = 0;
  /// Per-tenant override of ServeOptions::per_client_epsilon_cap; nullopt
  /// inherits the server-wide default.
  std::optional<double> epsilon_cap;
  /// Streaming tree-schedule mode only
  /// (StreamingChargePolicy::kTreeSchedule): this tenant's *level price*
  /// — the epsilon one opened tree level costs, and the ceiling on the
  /// effective per-request epsilon the tenant may submit (a request
  /// priced above the paid level would void the schedule's composition
  /// bound, so admission rejects it with kInvalidArgument). nullopt
  /// inherits the server default, `ServeOptions::release.total_epsilon`.
  /// Must be finite and positive when set. Ignored outside tree-schedule
  /// streaming mode.
  std::optional<double> stream_level_epsilon;
};

/// \brief Rejects non-finite/non-positive weights, negative epsilon caps,
/// and non-finite/non-positive level prices with kInvalidArgument; OK
/// otherwise.
Status ValidateTenantConfig(const TenantConfig& config);

/// \brief Bounded multi-producer single-consumer admission queue with
/// per-tenant sub-queues and a pluggable pick order (FIFO or deficit round
/// robin). The serving dispatcher pops; many client threads push.
///
/// Semantics mirror BoundedMpmcQueue: Push blocks while the *global*
/// capacity is exhausted, TryPush fails fast with kFull, and Close() lets
/// pops drain every accepted element before reporting kClosed. The one
/// addition is the per-tenant depth bound: a push for a tenant at its
/// max_queue_depth returns kTenantFull immediately (never blocks), so one
/// tenant's backlog is surfaced to that tenant alone.
///
/// Fairness: under kWeightedFair each tenant owns a FIFO deque and pops
/// are picked by deficit round robin — on reaching the front of the active
/// list a tenant's deficit grows by its weight and it is served while its
/// credit covers the cost attached to its front request (default 1, i.e.
/// one request per unit of deficit). Requests of one tenant never reorder
/// relative to each other under either policy.
///
/// Thread-safe. Tenant registration may interleave with pushes; a weight
/// update applies from the tenant's next scheduling round.
template <typename T>
class WeightedFairQueue {
 public:
  WeightedFairQueue(size_t global_capacity, SchedulingPolicy policy)
      : capacity_(global_capacity), policy_(policy) {
    PCOR_CHECK(global_capacity > 0) << "queue capacity must be positive";
  }

  WeightedFairQueue(const WeightedFairQueue&) = delete;
  WeightedFairQueue& operator=(const WeightedFairQueue&) = delete;

  /// \brief Creates or updates tenant `id`. `weight` must be positive and
  /// finite (checked by the caller via ValidateTenantConfig; enforced here
  /// with a CHECK). `max_depth` 0 disables the per-tenant bound.
  void RegisterTenant(std::string_view id, double weight, size_t max_depth) {
    PCOR_CHECK(weight > 0.0) << "tenant weight must be positive";
    std::unique_lock<std::mutex> lock(mu_);
    Tenant* tenant = FindOrCreateLocked(id);
    tenant->weight = weight;
    tenant->max_depth = max_depth;
  }

  /// \brief Blocking push: waits while the global capacity is exhausted.
  /// Returns kOk, kTenantFull (depth bound, immediate), or kClosed.
  /// `cost` is the DRR service charge for this request (positive, finite;
  /// default 1 = classic per-request fairness). The server charges each
  /// request's total epsilon so the weighted shares hold in privacy budget
  /// rather than request count. Ignored under kFifo.
  QueueOp Push(std::string_view tenant_id, T item, double cost = 1.0) {
    PCOR_CHECK(std::isfinite(cost) && cost > 0.0)
        << "request cost must be positive and finite";
    std::unique_lock<std::mutex> lock(mu_);
    Tenant* tenant = FindOrCreateLocked(tenant_id);
    while (true) {
      if (closed_) return QueueOp::kClosed;
      if (tenant->max_depth > 0 && tenant->items.size() >= tenant->max_depth) {
        return QueueOp::kTenantFull;
      }
      if (size_ < capacity_) break;
      not_full_.wait(lock);
    }
    PushLocked(tenant, std::move(item), cost);
    lock.unlock();
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// \brief Non-blocking push: kFull when the global capacity is exhausted
  /// (item untouched), otherwise as Push.
  QueueOp TryPush(std::string_view tenant_id, T&& item, double cost = 1.0) {
    PCOR_CHECK(std::isfinite(cost) && cost > 0.0)
        << "request cost must be positive and finite";
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return QueueOp::kClosed;
    Tenant* tenant = FindOrCreateLocked(tenant_id);
    if (tenant->max_depth > 0 && tenant->items.size() >= tenant->max_depth) {
      return QueueOp::kTenantFull;
    }
    if (size_ >= capacity_) return QueueOp::kFull;
    PushLocked(tenant, std::move(item), cost);
    lock.unlock();
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// \brief Blocks until an element is available or the queue is closed
  /// *and* drained.
  QueueOp Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    return PopLocked(out, &lock);
  }

  /// \brief Pop waiting up to `timeout`; kTimedOut when nothing arrived.
  template <typename Rep, typename Period>
  QueueOp PopFor(T* out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool got = not_empty_.wait_for(
        lock, timeout, [this] { return closed_ || size_ > 0; });
    if (!got) return QueueOp::kTimedOut;
    return PopLocked(out, &lock);
  }

  /// \brief Closes the queue: wakes every waiter, fails future pushes,
  /// lets pops drain the remaining elements. Idempotent.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return size_;
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }
  SchedulingPolicy policy() const { return policy_; }

 private:
  /// A queued request with its DRR service charge.
  struct Entry {
    T item;
    double cost = 1.0;
  };

  struct Tenant {
    std::string id;
    double weight = 1.0;
    size_t max_depth = 0;
    std::deque<Entry> items;
    /// DRR state: accumulated service credit, grown by `weight` per round.
    double deficit = 0.0;
    bool active = false;  ///< present in active_ (kWeightedFair only)
  };

  // Tenants are heap-allocated so Tenant* stays stable across rehashes of
  // the index and growth of tenants_.
  Tenant* FindOrCreateLocked(std::string_view id) {
    auto it = index_.find(id);
    if (it != index_.end()) return tenants_[it->second].get();
    tenants_.push_back(std::make_unique<Tenant>());
    Tenant* tenant = tenants_.back().get();
    tenant->id = std::string(id);
    index_.emplace(tenant->id, tenants_.size() - 1);
    return tenant;
  }

  void PushLocked(Tenant* tenant, T item, double cost) {
    tenant->items.push_back(Entry{std::move(item), cost});
    ++size_;
    if (policy_ == SchedulingPolicy::kFifo) {
      arrival_.push_back(tenant);
    } else if (!tenant->active) {
      // A newly active tenant joins the round with zero credit — classic
      // DRR: going idle forfeits any banked deficit, so a tenant cannot
      // save up credit while inactive and later burst past its share.
      tenant->active = true;
      tenant->deficit = 0.0;
      active_.push_back(tenant);
    }
  }

  // Precondition: lock held and (closed_ || size_ > 0).
  QueueOp PopLocked(T* out, std::unique_lock<std::mutex>* lock) {
    if (size_ == 0) return QueueOp::kClosed;
    if (policy_ == SchedulingPolicy::kFifo) {
      Tenant* tenant = arrival_.front();
      arrival_.pop_front();
      *out = std::move(tenant->items.front().item);
      tenant->items.pop_front();
    } else {
      PopWeightedFairLocked(out);
    }
    --size_;
    lock->unlock();
    not_full_.notify_one();
    return QueueOp::kOk;
  }

  // Deficit round robin: the front tenant of the active list is served
  // while its credit covers its front request's cost; when its credit runs
  // out it rotates to the back, earning `weight` more on its next visit —
  // a weight-0.25 tenant with unit costs is served once every four rounds
  // rather than never. When a whole rotation passes without a serve (every
  // active tenant's next request costs more than it earns per round), the
  // remaining rounds are granted in one arithmetic step instead of
  // iterated, so a pathologically small — but valid — weight (say 1e-9 as
  // the only backlogged tenant) or an expensive front request cannot spin
  // this loop a billion times under mu_ and stall every submitter. Cost is
  // O(active tenants) per pop in the worst case.
  void PopWeightedFairLocked(T* out) {
    size_t rotations = 0;
    while (true) {
      PCOR_CHECK(!active_.empty()) << "size_ > 0 with no active tenant";
      Tenant* tenant = active_.front();
      const double cost = tenant->items.front().cost;
      if (tenant->deficit < cost) {
        if (rotations >= active_.size()) {
          // Everyone earned a quantum this rotation and still cannot
          // afford its front request. Advance r whole rounds at once, r
          // chosen so the first tenant to afford its request gets there.
          double rounds = std::numeric_limits<double>::infinity();
          for (Tenant* t : active_) {
            rounds = std::min(
                rounds, std::ceil((t->items.front().cost - t->deficit) /
                                  t->weight));
          }
          rounds = std::max(1.0, rounds);
          for (Tenant* t : active_) t->deficit += rounds * t->weight;
          rotations = 0;
          continue;
        }
        tenant->deficit += tenant->weight;
        if (tenant->deficit < cost) {
          active_.pop_front();
          active_.push_back(tenant);
          ++rotations;
          continue;
        }
      }
      tenant->deficit -= cost;
      *out = std::move(tenant->items.front().item);
      tenant->items.pop_front();
      if (tenant->items.empty()) {
        active_.pop_front();
        tenant->active = false;
        tenant->deficit = 0.0;
      } else if (tenant->deficit < tenant->items.front().cost) {
        // Credit exhausted with work left: yield the front — staying put
        // would re-earn a quantum on the next pop and starve the round.
        active_.pop_front();
        active_.push_back(tenant);
      }
      return;
    }
  }

  const size_t capacity_;
  const SchedulingPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  ClientMap<size_t> index_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::deque<Tenant*> arrival_;  ///< global arrival order (kFifo)
  std::deque<Tenant*> active_;   ///< tenants with pending items (kWeightedFair)
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace pcor
