#pragma once

#include <functional>
#include <limits>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/status.h"

namespace pcor {

/// \brief Transparent hash for string-keyed maps on the serving hot path:
/// lets every lookup take a string_view without materializing a
/// std::string (only first-contact insertion allocates).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

template <typename V>
using ClientMap = std::unordered_map<std::string, V, TransparentStringHash,
                                     std::equal_to<>>;

/// \brief Per-client OCDP budget ledger for the serving front-end.
///
/// Every client (tenant) gets the default epsilon cap unless SetCap
/// installed a per-client override; each admitted release charges its
/// total_epsilon against the submitting client's ledger under sequential
/// composition, and a submission that would push the ledger past the cap
/// is rejected with a typed kPrivacyBudgetExceeded status — never silently
/// clipped to the remaining budget.
///
/// Charging happens at admission (before the release runs): a release that
/// later fails server-side (e.g. NoValidContext) keeps its charge, because
/// the search still consumed the data — refunding it would let a client
/// probe for free by submitting rows it knows cannot release. The one
/// exception is a request rejected *at the door* (queue full, shutdown):
/// no computation touched the data, so the server refunds those.
///
/// Thread-safe; many client threads charge concurrently.
class BudgetAccountant {
 public:
  /// \brief `per_client_cap` in epsilon; infinity disables enforcement.
  explicit BudgetAccountant(
      double per_client_cap = std::numeric_limits<double>::infinity());

  /// \brief Charges `epsilon` to `client_id`, or rejects with
  /// kPrivacyBudgetExceeded (charging nothing) if spent + epsilon would
  /// exceed the client's cap beyond a tiny relative tolerance (so a cap
  /// that is an exact multiple of the per-release cost admits exactly that
  /// many). Thread-safe; never blocks beyond the internal mutex.
  Status Charge(std::string_view client_id, double epsilon);

  /// \brief Returns `epsilon` to `client_id`'s ledger; only for admissions
  /// rolled back before any computation ran (see class comment). Clamps at
  /// zero; refunding an unknown client is a no-op.
  void Refund(std::string_view client_id, double epsilon);

  /// \brief Installs a per-client cap override; subsequent Charge calls
  /// for `client_id` enforce `cap` instead of the default. Already-charged
  /// epsilon is never clawed back — lowering a cap below a client's spend
  /// merely rejects everything further. The server applies this when a
  /// tenant registers with TenantConfig::epsilon_cap set.
  void SetCap(std::string_view client_id, double cap);

  /// \brief Removes `client_id`'s cap override, restoring the default
  /// cap; a no-op for clients without one. The server applies this when a
  /// tenant re-registers with TenantConfig::epsilon_cap unset.
  void ClearCap(std::string_view client_id);

  /// \brief The cap Charge enforces for `client_id` (the default unless a
  /// SetCap override exists).
  double CapFor(std::string_view client_id) const;

  /// \brief Cumulative epsilon charged to `client_id` (0 for strangers).
  double SpentBy(std::string_view client_id) const;

  /// \brief Sum of every client's ledger.
  double TotalSpent() const;

  /// \brief The default cap (clients without a SetCap override).
  double cap() const { return cap_; }
  size_t num_clients() const;

 private:
  double CapForLocked(std::string_view client_id) const;

  const double cap_;
  mutable std::mutex mu_;
  ClientMap<double> spent_;
  ClientMap<double> cap_overrides_;
};

}  // namespace pcor
