#include "src/serve/scheduler.h"

#include <cmath>

#include "src/common/string_util.h"

namespace pcor {

Status ValidateTenantConfig(const TenantConfig& config) {
  if (!std::isfinite(config.weight) || config.weight <= 0.0) {
    return Status::InvalidArgument(strings::Format(
        "tenant weight must be finite and positive, got %g", config.weight));
  }
  if (config.epsilon_cap.has_value() &&
      (std::isnan(*config.epsilon_cap) || *config.epsilon_cap < 0.0)) {
    return Status::InvalidArgument(strings::Format(
        "tenant epsilon_cap must be non-negative, got %g",
        *config.epsilon_cap));
  }
  if (config.stream_level_epsilon.has_value() &&
      (!std::isfinite(*config.stream_level_epsilon) ||
       *config.stream_level_epsilon <= 0.0)) {
    return Status::InvalidArgument(strings::Format(
        "tenant stream_level_epsilon must be finite and positive, got %g",
        *config.stream_level_epsilon));
  }
  return Status::OK();
}

}  // namespace pcor
