#include "src/serve/scheduler.h"

#include <cmath>

#include "src/common/string_util.h"

namespace pcor {

Status ValidateTenantConfig(const TenantConfig& config) {
  if (!std::isfinite(config.weight) || config.weight <= 0.0) {
    return Status::InvalidArgument(strings::Format(
        "tenant weight must be finite and positive, got %g", config.weight));
  }
  if (config.epsilon_cap.has_value() &&
      (std::isnan(*config.epsilon_cap) || *config.epsilon_cap < 0.0)) {
    return Status::InvalidArgument(strings::Format(
        "tenant epsilon_cap must be non-negative, got %g",
        *config.epsilon_cap));
  }
  return Status::OK();
}

}  // namespace pcor
