#include "src/serve/budget_accountant.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace pcor {

namespace {
// Admission tolerance: floating accumulation of k identical charges can
// land a hair above k * epsilon, and a cap set to exactly k * epsilon must
// still admit all k. One part in 2^40 dwarfs any realistic accumulation
// error while staying far below a meaningful epsilon difference.
constexpr double kRelTolerance = 1e-12;
}  // namespace

BudgetAccountant::BudgetAccountant(double per_client_cap)
    : cap_(per_client_cap) {}

Status BudgetAccountant::Charge(std::string_view client_id, double epsilon) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("negative epsilon charge");
  }
  std::unique_lock<std::mutex> lock(mu_);
  auto it = spent_.find(client_id);
  if (it == spent_.end()) {
    it = spent_.emplace(std::string(client_id), 0.0).first;
  }
  double& spent = it->second;
  const double cap = CapForLocked(client_id);
  const double after = spent + epsilon;
  if (after > cap + kRelTolerance * std::max(1.0, cap)) {
    return Status::PrivacyBudgetExceeded(strings::Format(
        "client '%.*s': spent %.6g + requested %.6g exceeds cap %.6g",
        static_cast<int>(client_id.size()), client_id.data(), spent, epsilon,
        cap));
  }
  spent = after;
  return Status::OK();
}

void BudgetAccountant::SetCap(std::string_view client_id, double cap) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = cap_overrides_.find(client_id);
  if (it == cap_overrides_.end()) {
    cap_overrides_.emplace(std::string(client_id), cap);
  } else {
    it->second = cap;
  }
}

void BudgetAccountant::ClearCap(std::string_view client_id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = cap_overrides_.find(client_id);
  if (it != cap_overrides_.end()) cap_overrides_.erase(it);
}

double BudgetAccountant::CapFor(std::string_view client_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  return CapForLocked(client_id);
}

double BudgetAccountant::CapForLocked(std::string_view client_id) const {
  auto it = cap_overrides_.find(client_id);
  return it == cap_overrides_.end() ? cap_ : it->second;
}

void BudgetAccountant::Refund(std::string_view client_id, double epsilon) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = spent_.find(client_id);
  if (it == spent_.end()) return;
  it->second = std::max(0.0, it->second - epsilon);
}

double BudgetAccountant::SpentBy(std::string_view client_id) const {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = spent_.find(client_id);
  return it == spent_.end() ? 0.0 : it->second;
}

double BudgetAccountant::TotalSpent() const {
  std::unique_lock<std::mutex> lock(mu_);
  double total = 0.0;
  for (const auto& [client, spent] : spent_) total += spent;
  return total;
}

size_t BudgetAccountant::num_clients() const {
  std::unique_lock<std::mutex> lock(mu_);
  return spent_.size();
}

}  // namespace pcor
