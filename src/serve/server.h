#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/future.h"
#include "src/common/mpmc_queue.h"
#include "src/common/result.h"
#include "src/search/pcor.h"
#include "src/serve/budget_accountant.h"

namespace pcor {

/// \brief Exception delivered to every future of a micro-batch whose
/// execution threw (e.g. a poisoned pre_batch_hook). Carries the original
/// what() in a fixed inline buffer — deliberately NOT std::runtime_error:
/// its heap message string is refcount-shared on copy under the COW string
/// ABI, and those refcounts live in the uninstrumented C++ runtime, so a
/// message crossing from the dispatcher to client threads would tear down
/// without any TSan-visible synchronization. A self-contained char array
/// copies by value and shares nothing.
class ServeError : public std::exception {
 public:
  explicit ServeError(const char* what) {
    std::snprintf(what_, sizeof(what_), "%s", what);
  }
  const char* what() const noexcept override { return what_; }

 private:
  char what_[256];
};

/// \brief What SubmitAsync does when the admission queue is full.
enum class BackpressurePolicy {
  kBlock,   ///< block the submitting thread until space frees up
  kReject,  ///< fail fast with a typed kResourceExhausted status
};

/// \brief Serving front-end configuration.
struct ServeOptions {
  /// Release configuration every request shares (sampler, epsilon, n, ...).
  PcorOptions release;
  /// Largest micro-batch one dispatch executes. Bigger batches amortize
  /// ThreadPool fan-out and keep the shared verifier cache hot.
  size_t max_batch = 64;
  /// After the first pending request arrives, how long the dispatcher keeps
  /// the batch open for stragglers before executing it anyway.
  size_t max_delay_us = 200;
  /// Bound on requests admitted but not yet dispatched.
  size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Worker threads each micro-batch fans out over (0 = all cores).
  size_t release_threads = 0;
  /// Server seed: every request's Rng stream derives from
  /// (seed, client_id, the client's own submission index) — never from the
  /// micro-batch a request happens to land in.
  uint64_t seed = 2021;
  /// Per-client cumulative epsilon cap (infinity = unlimited).
  double per_client_epsilon_cap = std::numeric_limits<double>::infinity();
  /// Test/instrumentation hook run by the dispatcher immediately before
  /// each micro-batch executes. An exception thrown here propagates to
  /// every future in that batch as a ServeError carrying the original
  /// what() (one fresh exception per future; see FailBatchWith) — the
  /// stress suite uses this to prove that a worker-side crash surfaces at
  /// clients instead of hanging them.
  std::function<void(std::span<const BatchRequest>)> pre_batch_hook;
};

/// \brief Monotonic counters describing a server's lifetime so far.
struct ServerStats {
  size_t submitted = 0;        ///< admissions accepted into the queue
  size_t released = 0;         ///< entries completed with OK status
  size_t failed = 0;           ///< entries completed with an error status
  size_t rejected_budget = 0;  ///< submissions refused: budget cap
  size_t rejected_queue = 0;   ///< submissions refused: queue full/shutdown
  size_t batches = 0;          ///< micro-batches executed
  size_t max_coalesced = 0;    ///< largest micro-batch observed
  size_t hit_probe_cap = 0;    ///< released entries that hit max_probes
  double epsilon_spent = 0.0;  ///< sum of all client ledgers
};

/// \brief Asynchronous serving front-end over PcorEngine::ReleaseBatch.
///
/// Many client threads call SubmitAsync/SubmitMany; a dispatcher thread
/// coalesces pending requests into micro-batches (up to max_batch, waiting
/// at most max_delay_us for stragglers) and executes each on
/// ReleaseBatch with the engine's shared verifier cache, completing one
/// Future<BatchEntry> per request.
///
/// Determinism: a request's Rng stream seed is fixed at admission as
/// RequestSeed(seed, client_id, k) where k is the client's own 0-based
/// submission index. Coalescing shape, dispatch order and thread count
/// therefore cannot perturb any release: the same per-client request
/// sequences produce bit-identical PcorRelease results whether submitted
/// serially, in one giant batch, or raced from 16 threads.
///
/// Privacy: admission charges release.total_epsilon to the client's
/// BudgetAccountant ledger; over-cap submissions are rejected with a typed
/// kPrivacyBudgetExceeded status (see BudgetAccountant for the refund
/// rules).
class PcorServer {
 public:
  /// \brief The engine must outlive the server.
  PcorServer(const PcorEngine& engine, ServeOptions options);

  /// \brief Drains and stops (Shutdown(true)).
  ~PcorServer();

  PcorServer(const PcorServer&) = delete;
  PcorServer& operator=(const PcorServer&) = delete;

  /// \brief Admits one request for `client_id`. Returns the future that
  /// completes with the request's BatchEntry, or a typed error:
  /// kPrivacyBudgetExceeded (cap), kResourceExhausted (queue full under
  /// kReject), kUnavailable (shutting down).
  Result<Future<BatchEntry>> SubmitAsync(const BatchRequest& request,
                                         std::string_view client_id);

  /// \brief Admits many requests for one client, preserving order. Each
  /// request succeeds or fails admission independently (one over-budget
  /// request must not sink the rest).
  std::vector<Result<Future<BatchEntry>>> SubmitMany(
      std::span<const BatchRequest> requests, std::string_view client_id);

  /// \brief Stops the server. `drain` true executes every admitted request
  /// before returning; false completes pending (undispatched) futures with
  /// a kUnavailable entry and refunds their budget charges. Idempotent;
  /// the first call's mode wins.
  void Shutdown(bool drain = true);

  /// \brief The Rng stream seed the server assigns to `client_id`'s k-th
  /// submission. Exposed so tests and replay tooling can predict and
  /// reproduce any served release with PcorEngine::Release.
  static uint64_t RequestSeed(uint64_t server_seed,
                              std::string_view client_id, uint64_t k);

  ServerStats stats() const;
  const BudgetAccountant& accountant() const { return accountant_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    BatchRequest request;  // carries the pinned per-request seed
    Promise<BatchEntry> promise;
    std::string client_id;  // for the abort-path refund
  };

  void DispatcherLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  /// \brief Fails every future in `batch` with its own ServeError carrying
  /// `what` (worker exceptions are rewrapped per future — the message
  /// survives, the concrete type intentionally does not; see ServeError).
  void FailBatchWith(std::vector<Pending>* batch, const char* what);

  const PcorEngine* engine_;
  const ServeOptions options_;
  BudgetAccountant accountant_;
  BoundedMpmcQueue<Pending> queue_;

  std::mutex state_mu_;
  ClientMap<uint64_t> client_seq_;
  bool shutting_down_ = false;
  std::atomic<bool> abort_pending_{false};
  std::mutex shutdown_mu_;  // serializes Shutdown callers

  mutable std::mutex stats_mu_;
  ServerStats stats_;

  std::thread dispatcher_;  // last member: starts in the constructor
};

}  // namespace pcor
