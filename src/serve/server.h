#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/future.h"
#include "src/common/mpmc_queue.h"
#include "src/common/result.h"
#include "src/search/pcor.h"
#include "src/search/streaming.h"
#include "src/search/tree_accountant.h"
#include "src/serve/budget_accountant.h"
#include "src/serve/scheduler.h"

namespace pcor {

/// \brief Exception delivered to every future of a micro-batch whose
/// execution threw (e.g. a poisoned pre_batch_hook). Carries the original
/// what() in a fixed inline buffer — deliberately NOT std::runtime_error:
/// its heap message string is refcount-shared on copy under the COW string
/// ABI, and those refcounts live in the uninstrumented C++ runtime, so a
/// message crossing from the dispatcher to client threads would tear down
/// without any TSan-visible synchronization. A self-contained char array
/// copies by value and shares nothing.
class ServeError : public std::exception {
 public:
  explicit ServeError(const char* what) {
    std::snprintf(what_, sizeof(what_), "%s", what);
  }
  const char* what() const noexcept override { return what_; }

 private:
  char what_[256];
};

/// \brief What SubmitAsync does when the admission queue is full.
enum class BackpressurePolicy {
  kBlock,   ///< block the submitting thread until space frees up
  kReject,  ///< fail fast with a typed kResourceExhausted status
};

/// \brief How streaming-mode admission charges the tenant's epsilon
/// ledger. Classic servers always charge per release; this knob only
/// exists because continual release offers a cheaper schedule whose DP
/// guarantee for PCOR is not yet proven end to end.
enum class StreamingChargePolicy {
  /// Default, and the sound choice: every continual release charges its
  /// full effective epsilon, exactly like classic mode, so
  /// `per_client_epsilon_cap` bounds the tenant's actual privacy loss
  /// under plain sequential composition. The binary-tree schedule is
  /// still computed and reported (ServerStats::tree_epsilon_spent) as
  /// advisory telemetry — what the tree ledger *would* hold.
  kPerRelease,
  /// Opt-in: charge the binary-tree continual-observation schedule
  /// instead — a tenant's ledger after T releases holds
  /// LevelsFor(T) * level_price, O(log T). The level price is pinned per
  /// tenant (`TenantConfig::stream_level_epsilon`, defaulting to
  /// `ServeOptions::release.total_epsilon`), and admission rejects any
  /// request whose effective epsilon exceeds it with kInvalidArgument —
  /// otherwise a tenant could open levels cheaply and ride expensive
  /// releases on them for free. Under this policy the cap bounds the
  /// TREE ledger, not sequential composition: PCOR's releases re-run the
  /// mechanism per release rather than reading once-perturbed partial-sum
  /// nodes, and the full continual-observation OCDP proof is future work
  /// (docs/privacy.md). Opting in is an explicit statement that the
  /// deployment accepts the schedule as its budgeting policy.
  kTreeSchedule,
};

/// \brief Serving front-end configuration.
struct ServeOptions {
  /// Default release configuration (sampler, epsilon, n, ...) for requests
  /// that do not carry their own BatchRequest::options override.
  PcorOptions release;
  /// Dispatch pick order across tenants (see SchedulingPolicy). Either
  /// policy preserves per-tenant submission order, and neither can perturb
  /// any release — seeds are fixed at admission.
  SchedulingPolicy scheduling = SchedulingPolicy::kWeightedFair;
  /// Largest micro-batch one dispatch executes. Bigger batches amortize
  /// ThreadPool fan-out and keep the shared verifier cache hot.
  size_t max_batch = 64;
  /// After the first pending request arrives, how long the dispatcher keeps
  /// the batch open for stragglers before executing it anyway.
  size_t max_delay_us = 200;
  /// Bound on requests admitted but not yet dispatched.
  size_t queue_capacity = 1024;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Worker threads each micro-batch fans out over (0 = all cores).
  /// Trades against `release.intra_release_threads`: deep micro-batches
  /// want cores spent here (entry-level fan-out), while a shallow batch —
  /// one tenant, one huge request, the tail-latency case — wants
  /// release_threads small and intra_release_threads raised so the lone
  /// release's scoring loop owns the cores instead. Neither knob can
  /// perturb any released context; both are latency-only.
  size_t release_threads = 0;
  /// Server seed: every request's Rng stream derives from
  /// (seed, client_id, the client's own submission index) — never from the
  /// micro-batch a request happens to land in.
  uint64_t seed = 2021;
  /// Per-client cumulative epsilon cap (infinity = unlimited).
  double per_client_epsilon_cap = std::numeric_limits<double>::infinity();
  /// Streaming mode only: what the cap meters — full per-release epsilon
  /// (default; sequential composition) or the opt-in binary-tree
  /// schedule. See StreamingChargePolicy for exactly what each bounds.
  StreamingChargePolicy streaming_charge = StreamingChargePolicy::kPerRelease;
  /// Test/instrumentation hook run by the dispatcher immediately before
  /// each micro-batch executes. An exception thrown here propagates to
  /// every future in that batch as a ServeError carrying the original
  /// what() (one fresh exception per future; see FailBatchWith) — the
  /// stress suite uses this to prove that a worker-side crash surfaces at
  /// clients instead of hanging them.
  std::function<void(std::span<const BatchRequest>)> pre_batch_hook;
};

/// \brief Monotonic counters describing a server's lifetime so far.
struct ServerStats {
  size_t submitted = 0;        ///< admissions accepted into the queue
  size_t released = 0;         ///< entries completed with OK status
  size_t failed = 0;           ///< entries completed with an error status
  size_t rejected_budget = 0;  ///< submissions refused: budget cap
  size_t rejected_queue = 0;   ///< submissions refused: queue full/shutdown
  size_t rejected_depth = 0;   ///< submissions refused: tenant depth bound
  size_t rejected_invalid = 0; ///< submissions refused: bad request options
  size_t batches = 0;          ///< micro-batches executed
  size_t max_coalesced = 0;    ///< largest micro-batch observed
  /// Peak admitted-but-undispatched queue depth — with open-loop load the
  /// headline backlog indicator: a queue riding its high-water mark at
  /// capacity is where the coordinated-omission gap accumulates.
  size_t queue_high_water = 0;
  size_t hit_probe_cap = 0;    ///< released entries that hit max_probes
  double epsilon_spent = 0.0;  ///< sum of all client ledgers
  // Streaming mode only (all zero on a classic server):
  size_t appends = 0;          ///< rows accepted by SubmitAppend
  size_t epochs_sealed = 0;    ///< SealEpoch calls accepted
  uint64_t epoch = 0;          ///< current sealed epoch of the stream
  /// What the ledgers would hold under classic per-release charging.
  /// Under StreamingChargePolicy::kPerRelease this equals the streaming
  /// portion of `epsilon_spent`; under kTreeSchedule the schedule's
  /// savings are `naive_epsilon_spent - epsilon_spent`.
  double naive_epsilon_spent = 0.0;
  /// What the binary-tree schedule charges: the sum over tenants of
  /// paid-levels times level price. Under kTreeSchedule this IS the
  /// streaming portion of `epsilon_spent`; under kPerRelease it is
  /// advisory telemetry — what opting into the tree schedule would have
  /// cost.
  double tree_epsilon_spent = 0.0;
};

/// \brief Asynchronous multi-tenant serving front-end over
/// PcorEngine::ReleaseBatch.
///
/// Many client threads call SubmitAsync/SubmitMany; a dispatcher thread
/// picks admitted requests in scheduler order (weighted-fair across
/// tenants by default, see ServeOptions::scheduling), coalesces them into
/// micro-batches (up to max_batch, waiting at most max_delay_us for
/// stragglers) and executes each on ReleaseBatch with the engine's shared
/// verifier cache, completing one Future<BatchEntry> per request. A
/// request may carry its own PcorOptions (BatchRequest::options),
/// validated at admission; entries with differing options execute as
/// homogeneous sub-batches of the same micro-batch.
///
/// Determinism: a request's Rng stream seed is fixed at admission as
/// RequestSeed(seed, client_id, k) where k is the client's own 0-based
/// submission index. Coalescing shape, scheduling policy, dispatch order
/// and thread count therefore cannot perturb any release: the same
/// per-client request sequences produce bit-identical PcorRelease results
/// whether submitted serially, in one giant batch, or raced from 16
/// threads, under FIFO or weighted-fair scheduling.
///
/// Privacy: admission charges the request's effective total_epsilon to the
/// client's BudgetAccountant ledger; over-cap submissions are rejected
/// with a typed kPrivacyBudgetExceeded status (see BudgetAccountant for
/// the refund rules).
///
/// Streaming mode (construct over a StreamingPcorEngine): SubmitAppend /
/// SealEpoch grow the stream, and every dispatched micro-batch pins ONE
/// epoch snapshot — a batch never straddles epochs, so its entries all
/// report the same PcorRelease::epoch. What admission charges is set by
/// ServeOptions::streaming_charge: under the default kPerRelease every
/// release pays its full effective epsilon (the cap bounds sequential
/// composition, same as classic mode, with the tree schedule reported as
/// telemetry); under the opt-in kTreeSchedule the tenant's k-th
/// submission sits at stream position t = k + 1 and pays
/// (LevelsFor(t) - levels already paid) * level_price, where the level
/// price is pinned per tenant (TenantConfig::stream_level_epsilon,
/// defaulting to ServeOptions::release.total_epsilon) and requests whose
/// effective epsilon exceeds it are rejected with kInvalidArgument — so
/// a tenant's ledger after T admissions holds LevelsFor(T) * price,
/// O(log T), and a fixed cap admits exponentially more continual
/// releases than per-release charging (docs/streaming.md works the
/// arithmetic; docs/privacy.md states what each policy's cap bounds).
/// The stream position doubles as the Rng stream index, so determinism
/// is unchanged: identical append/seal/submit interleavings at epoch
/// granularity are bit-identical at any thread count. A budget rejection
/// hands the slot straight back (slot claim and charge are atomic); a
/// door rejection after admission (queue full, tenant depth) returns the
/// slot and refunds only when no later submission of the same tenant has
/// claimed the next slot — a slot that cannot be returned is burned and
/// KEEPS any level charge tied to it, so later positions never ride on
/// an unpaid level (over-charging is the safe direction). Once
/// dispatched, charges stick — including entries failed for lack of a
/// sealed epoch.
///
/// Thread-safety: every public method may be called concurrently from any
/// thread. SubmitAsync blocks only under BackpressurePolicy::kBlock with a
/// full queue; Shutdown blocks until the dispatcher exits.
class PcorServer {
 public:
  /// \brief The engine must outlive the server.
  PcorServer(const PcorEngine& engine, ServeOptions options);

  /// \brief Streaming mode: serve continual releases over an evolving
  /// stream. The streaming engine must outlive the server. The server
  /// charges tenants at admission per ServeOptions::streaming_charge and
  /// is then the authoritative ledger — it drives
  /// PcorEngine::ReleaseBatch on pinned snapshots directly and does NOT
  /// also run the engine-level StreamingPcorEngine accountant (which
  /// meters the single-owner ReleaseAsOfNow path).
  PcorServer(StreamingPcorEngine& stream, ServeOptions options);

  /// \brief Drains and stops (Shutdown(true)).
  ~PcorServer();

  PcorServer(const PcorServer&) = delete;
  PcorServer& operator=(const PcorServer&) = delete;

  /// \brief Creates or updates tenant `tenant_id`'s QoS configuration:
  /// scheduling weight, queue-depth bound, the per-tenant epsilon cap
  /// override on the BudgetAccountant, and (streaming tree-schedule mode)
  /// the tenant's level price. Each call upserts the whole config: an
  /// unset epsilon_cap / stream_level_epsilon restores inheritance of the
  /// server-wide default (it never keeps an earlier registration's
  /// override). May be called before or after the tenant's first
  /// submission, from any thread; weight/depth apply from the next
  /// scheduling decision, the cap from the next admission. The level
  /// price is pinned when the tenant's stream starts (its first
  /// admission): re-registering re-prices only a stream that has not
  /// started yet — a started stream keeps the price its paid levels were
  /// bought at, so registration can never cheapen levels retroactively.
  /// Returns kInvalidArgument for a non-positive or non-finite weight, a
  /// negative/NaN epsilon cap, or a non-positive/non-finite level price.
  /// Never blocks.
  Status RegisterTenant(std::string_view tenant_id,
                        const TenantConfig& config);

  /// \brief Admits one request for `client_id`. Returns the future that
  /// completes with the request's BatchEntry, or a typed error:
  /// kInvalidArgument (per-request options fail ValidatePcorOptions;
  /// nothing charged), kPrivacyBudgetExceeded (cap), kResourceExhausted
  /// (tenant depth bound, or queue full under kReject), kUnavailable
  /// (shutting down). Blocks only when the global queue is full under
  /// BackpressurePolicy::kBlock — a tenant at its own depth bound is
  /// rejected immediately and its charge refunded.
  Result<Future<BatchEntry>> SubmitAsync(const BatchRequest& request,
                                         std::string_view client_id);

  /// \brief Admits many requests for one client, preserving order. Each
  /// request succeeds or fails admission independently (one over-budget
  /// request must not sink the rest).
  std::vector<Result<Future<BatchEntry>>> SubmitMany(
      std::span<const BatchRequest> requests, std::string_view client_id);

  /// \brief Streaming mode: buffers one validated row in the stream's
  /// mutable tail (invisible to probes until the next SealEpoch).
  /// kFailedPrecondition on a classic server, kUnavailable after
  /// Shutdown, else the StreamingPcorEngine::Append status.
  Status SubmitAppend(const Row& row);
  /// \brief Buffers many rows; stops at the first invalid row (earlier
  /// rows stay buffered — they were valid).
  Status SubmitAppends(std::span<const Row> rows);

  /// \brief Streaming mode: seals every buffered row into a new immutable
  /// epoch snapshot and returns the new epoch id (sealed row count).
  /// Requests admitted before the seal may execute against either epoch —
  /// each micro-batch pins whichever snapshot is current at dispatch, and
  /// every entry reports its epoch. kFailedPrecondition on a classic
  /// server, kUnavailable after Shutdown.
  Result<uint64_t> SealEpoch();

  /// \brief True when constructed over a StreamingPcorEngine.
  bool streaming() const { return stream_ != nullptr; }

  /// \brief Stops the server. `drain` true executes every admitted request
  /// before returning; false completes pending (undispatched) futures with
  /// a kUnavailable entry and refunds their budget charges. Idempotent;
  /// the first call's mode wins.
  void Shutdown(bool drain = true);

  /// \brief The Rng stream seed the server assigns to `client_id`'s k-th
  /// submission. Exposed so tests and replay tooling can predict and
  /// reproduce any served release with PcorEngine::Release.
  static uint64_t RequestSeed(uint64_t server_seed,
                              std::string_view client_id, uint64_t k);

  /// \brief Snapshot of the lifetime counters; consistent within one call,
  /// thread-safe, never blocks on the dispatcher.
  ServerStats stats() const;
  /// \brief The per-tenant epsilon ledger (thread-safe; see
  /// BudgetAccountant for the charge/refund contract).
  const BudgetAccountant& accountant() const { return accountant_; }
  const ServeOptions& options() const { return options_; }

 private:
  struct Pending {
    BatchRequest request;  // carries the pinned seed + options override
    Promise<BatchEntry> promise;
    std::string client_id;  // for the abort-path refund
    double cost = 0.0;      // epsilon charged at admission (refund amount)
    // Streaming mode: the tenant's 1-based stream position (0 on a classic
    // server) and the classic per-release epsilon (for
    // ServerStats::naive_epsilon_spent bookkeeping; equals `cost` under
    // StreamingChargePolicy::kPerRelease).
    uint64_t stream_index = 0;
    double naive_cost = 0.0;
  };

  /// Per-tenant admission state. `seq` counts admitted submissions (the
  /// next submission takes stream position seq + 1 and Rng stream index
  /// seq). `levels_paid` is streaming-mode tree-schedule state: the tree
  /// levels whose price the tenant's ledger currently holds under
  /// kTreeSchedule, or would hold under kPerRelease (telemetry). It can
  /// exceed LevelsFor(seq) after a burned level-opening slot — by design:
  /// the burned slot kept its charge, so the level stays paid.
  /// `level_price` is pinned from level_price_ / the server default when
  /// the tenant's stream starts (first admission, or first after a full
  /// roll-back to zero), so one stream's levels are all priced alike: a
  /// re-registration can never cheapen or retroactively re-price levels
  /// already bought.
  struct StreamState {
    uint64_t seq = 0;
    uint64_t levels_paid = 0;
    double level_price = 0.0;
  };

  void DispatcherLoop();
  void ExecuteBatch(std::vector<Pending> batch);
  /// \brief Fails every future in `batch` with its own ServeError carrying
  /// `what` (worker exceptions are rewrapped per future — the message
  /// survives, the concrete type intentionally does not; see ServeError).
  void FailBatchWith(std::vector<Pending>* batch, const char* what);

  const PcorEngine* engine_;          // null in streaming mode
  StreamingPcorEngine* stream_;       // null in classic mode
  const ServeOptions options_;
  BudgetAccountant accountant_;
  WeightedFairQueue<Pending> queue_;

  mutable std::mutex state_mu_;
  ClientMap<StreamState> clients_;
  /// Streaming mode: per-tenant level-price overrides
  /// (TenantConfig::stream_level_epsilon); tenants without one pay the
  /// server default, options_.release.total_epsilon.
  ClientMap<double> level_price_;
  bool shutting_down_ = false;
  std::atomic<bool> abort_pending_{false};
  std::mutex shutdown_mu_;  // serializes Shutdown callers

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  /// Admitted-but-undispatched depth and its lifetime peak, kept outside
  /// stats_mu_ so the hot push/pop paths stay lock-free for this.
  std::atomic<size_t> queued_{0};
  std::atomic<size_t> queue_high_water_{0};

  std::thread dispatcher_;  // last member: starts in the constructor
};

}  // namespace pcor
