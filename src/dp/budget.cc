#include "src/dp/budget.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pcor {

std::string SamplerKindName(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kDirect:
      return "direct";
    case SamplerKind::kUniform:
      return "uniform";
    case SamplerKind::kRandomWalk:
      return "random_walk";
    case SamplerKind::kDfs:
      return "dfs";
    case SamplerKind::kBfs:
      return "bfs";
  }
  return "unknown";
}

Result<SamplerKind> SamplerKindFromName(const std::string& name) {
  if (name == "direct") return SamplerKind::kDirect;
  if (name == "uniform") return SamplerKind::kUniform;
  if (name == "random_walk" || name == "rwalk") return SamplerKind::kRandomWalk;
  if (name == "dfs") return SamplerKind::kDfs;
  if (name == "bfs") return SamplerKind::kBfs;
  return Status::NotFound("no sampler named '" + name + "'");
}

double Epsilon1ForTotal(SamplerKind kind, double total_epsilon,
                        size_t num_samples) {
  PCOR_CHECK(total_epsilon > 0) << "total epsilon must be positive";
  switch (kind) {
    case SamplerKind::kDirect:
    case SamplerKind::kUniform:
    case SamplerKind::kRandomWalk:
      return total_epsilon / 2.0;
    case SamplerKind::kDfs:
    case SamplerKind::kBfs:
      return total_epsilon /
             (2.0 * static_cast<double>(num_samples) + 2.0);
  }
  return total_epsilon / 2.0;
}

double TotalForEpsilon1(SamplerKind kind, double epsilon1,
                        size_t num_samples) {
  PCOR_CHECK(epsilon1 > 0) << "epsilon1 must be positive";
  switch (kind) {
    case SamplerKind::kDirect:
    case SamplerKind::kUniform:
    case SamplerKind::kRandomWalk:
      return 2.0 * epsilon1;
    case SamplerKind::kDfs:
    case SamplerKind::kBfs:
      return (2.0 * static_cast<double>(num_samples) + 2.0) * epsilon1;
  }
  return 2.0 * epsilon1;
}

PrivacyAccountant::PrivacyAccountant(double budget) : budget_(budget) {
  PCOR_CHECK(budget > 0) << "privacy budget must be positive";
}

Status PrivacyAccountant::Charge(double epsilon) {
  if (epsilon <= 0) {
    return Status::InvalidArgument("charged epsilon must be positive");
  }
  if (!CanAfford(epsilon)) {
    return Status::PrivacyBudgetExceeded(strings::Format(
        "charge %.6g exceeds remaining budget %.6g", epsilon, remaining()));
  }
  spent_ += epsilon;
  ++releases_;
  return Status::OK();
}

bool PrivacyAccountant::CanAfford(double epsilon) const {
  // Tolerate tiny floating error so budget==sum-of-charges works exactly.
  return spent_ + epsilon <= budget_ * (1.0 + 1e-12) + 1e-15;
}

}  // namespace pcor
