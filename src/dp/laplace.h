#pragma once

#include "src/common/random.h"
#include "src/common/result.h"

namespace pcor {

/// \brief The Laplace mechanism for numeric queries: value + Lap(sens/eps).
///
/// Not used by the core PCOR release path (contexts are categorical, so the
/// Exponential mechanism applies), but part of any DP toolbox: the examples
/// use it to publish noisy population counts *alongside* a released
/// context, and the budget accountant composes both releases.
class LaplaceMechanism {
 public:
  LaplaceMechanism(double epsilon, double sensitivity);

  /// \brief One noisy answer.
  double AddNoise(double value, Rng* rng) const;

  /// \brief Noisy count clamped to be non-negative (post-processing, free).
  double NoisyCount(size_t count, Rng* rng) const;

  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

 private:
  double epsilon_;
  double sensitivity_;
};

}  // namespace pcor
