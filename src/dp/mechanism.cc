#include "src/dp/mechanism.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace pcor {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ExponentialMechanism::ExponentialMechanism(double epsilon1,
                                           double sensitivity,
                                           ExpMechSampling sampling)
    : epsilon1_(epsilon1), sensitivity_(sensitivity), sampling_(sampling) {
  PCOR_CHECK(epsilon1 > 0) << "epsilon1 must be positive";
  PCOR_CHECK(sensitivity > 0) << "sensitivity must be positive";
}

Result<size_t> ExponentialMechanism::Choose(const std::vector<double>& scores,
                                            Rng* rng) const {
  if (scores.empty()) {
    return Status::NoValidContext("Exponential mechanism got no candidates");
  }
  const double scale = epsilon1_ / (2.0 * sensitivity_);

  if (sampling_ == ExpMechSampling::kGumbel) {
    double best = -kInf;
    size_t arg = scores.size();
    for (size_t i = 0; i < scores.size(); ++i) {
      if (scores[i] == -kInf) continue;
      const double key = scale * scores[i] + rng->NextGumbel();
      if (arg == scores.size() || key > best) {
        best = key;
        arg = i;
      }
    }
    if (arg == scores.size()) {
      return Status::NoValidContext(
          "every candidate has -inf utility; nothing valid to release");
    }
    return arg;
  }

  // Normalized inverse-CDF sampling in log space.
  std::vector<double> logw(scores.size(), -kInf);
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] != -kInf) logw[i] = scale * scores[i];
  }
  const double lse = math::LogSumExp(logw);
  if (lse == -kInf) {
    return Status::NoValidContext(
        "every candidate has -inf utility; nothing valid to release");
  }
  const double target = rng->NextDoublePositive();
  double cum = 0.0;
  size_t last_valid = scores.size();
  for (size_t i = 0; i < logw.size(); ++i) {
    if (logw[i] == -kInf) continue;
    last_valid = i;
    cum += std::exp(logw[i] - lse);
    if (target <= cum) return i;
  }
  return last_valid;  // floating-point slack: return final valid candidate
}

std::vector<double> ExponentialMechanism::Probabilities(
    const std::vector<double>& scores) const {
  const double scale = epsilon1_ / (2.0 * sensitivity_);
  std::vector<double> logw(scores.size(), -kInf);
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] != -kInf) logw[i] = scale * scores[i];
  }
  return math::Softmax(logw);
}

}  // namespace pcor
