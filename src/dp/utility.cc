#include "src/dp/utility.h"

#include <limits>

namespace pcor {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

PopulationSizeUtility::PopulationSizeUtility(const OutlierVerifier& verifier)
    : verifier_(&verifier) {}

double PopulationSizeUtility::Score(const ContextVec& c,
                                    uint32_t v_row) const {
  if (!verifier_->IsOutlierInContext(c, v_row)) return kNegInf;
  return static_cast<double>(verifier_->index().PopulationCount(c));
}

OverlapUtility::OverlapUtility(const OutlierVerifier& verifier,
                               const ContextVec& starting_context)
    : verifier_(&verifier),
      starting_context_(starting_context),
      starting_population_(verifier.index().PopulationOf(starting_context)) {}

double OverlapUtility::Score(const ContextVec& c, uint32_t v_row) const {
  if (!verifier_->IsOutlierInContext(c, v_row)) return kNegInf;
  // Per-thread scratch: Score runs on every probe of every sampler thread,
  // so it must not allocate a fresh |D|-bit population each time.
  thread_local PopulationScratch scratch;
  verifier_->index().PopulationInto(c, &scratch.population,
                                    &scratch.attr_union);
  return static_cast<double>(
      scratch.population.AndCount(starting_population_));
}

std::unique_ptr<UtilityFunction> MakeUtility(
    UtilityKind kind, const OutlierVerifier& verifier,
    const ContextVec& starting_context) {
  switch (kind) {
    case UtilityKind::kPopulationSize:
      return std::make_unique<PopulationSizeUtility>(verifier);
    case UtilityKind::kOverlapWithStart:
      return std::make_unique<OverlapUtility>(verifier, starting_context);
  }
  return nullptr;
}

std::string UtilityKindName(UtilityKind kind) {
  switch (kind) {
    case UtilityKind::kPopulationSize:
      return "population_size";
    case UtilityKind::kOverlapWithStart:
      return "overlap";
  }
  return "unknown";
}

}  // namespace pcor
