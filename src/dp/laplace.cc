#include "src/dp/laplace.h"

#include <algorithm>

#include "src/common/logging.h"

namespace pcor {

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity)
    : epsilon_(epsilon), sensitivity_(sensitivity) {
  PCOR_CHECK(epsilon > 0) << "epsilon must be positive";
  PCOR_CHECK(sensitivity > 0) << "sensitivity must be positive";
}

double LaplaceMechanism::AddNoise(double value, Rng* rng) const {
  return value + rng->NextLaplace(sensitivity_ / epsilon_);
}

double LaplaceMechanism::NoisyCount(size_t count, Rng* rng) const {
  return std::max(0.0, AddNoise(static_cast<double>(count), rng));
}

}  // namespace pcor
