#pragma once

#include "src/common/result.h"
#include "src/context/coe.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief Output-Constrained Differential Privacy (Definition 2.5) tooling.
///
/// OCDP conditions the DP guarantee on f-neighboring datasets — pairs
/// (D1, D2) differing in one record with COE(D1, V) = COE(D2, V). The
/// functions here measure, per Section 6.7: (i) how often that equality
/// holds in practice (Tables 12/13), and (ii) when it does not, whether the
/// empirical selection-probability ratio over the shared contexts still
/// respects the e^epsilon bound of unconstrained DP.
struct EmpiricalPrivacyResult {
  CoeMatch match;          ///< COE(D1,V) vs COE(D2,V)
  bool coe_equal = false;  ///< the OCDP f-neighbor condition
  /// Max over shared contexts of max(P1/P2, P2/P1) for the direct
  /// Exponential-mechanism release with population-size utility.
  double max_ratio = 1.0;
  double epsilon_bound = 0.0;  ///< 2 * eps1 * sensitivity
  bool within_bound = true;    ///< max_ratio <= exp(epsilon_bound)
  size_t shared_contexts = 0;
};

/// \brief Measures the empirical privacy ratio between a dataset and one of
/// its neighbors for outlier rows `row1` (in D1) / `row2` (in D2) — they
/// must denote the same individual. `eps1` is the Exponential-mechanism
/// parameter; sensitivity is taken from population-size utility (1).
Result<EmpiricalPrivacyResult> MeasureEmpiricalPrivacy(
    const OutlierVerifier& verifier1, const OutlierVerifier& verifier2,
    uint32_t row1, uint32_t row2, double eps1,
    const CoeOptions& coe_options = {});

}  // namespace pcor
