#include "src/dp/ocdp.h"

#include <algorithm>
#include <cmath>

#include "src/dp/mechanism.h"
#include "src/dp/utility.h"

namespace pcor {

Result<EmpiricalPrivacyResult> MeasureEmpiricalPrivacy(
    const OutlierVerifier& verifier1, const OutlierVerifier& verifier2,
    uint32_t row1, uint32_t row2, double eps1,
    const CoeOptions& coe_options) {
  PCOR_ASSIGN_OR_RETURN(std::vector<ContextVec> coe1,
                        EnumerateCoe(verifier1, row1, coe_options));
  PCOR_ASSIGN_OR_RETURN(std::vector<ContextVec> coe2,
                        EnumerateCoe(verifier2, row2, coe_options));

  EmpiricalPrivacyResult out;
  out.match = CompareCoe(coe1, coe2);
  out.coe_equal = out.match.only_left == 0 && out.match.only_right == 0;

  // Selection probabilities of the direct release (Algorithm 1) with
  // population-size utility on each dataset.
  PopulationSizeUtility u1(verifier1);
  PopulationSizeUtility u2(verifier2);
  std::vector<double> s1(coe1.size()), s2(coe2.size());
  for (size_t i = 0; i < coe1.size(); ++i) s1[i] = u1.Score(coe1[i], row1);
  for (size_t i = 0; i < coe2.size(); ++i) s2[i] = u2.Score(coe2[i], row2);

  ExponentialMechanism mech(eps1, /*sensitivity=*/1.0);
  const std::vector<double> p1 = mech.Probabilities(s1);
  const std::vector<double> p2 = mech.Probabilities(s2);
  out.epsilon_bound = mech.EpsilonPerDraw();

  // Walk the sorted COE lists in lockstep; compare probabilities on the
  // intersection.
  size_t i = 0, j = 0;
  double max_ratio = 1.0;
  while (i < coe1.size() && j < coe2.size()) {
    if (coe1[i] == coe2[j]) {
      if (p1[i] > 0 && p2[j] > 0) {
        max_ratio = std::max({max_ratio, p1[i] / p2[j], p2[j] / p1[i]});
        ++out.shared_contexts;
      }
      ++i;
      ++j;
    } else if (coe1[i] < coe2[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  out.max_ratio = max_ratio;
  out.within_bound = max_ratio <= std::exp(out.epsilon_bound) * (1 + 1e-9);
  return out;
}

}  // namespace pcor
