#pragma once

#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"

namespace pcor {

/// \brief Sampling strategy for the Exponential mechanism.
enum class ExpMechSampling {
  /// Gumbel-max trick: argmax_i (eps1*u_i/(2*sens) + Gumbel_i). Exactly the
  /// Exponential mechanism's distribution, numerically robust for widely
  /// spread scores.
  kGumbel,
  /// Normalized inverse-CDF sampling in log space (explicit probabilities).
  kNormalized,
};

/// \brief The Exponential mechanism of McSherry-Talwar (Definition 2.3):
/// choose candidate r with probability proportional to
/// exp(eps1 * u(D, r) / (2 * sensitivity)).
///
/// Candidates with score -infinity (the paper's encoding of non-valid
/// contexts) have exactly zero probability. By Theorem 2.1 a draw from this
/// mechanism is (2 * eps1 * sensitivity)-differentially private; the budget
/// accounting in dp/budget.h builds on that.
class ExponentialMechanism {
 public:
  ExponentialMechanism(double epsilon1, double sensitivity,
                       ExpMechSampling sampling = ExpMechSampling::kGumbel);

  /// \brief Draws one index from `scores`. Fails with NoValidContext when
  /// every score is -infinity or the vector is empty.
  Result<size_t> Choose(const std::vector<double>& scores, Rng* rng) const;

  /// \brief Exact selection probabilities (softmax of eps1*u/(2*sens)).
  /// Used by tests and by the empirical OCDP experiments of Section 6.7.
  std::vector<double> Probabilities(const std::vector<double>& scores) const;

  double epsilon1() const { return epsilon1_; }
  double sensitivity() const { return sensitivity_; }

  /// \brief Privacy cost of one draw: 2 * eps1 * sensitivity (Theorem 2.1).
  double EpsilonPerDraw() const { return 2.0 * epsilon1_ * sensitivity_; }

 private:
  double epsilon1_;
  double sensitivity_;
  ExpMechSampling sampling_;
};

}  // namespace pcor
