#pragma once

#include <string>

#include "src/common/result.h"

namespace pcor {

/// \brief The five release algorithms of the paper, by sampling layer.
enum class SamplerKind {
  kDirect,      ///< Algorithm 1 — exhaustive COE + Exponential mechanism
  kUniform,     ///< Algorithm 2 — uniform candidate sampling
  kRandomWalk,  ///< Algorithm 3 — random walk on the context graph
  kDfs,         ///< Algorithm 4 — differentially private depth-first search
  kBfs,         ///< Algorithm 5 — differentially private breadth-first search
};

std::string SamplerKindName(SamplerKind kind);
Result<SamplerKind> SamplerKindFromName(const std::string& name);

/// \brief OCDP budget accounting for each algorithm.
///
/// Per Theorems 4.1/5.1/5.3, Direct, Uniform and Random-walk spend
/// epsilon = 2*eps1 (one Exponential-mechanism draw decides the output).
/// Per Theorems 5.5/5.7, DP-DFS and DP-BFS spend epsilon = (2n+2)*eps1:
/// every one of the n internal selection steps leaks 2*eps1 and the final
/// draw adds 2*eps1 more. These helpers convert between the total OCDP
/// budget and the per-draw eps1 (assuming sensitivity 1, the utility
/// functions' contract).
double Epsilon1ForTotal(SamplerKind kind, double total_epsilon,
                        size_t num_samples);
double TotalForEpsilon1(SamplerKind kind, double epsilon1,
                        size_t num_samples);

/// \brief Tracks cumulative privacy spend across multiple releases against
/// a fixed budget (sequential composition).
class PrivacyAccountant {
 public:
  explicit PrivacyAccountant(double budget);

  /// \brief Records a release costing `epsilon`; fails (and records
  /// nothing) if it would exceed the budget.
  Status Charge(double epsilon);

  /// \brief True when a release costing `epsilon` would still fit.
  bool CanAfford(double epsilon) const;

  double budget() const { return budget_; }
  double spent() const { return spent_; }
  double remaining() const { return budget_ - spent_; }
  size_t releases() const { return releases_; }

 private:
  double budget_;
  double spent_ = 0.0;
  size_t releases_ = 0;
};

}  // namespace pcor
