#pragma once

#include <memory>
#include <string>

#include "src/common/bitvector.h"
#include "src/context/context.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief Utility function u_V(D, C) scoring candidate contexts for an
/// outlier V (Section 3.2). Non-matching contexts must score -infinity so
/// the Exponential mechanism assigns them zero probability (property (a) of
/// Definition 3.2 — the released context is always valid). Sensitivity must
/// stay small (ideally 1) for the privacy bounds to be meaningful.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  virtual std::string name() const = 0;

  /// \brief u_V(D, C); -infinity when f_M(D_C, V) is false.
  virtual double Score(const ContextVec& c, uint32_t v_row) const = 0;

  /// \brief Delta-u: max change of Score under one record add/remove.
  virtual double sensitivity() const { return 1.0; }
};

/// \brief Population-size utility (Section 3.2.1): u = |D_C| for matching
/// contexts. A larger population indicates a more significant outlier.
/// Sensitivity 1 — one record changes any population by at most 1.
class PopulationSizeUtility : public UtilityFunction {
 public:
  explicit PopulationSizeUtility(const OutlierVerifier& verifier);

  std::string name() const override { return "population_size"; }
  double Score(const ContextVec& c, uint32_t v_row) const override;

 private:
  const OutlierVerifier* verifier_;
};

/// \brief Overlap utility (Section 3.2.2): u = |D_C ∩ D_{C_V}| for matching
/// contexts, where C_V is a chosen/starting context fixed at construction.
/// Sensitivity 1.
class OverlapUtility : public UtilityFunction {
 public:
  OverlapUtility(const OutlierVerifier& verifier,
                 const ContextVec& starting_context);

  std::string name() const override { return "overlap"; }
  double Score(const ContextVec& c, uint32_t v_row) const override;

  const ContextVec& starting_context() const { return starting_context_; }

 private:
  const OutlierVerifier* verifier_;
  ContextVec starting_context_;
  BitVector starting_population_;  // precomputed D_{C_V}
};

/// \brief Utility families selectable through PcorOptions.
enum class UtilityKind {
  kPopulationSize,
  kOverlapWithStart,
};

/// \brief Factory: builds the utility for `kind`. For kOverlapWithStart the
/// starting context must be the sampler's C_V.
std::unique_ptr<UtilityFunction> MakeUtility(
    UtilityKind kind, const OutlierVerifier& verifier,
    const ContextVec& starting_context);

/// \brief Stable name for reports.
std::string UtilityKindName(UtilityKind kind);

}  // namespace pcor
