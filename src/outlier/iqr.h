#pragma once

#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the interquartile-range (Tukey fence) detector.
struct IqrOptions {
  /// Fence multiplier: outliers fall outside
  /// [Q1 - multiplier*IQR, Q3 + multiplier*IQR].
  double multiplier = 1.5;
  size_t min_population = 8;
};

/// \brief Classic Tukey-fence detector. Not part of the paper's evaluated
/// trio, but PCOR claims compatibility with *any* deterministic detector
/// (contribution 4); this detector exercises that claim in tests, examples
/// and the extension benchmarks.
class IqrDetector : public OutlierDetector {
 public:
  explicit IqrDetector(IqrOptions options = {});

  std::string name() const override { return "iqr"; }
  using OutlierDetector::Detect;
  void Detect(std::span<const double> values,
              std::vector<size_t>* flagged) const override;
  size_t min_population() const override { return options_.min_population; }

 private:
  IqrOptions options_;
};

}  // namespace pcor
