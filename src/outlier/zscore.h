#pragma once

#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the z-score detector.
struct ZscoreOptions {
  /// Points with |x - mean| / stddev above this are flagged.
  double threshold = 3.0;
  size_t min_population = 8;
};

/// \brief Plain z-score thresholding — the simplest statistics-based
/// detector, used as a fast baseline in tests and extension benchmarks.
class ZscoreDetector : public OutlierDetector {
 public:
  explicit ZscoreDetector(ZscoreOptions options = {});

  std::string name() const override { return "zscore"; }
  using OutlierDetector::Detect;
  void Detect(std::span<const double> values,
              std::vector<size_t>* flagged) const override;
  size_t min_population() const override { return options_.min_population; }

 private:
  ZscoreOptions options_;
};

}  // namespace pcor
