#include "src/outlier/histogram_detector.h"

#include <algorithm>
#include <cmath>

namespace pcor {

HistogramDetector::HistogramDetector(HistogramDetectorOptions options)
    : options_(options) {}

void HistogramDetector::Detect(std::span<const double> values,
                               std::vector<size_t>* flagged) const {
  flagged->clear();
  const size_t n = values.size();
  if (n < options_.min_population) return;

  const auto [min_it, max_it] = std::minmax_element(values.begin(),
                                                    values.end());
  const double lo = *min_it;
  const double hi = *max_it;
  if (!(hi > lo)) return;  // constant sample

  const size_t bins = std::max<size_t>(
      1, static_cast<size_t>(std::llround(std::sqrt(
             static_cast<double>(n)))));
  const double width = (hi - lo) / static_cast<double>(bins);

  auto bin_of = [&](double x) {
    long b = static_cast<long>((x - lo) / width);
    if (b < 0) b = 0;
    if (b >= static_cast<long>(bins)) b = static_cast<long>(bins) - 1;
    return static_cast<size_t>(b);
  };

  thread_local std::vector<size_t> counts;
  counts.assign(bins, 0);
  for (double v : values) ++counts[bin_of(v)];

  const double threshold =
      options_.frequency_fraction * static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = counts[bin_of(values[i])];
    if (static_cast<double>(c) < threshold) flagged->push_back(i);
  }
}

}  // namespace pcor
