#include "src/outlier/histogram_detector.h"

#include <algorithm>
#include <cmath>

#include "src/common/simd.h"

namespace pcor {

HistogramDetector::HistogramDetector(HistogramDetectorOptions options)
    : options_(options) {}

void HistogramDetector::Detect(std::span<const double> values,
                               std::vector<size_t>* flagged) const {
  flagged->clear();
  const size_t n = values.size();
  if (n < options_.min_population) return;

  const simd::MinMax mm = simd::MinMaxOf(values);
  const double lo = mm.min;
  const double hi = mm.max;
  if (!(hi > lo)) return;  // constant sample

  const size_t bins = std::max<size_t>(
      1, static_cast<size_t>(std::llround(std::sqrt(
             static_cast<double>(n)))));
  const double width = (hi - lo) / static_cast<double>(bins);

  auto bin_of = [&](double x) {
    long b = static_cast<long>((x - lo) / width);
    if (b < 0) b = 0;
    if (b >= static_cast<long>(bins)) b = static_cast<long>(bins) - 1;
    return static_cast<size_t>(b);
  };

  thread_local std::vector<size_t> counts;
  counts.assign(bins, 0);
  for (double v : values) ++counts[bin_of(v)];

  const double threshold =
      options_.frequency_fraction * static_cast<double>(n);
  // Rare-bin membership folds into one byte per bin, so the flagging pass
  // is a table lookup instead of recomputing the float compare per point.
  thread_local std::vector<unsigned char> rare;
  rare.resize(bins);
  for (size_t b = 0; b < bins; ++b) {
    rare[b] = static_cast<double>(counts[b]) < threshold ? 1 : 0;
  }
  for (size_t i = 0; i < n; ++i) {
    if (rare[bin_of(values[i])] != 0) flagged->push_back(i);
  }
}

}  // namespace pcor
