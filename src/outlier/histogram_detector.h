#pragma once

#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the histogram (distribution-fitting) detector.
struct HistogramDetectorOptions {
  /// A bin is an outlier bin when its frequency is below
  /// frequency_fraction * |D_C| (the paper's 2.5e-3 threshold, Section 6.5).
  double frequency_fraction = 2.5e-3;
  /// Populations below this size report no outliers.
  size_t min_population = 16;
};

/// \brief Histogram detector: the paper's distribution-fitting method.
///
/// Bins the population's metric values into round(sqrt(|D_C|)) equal-width
/// bins over [min, max]; every point falling in a bin with frequency below
/// frequency_fraction * |D_C| is flagged (Section 6.5). Deterministic.
class HistogramDetector : public OutlierDetector {
 public:
  explicit HistogramDetector(HistogramDetectorOptions options = {});

  std::string name() const override { return "histogram"; }
  using OutlierDetector::Detect;
  void Detect(std::span<const double> values,
              std::vector<size_t>* flagged) const override;
  size_t min_population() const override { return options_.min_population; }

  const HistogramDetectorOptions& options() const { return options_; }

 private:
  HistogramDetectorOptions options_;
};

}  // namespace pcor
