#pragma once

#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the Local Outlier Factor detector.
struct LofOptions {
  /// Neighborhood size (the classic "MinPts" parameter).
  size_t k = 10;
  /// Points with LOF score above this are flagged. The paper does not state
  /// its threshold; 1.5 is the standard "clearly more sparse than the
  /// neighborhood" choice and is recorded in EXPERIMENTS.md.
  double score_threshold = 1.5;
  /// Populations below this size report no outliers.
  size_t min_population = 20;
};

/// \brief Local Outlier Factor [Breunig et al. 2000], the paper's
/// distance-based detector.
///
/// The metric attribute is one-dimensional, so exact k-nearest neighbors
/// can be found on the sorted order with a two-pointer window — O(n log n)
/// overall instead of the naive O(n^2). Scores follow the standard
/// definitions: k-distance, reachability distance, local reachability
/// density (lrd) and LOF = mean(lrd of neighbors) / lrd(point).
///
/// Determinism notes (required by the paper's Definition 3.1): neighbor
/// sets are exactly k points chosen by expanding toward the nearer side,
/// breaking distance ties toward smaller values; duplicate-heavy
/// neighborhoods with zero reachability sum get lrd = +inf and LOF ratios
/// involving two infinities resolve to 1 (dense duplicates are inliers).
class LofDetector : public OutlierDetector {
 public:
  explicit LofDetector(LofOptions options = {});

  std::string name() const override { return "lof"; }
  using OutlierDetector::Detect;
  void Detect(std::span<const double> values,
              std::vector<size_t>* flagged) const override;
  size_t min_population() const override { return options_.min_population; }

  /// \brief LOF scores aligned with `values` (exposed for tests and the
  /// naive-reference comparison).
  std::vector<double> Scores(std::span<const double> values) const;

  const LofOptions& options() const { return options_; }

 private:
  LofOptions options_;
};

}  // namespace pcor
