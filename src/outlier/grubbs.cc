#include "src/outlier/grubbs.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/common/math_util.h"
#include "src/common/simd.h"

namespace pcor {

namespace {

// GrubbsCriticalValue inverts the regularized incomplete beta function
// iteratively — microseconds per call — and the verifier asks for the same
// (n, alpha) pairs over and over: every probe of a size-n population walks
// n, n-1, ... through the remove-and-retest loop. Memoized per thread so
// the vectorized passes, not the quantile inversion, dominate Detect.
double CachedGrubbsCritical(size_t n, double alpha) {
  struct Entry {
    double alpha;
    double g_crit;
  };
  thread_local std::unordered_map<size_t, Entry> memo;
  auto [it, inserted] = memo.try_emplace(n, Entry{alpha, 0.0});
  if (inserted || it->second.alpha != alpha) {
    it->second = Entry{alpha, math::GrubbsCriticalValue(n, alpha)};
  }
  return it->second.g_crit;
}

}  // namespace

GrubbsDetector::GrubbsDetector(GrubbsOptions options) : options_(options) {}

void GrubbsDetector::Detect(std::span<const double> values,
                            std::vector<size_t>* out) const {
  std::vector<size_t>& flagged = *out;
  flagged.clear();
  if (values.size() < options_.min_population) return;

  // The remove-and-retest loop runs on a compacted copy of the still-active
  // values plus a parallel original-position array, so every pass (mean,
  // squared deviations, argmax |x - mean|) streams one contiguous block
  // through the SIMD kernels instead of gathering through an index list.
  thread_local std::vector<double> vals;
  thread_local std::vector<size_t> pos;
  vals.assign(values.begin(), values.end());
  pos.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) pos[i] = i;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    const size_t n = vals.size();
    if (n < std::max<size_t>(3, options_.min_population)) break;

    const simd::MeanVar mv = simd::MeanAndVariance(vals);
    const double sd = std::sqrt(mv.variance);
    if (sd == 0.0) break;  // constant sample: no outliers

    // Most extreme point; ties break toward the smaller position (the
    // compaction preserves ascending original order) so the procedure is
    // fully deterministic.
    const simd::ArgAbsDev extreme = simd::ArgMaxAbsDeviation(vals, mv.mean);
    const double g = extreme.abs_dev / sd;
    const double g_crit = CachedGrubbsCritical(n, options_.alpha);
    if (g <= g_crit) break;

    flagged.push_back(pos[extreme.index]);
    vals.erase(vals.begin() + static_cast<ptrdiff_t>(extreme.index));
    pos.erase(pos.begin() + static_cast<ptrdiff_t>(extreme.index));
  }
  std::sort(flagged.begin(), flagged.end());
}

}  // namespace pcor
