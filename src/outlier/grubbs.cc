#include "src/outlier/grubbs.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"

namespace pcor {

GrubbsDetector::GrubbsDetector(GrubbsOptions options) : options_(options) {}

void GrubbsDetector::Detect(std::span<const double> values,
                            std::vector<size_t>* out) const {
  std::vector<size_t>& flagged = *out;
  flagged.clear();
  if (values.size() < options_.min_population) return;

  // Active positions; flagged points are removed between iterations.
  thread_local std::vector<size_t> active;
  active.resize(values.size());
  for (size_t i = 0; i < values.size(); ++i) active[i] = i;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    const size_t n = active.size();
    if (n < std::max<size_t>(3, options_.min_population)) break;

    double mean = 0.0;
    for (size_t idx : active) mean += values[idx];
    mean /= static_cast<double>(n);
    double ss = 0.0;
    for (size_t idx : active) {
      const double d = values[idx] - mean;
      ss += d * d;
    }
    const double sd = std::sqrt(ss / static_cast<double>(n - 1));
    if (sd == 0.0) break;  // constant sample: no outliers

    // Most extreme point; ties break toward the smaller position so the
    // procedure is fully deterministic.
    size_t arg = active[0];
    double best = -1.0;
    size_t arg_pos = 0;
    for (size_t j = 0; j < active.size(); ++j) {
      const double dev = std::abs(values[active[j]] - mean);
      if (dev > best) {
        best = dev;
        arg = active[j];
        arg_pos = j;
      }
    }
    const double g = best / sd;
    const double g_crit = math::GrubbsCriticalValue(n, options_.alpha);
    if (g <= g_crit) break;

    flagged.push_back(arg);
    active.erase(active.begin() + static_cast<ptrdiff_t>(arg_pos));
  }
  std::sort(flagged.begin(), flagged.end());
}

}  // namespace pcor
