#include "src/outlier/lof.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "src/common/simd.h"

namespace pcor {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// lrd ratio with the duplicate-cluster conventions documented in lof.h.
inline double LrdRatio(double numer, double denom) {
  if (std::isinf(denom)) return std::isinf(numer) ? 1.0 : 0.0;
  return numer / denom;
}
}  // namespace

LofDetector::LofDetector(LofOptions options) : options_(options) {}

std::vector<double> LofDetector::Scores(
    std::span<const double> values) const {
  const size_t n = values.size();
  const size_t k = options_.k;
  std::vector<double> scores(n, 1.0);
  if (n <= k + 1) return scores;  // not enough points for a k-neighborhood

  // Sort positions by (value, original index) for a deterministic order.
  // The working buffers are per-thread scratch: LOF runs on every verifier
  // miss and must not reallocate five vectors per probe.
  thread_local std::vector<size_t> order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (values[a] != values[b]) return values[a] < values[b];
    return a < b;
  });
  thread_local std::vector<double> x;
  x.resize(n);
  for (size_t i = 0; i < n; ++i) x[i] = values[order[i]];

  // Exact k-NN window per sorted position: expand toward the nearer side,
  // ties toward the left.
  thread_local std::vector<size_t> win_lo, win_hi;
  thread_local std::vector<double> kdist;
  win_lo.resize(n);
  win_hi.resize(n);
  kdist.resize(n);
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i, hi = i;
    for (size_t step = 0; step < k; ++step) {
      const bool can_left = lo > 0;
      const bool can_right = hi + 1 < n;
      if (can_left &&
          (!can_right || x[i] - x[lo - 1] <= x[hi + 1] - x[i])) {
        --lo;
      } else {
        ++hi;
      }
    }
    win_lo[i] = lo;
    win_hi[i] = hi;
    kdist[i] = std::max(x[i] - x[lo], x[hi] - x[i]);
  }

  // Local reachability density in sorted space. The reachability
  // accumulation vectorizes over the whole window including the self term
  // — which is exactly kdist[i], since |x[i] - x[i]| = 0 and k-distances
  // are non-negative — and subtracts it afterwards. Summing non-negatives
  // is monotone, so the subtraction can never go negative.
  thread_local std::vector<double> lrd;
  lrd.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t len = win_hi[i] - win_lo[i] + 1;
    const double reach_sum =
        simd::ReachSum(std::span<const double>(x).subspan(win_lo[i], len),
                       std::span<const double>(kdist).subspan(win_lo[i], len),
                       x[i]) -
        kdist[i];
    lrd[i] = reach_sum > 0.0 ? static_cast<double>(k) / reach_sum : kInf;
  }

  // LOF = mean over neighbors of lrd(neighbor) / lrd(point).
  for (size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (size_t j = win_lo[i]; j <= win_hi[i]; ++j) {
      if (j == i) continue;
      acc += LrdRatio(lrd[j], lrd[i]);
    }
    scores[order[i]] = acc / static_cast<double>(k);
  }
  return scores;
}

void LofDetector::Detect(std::span<const double> values,
                         std::vector<size_t>* flagged) const {
  flagged->clear();
  if (values.size() < options_.min_population) return;
  const std::vector<double> scores = Scores(values);
  simd::ScanAbove(scores, options_.score_threshold, flagged);
}

}  // namespace pcor
