#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace pcor {

/// \brief Interface for deterministic, unsupervised outlier detectors.
///
/// A detector sees only the metric values of a population D_C and returns
/// the positions (indices into the input vector) it flags as outliers. The
/// paper's PCOR framework treats the detector as a black box (requirement 4
/// in Section 1.1); determinism is required by Definition 3.1 and is what
/// makes the OCDP analysis of Section 3.1 meaningful.
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  /// \brief Stable identifier, e.g. "grubbs", "histogram", "lof".
  virtual std::string name() const = 0;

  /// \brief Positions of outliers within `values`, ascending. Must be a
  /// pure function of `values`.
  virtual std::vector<size_t> Detect(
      const std::vector<double>& values) const = 0;

  /// \brief f_M restricted to one target: is `values[target]` an outlier in
  /// this population? Default runs Detect and searches; detectors may
  /// override with a cheaper test.
  virtual bool IsOutlier(const std::vector<double>& values,
                         size_t target) const;

  /// \brief Smallest population the detector will run on; smaller
  /// populations report no outliers (statistical tests degenerate on tiny
  /// samples, and tiny contexts carry little release value).
  virtual size_t min_population() const { return 3; }
};

/// \brief Creates a default-configured detector by name: "grubbs",
/// "histogram", "lof", "iqr" or "zscore".
Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name);

/// \brief Names accepted by MakeDetector, in registration order.
std::vector<std::string> RegisteredDetectorNames();

}  // namespace pcor
