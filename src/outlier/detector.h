#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace pcor {

/// \brief Interface for deterministic, unsupervised outlier detectors.
///
/// A detector sees only the metric values of a population D_C and returns
/// the positions (indices into the input span) it flags as outliers. The
/// paper's PCOR framework treats the detector as a black box (requirement 4
/// in Section 1.1); determinism is required by Definition 3.1 and is what
/// makes the OCDP analysis of Section 3.1 meaningful.
///
/// The virtual core is span-based: detectors see one contiguous read-only
/// block of doubles (the prerequisite for SIMD kernels) and fill a
/// caller-owned position buffer, so a verifier probe reuses the same
/// buffers instead of allocating per call.
///
/// Scratch discipline under nested parallelism: every built-in detector
/// keeps thread_local work buffers (grubbs' sorted copy + position array,
/// the histogram's bin counts + rare-bin table, iqr's sorted copy, lof's
/// five k-NN vectors) so steady-state probes allocate nothing. Detector
/// code now also runs *on pool workers* — the engine's intra-release
/// scoring loop and the sharded index's probes dispatch through
/// ThreadPool::ParallelFor, and a verifier cache miss inside either runs
/// Detect on whatever thread claimed the chunk. The buffers stay safe
/// because each has exactly one live user per thread: a Detect call runs
/// start-to-finish on one thread, ParallelFor waiters only drain chunks of
/// their *own* loop (never arbitrary queued tasks, see common/threading.h),
/// and Detect never opens a parallel region. Corollary for implementers:
/// never call back into the verifier, a population index, or ParallelFor
/// from inside Detect — re-entering detector code on the same thread would
/// alias the live scratch. The worker-initiated-release regression test in
/// tests/search/intra_release_parallel_test.cc guards this invariant.
class OutlierDetector {
 public:
  virtual ~OutlierDetector() = default;

  /// \brief Stable identifier, e.g. "grubbs", "histogram", "lof".
  virtual std::string name() const = 0;

  /// \brief Fills `*flagged` with the positions of outliers within
  /// `values`, ascending (any previous contents are discarded). Must be a
  /// pure function of `values`.
  virtual void Detect(std::span<const double> values,
                      std::vector<size_t>* flagged) const = 0;

  /// \brief Convenience overload returning the flagged positions. Derived
  /// classes re-expose it with `using OutlierDetector::Detect;`.
  std::vector<size_t> Detect(std::span<const double> values) const;

  /// \brief f_M restricted to one target: is `values[target]` an outlier in
  /// this population? Default runs Detect and binary-searches the ascending
  /// positions; detectors may override with a cheaper test.
  virtual bool IsOutlier(std::span<const double> values, size_t target) const;

  /// \brief Smallest population the detector will run on; smaller
  /// populations report no outliers (statistical tests degenerate on tiny
  /// samples, and tiny contexts carry little release value).
  virtual size_t min_population() const { return 3; }
};

/// \brief Creates a default-configured detector by name: "grubbs",
/// "histogram", "lof", "iqr" or "zscore".
Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name);

/// \brief Names accepted by MakeDetector, in registration order.
std::vector<std::string> RegisteredDetectorNames();

}  // namespace pcor
