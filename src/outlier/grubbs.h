#pragma once

#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the Grubbs hypothesis-test detector.
struct GrubbsOptions {
  /// Significance level of each two-sided test.
  double alpha = 0.05;
  /// Upper bound on remove-and-retest iterations (generalized ESD style);
  /// each iteration can flag one outlier.
  size_t max_iterations = 10;
  /// Populations below this size report no outliers.
  size_t min_population = 8;
};

/// \brief Grubbs' test [Grubbs 1969], the paper's hypothesis-testing
/// detector (Section 2.1).
///
/// One round computes G = max_i |x_i - mean| / stddev and compares it to the
/// critical value G_crit(n, alpha) derived from the Student-t distribution;
/// if G exceeds it, the extreme point is an outlier. Because the paper's
/// f_M must answer for *any* record, we apply the classic remove-and-retest
/// extension: flag, remove, recompute, up to max_iterations times. The
/// procedure is deterministic.
class GrubbsDetector : public OutlierDetector {
 public:
  explicit GrubbsDetector(GrubbsOptions options = {});

  std::string name() const override { return "grubbs"; }
  using OutlierDetector::Detect;
  void Detect(std::span<const double> values,
              std::vector<size_t>* flagged) const override;
  size_t min_population() const override { return options_.min_population; }

  const GrubbsOptions& options() const { return options_; }

 private:
  GrubbsOptions options_;
};

}  // namespace pcor
