#include "src/outlier/zscore.h"

#include <cmath>

#include "src/common/stats.h"

namespace pcor {

ZscoreDetector::ZscoreDetector(ZscoreOptions options) : options_(options) {}

std::vector<size_t> ZscoreDetector::Detect(
    const std::vector<double>& values) const {
  std::vector<size_t> flagged;
  if (values.size() < options_.min_population) return flagged;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  const double sd = rs.stddev();
  if (sd == 0.0) return flagged;
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i] - rs.mean()) / sd > options_.threshold) {
      flagged.push_back(i);
    }
  }
  return flagged;
}

}  // namespace pcor
