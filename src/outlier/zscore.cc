#include "src/outlier/zscore.h"

#include <cmath>

#include "src/common/stats.h"

namespace pcor {

ZscoreDetector::ZscoreDetector(ZscoreOptions options) : options_(options) {}

void ZscoreDetector::Detect(std::span<const double> values,
                            std::vector<size_t>* flagged) const {
  flagged->clear();
  if (values.size() < options_.min_population) return;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  const double sd = rs.stddev();
  if (sd == 0.0) return;
  for (size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i] - rs.mean()) / sd > options_.threshold) {
      flagged->push_back(i);
    }
  }
}

}  // namespace pcor
