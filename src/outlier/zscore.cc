#include "src/outlier/zscore.h"

#include <cmath>

#include "src/common/simd.h"

namespace pcor {

ZscoreDetector::ZscoreDetector(ZscoreOptions options) : options_(options) {}

void ZscoreDetector::Detect(std::span<const double> values,
                            std::vector<size_t>* flagged) const {
  flagged->clear();
  if (values.size() < options_.min_population) return;
  // Two vectorized passes (sum, then squared deviations) plus a vectorized
  // |x - mean| / sd > k threshold scan; the division per element matches
  // the z-score definition exactly on every backend.
  const simd::MeanVar mv = simd::MeanAndVariance(values);
  const double sd = std::sqrt(mv.variance);
  if (sd == 0.0) return;
  simd::ScanAbsZAbove(values, mv.mean, sd, options_.threshold, flagged);
}

}  // namespace pcor
