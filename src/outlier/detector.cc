#include "src/outlier/detector.h"

#include <algorithm>

#include "src/outlier/grubbs.h"
#include "src/outlier/histogram_detector.h"
#include "src/outlier/iqr.h"
#include "src/outlier/lof.h"
#include "src/outlier/zscore.h"

namespace pcor {

std::vector<size_t> OutlierDetector::Detect(
    std::span<const double> values) const {
  std::vector<size_t> flagged;
  Detect(values, &flagged);
  return flagged;
}

bool OutlierDetector::IsOutlier(std::span<const double> values,
                                size_t target) const {
  // Detect's contract is ascending positions, so binary search — a linear
  // scan here would double the cost of every single-target f_M probe.
  const std::vector<size_t> flagged = Detect(values);
  return std::binary_search(flagged.begin(), flagged.end(), target);
}

Result<std::unique_ptr<OutlierDetector>> MakeDetector(
    const std::string& name) {
  if (name == "grubbs") {
    return std::unique_ptr<OutlierDetector>(new GrubbsDetector());
  }
  if (name == "histogram") {
    return std::unique_ptr<OutlierDetector>(new HistogramDetector());
  }
  if (name == "lof") {
    return std::unique_ptr<OutlierDetector>(new LofDetector());
  }
  if (name == "iqr") {
    return std::unique_ptr<OutlierDetector>(new IqrDetector());
  }
  if (name == "zscore") {
    return std::unique_ptr<OutlierDetector>(new ZscoreDetector());
  }
  return Status::NotFound("no detector named '" + name + "'");
}

std::vector<std::string> RegisteredDetectorNames() {
  return {"grubbs", "histogram", "lof", "iqr", "zscore"};
}

}  // namespace pcor
