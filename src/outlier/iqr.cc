#include "src/outlier/iqr.h"

#include <algorithm>

#include "src/common/stats.h"

namespace pcor {

IqrDetector::IqrDetector(IqrOptions options) : options_(options) {}

std::vector<size_t> IqrDetector::Detect(
    const std::vector<double>& values) const {
  std::vector<size_t> flagged;
  if (values.size() < options_.min_population) return flagged;
  const double q1 = Percentile(values, 0.25);
  const double q3 = Percentile(values, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - options_.multiplier * iqr;
  const double hi = q3 + options_.multiplier * iqr;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] < lo || values[i] > hi) flagged.push_back(i);
  }
  return flagged;
}

}  // namespace pcor
