#include "src/outlier/iqr.h"

#include <algorithm>

#include "src/common/simd.h"
#include "src/common/stats.h"

namespace pcor {

IqrDetector::IqrDetector(IqrOptions options) : options_(options) {}

void IqrDetector::Detect(std::span<const double> values,
                         std::vector<size_t>* flagged) const {
  flagged->clear();
  if (values.size() < options_.min_population) return;
  // One sorted scratch copy serves both quartiles (the old code sorted the
  // sample twice, once per Percentile call).
  thread_local std::vector<double> sorted;
  sorted.assign(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double q1 = PercentileOfSorted(sorted, 0.25);
  const double q3 = PercentileOfSorted(sorted, 0.75);
  const double iqr = q3 - q1;
  const double lo = q1 - options_.multiplier * iqr;
  const double hi = q3 + options_.multiplier * iqr;
  simd::ScanOutsideRange(values, lo, hi, flagged);
}

}  // namespace pcor
