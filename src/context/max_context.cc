#include "src/context/max_context.h"

#include "src/context/starting_context.h"

namespace pcor {

namespace {

// One steepest-ascent climb from `start` over matching contexts.
MaxContextResult Climb(const OutlierVerifier& verifier, uint32_t v_row,
                       const ContextVec& start, size_t max_steps) {
  const size_t t = verifier.index().schema().total_values();
  MaxContextResult best{start, verifier.index().PopulationCount(start)};
  ContextVec current = start;
  size_t current_pop = best.population;
  for (size_t step = 0; step < max_steps; ++step) {
    ContextVec best_neighbor = current;
    size_t best_pop = current_pop;
    ContextVec neighbor = current;
    for (size_t bit = 0; bit < t; ++bit) {
      neighbor.Flip(bit);
      if (verifier.IsOutlierInContext(neighbor, v_row)) {
        const size_t pop = verifier.index().PopulationCount(neighbor);
        if (pop > best_pop) {
          best_pop = pop;
          best_neighbor = neighbor;
        }
      }
      neighbor.Flip(bit);
    }
    if (best_pop <= current_pop) break;  // local maximum
    current = best_neighbor;
    current_pop = best_pop;
  }
  if (current_pop > best.population) {
    best.context = current;
    best.population = current_pop;
  }
  return best;
}

}  // namespace

Result<MaxContextResult> FindMaxContext(const OutlierVerifier& verifier,
                                        uint32_t v_row,
                                        const MaxContextOptions& options,
                                        Rng* rng) {
  if (v_row >= verifier.index().num_rows()) {
    return Status::OutOfRange("v_row outside dataset");
  }
  StartingContextOptions start_options;
  start_options.pipeline = {StartingContextStrategy::kExactRecord,
                            StartingContextStrategy::kGreedyGrow,
                            StartingContextStrategy::kRandomValid};
  MaxContextResult best;
  bool found = false;
  for (size_t restart = 0; restart < std::max<size_t>(options.restarts, 1);
       ++restart) {
    // First restart: the deterministic pipeline; later restarts: random
    // valid contexts for diversity.
    Result<ContextVec> start =
        restart == 0
            ? FindStartingContext(verifier, v_row, start_options, rng)
            : [&]() -> Result<ContextVec> {
                StartingContextOptions random_only;
                random_only.pipeline = {
                    StartingContextStrategy::kRandomValid};
                random_only.random_attempts = 64;
                return FindStartingContext(verifier, v_row, random_only,
                                           rng);
              }();
    if (!start.ok()) continue;
    MaxContextResult result =
        Climb(verifier, v_row, *start, options.max_steps);
    if (!found || result.population > best.population) {
      best = result;
      found = true;
    }
  }
  if (!found) {
    return Status::NoValidContext(
        "no matching context found from any restart");
  }
  return best;
}

}  // namespace pcor
