#include "src/context/population_index.h"

#include "src/common/logging.h"

namespace pcor {

PopulationIndex::PopulationIndex(const Dataset& dataset)
    : dataset_(&dataset) {
  const Schema& schema = dataset.schema();
  PCOR_CHECK(schema.total_values() <= ContextVec::kMaxBits)
      << "schema has more attribute values than ContextVec supports";
  bitmaps_.resize(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    bitmaps_[a].assign(schema.attribute(a).domain_size(),
                       BitVector(dataset.num_rows()));
    const auto& column = dataset.attribute_column(a);
    for (size_t row = 0; row < column.size(); ++row) {
      bitmaps_[a][column[row]].Set(row);
    }
  }
}

BitVector PopulationIndex::PopulationOf(const ContextVec& c) const {
  const Schema& schema = dataset_->schema();
  PCOR_CHECK(c.num_bits() == schema.total_values())
      << "context length does not match schema";
  BitVector acc(dataset_->num_rows(), true);
  BitVector attr_union(dataset_->num_rows());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    attr_union.FillAll(false);
    const size_t off = schema.value_offset(a);
    bool any = false;
    for (size_t v = 0; v < schema.attribute(a).domain_size(); ++v) {
      if (!c.Test(off + v)) continue;
      attr_union.OrWith(bitmaps_[a][v]);
      any = true;
    }
    if (!any) {
      // An attribute with no chosen value selects nothing.
      return BitVector(dataset_->num_rows());
    }
    acc.AndWith(attr_union);
    if (acc.NoneSet()) break;
  }
  return acc;
}

size_t PopulationIndex::PopulationCount(const ContextVec& c) const {
  return PopulationOf(c).Count();
}

size_t PopulationIndex::OverlapCount(const ContextVec& c1,
                                     const ContextVec& c2) const {
  BitVector p1 = PopulationOf(c1);
  BitVector p2 = PopulationOf(c2);
  return p1.AndCount(p2);
}

std::vector<uint32_t> PopulationIndex::RowIdsOf(const ContextVec& c) const {
  return PopulationOf(c).ToIndices();
}

std::vector<double> PopulationIndex::MetricOf(const ContextVec& c) const {
  std::vector<double> out;
  BitVector pop = PopulationOf(c);
  out.reserve(pop.Count());
  const auto& metric = dataset_->metric_column();
  pop.ForEachSetBit([&](uint32_t row) { out.push_back(metric[row]); });
  return out;
}

bool PopulationIndex::MetricWithTarget(const ContextVec& c, uint32_t v_row,
                                       std::vector<double>* metric,
                                       size_t* v_position) const {
  metric->clear();
  BitVector pop = PopulationOf(c);
  if (v_row >= pop.size() || !pop.Test(v_row)) return false;
  metric->reserve(pop.Count());
  const auto& column = dataset_->metric_column();
  size_t pos = 0;
  bool found = false;
  pop.ForEachSetBit([&](uint32_t row) {
    if (row == v_row) {
      *v_position = pos;
      found = true;
    }
    metric->push_back(column[row]);
    ++pos;
  });
  return found;
}

const BitVector& PopulationIndex::ValueBitmap(size_t attr,
                                              size_t value) const {
  PCOR_CHECK(attr < bitmaps_.size()) << "attribute index out of range";
  PCOR_CHECK(value < bitmaps_[attr].size()) << "value index out of range";
  return bitmaps_[attr][value];
}

}  // namespace pcor
