#include "src/context/population_index.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pcor {

namespace {
// Shared scratch for the value-returning convenience wrappers and the
// counting queries, so the hot utility-scoring path (PopulationCount /
// OverlapCount per probe) stays allocation-free without forcing every
// caller to carry buffers. thread_local keeps it data-race-free.
thread_local PopulationScratch t_scratch;
thread_local BitVector t_overlap;
// Ping-pong pair for folding all-singleton contexts through compressed
// intersections without touching a dense bitmap.
thread_local CompressedBitmap t_fold[2];
// Materialization buffer for ValueBitmap under compressed storage.
thread_local BitVector t_value_bitmap;

/// \brief c1 AND c2, bitwise over the chosen-value positions.
ContextVec MergeContexts(const ContextVec& c1, const ContextVec& c2) {
  ContextVec merged(c1.num_bits());
  for (size_t i = 0; i < c1.num_bits(); ++i) {
    if (c1.Test(i) && c2.Test(i)) merged.Set(i);
  }
  return merged;
}

}  // namespace

IndexStorage DefaultIndexStorage() {
  return strings::EnvSizeOr("PCOR_COMPRESSED_INDEX", 1) != 0
             ? IndexStorage::kCompressed
             : IndexStorage::kDense;
}

// ---- PopulationProbe: value-returning helpers shared by every
// implementation, defined over the virtual probe core so single-box and
// sharded indexes materialize identically. ----

uint32_t PopulationProbe::RowCode(uint32_t row, size_t attr) const {
  return dataset().code(row_offset() + row, attr);
}

double PopulationProbe::RowMetric(uint32_t row) const {
  return dataset().metric_column()[row_offset() + row];
}

void PopulationProbe::GatherMetrics(const BitVector& population,
                                    std::vector<uint32_t>* row_ids,
                                    std::vector<double>* metric) const {
  row_ids->clear();
  metric->clear();
  const size_t count = population.Count();
  row_ids->reserve(count);
  metric->reserve(count);
  const auto& column = dataset().metric_column();
  const uint32_t offset = row_offset();
  population.ForEachSetBit([&](uint32_t row) {
    row_ids->push_back(row);
    metric->push_back(column[offset + row]);
  });
}

ContextVec PopulationProbe::ExactContextOf(uint32_t row) const {
  const Schema& s = schema();
  ContextVec c(s.total_values());
  for (size_t a = 0; a < s.num_attributes(); ++a) {
    c.Set(s.value_offset(a) + RowCode(row, a));
  }
  return c;
}

bool PopulationProbe::ContextContainsRow(const ContextVec& c,
                                         uint32_t row) const {
  const Schema& s = schema();
  for (size_t a = 0; a < s.num_attributes(); ++a) {
    if (!c.Test(s.value_offset(a) + RowCode(row, a))) return false;
  }
  return true;
}

PopulationView PopulationProbe::ViewOf(const ContextVec& c,
                                       PopulationScratch* scratch) const {
  PopulationInto(c, &scratch->population, &scratch->attr_union);
  GatherMetrics(scratch->population, &scratch->row_ids, &scratch->metric);
  return PopulationView(&scratch->population, scratch->row_ids,
                        scratch->metric);
}

BitVector PopulationProbe::PopulationOf(const ContextVec& c) const {
  BitVector population;
  BitVector attr_union;
  PopulationInto(c, &population, &attr_union);
  return population;
}

std::vector<uint32_t> PopulationProbe::RowIdsOf(const ContextVec& c) const {
  PopulationInto(c, &t_scratch.population, &t_scratch.attr_union);
  return t_scratch.population.ToIndices();
}

std::vector<double> PopulationProbe::MetricOf(const ContextVec& c) const {
  const PopulationView view = ViewOf(c, &t_scratch);
  return std::vector<double>(view.metric().begin(), view.metric().end());
}

bool PopulationProbe::MetricWithTarget(const ContextVec& c, uint32_t v_row,
                                       std::vector<double>* metric,
                                       size_t* v_position) const {
  PopulationInto(c, &t_scratch.population, &t_scratch.attr_union);
  const BitVector& pop = t_scratch.population;
  if (v_row >= pop.size() || !pop.Test(v_row)) {
    metric->clear();
    return false;
  }
  GatherMetrics(pop, &t_scratch.row_ids, metric);
  // row_ids is ascending and v_row is set in the population, so the
  // target's position is exactly its lower bound.
  const auto it = std::lower_bound(t_scratch.row_ids.begin(),
                                   t_scratch.row_ids.end(), v_row);
  *v_position = static_cast<size_t>(it - t_scratch.row_ids.begin());
  return true;
}

PopulationIndex::PopulationIndex(const Dataset& dataset, IndexStorage storage)
    : PopulationIndex(dataset, storage, 0,
                      static_cast<uint32_t>(dataset.num_rows())) {}

PopulationIndex::PopulationIndex(const Dataset& dataset, IndexStorage storage,
                                 uint32_t row_begin, uint32_t row_end)
    : dataset_(&dataset),
      storage_(storage),
      row_begin_(row_begin),
      num_local_rows_(row_end - row_begin) {
  const Schema& schema = dataset.schema();
  PCOR_CHECK(schema.total_values() <= ContextVec::kMaxBits)
      << "schema has more attribute values than ContextVec supports";
  PCOR_CHECK(row_begin <= row_end && row_end <= dataset.num_rows())
      << "row range outside dataset";
  PCOR_CHECK(row_begin % 64 == 0)
      << "shard row ranges must start word-aligned";
  const bool compressed = storage_ == IndexStorage::kCompressed;
  bitmaps_.resize(compressed ? 0 : schema.num_attributes());
  compressed_.resize(compressed ? schema.num_attributes() : 0);
  // Build one attribute at a time: materialize its dense value bitmaps,
  // then (for compressed storage) compress and discard them, so the build
  // spike is bounded by one attribute's dense set.
  std::vector<BitVector> dense;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    dense.assign(schema.attribute(a).domain_size(),
                 BitVector(num_local_rows_));
    const auto& column = dataset.attribute_column(a);
    for (size_t row = row_begin; row < row_end; ++row) {
      dense[column[row]].Set(row - row_begin);
    }
    if (compressed) {
      compressed_[a].reserve(dense.size());
      for (const BitVector& bits : dense) {
        compressed_[a].push_back(CompressedBitmap::FromBitVector(bits));
      }
    } else {
      bitmaps_[a] = std::move(dense);
      dense.clear();
    }
  }
}

PopulationIndexStats PopulationIndex::MemoryStats() const {
  PopulationIndexStats stats;
  for (const auto& attr : bitmaps_) {
    for (const BitVector& bits : attr) {
      stats.bitmap_bytes += bits.num_words() * sizeof(uint64_t);
    }
  }
  for (const auto& attr : compressed_) {
    for (const CompressedBitmap& bits : attr) {
      stats.bitmap_bytes += bits.MemoryBytes();
      const CompressedBitmap::Census census = bits.ChunkCensus();
      stats.empty_chunks += census.empty_chunks;
      stats.array_chunks += census.array_chunks;
      stats.dense_chunks += census.dense_chunks;
    }
  }
  return stats;
}

void PopulationIndex::ChosenValues(const ContextVec& c, size_t a,
                                   std::vector<size_t>* values) const {
  const Schema& schema = dataset_->schema();
  const size_t off = schema.value_offset(a);
  values->clear();
  for (size_t v = 0; v < schema.attribute(a).domain_size(); ++v) {
    if (c.Test(off + v)) values->push_back(v);
  }
}

void PopulationIndex::PopulationInto(const ContextVec& c,
                                     BitVector* population,
                                     BitVector* attr_union) const {
  PCOR_CHECK(c.num_bits() == dataset_->schema().total_values())
      << "context length does not match schema";
  if (storage_ == IndexStorage::kCompressed) {
    PopulationIntoCompressed(c, population, attr_union);
  } else {
    PopulationIntoDense(c, population, attr_union);
  }
}

void PopulationIndex::PopulationIntoDense(const ContextVec& c,
                                          BitVector* population,
                                          BitVector* attr_union) const {
  const Schema& schema = dataset_->schema();
  population->Assign(num_local_rows_, true);
  attr_union->Assign(num_local_rows_, false);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    attr_union->FillAll(false);
    const size_t off = schema.value_offset(a);
    bool any = false;
    for (size_t v = 0; v < schema.attribute(a).domain_size(); ++v) {
      if (!c.Test(off + v)) continue;
      attr_union->OrWith(bitmaps_[a][v]);
      any = true;
    }
    if (!any) {
      // An attribute with no chosen value selects nothing.
      population->FillAll(false);
      return;
    }
    population->AndWith(*attr_union);
    if (population->NoneSet()) return;
  }
}

void PopulationIndex::PopulationIntoCompressed(const ContextVec& c,
                                               BitVector* population,
                                               BitVector* attr_union) const {
  const Schema& schema = dataset_->schema();
  population->Assign(num_local_rows_, true);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const size_t off = schema.value_offset(a);
    const size_t domain = schema.attribute(a).domain_size();
    size_t single = domain;  // sentinel: no value seen yet
    size_t chosen = 0;
    for (size_t v = 0; v < domain; ++v) {
      if (!c.Test(off + v)) continue;
      if (chosen++ == 0) single = v;
    }
    if (chosen == 0) {
      // An attribute with no chosen value selects nothing.
      population->FillAll(false);
      return;
    }
    if (chosen == 1) {
      // Single-value attribute: array∩dense probe straight into the
      // population, skipping the union accumulator entirely.
      compressed_[a][single].AndIntoDense(population);
    } else {
      attr_union->Assign(num_local_rows_, false);
      for (size_t v = 0; v < domain; ++v) {
        if (c.Test(off + v)) compressed_[a][v].OrIntoDense(attr_union);
      }
      population->AndWith(*attr_union);
    }
    if (population->NoneSet()) return;
  }
}

size_t PopulationIndex::PopulationCount(const ContextVec& c) const {
  if (storage_ == IndexStorage::kCompressed) {
    const Schema& schema = dataset_->schema();
    PCOR_CHECK(c.num_bits() == schema.total_values())
        << "context length does not match schema";
    // All-singleton contexts (the search frontier's exact contexts) fold
    // through compressed intersections: galloping for array∩array chunks,
    // word popcounts for dense∩dense, never touching a dense bitmap.
    size_t singles[ContextVec::kMaxBits];
    bool all_single = true;
    for (size_t a = 0; a < schema.num_attributes() && all_single; ++a) {
      const size_t off = schema.value_offset(a);
      const size_t domain = schema.attribute(a).domain_size();
      size_t chosen = 0;
      for (size_t v = 0; v < domain; ++v) {
        if (!c.Test(off + v)) continue;
        if (chosen++ == 0) singles[a] = v;
      }
      if (chosen == 0) return 0;  // empty attribute selects nothing
      if (chosen > 1) all_single = false;
    }
    if (all_single) {
      const size_t num_attrs = schema.num_attributes();
      if (num_attrs == 0) return num_local_rows_;
      const CompressedBitmap* first = &compressed_[0][singles[0]];
      if (num_attrs == 1) return first->count();
      if (num_attrs == 2) {
        return first->AndCountWith(compressed_[1][singles[1]]);
      }
      CompressedBitmap::IntersectInto(*first, compressed_[1][singles[1]],
                                      &t_fold[0]);
      size_t cur = 0;
      for (size_t a = 2; a < num_attrs; ++a) {
        if (t_fold[cur].count() == 0) return 0;
        if (a + 1 == num_attrs) {
          return t_fold[cur].AndCountWith(compressed_[a][singles[a]]);
        }
        CompressedBitmap::IntersectInto(t_fold[cur],
                                        compressed_[a][singles[a]],
                                        &t_fold[1 - cur]);
        cur = 1 - cur;
      }
      return t_fold[cur].count();
    }
  }
  PopulationInto(c, &t_scratch.population, &t_scratch.attr_union);
  return t_scratch.population.Count();
}

size_t PopulationIndex::OverlapCount(const ContextVec& c1,
                                     const ContextVec& c2) const {
  if (storage_ == IndexStorage::kCompressed) {
    // Value bitmaps within an attribute partition the rows, so
    // D_C1 ∩ D_C2 = D_{C1 AND C2}: the overlap reduces to one population
    // count over the merged context, which usually hits the all-singleton
    // fold above.
    return PopulationCount(MergeContexts(c1, c2));
  }
  PopulationInto(c1, &t_overlap, &t_scratch.attr_union);
  PopulationInto(c2, &t_scratch.population, &t_scratch.attr_union);
  return t_overlap.AndCount(t_scratch.population);
}

const BitVector& PopulationIndex::ValueBitmap(size_t attr,
                                              size_t value) const {
  if (storage_ == IndexStorage::kCompressed) {
    PCOR_CHECK(attr < compressed_.size()) << "attribute index out of range";
    PCOR_CHECK(value < compressed_[attr].size()) << "value index out of range";
    t_value_bitmap = compressed_[attr][value].ToBitVector();
    return t_value_bitmap;
  }
  PCOR_CHECK(attr < bitmaps_.size()) << "attribute index out of range";
  PCOR_CHECK(value < bitmaps_[attr].size()) << "value index out of range";
  return bitmaps_[attr][value];
}

}  // namespace pcor
