#include "src/context/population_index.h"

#include "src/common/logging.h"

namespace pcor {

namespace {
// Shared scratch for the value-returning convenience wrappers and the
// counting queries, so the hot utility-scoring path (PopulationCount /
// OverlapCount per probe) stays allocation-free without forcing every
// caller to carry buffers. thread_local keeps it data-race-free.
thread_local PopulationScratch t_scratch;
thread_local BitVector t_overlap;
}  // namespace

PopulationIndex::PopulationIndex(const Dataset& dataset)
    : dataset_(&dataset) {
  const Schema& schema = dataset.schema();
  PCOR_CHECK(schema.total_values() <= ContextVec::kMaxBits)
      << "schema has more attribute values than ContextVec supports";
  bitmaps_.resize(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    bitmaps_[a].assign(schema.attribute(a).domain_size(),
                       BitVector(dataset.num_rows()));
    const auto& column = dataset.attribute_column(a);
    for (size_t row = 0; row < column.size(); ++row) {
      bitmaps_[a][column[row]].Set(row);
    }
  }
}

void PopulationIndex::PopulationInto(const ContextVec& c,
                                     BitVector* population,
                                     BitVector* attr_union) const {
  const Schema& schema = dataset_->schema();
  PCOR_CHECK(c.num_bits() == schema.total_values())
      << "context length does not match schema";
  population->Assign(dataset_->num_rows(), true);
  attr_union->Assign(dataset_->num_rows(), false);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    attr_union->FillAll(false);
    const size_t off = schema.value_offset(a);
    bool any = false;
    for (size_t v = 0; v < schema.attribute(a).domain_size(); ++v) {
      if (!c.Test(off + v)) continue;
      attr_union->OrWith(bitmaps_[a][v]);
      any = true;
    }
    if (!any) {
      // An attribute with no chosen value selects nothing.
      population->FillAll(false);
      return;
    }
    population->AndWith(*attr_union);
    if (population->NoneSet()) return;
  }
}

PopulationView PopulationIndex::ViewOf(const ContextVec& c,
                                       PopulationScratch* scratch) const {
  PopulationInto(c, &scratch->population, &scratch->attr_union);
  scratch->row_ids.clear();
  scratch->metric.clear();
  const size_t count = scratch->population.Count();
  scratch->row_ids.reserve(count);
  scratch->metric.reserve(count);
  const auto& metric = dataset_->metric_column();
  scratch->population.ForEachSetBit([&](uint32_t row) {
    scratch->row_ids.push_back(row);
    scratch->metric.push_back(metric[row]);
  });
  return PopulationView(&scratch->population, scratch->row_ids,
                        scratch->metric);
}

BitVector PopulationIndex::PopulationOf(const ContextVec& c) const {
  BitVector population;
  BitVector attr_union;
  PopulationInto(c, &population, &attr_union);
  return population;
}

size_t PopulationIndex::PopulationCount(const ContextVec& c) const {
  PopulationInto(c, &t_scratch.population, &t_scratch.attr_union);
  return t_scratch.population.Count();
}

size_t PopulationIndex::OverlapCount(const ContextVec& c1,
                                     const ContextVec& c2) const {
  PopulationInto(c1, &t_overlap, &t_scratch.attr_union);
  PopulationInto(c2, &t_scratch.population, &t_scratch.attr_union);
  return t_overlap.AndCount(t_scratch.population);
}

std::vector<uint32_t> PopulationIndex::RowIdsOf(const ContextVec& c) const {
  PopulationInto(c, &t_scratch.population, &t_scratch.attr_union);
  return t_scratch.population.ToIndices();
}

std::vector<double> PopulationIndex::MetricOf(const ContextVec& c) const {
  const PopulationView view = ViewOf(c, &t_scratch);
  return std::vector<double>(view.metric().begin(), view.metric().end());
}

bool PopulationIndex::MetricWithTarget(const ContextVec& c, uint32_t v_row,
                                       std::vector<double>* metric,
                                       size_t* v_position) const {
  metric->clear();
  PopulationInto(c, &t_scratch.population, &t_scratch.attr_union);
  const BitVector& pop = t_scratch.population;
  if (v_row >= pop.size() || !pop.Test(v_row)) return false;
  metric->reserve(pop.Count());
  const auto& column = dataset_->metric_column();
  size_t pos = 0;
  bool found = false;
  pop.ForEachSetBit([&](uint32_t row) {
    if (row == v_row) {
      *v_position = pos;
      found = true;
    }
    metric->push_back(column[row]);
    ++pos;
  });
  return found;
}

const BitVector& PopulationIndex::ValueBitmap(size_t attr,
                                              size_t value) const {
  PCOR_CHECK(attr < bitmaps_.size()) << "attribute index out of range";
  PCOR_CHECK(value < bitmaps_[attr].size()) << "value index out of range";
  return bitmaps_[attr][value];
}

}  // namespace pcor
