#include "src/context/starting_context.h"

namespace pcor {

namespace {

ContextVec ExactOf(const OutlierVerifier& verifier, uint32_t v_row) {
  return verifier.index().ExactContextOf(v_row);
}

bool TryGreedyGrow(const OutlierVerifier& verifier, uint32_t v_row,
                   ContextVec* out) {
  const Schema& schema = verifier.index().schema();
  const size_t t = schema.total_values();
  ContextVec current = ExactOf(verifier, v_row);
  while (true) {
    if (verifier.IsOutlierInContext(current, v_row)) {
      *out = current;
      return true;
    }
    // Among unset bits, find (a) any bit whose addition makes the context
    // matching — preferred — otherwise (b) the bit that grows the
    // population most (ties to the smallest bit index, so the walk is
    // deterministic).
    size_t best_bit = t;
    size_t best_count = 0;
    for (size_t bit = 0; bit < t; ++bit) {
      if (current.Test(bit)) continue;
      ContextVec candidate = current;
      candidate.Set(bit);
      if (verifier.IsOutlierInContext(candidate, v_row)) {
        *out = candidate;
        return true;
      }
      const size_t count = verifier.index().PopulationCount(candidate);
      if (best_bit == t || count > best_count) {
        best_bit = bit;
        best_count = count;
      }
    }
    if (best_bit == t) return false;  // all bits set, never matched
    current.Set(best_bit);
  }
}

ContextVec RandomContainingContext(const OutlierVerifier& verifier,
                                   uint32_t v_row, Rng* rng) {
  const Schema& schema = verifier.index().schema();
  ContextVec c(schema.total_values());
  for (size_t bit = 0; bit < c.num_bits(); ++bit) {
    if (rng->NextBernoulli(0.5)) c.Set(bit);
  }
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    c.Set(schema.value_offset(a) + verifier.index().RowCode(v_row, a));
  }
  return c;
}

bool TryRandomValid(const OutlierVerifier& verifier, uint32_t v_row,
                    size_t attempts, Rng* rng, ContextVec* out) {
  for (size_t i = 0; i < attempts; ++i) {
    ContextVec c = RandomContainingContext(verifier, v_row, rng);
    if (verifier.IsOutlierInContext(c, v_row)) {
      *out = c;
      return true;
    }
  }
  return false;
}

bool TryBestOfRandom(const OutlierVerifier& verifier, uint32_t v_row,
                     size_t tries, Rng* rng, ContextVec* out) {
  bool found = false;
  size_t best_pop = 0;
  for (size_t i = 0; i < tries; ++i) {
    ContextVec c = RandomContainingContext(verifier, v_row, rng);
    if (!verifier.IsOutlierInContext(c, v_row)) continue;
    const size_t pop = verifier.index().PopulationCount(c);
    if (!found || pop > best_pop) {
      best_pop = pop;
      *out = c;
      found = true;
    }
  }
  return found;
}

}  // namespace

Result<ContextVec> FindStartingContext(const OutlierVerifier& verifier,
                                       uint32_t v_row,
                                       const StartingContextOptions& options,
                                       Rng* rng) {
  if (v_row >= verifier.index().num_rows()) {
    return Status::OutOfRange("v_row outside dataset");
  }
  ContextVec found;
  for (StartingContextStrategy strategy : options.pipeline) {
    switch (strategy) {
      case StartingContextStrategy::kExactRecord: {
        ContextVec c = ExactOf(verifier, v_row);
        if (verifier.IsOutlierInContext(c, v_row)) return c;
        break;
      }
      case StartingContextStrategy::kFullDomain: {
        ContextVec c = context_ops::FullContext(verifier.index().schema());
        if (verifier.IsOutlierInContext(c, v_row)) return c;
        break;
      }
      case StartingContextStrategy::kGreedyGrow:
        if (TryGreedyGrow(verifier, v_row, &found)) return found;
        break;
      case StartingContextStrategy::kRandomValid:
        if (rng != nullptr &&
            TryRandomValid(verifier, v_row, options.random_attempts, rng,
                           &found)) {
          return found;
        }
        break;
      case StartingContextStrategy::kBestOfRandom:
        if (rng != nullptr &&
            TryBestOfRandom(verifier, v_row, options.best_of_tries, rng,
                            &found)) {
          return found;
        }
        break;
    }
  }
  return Status::NoValidContext(
      "no matching context found for row " + std::to_string(v_row) +
      " under detector '" + verifier.detector().name() + "'");
}

}  // namespace pcor
