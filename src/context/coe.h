#pragma once

#include <vector>

#include "src/common/result.h"
#include "src/context/context.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief Options for contextual outlier enumeration.
struct CoeOptions {
  /// Safety valve: fail rather than enumerate more candidate contexts.
  size_t max_contexts = size_t{1} << 24;
};

/// \brief Contextual Outlier Enumeration COE_M(D, V) — Definition 3.1: all
/// contexts C over the schema's full domains with V in D_C and
/// f_M(D_C, V) = true.
///
/// The paper's direct approach ranges over all 2^t contexts; we enumerate
/// only the 2^(t-m) contexts whose per-attribute value sets contain V's own
/// values (every other context fails "V in D_C" immediately, so the result
/// is identical; the cost is still exponential in t, as Theorem 4.2 says).
/// Returned contexts are in ascending ContextVec order.
Result<std::vector<ContextVec>> EnumerateCoe(const OutlierVerifier& verifier,
                                             uint32_t v_row,
                                             const CoeOptions& options = {});

/// \brief Set comparison of two COE results — the measurement behind the
/// paper's Tables 12/13 ("COE match" between a dataset and its neighbors).
/// The paper does not pin down its match formula; we report both Jaccard
/// similarity and containment (fraction of the left set preserved).
struct CoeMatch {
  size_t intersection_size = 0;
  size_t union_size = 0;
  size_t only_left = 0;
  size_t only_right = 0;
  double jaccard = 1.0;       ///< |A ∩ B| / |A ∪ B|; 1.0 when both empty
  double containment = 1.0;   ///< |A ∩ B| / |A|;     1.0 when A empty
};

CoeMatch CompareCoe(const std::vector<ContextVec>& left,
                    const std::vector<ContextVec>& right);

}  // namespace pcor
