#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/random.h"
#include "src/common/sharded_lru_cache.h"
#include "src/context/context.h"
#include "src/context/population_index.h"
#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the outlier verifier's memo cache.
struct VerifierOptions {
  /// Approximate resident-byte budget for memoized results. The cache
  /// evicts least-recently-used contexts per entry once the budget is
  /// exceeded — it is persistent across batches, never cleared wholesale.
  /// 0 = unbounded.
  size_t max_cache_bytes = size_t{256} << 20;
  /// Optional additional bound on resident entries. 0 = unbounded.
  size_t max_cache_entries = 0;
  /// Cache shards (rounded up to a power of two); 0 = one per hardware
  /// thread. More shards = less mutex contention between sampler threads.
  size_t num_shards = 0;
  /// Ablation mode: reproduce the pre-LRU wholesale clear (drop a whole
  /// shard when it overflows) instead of per-entry eviction. Used by
  /// bench_micro_verifier_cache to measure what LRU buys.
  bool wholesale_clear = false;
  /// Disable memoization entirely (for ablation benchmarks).
  bool enable_cache = true;
  /// Keep one shard group per NUMA node and route each probe thread to its
  /// own node's group (see LruCacheOptions::numa_aware). Pair with a
  /// NUMA-pinned ThreadPool (PCOR_PIN_THREADS) so sampler threads only
  /// touch node-local cache lines. No-op on single-node hosts.
  bool numa_aware = false;
  /// Let the cache resize its own byte budget from the hit/eviction
  /// counters (see LruCacheOptions::adaptive_budget); max_cache_bytes
  /// becomes the starting point instead of a fixed ceiling.
  bool adaptive_budget = false;
};

/// \brief Counter snapshot of the verifier and its cache.
struct VerifierStats {
  size_t evaluations = 0;     ///< full detector runs
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;  ///< entries dropped to satisfy the budget
  /// Entries dropped because their epoch was retired (VerifierMemo::
  /// InvalidateEpochsBefore) — staleness, not capacity pressure. Kept
  /// separate from cache_evictions so a streaming workload can tell "the
  /// budget is too small" from "old epochs are being swept on schedule".
  size_t cache_invalidations = 0;
  size_t resident_bytes = 0;   ///< approximate bytes of memoized results
  size_t resident_entries = 0; ///< memoized contexts currently resident
};

/// \brief Cache key of one memoized f_M result: the context *and* the
/// epoch (sealed-row count) of the dataset view it was computed against.
///
/// The epoch is part of the key, not metadata: a lookup at epoch e can
/// only ever see entries computed at epoch e, so a stale-epoch hit is
/// impossible by construction — there is no code path that could return an
/// old epoch's outlier set for a new epoch's query, racing appends or not.
/// The streaming tests hammer this; see docs/streaming.md.
struct VerifierCacheKey {
  uint64_t epoch = 0;
  ContextVec context;

  bool operator==(const VerifierCacheKey& other) const {
    return epoch == other.epoch && context == other.context;
  }
};

struct VerifierCacheKeyHash {
  size_t operator()(const VerifierCacheKey& key) const {
    // Avalanche the epoch into the context hash so epoch e and e+1 land in
    // unrelated shards (sequential epochs would otherwise collide in the
    // low bits the map consumes).
    return static_cast<size_t>(SplitMix64Mix(
        static_cast<uint64_t>(key.context.Hash()) ^
        (key.epoch + 0x9e3779b97f4a7c15ULL)));
  }
};

/// \brief The shared, epoch-keyed memo store behind one or more
/// OutlierVerifiers.
///
/// A single-epoch engine owns one implicitly (the classic construction).
/// A streaming engine creates one explicitly and hands it to every
/// per-epoch verifier, so memoized results survive epoch turnover: a
/// sealed epoch's entries keep serving batches still pinned to it, while
/// new-epoch queries miss (different key) and fill their own entries.
///
/// Sharing contract: all verifiers attached to one memo must belong to the
/// same logical stream — epoch ids must identify sealed row prefixes of
/// one dataset lineage, because the key is (epoch, context) and nothing
/// else. Never share a memo between unrelated datasets.
///
/// Thread-safe. Dropping any entry at any time is answer-invariant (pure
/// memo); invalidation is a storage-reclamation policy, not a correctness
/// mechanism — correctness comes from the epoch in the key.
class VerifierMemo {
 public:
  explicit VerifierMemo(const VerifierOptions& options);

  /// \brief Erases every entry whose epoch is strictly below `epoch`,
  /// returning how many were dropped (counted as invalidations, not
  /// evictions). Safe to call while batches pinned to swept epochs are in
  /// flight: their lookups miss and recompute — slower, never wrong. The
  /// streaming engine calls this on seal with its retain-window floor.
  size_t InvalidateEpochsBefore(uint64_t epoch);

  /// \brief Counter snapshot of the underlying cache.
  LruCacheStats CacheStats() const { return cache_.Stats(); }
  /// \brief Full detector evaluations through every attached verifier.
  size_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  friend class OutlierVerifier;
  using ResultPtr = std::shared_ptr<const std::vector<uint32_t>>;

  mutable ShardedLruCache<VerifierCacheKey, ResultPtr, VerifierCacheKeyHash>
      cache_;
  std::atomic<size_t> evaluations_{0};
};

/// \brief The paper's outlier verification function f_M(D_C, V), memoized.
///
/// Given a context C, the verifier filters the dataset through the
/// population index (into per-thread scratch buffers — zero allocations in
/// steady state), runs the detector on the population's contiguous metric
/// span once, converts flagged positions to row ids, and caches the result
/// — every later f_M(D_C, ·) query on the same context is a lookup. The
/// graph-search samplers revisit contexts constantly (each vertex has t
/// neighbors), so this memoization is the practical analogue of the paper's
/// precomputed reference file.
///
/// The memo is a ShardedLruCache keyed by (epoch, context): persistent
/// across batches, with real per-entry LRU eviction against an approximate
/// byte budget. One verifier is bound to one epoch — the sealed-row count
/// of the probe it reads — and several verifiers (one per epoch) may share
/// one VerifierMemo; see VerifierMemo for the sharing contract. Eviction
/// is answer-invariant — f_M is deterministic, so dropping an entry can
/// only cost a recomputation, never change a result. Thread-safe; the
/// experiment harness shares one verifier across trial threads.
class OutlierVerifier {
 public:
  /// \brief Classic single-epoch construction: a private memo, with the
  /// epoch defaulting to the probe's row count (so cache keys line up with
  /// a streaming engine sealed at the same prefix).
  OutlierVerifier(const PopulationProbe& index,
                  const OutlierDetector& detector,
                  VerifierOptions options = {});

  /// \brief Streaming construction: memoizes into the shared `memo` under
  /// epoch `epoch`. `memo` must not be null and must follow the
  /// VerifierMemo sharing contract; `options` governs this verifier's
  /// enable_cache flag only (the memo was sized by its own options).
  OutlierVerifier(const PopulationProbe& index,
                  const OutlierDetector& detector,
                  std::shared_ptr<VerifierMemo> memo, uint64_t epoch,
                  VerifierOptions options = {});

  /// \brief f_M(D_C, V): true iff row `v_row` is in D_C *and* the detector
  /// flags it there. Rows outside the population are never outliers in it.
  bool IsOutlierInContext(const ContextVec& c, uint32_t v_row) const;

  /// \brief Row ids of all outliers in D_C, ascending (shared, immutable).
  std::shared_ptr<const std::vector<uint32_t>> OutliersInContext(
      const ContextVec& c) const;

  const PopulationProbe& index() const { return *index_; }
  const OutlierDetector& detector() const { return *detector_; }
  const VerifierOptions& options() const { return options_; }
  /// \brief The epoch this verifier's cache entries are keyed under.
  uint64_t epoch() const { return epoch_; }
  /// \brief The memo store (shared in streaming mode; private otherwise).
  const std::shared_ptr<VerifierMemo>& memo() const { return memo_; }

  /// \brief Number of full detector evaluations performed (cache misses),
  /// summed over every verifier attached to the memo.
  size_t evaluations() const { return memo_->evaluations(); }
  /// \brief Number of cache hits served (lock-free; the release hot path
  /// reads this twice per release).
  size_t cache_hits() const { return memo_->cache_.hits(); }

  /// \brief Full counter snapshot (hits, misses, evictions, invalidations,
  /// resident bytes/entries) for reports and benchmarks.
  VerifierStats Stats() const;

  /// \brief Drops all memoized results (every epoch's, when the memo is
  /// shared). Logically const: the cache is a pure memo, so clearing it
  /// never changes any observable answer. Normal operation never calls
  /// this — the LRU budget and epoch invalidation do the shedding — but
  /// ablations and tests do.
  void ClearCache() const;

 private:
  using ResultPtr = std::shared_ptr<const std::vector<uint32_t>>;

  ResultPtr Compute(const ContextVec& c) const;

  const PopulationProbe* index_;
  const OutlierDetector* detector_;
  VerifierOptions options_;
  std::shared_ptr<VerifierMemo> memo_;
  uint64_t epoch_ = 0;
};

}  // namespace pcor
