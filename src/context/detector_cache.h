#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "src/common/sharded_lru_cache.h"
#include "src/context/context.h"
#include "src/context/population_index.h"
#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the outlier verifier's memo cache.
struct VerifierOptions {
  /// Approximate resident-byte budget for memoized results. The cache
  /// evicts least-recently-used contexts per entry once the budget is
  /// exceeded — it is persistent across batches, never cleared wholesale.
  /// 0 = unbounded.
  size_t max_cache_bytes = size_t{256} << 20;
  /// Optional additional bound on resident entries. 0 = unbounded.
  size_t max_cache_entries = 0;
  /// Cache shards (rounded up to a power of two); 0 = one per hardware
  /// thread. More shards = less mutex contention between sampler threads.
  size_t num_shards = 0;
  /// Ablation mode: reproduce the pre-LRU wholesale clear (drop a whole
  /// shard when it overflows) instead of per-entry eviction. Used by
  /// bench_micro_verifier_cache to measure what LRU buys.
  bool wholesale_clear = false;
  /// Disable memoization entirely (for ablation benchmarks).
  bool enable_cache = true;
  /// Keep one shard group per NUMA node and route each probe thread to its
  /// own node's group (see LruCacheOptions::numa_aware). Pair with a
  /// NUMA-pinned ThreadPool (PCOR_PIN_THREADS) so sampler threads only
  /// touch node-local cache lines. No-op on single-node hosts.
  bool numa_aware = false;
  /// Let the cache resize its own byte budget from the hit/eviction
  /// counters (see LruCacheOptions::adaptive_budget); max_cache_bytes
  /// becomes the starting point instead of a fixed ceiling.
  bool adaptive_budget = false;
};

/// \brief Counter snapshot of the verifier and its cache.
struct VerifierStats {
  size_t evaluations = 0;     ///< full detector runs
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;  ///< entries dropped to satisfy the budget
  size_t resident_bytes = 0;   ///< approximate bytes of memoized results
  size_t resident_entries = 0; ///< memoized contexts currently resident
};

/// \brief The paper's outlier verification function f_M(D_C, V), memoized.
///
/// Given a context C, the verifier filters the dataset through the
/// population index (into per-thread scratch buffers — zero allocations in
/// steady state), runs the detector on the population's contiguous metric
/// span once, converts flagged positions to row ids, and caches the result
/// — every later f_M(D_C, ·) query on the same context is a lookup. The
/// graph-search samplers revisit contexts constantly (each vertex has t
/// neighbors), so this memoization is the practical analogue of the paper's
/// precomputed reference file.
///
/// The memo is a ShardedLruCache: persistent across batches, with real
/// per-entry LRU eviction against an approximate byte budget. Eviction is
/// answer-invariant — f_M is deterministic, so dropping an entry can only
/// cost a recomputation, never change a result. Thread-safe; the experiment
/// harness shares one verifier across trial threads.
class OutlierVerifier {
 public:
  OutlierVerifier(const PopulationProbe& index,
                  const OutlierDetector& detector,
                  VerifierOptions options = {});

  /// \brief f_M(D_C, V): true iff row `v_row` is in D_C *and* the detector
  /// flags it there. Rows outside the population are never outliers in it.
  bool IsOutlierInContext(const ContextVec& c, uint32_t v_row) const;

  /// \brief Row ids of all outliers in D_C, ascending (shared, immutable).
  std::shared_ptr<const std::vector<uint32_t>> OutliersInContext(
      const ContextVec& c) const;

  const PopulationProbe& index() const { return *index_; }
  const OutlierDetector& detector() const { return *detector_; }
  const VerifierOptions& options() const { return options_; }

  /// \brief Number of full detector evaluations performed (cache misses).
  size_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// \brief Number of cache hits served (lock-free; the release hot path
  /// reads this twice per release).
  size_t cache_hits() const { return cache_.hits(); }

  /// \brief Full counter snapshot (hits, misses, evictions, resident
  /// bytes/entries) for reports and benchmarks.
  VerifierStats Stats() const;

  /// \brief Drops all memoized results. Logically const: the cache is a
  /// pure memo, so clearing it never changes any observable answer. Normal
  /// operation never calls this — the LRU budget does the shedding — but
  /// ablations and tests do.
  void ClearCache() const;

 private:
  using ResultPtr = std::shared_ptr<const std::vector<uint32_t>>;

  ResultPtr Compute(const ContextVec& c) const;

  const PopulationProbe* index_;
  const OutlierDetector* detector_;
  VerifierOptions options_;

  mutable ShardedLruCache<ContextVec, ResultPtr, ContextVecHash> cache_;
  mutable std::atomic<size_t> evaluations_{0};
};

}  // namespace pcor
