#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/context/context.h"
#include "src/context/population_index.h"
#include "src/outlier/detector.h"

namespace pcor {

/// \brief Options for the outlier verifier.
struct VerifierOptions {
  /// Upper bound on memoized contexts; the cache is cleared wholesale when
  /// exceeded (searches revisit recent contexts, so recency is a good
  /// enough proxy without LRU bookkeeping).
  size_t max_cache_entries = 1 << 20;
  /// Disable memoization entirely (for ablation benchmarks).
  bool enable_cache = true;
};

/// \brief The paper's outlier verification function f_M(D_C, V), memoized.
///
/// Given a context C, the verifier filters the dataset through the
/// population index, runs the detector on the population's metric values
/// once, converts flagged positions to row ids, and caches the result —
/// every later f_M(D_C, ·) query on the same context is a lookup. The
/// graph-search samplers revisit contexts constantly (each vertex has t
/// neighbors), so this memoization is the practical analogue of the paper's
/// precomputed reference file. Thread-safe; the experiment harness shares
/// one verifier across trial threads.
class OutlierVerifier {
 public:
  OutlierVerifier(const PopulationIndex& index,
                  const OutlierDetector& detector,
                  VerifierOptions options = {});

  /// \brief f_M(D_C, V): true iff row `v_row` is in D_C *and* the detector
  /// flags it there. Rows outside the population are never outliers in it.
  bool IsOutlierInContext(const ContextVec& c, uint32_t v_row) const;

  /// \brief Row ids of all outliers in D_C, ascending (shared, immutable).
  std::shared_ptr<const std::vector<uint32_t>> OutliersInContext(
      const ContextVec& c) const;

  const PopulationIndex& index() const { return *index_; }
  const OutlierDetector& detector() const { return *detector_; }

  /// \brief Number of full detector evaluations performed (cache misses).
  size_t evaluations() const { return evaluations_.load(); }
  /// \brief Number of cache hits served.
  size_t cache_hits() const { return cache_hits_.load(); }

  /// \brief Drops all memoized results. Logically const: the cache is a
  /// pure memo, so clearing it never changes any observable answer.
  void ClearCache() const;

 private:
  std::shared_ptr<const std::vector<uint32_t>> Compute(
      const ContextVec& c) const;

  const PopulationIndex* index_;
  const OutlierDetector* detector_;
  VerifierOptions options_;

  mutable std::shared_mutex mu_;
  mutable std::unordered_map<ContextVec,
                             std::shared_ptr<const std::vector<uint32_t>>,
                             ContextVecHash>
      cache_;
  mutable std::atomic<size_t> evaluations_{0};
  mutable std::atomic<size_t> cache_hits_{0};
};

}  // namespace pcor
