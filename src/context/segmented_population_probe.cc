#include "src/context/segmented_population_probe.h"

#include <algorithm>
#include <atomic>

#include "src/common/logging.h"
#include "src/context/sharded_population_index.h"

namespace pcor {

namespace {
// Per-worker scratch for segment sub-probes, mirroring the sharded
// index's t_shard_scratch: each segment task fills it and deposits the
// bits out before returning, so a worker reusing it across tasks can
// never mix results.
thread_local PopulationScratch t_segment_scratch;
// Per-thread count buffer. Segment count is data-defined (unbounded with
// compaction disabled), so unlike the sharded index's fixed stack array
// this grows. Safe under nested ParallelFor: a thread blocked in an outer
// loop only drains chunks of its *own* loop, so its buffer is never
// reused by an unrelated gather mid-sum.
thread_local std::vector<size_t> t_segment_counts;

/// \brief Deposits `bits` (OR) into `*word`. `shared` marks the words a
/// neighboring segment's deposit may also touch — the unaligned edge
/// words — which go through atomic fetch_or; interior words have a single
/// writer over a zeroed destination.
inline void DepositWord(uint64_t* word, uint64_t bits, bool shared) {
  if (bits == 0) return;
  if (shared) {
    std::atomic_ref<uint64_t>(*word).fetch_or(bits,
                                              std::memory_order_relaxed);
  } else {
    *word |= bits;
  }
}

/// \brief ORs the first `count` bits of `src` into `*dst` starting at bit
/// `dst_begin`. Seal points are arbitrary row counts, so unlike the
/// word-aligned shard gather every source word lands across up to two
/// destination words (shift + carry). OR over disjoint bit sets commutes,
/// so concurrent per-segment deposits produce the same bits in any order.
/// Relies on the BitVector invariant that pad bits beyond size() are zero
/// (the final carry of a segment whose bits end mid-word is zero).
void OrShiftedInto(const BitVector& src, size_t count, size_t dst_begin,
                   BitVector* dst) {
  if (count == 0) return;
  const uint64_t* s = src.data();
  uint64_t* d = dst->mutable_data();
  const size_t src_words = (count + 63) / 64;
  const size_t base = dst_begin / 64;
  const size_t last = (dst_begin + count - 1) / 64;
  const size_t shift = dst_begin % 64;
  if (shift == 0) {
    for (size_t i = 0; i < src_words; ++i) {
      const size_t w = base + i;
      DepositWord(d + w, s[i], w == base || w == last);
    }
    return;
  }
  uint64_t carry = 0;
  for (size_t i = 0; i < src_words; ++i) {
    const size_t w = base + i;
    DepositWord(d + w, (s[i] << shift) | carry, w == base || w == last);
    carry = s[i] >> (64 - shift);
  }
  // The carry of the final source word is in-range only when the shifted
  // span spills into one more destination word; otherwise it is all pad
  // bits (zero) and the deposit is skipped.
  if (base + src_words <= last) DepositWord(d + base + src_words, carry, true);
}

}  // namespace

std::shared_ptr<const PopulationSegment> MakeSegment(
    uint32_t row_begin, std::shared_ptr<const Dataset> rows,
    IndexStorage storage) {
  PCOR_CHECK(rows != nullptr && rows->num_rows() > 0)
      << "a segment must hold at least one row";
  auto segment = std::make_shared<PopulationSegment>();
  segment->row_begin = row_begin;
  segment->index = std::make_unique<const PopulationIndex>(*rows, storage);
  segment->rows = std::move(rows);
  return segment;
}

void MergeSegments(
    std::vector<std::shared_ptr<const PopulationSegment>>* segments,
    size_t begin, size_t end, IndexStorage storage) {
  PCOR_CHECK(begin < end && end <= segments->size())
      << "merge range outside segment list";
  if (end - begin == 1) return;
  const Schema& schema = (*segments)[begin]->rows->schema();
  auto merged = std::make_shared<Dataset>(schema);
  Row row;
  row.codes.resize(schema.num_attributes());
  for (size_t s = begin; s < end; ++s) {
    const Dataset& part = *(*segments)[s]->rows;
    for (size_t r = 0; r < part.num_rows(); ++r) {
      for (size_t a = 0; a < schema.num_attributes(); ++a) {
        row.codes[a] = part.code(r, a);
      }
      row.metric = part.metric(r);
      merged->AppendRow(row).CheckOK();
    }
  }
  auto segment =
      MakeSegment((*segments)[begin]->row_begin, std::move(merged), storage);
  segments->erase(segments->begin() + static_cast<ptrdiff_t>(begin) + 1,
                  segments->begin() + static_cast<ptrdiff_t>(end));
  (*segments)[begin] = std::move(segment);
}

SegmentedPopulationProbe::SegmentedPopulationProbe(
    Schema schema,
    std::vector<std::shared_ptr<const PopulationSegment>> segments,
    IndexStorage storage, size_t probe_threads)
    : anchor_(std::move(schema)),
      storage_(storage),
      segments_(std::move(segments)) {
  probe_threads_ =
      probe_threads == 0 ? DefaultThreadCount() : probe_threads;
  seg_begin_.reserve(segments_.size() + 1);
  uint32_t next = 0;
  for (const auto& segment : segments_) {
    PCOR_CHECK(segment != nullptr && segment->num_rows() > 0)
        << "segments must be non-null and non-empty";
    PCOR_CHECK(segment->row_begin == next)
        << "segments must be contiguous from global row 0";
    seg_begin_.push_back(segment->row_begin);
    next = segment->row_end();
  }
  seg_begin_.push_back(next);
  total_rows_ = next;
  // Small streams probe serially: a per-segment task dispatch only pays
  // for itself once the word loops dominate — the same threshold that
  // caps the sharded index's automatic shard count.
  parallel_probes_ = probe_threads_ > 1 && segments_.size() > 1 &&
                     total_rows_ >= kMinRowsPerShard;
}

ThreadPool* SegmentedPopulationProbe::probe_pool() const {
  if (probe_threads_ <= 1) return nullptr;
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(probe_threads_);
  return pool_.get();
}

void SegmentedPopulationProbe::RunOverSegments(
    const std::function<void(size_t)>& fn) const {
  const size_t n = segments_.size();
  if (!parallel_probes_) {
    for (size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  probe_pool()->ParallelFor(n, probe_threads_, fn);
}

size_t SegmentedPopulationProbe::SegmentOf(uint32_t row) const {
  PCOR_CHECK(row < total_rows_) << "row outside the sealed stream";
  // seg_begin_ is strictly increasing (segments are non-empty), so the
  // covering segment is the last boundary <= row.
  const auto it =
      std::upper_bound(seg_begin_.begin(), seg_begin_.end(), row);
  return static_cast<size_t>(it - seg_begin_.begin()) - 1;
}

PopulationIndexStats SegmentedPopulationProbe::MemoryStats() const {
  PopulationIndexStats stats;
  for (const auto& segment : segments_) {
    const PopulationIndexStats s = segment->index->MemoryStats();
    stats.bitmap_bytes += s.bitmap_bytes;
    stats.empty_chunks += s.empty_chunks;
    stats.array_chunks += s.array_chunks;
    stats.dense_chunks += s.dense_chunks;
  }
  return stats;
}

void SegmentedPopulationProbe::PopulationInto(const ContextVec& c,
                                              BitVector* population,
                                              BitVector* attr_union) const {
  if (segments_.size() == 1) {
    // One segment covers [0, num_rows) in an identical layout — delegate.
    segments_[0]->index->PopulationInto(c, population, attr_union);
    return;
  }
  population->Assign(total_rows_, false);
  attr_union->Assign(total_rows_, false);
  RunOverSegments([&](size_t s) {
    const PopulationSegment& segment = *segments_[s];
    segment.index->PopulationInto(c, &t_segment_scratch.population,
                                  &t_segment_scratch.attr_union);
    OrShiftedInto(t_segment_scratch.population, segment.num_rows(),
                  segment.row_begin, population);
  });
}

size_t SegmentedPopulationProbe::PopulationCount(const ContextVec& c) const {
  const size_t n = segments_.size();
  if (n == 1) return segments_[0]->index->PopulationCount(c);
  auto& counts = t_segment_counts;
  if (counts.size() < n) counts.resize(n);
  RunOverSegments(
      [&](size_t s) { counts[s] = segments_[s]->index->PopulationCount(c); });
  // Gather in ascending segment order — the uniform canonical-merge
  // discipline (integer sums over disjoint ranges commute anyway).
  size_t total = 0;
  for (size_t s = 0; s < n; ++s) total += counts[s];
  return total;
}

size_t SegmentedPopulationProbe::OverlapCount(const ContextVec& c1,
                                              const ContextVec& c2) const {
  const size_t n = segments_.size();
  if (n == 1) return segments_[0]->index->OverlapCount(c1, c2);
  auto& counts = t_segment_counts;
  if (counts.size() < n) counts.resize(n);
  RunOverSegments([&](size_t s) {
    counts[s] = segments_[s]->index->OverlapCount(c1, c2);
  });
  size_t total = 0;
  for (size_t s = 0; s < n; ++s) total += counts[s];
  return total;
}

const BitVector& SegmentedPopulationProbe::ValueBitmap(size_t attr,
                                                       size_t value) const {
  if (segments_.size() == 1) return segments_[0]->index->ValueBitmap(attr, value);
  thread_local BitVector t_concat;
  t_concat.Assign(total_rows_, false);
  // Serial: a test/bench accessor, and each segment's compressed
  // ValueBitmap materializes into a shared thread_local, so the deposit
  // must complete before the next segment's call overwrites it.
  for (size_t s = 0; s < segments_.size(); ++s) {
    const PopulationSegment& segment = *segments_[s];
    OrShiftedInto(segment.index->ValueBitmap(attr, value),
                  segment.num_rows(), segment.row_begin, &t_concat);
  }
  return t_concat;
}

uint32_t SegmentedPopulationProbe::RowCode(uint32_t row, size_t attr) const {
  const PopulationSegment& segment = *segments_[SegmentOf(row)];
  return segment.rows->code(row - segment.row_begin, attr);
}

double SegmentedPopulationProbe::RowMetric(uint32_t row) const {
  const PopulationSegment& segment = *segments_[SegmentOf(row)];
  return segment.rows->metric(row - segment.row_begin);
}

void SegmentedPopulationProbe::GatherMetrics(
    const BitVector& population, std::vector<uint32_t>* row_ids,
    std::vector<double>* metric) const {
  row_ids->clear();
  metric->clear();
  const size_t count = population.Count();
  row_ids->reserve(count);
  metric->reserve(count);
  // Set bits arrive ascending, so one monotone cursor resolves each row's
  // segment without a per-row binary search.
  size_t s = 0;
  population.ForEachSetBit([&](uint32_t row) {
    while (row >= seg_begin_[s + 1]) ++s;
    const PopulationSegment& segment = *segments_[s];
    row_ids->push_back(row);
    metric->push_back(segment.rows->metric(row - segment.row_begin));
  });
}

}  // namespace pcor
