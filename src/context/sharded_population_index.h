#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/threading.h"
#include "src/context/population_index.h"

namespace pcor {

/// \brief Hard cap on shards per index, far above any sane configuration
/// (256 shards x 64Ki rows already covers 16M rows). Lets per-probe gather
/// buffers live on the stack.
inline constexpr size_t kMaxShardCount = 256;

/// \brief Shards smaller than this are pure overhead: a shard-probe costs a
/// task dispatch plus a word loop, and under 64Ki rows the dispatch wins.
/// Only applies to the automatic default — explicit shard counts (option or
/// PCOR_SHARD_COUNT) are always honored exactly, which is how tests force
/// multi-shard layouts onto tiny datasets.
inline constexpr size_t kMinRowsPerShard = size_t{64} * 1024;

/// \brief Shard count for a dataset of `num_rows`: the PCOR_SHARD_COUNT env
/// var when set (clamped to [1, kMaxShardCount]), else DefaultThreadCount()
/// clamped so no shard drops below kMinRowsPerShard. Tiny datasets therefore
/// default to one shard — sharding them would only add dispatch overhead —
/// while the env pin still forces any layout for equivalence testing.
size_t DefaultShardCount(size_t num_rows);

/// \brief Construction knobs for ShardedPopulationIndex.
struct ShardedIndexOptions {
  /// Number of row-range shards. 0 = DefaultShardCount(num_rows); an
  /// explicit value is honored exactly (clamped to kMaxShardCount).
  size_t shard_count = 0;
  /// Storage for every shard's value bitmaps.
  IndexStorage storage = DefaultIndexStorage();
  /// Threads in the lazily created probe pool. 0 = DefaultThreadCount().
  /// With one shard the pool is never created.
  size_t probe_threads = 0;
};

/// \brief Row-sharded population index: the dataset's row space is split
/// into contiguous word-aligned ranges, each indexed by an independent
/// PopulationIndex in its own local row space. Probes scatter one sub-probe
/// per shard across a shared ThreadPool and gather in **fixed ascending
/// shard order** — the same canonical-merge discipline the SIMD kernels use
/// for lane reductions, lifted to shard granularity.
///
/// Determinism contract: every probe is bit-identical to an unsharded
/// PopulationIndex over the same dataset and storage, for any shard count
/// and any thread count (including 1). The pieces that make this hold:
///   - shard boundaries depend only on (num_rows, shard_count), never on
///     thread scheduling;
///   - counts are sums over disjoint row ranges of exact per-shard counts
///     (integer addition — associative, no ordering sensitivity);
///   - populations gather by copying each shard's local bitmap words into
///     the global bitmap's disjoint word range (boundaries are multiples of
///     64, so words concatenate without shifting and writes never race).
/// The sharded-vs-unsharded fuzz suites and the never-relaxed equivalence
/// gate in bench_million_rows enforce the contract.
///
/// Thread-safe for concurrent probes, like PopulationIndex. Probes may
/// themselves run on pool workers (the engine's intra-release scoring loop
/// does this): ThreadPool::ParallelFor is reentrancy-safe, so a worker
/// blocked in an outer loop drains inner shard-probes itself rather than
/// deadlocking on a saturated queue.
class ShardedPopulationIndex : public PopulationProbe {
 public:
  explicit ShardedPopulationIndex(const Dataset& dataset,
                                  ShardedIndexOptions options = {});

  const Dataset& dataset() const override { return *dataset_; }
  size_t num_rows() const override { return dataset_->num_rows(); }
  IndexStorage storage() const override { return storage_; }

  /// \brief Sum of the shards' footprints (chunk census included).
  PopulationIndexStats MemoryStats() const override;

  void PopulationInto(const ContextVec& c, BitVector* population,
                      BitVector* attr_union) const override;

  size_t PopulationCount(const ContextVec& c) const override;

  size_t OverlapCount(const ContextVec& c1,
                      const ContextVec& c2) const override;

  /// \brief Global (attr, value) bitmap, concatenated from the shards into
  /// a thread_local buffer; invalidated by the next call on this thread.
  const BitVector& ValueBitmap(size_t attr, size_t value) const override;

  size_t shard_count() const { return shards_.size(); }
  /// \brief Shard `s` (local row space starting at shard_begin(s)).
  const PopulationIndex& shard(size_t s) const { return *shards_[s]; }
  /// \brief First dataset row of shard `s`; shard_begin(shard_count()) is
  /// num_rows(). Always a multiple of 64 (except the final sentinel).
  uint32_t shard_begin(size_t s) const { return shard_begin_[s]; }

  /// \brief The shared worker pool probes scatter on, created on first use
  /// (never for a single-shard index probed serially). The engine reuses it
  /// for the intra-release scoring loop so one release never owns two
  /// pools. Thread-safe; never null.
  ThreadPool* probe_pool() const override;

 private:
  /// \brief Runs fn(s) for every shard: serially for a single shard,
  /// otherwise scattered over probe_pool(). Gathering stays with callers,
  /// who read per-shard results in ascending shard order.
  void RunOverShards(const std::function<void(size_t)>& fn) const;

  const Dataset* dataset_;
  IndexStorage storage_;
  size_t probe_threads_;
  std::vector<uint32_t> shard_begin_;  // size shard_count()+1, 64-aligned
  std::vector<std::unique_ptr<PopulationIndex>> shards_;

  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<ThreadPool> pool_;  // guarded by pool_mu_
};

}  // namespace pcor
