#include "src/context/context.h"

#include "src/common/logging.h"

namespace pcor {

ContextVec::ContextVec(size_t num_bits) : num_bits_(num_bits) {
  PCOR_CHECK(num_bits <= kMaxBits)
      << "context length " << num_bits << " exceeds kMaxBits " << kMaxBits;
  words_.fill(0);
}

void ContextVec::Set(size_t i) {
  PCOR_CHECK(i < num_bits_) << "ContextVec::Set out of range";
  words_[i / 64] |= (1ULL << (i % 64));
}

void ContextVec::Clear(size_t i) {
  PCOR_CHECK(i < num_bits_) << "ContextVec::Clear out of range";
  words_[i / 64] &= ~(1ULL << (i % 64));
}

void ContextVec::Flip(size_t i) {
  PCOR_CHECK(i < num_bits_) << "ContextVec::Flip out of range";
  words_[i / 64] ^= (1ULL << (i % 64));
}

bool ContextVec::Test(size_t i) const {
  PCOR_CHECK(i < num_bits_) << "ContextVec::Test out of range";
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

size_t ContextVec::Weight() const {
  size_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<size_t>(__builtin_popcountll(w));
  }
  return total;
}

size_t ContextVec::HammingDistance(const ContextVec& other) const {
  PCOR_CHECK(num_bits_ == other.num_bits_)
      << "Hamming distance between contexts of different length";
  size_t total = 0;
  for (size_t w = 0; w < kWords; ++w) {
    total += static_cast<size_t>(
        __builtin_popcountll(words_[w] ^ other.words_[w]));
  }
  return total;
}

void ContextVec::ForEachSetBit(const std::function<void(size_t)>& fn) const {
  for (size_t w = 0; w < kWords; ++w) {
    uint64_t word = words_[w];
    while (word) {
      unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      fn(w * 64 + bit);
      word &= word - 1;
    }
  }
}

std::string ContextVec::ToBitString() const {
  std::string out(num_bits_, '0');
  for (size_t i = 0; i < num_bits_; ++i) {
    if (Test(i)) out[i] = '1';
  }
  return out;
}

Result<ContextVec> ContextVec::FromBitString(const std::string& bits) {
  if (bits.size() > kMaxBits) {
    return Status::InvalidArgument("bit string longer than kMaxBits");
  }
  ContextVec c(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      c.Set(i);
    } else if (bits[i] != '0') {
      return Status::InvalidArgument("bit string must contain only 0/1");
    }
  }
  return c;
}

size_t ContextVec::Hash() const {
  // FNV-1a over the words plus the length.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (uint64_t w : words_) mix(w);
  mix(static_cast<uint64_t>(num_bits_));
  return static_cast<size_t>(h);
}

bool ContextVec::operator<(const ContextVec& other) const {
  if (num_bits_ != other.num_bits_) return num_bits_ < other.num_bits_;
  for (size_t w = kWords; w-- > 0;) {
    if (words_[w] != other.words_[w]) return words_[w] < other.words_[w];
  }
  return false;
}

namespace context_ops {

ContextVec FullContext(const Schema& schema) {
  ContextVec c(schema.total_values());
  for (size_t i = 0; i < schema.total_values(); ++i) c.Set(i);
  return c;
}

ContextVec ExactContext(const Schema& schema, const Dataset& dataset,
                        size_t row) {
  ContextVec c(schema.total_values());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    c.Set(schema.value_offset(a) + dataset.code(row, a));
  }
  return c;
}

bool ContainsRow(const Schema& schema, const Dataset& dataset, size_t row,
                 const ContextVec& c) {
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (!c.Test(schema.value_offset(a) + dataset.code(row, a))) return false;
  }
  return true;
}

bool HasAllAttributes(const Schema& schema, const ContextVec& c) {
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (AttributeWeight(schema, c, a) == 0) return false;
  }
  return true;
}

size_t AttributeWeight(const Schema& schema, const ContextVec& c,
                       size_t attr) {
  const size_t off = schema.value_offset(attr);
  const size_t size = schema.attribute(attr).domain_size();
  size_t weight = 0;
  for (size_t v = 0; v < size; ++v) {
    if (c.Test(off + v)) ++weight;
  }
  return weight;
}

std::string Describe(const Schema& schema, const ContextVec& c) {
  std::string out;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (a) out += " AND ";
    out += "[" + schema.attribute(a).name + " IN {";
    const size_t off = schema.value_offset(a);
    bool first = true;
    for (size_t v = 0; v < schema.attribute(a).domain_size(); ++v) {
      if (!c.Test(off + v)) continue;
      if (!first) out += ", ";
      out += schema.attribute(a).domain[v];
      first = false;
    }
    out += "}]";
  }
  return out;
}

}  // namespace context_ops
}  // namespace pcor
