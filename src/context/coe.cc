#include "src/context/coe.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace pcor {

Result<std::vector<ContextVec>> EnumerateCoe(const OutlierVerifier& verifier,
                                             uint32_t v_row,
                                             const CoeOptions& options) {
  const Schema& schema = verifier.index().schema();
  if (v_row >= verifier.index().num_rows()) {
    return Status::OutOfRange("v_row outside dataset");
  }
  const size_t t = schema.total_values();
  const size_t m = schema.num_attributes();

  // Bits that must be set for V to be in D_C.
  std::vector<size_t> fixed_bits;
  fixed_bits.reserve(m);
  for (size_t a = 0; a < m; ++a) {
    fixed_bits.push_back(schema.value_offset(a) +
                         verifier.index().RowCode(v_row, a));
  }
  // Remaining free bits.
  std::vector<size_t> free_bits;
  free_bits.reserve(t - m);
  for (size_t bit = 0; bit < t; ++bit) {
    if (std::find(fixed_bits.begin(), fixed_bits.end(), bit) ==
        fixed_bits.end()) {
      free_bits.push_back(bit);
    }
  }
  if (free_bits.size() >= 63 ||
      (size_t{1} << free_bits.size()) > options.max_contexts) {
    return Status::FailedPrecondition(strings::Format(
        "COE enumeration would visit 2^%zu contexts (cap %zu)",
        free_bits.size(), options.max_contexts));
  }

  std::vector<ContextVec> matches;
  const uint64_t combos = uint64_t{1} << free_bits.size();
  for (uint64_t mask = 0; mask < combos; ++mask) {
    ContextVec c(t);
    for (size_t bit : fixed_bits) c.Set(bit);
    for (size_t j = 0; j < free_bits.size(); ++j) {
      if ((mask >> j) & 1) c.Set(free_bits[j]);
    }
    if (verifier.IsOutlierInContext(c, v_row)) matches.push_back(c);
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

CoeMatch CompareCoe(const std::vector<ContextVec>& left,
                    const std::vector<ContextVec>& right) {
  // Both inputs are sorted (EnumerateCoe guarantees it); merge-count.
  CoeMatch match;
  size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    if (left[i] == right[j]) {
      ++match.intersection_size;
      ++i;
      ++j;
    } else if (left[i] < right[j]) {
      ++match.only_left;
      ++i;
    } else {
      ++match.only_right;
      ++j;
    }
  }
  match.only_left += left.size() - i;
  match.only_right += right.size() - j;
  match.union_size =
      match.intersection_size + match.only_left + match.only_right;
  match.jaccard = match.union_size == 0
                      ? 1.0
                      : static_cast<double>(match.intersection_size) /
                            static_cast<double>(match.union_size);
  match.containment = left.empty()
                          ? 1.0
                          : static_cast<double>(match.intersection_size) /
                                static_cast<double>(left.size());
  return match;
}

}  // namespace pcor
