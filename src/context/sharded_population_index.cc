#include "src/context/sharded_population_index.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pcor {

namespace {
// Per-worker scratch for shard sub-probes. Each shard task fills it and
// copies the words out before returning, so a worker reusing it across
// tasks (even tasks from concurrent gathers) can never mix results.
thread_local PopulationScratch t_shard_scratch;
}  // namespace

size_t DefaultShardCount(size_t num_rows) {
  const size_t pinned = strings::EnvSizeOr("PCOR_SHARD_COUNT", 0);
  if (pinned != 0) return std::min(pinned, kMaxShardCount);
  const size_t by_rows = std::max<size_t>(num_rows / kMinRowsPerShard, 1);
  return std::min({DefaultThreadCount(), by_rows, kMaxShardCount});
}

ShardedPopulationIndex::ShardedPopulationIndex(const Dataset& dataset,
                                               ShardedIndexOptions options)
    : dataset_(&dataset), storage_(options.storage) {
  probe_threads_ = options.probe_threads == 0 ? DefaultThreadCount()
                                              : options.probe_threads;
  const size_t num_rows = dataset.num_rows();
  size_t shards = options.shard_count == 0 ? DefaultShardCount(num_rows)
                                           : options.shard_count;
  shards = std::min(std::max<size_t>(shards, 1), kMaxShardCount);
  // Boundaries are the even split rounded down to a word multiple, a pure
  // function of (num_rows, shards). Rounding can make leading shards empty
  // on tiny datasets (rows < shards*64); empty shards probe correctly and
  // contribute zero rows, so the layout stays valid rather than special-
  // cased.
  shard_begin_.reserve(shards + 1);
  for (size_t s = 0; s < shards; ++s) {
    shard_begin_.push_back(
        static_cast<uint32_t>((s * num_rows / shards) & ~size_t{63}));
  }
  shard_begin_.push_back(static_cast<uint32_t>(num_rows));
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<PopulationIndex>(
        dataset, storage_, shard_begin_[s], shard_begin_[s + 1]));
  }
}

ThreadPool* ShardedPopulationIndex::probe_pool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(probe_threads_);
  return pool_.get();
}

void ShardedPopulationIndex::RunOverShards(
    const std::function<void(size_t)>& fn) const {
  const size_t n = shards_.size();
  if (n == 1 || probe_threads_ <= 1) {
    for (size_t s = 0; s < n; ++s) fn(s);
    return;
  }
  probe_pool()->ParallelFor(n, probe_threads_, fn);
}

PopulationIndexStats ShardedPopulationIndex::MemoryStats() const {
  PopulationIndexStats stats;
  for (const auto& shard : shards_) {
    const PopulationIndexStats s = shard->MemoryStats();
    stats.bitmap_bytes += s.bitmap_bytes;
    stats.empty_chunks += s.empty_chunks;
    stats.array_chunks += s.array_chunks;
    stats.dense_chunks += s.dense_chunks;
  }
  return stats;
}

void ShardedPopulationIndex::PopulationInto(const ContextVec& c,
                                            BitVector* population,
                                            BitVector* attr_union) const {
  if (shards_.size() == 1) {
    // One shard covers [0, num_rows) in an identical layout — delegate.
    shards_[0]->PopulationInto(c, population, attr_union);
    return;
  }
  population->Assign(num_rows(), false);
  attr_union->Assign(num_rows(), false);
  RunOverShards([&](size_t s) {
    shards_[s]->PopulationInto(c, &t_shard_scratch.population,
                               &t_shard_scratch.attr_union);
    // Boundaries are word-aligned, so the shard's local words land in a
    // word range no other shard writes: a straight copy, no shifting, no
    // races. A non-final shard spans a word multiple exactly; the final
    // shard's tail word has its pad bits zero (BitVector invariant), which
    // matches the global bitmap's own tail.
    std::copy_n(t_shard_scratch.population.data(),
                t_shard_scratch.population.num_words(),
                population->mutable_data() + shard_begin_[s] / 64);
  });
}

size_t ShardedPopulationIndex::PopulationCount(const ContextVec& c) const {
  size_t counts[kMaxShardCount];
  RunOverShards([&](size_t s) { counts[s] = shards_[s]->PopulationCount(c); });
  // Gather in ascending shard order. Integer sums over disjoint row ranges
  // are order-insensitive anyway; the fixed order is the uniform canonical-
  // merge discipline every gather in this class follows.
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) total += counts[s];
  return total;
}

size_t ShardedPopulationIndex::OverlapCount(const ContextVec& c1,
                                            const ContextVec& c2) const {
  size_t counts[kMaxShardCount];
  RunOverShards(
      [&](size_t s) { counts[s] = shards_[s]->OverlapCount(c1, c2); });
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) total += counts[s];
  return total;
}

const BitVector& ShardedPopulationIndex::ValueBitmap(size_t attr,
                                                     size_t value) const {
  thread_local BitVector t_concat;
  t_concat.Assign(num_rows(), false);
  // Serial: this is a test/bench accessor, not a hot probe — and each
  // shard's compressed ValueBitmap materializes into a shared thread_local,
  // so the copy must complete before the next shard's call overwrites it.
  for (size_t s = 0; s < shards_.size(); ++s) {
    const BitVector& local = shards_[s]->ValueBitmap(attr, value);
    std::copy_n(local.data(), local.num_words(),
                t_concat.mutable_data() + shard_begin_[s] / 64);
  }
  return t_concat;
}

}  // namespace pcor
