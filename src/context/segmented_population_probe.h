#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/threading.h"
#include "src/context/population_index.h"

namespace pcor {

/// \brief One immutable sealed slice of a stream: the rows one SealEpoch
/// (or one compaction of several seals) contributed, holding their own
/// Dataset plus a full-range PopulationIndex in local row space — exactly
/// a shard, except the boundary is a seal point rather than a computed
/// split. Segments are shared structurally across epoch snapshots via
/// shared_ptr and never mutated after construction.
struct PopulationSegment {
  uint32_t row_begin = 0;  ///< first global (stream) row this segment covers
  std::shared_ptr<const Dataset> rows;           ///< this segment's rows only
  std::unique_ptr<const PopulationIndex> index;  ///< over `rows`, local space

  size_t num_rows() const { return rows->num_rows(); }
  uint32_t row_end() const {
    return row_begin + static_cast<uint32_t>(num_rows());
  }
};

/// \brief Builds one segment over `rows` (must be non-empty), covering
/// global rows [row_begin, row_begin + rows->num_rows()). Cost is
/// O(rows->num_rows()) — the whole point of segmented seals.
std::shared_ptr<const PopulationSegment> MakeSegment(
    uint32_t row_begin, std::shared_ptr<const Dataset> rows,
    IndexStorage storage);

/// \brief Replaces segments [begin, end) of `*segments` with one merged
/// segment: rows copied into a fresh Dataset, index rebuilt — O(rows of
/// the merged range). Used by the streaming compaction policy and the
/// copy-on-seal ablation. No-op when the range is a single segment.
void MergeSegments(
    std::vector<std::shared_ptr<const PopulationSegment>>* segments,
    size_t begin, size_t end, IndexStorage storage);

/// \brief Population probe composing an ordered, contiguous segment list
/// into one global row space, so a snapshot built from shared segments
/// probes exactly like a load-once index over the concatenated rows.
///
/// Determinism contract: every probe is bit-identical to an unsharded
/// PopulationIndex over the same rows and storage, for any segment layout
/// and any thread count — same argument as ShardedPopulationIndex (counts
/// sum over disjoint row ranges; populations gather in fixed ascending
/// segment order), with one twist: seal points are arbitrary row counts,
/// not word multiples, so local bitmaps concatenate by shifted OR instead
/// of word copies. Destination words shared by two neighboring segments
/// are deposited with atomic fetch_or; OR over disjoint bit sets commutes,
/// so scatter order cannot perturb the result. The segmented-vs-unsharded
/// fuzz suite (tests/context/segmented_population_test.cc) and the
/// streaming equivalence gates enforce the contract.
///
/// dataset() returns a zero-row schema anchor — row data lives in the
/// segments and is reached through RowCode / RowMetric / GatherMetrics.
///
/// Thread-safe for concurrent probes; probes may run on pool workers
/// (ThreadPool::ParallelFor is reentrancy-safe).
class SegmentedPopulationProbe : public PopulationProbe {
 public:
  /// \brief `segments` must be contiguous from global row 0 (each
  /// row_begin equal to the previous segment's row_end) and individually
  /// non-empty. `probe_threads` 0 means DefaultThreadCount(); streams
  /// smaller than kMinRowsPerShard probe serially regardless (dispatch
  /// would cost more than the word loops it splits).
  SegmentedPopulationProbe(
      Schema schema,
      std::vector<std::shared_ptr<const PopulationSegment>> segments,
      IndexStorage storage, size_t probe_threads = 0);

  /// \brief Zero-row schema anchor (see class comment).
  const Dataset& dataset() const override { return anchor_; }
  size_t num_rows() const override { return total_rows_; }
  IndexStorage storage() const override { return storage_; }

  /// \brief Sum of the segments' footprints (chunk census included).
  PopulationIndexStats MemoryStats() const override;

  void PopulationInto(const ContextVec& c, BitVector* population,
                      BitVector* attr_union) const override;

  size_t PopulationCount(const ContextVec& c) const override;

  size_t OverlapCount(const ContextVec& c1,
                      const ContextVec& c2) const override;

  /// \brief Global (attr, value) bitmap, concatenated from the segments
  /// into a thread_local buffer; invalidated by the next call on this
  /// thread.
  const BitVector& ValueBitmap(size_t attr, size_t value) const override;

  uint32_t RowCode(uint32_t row, size_t attr) const override;
  double RowMetric(uint32_t row) const override;
  void GatherMetrics(const BitVector& population,
                     std::vector<uint32_t>* row_ids,
                     std::vector<double>* metric) const override;

  /// \brief Lazily created worker pool; nullptr when probe_threads <= 1.
  ThreadPool* probe_pool() const override;

  size_t segment_count() const { return segments_.size(); }
  const PopulationSegment& segment(size_t s) const { return *segments_[s]; }
  /// \brief The shared segment list (for snapshot bookkeeping and tests).
  const std::vector<std::shared_ptr<const PopulationSegment>>& segments()
      const {
    return segments_;
  }

 private:
  /// \brief Index of the segment containing global row `row`.
  size_t SegmentOf(uint32_t row) const;
  /// \brief Runs fn(s) for every segment: serially unless the stream is
  /// large enough for parallel probes (see constructor).
  void RunOverSegments(const std::function<void(size_t)>& fn) const;

  Dataset anchor_;  // zero rows; carries the schema for dataset()/schema()
  IndexStorage storage_;
  size_t probe_threads_;
  bool parallel_probes_ = false;
  std::vector<std::shared_ptr<const PopulationSegment>> segments_;
  std::vector<uint32_t> seg_begin_;  // size segment_count()+1, last = total
  size_t total_rows_ = 0;

  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<ThreadPool> pool_;  // guarded by pool_mu_
};

}  // namespace pcor
