#include "src/context/detector_cache.h"

#include <algorithm>
#include <utility>

namespace pcor {

namespace {

LruCacheOptions ToCacheOptions(const VerifierOptions& options) {
  LruCacheOptions cache_options;
  cache_options.max_bytes = options.max_cache_bytes;
  cache_options.max_entries = options.max_cache_entries;
  cache_options.num_shards = options.num_shards;
  cache_options.wholesale_clear = options.wholesale_clear;
  cache_options.numa_aware = options.numa_aware;
  cache_options.adaptive_budget = options.adaptive_budget;
  return cache_options;
}

// Approximate footprint of one memoized result: the outlier row ids plus
// the shared_ptr control block. The cache adds its own per-entry overhead
// (key + node + hash-table bookkeeping) on top.
size_t ApproxResultBytes(const std::vector<uint32_t>& outliers) {
  return sizeof(std::vector<uint32_t>) +
         outliers.capacity() * sizeof(uint32_t) + 2 * sizeof(void*);
}

}  // namespace

VerifierMemo::VerifierMemo(const VerifierOptions& options)
    : cache_(ToCacheOptions(options)) {}

size_t VerifierMemo::InvalidateEpochsBefore(uint64_t epoch) {
  return cache_.EraseIf(
      [epoch](const VerifierCacheKey& key) { return key.epoch < epoch; });
}

OutlierVerifier::OutlierVerifier(const PopulationProbe& index,
                                 const OutlierDetector& detector,
                                 VerifierOptions options)
    : OutlierVerifier(index, detector,
                      std::make_shared<VerifierMemo>(options),
                      /*epoch=*/index.num_rows(), options) {}

OutlierVerifier::OutlierVerifier(const PopulationProbe& index,
                                 const OutlierDetector& detector,
                                 std::shared_ptr<VerifierMemo> memo,
                                 uint64_t epoch, VerifierOptions options)
    : index_(&index),
      detector_(&detector),
      options_(options),
      memo_(std::move(memo)),
      epoch_(epoch) {}

bool OutlierVerifier::IsOutlierInContext(const ContextVec& c,
                                         uint32_t v_row) const {
  // Fast precheck: V must belong to D_C at all (one bit test per attribute).
  if (!index_->ContextContainsRow(c, v_row)) return false;
  auto outliers = OutliersInContext(c);
  return std::binary_search(outliers->begin(), outliers->end(), v_row);
}

std::shared_ptr<const std::vector<uint32_t>>
OutlierVerifier::OutliersInContext(const ContextVec& c) const {
  if (!options_.enable_cache) return Compute(c);
  const VerifierCacheKey key{epoch_, c};
  ResultPtr cached;
  if (memo_->cache_.Get(key, &cached)) return cached;
  ResultPtr computed = Compute(c);
  memo_->cache_.Put(key, computed, ApproxResultBytes(*computed));
  return computed;
}

std::shared_ptr<const std::vector<uint32_t>> OutlierVerifier::Compute(
    const ContextVec& c) const {
  memo_->evaluations_.fetch_add(1, std::memory_order_relaxed);
  // Per-thread scratch: a probe in steady state allocates only the result
  // vector it may cache, never population buffers.
  thread_local PopulationScratch scratch;
  thread_local std::vector<size_t> flagged;
  auto result = std::make_shared<std::vector<uint32_t>>();
  const PopulationView view = index_->ViewOf(c, &scratch);
  if (view.size() < detector_->min_population()) return result;
  detector_->Detect(view.metric(), &flagged);
  result->reserve(flagged.size());
  // Detect returns ascending positions; row ids are ascending, so the
  // result is already sorted for binary_search.
  for (size_t pos : flagged) result->push_back(view.row_ids()[pos]);
  return result;
}

VerifierStats OutlierVerifier::Stats() const {
  const LruCacheStats cache_stats = memo_->CacheStats();
  VerifierStats stats;
  stats.evaluations = evaluations();
  stats.cache_hits = cache_stats.hits;
  stats.cache_misses = cache_stats.misses;
  stats.cache_evictions = cache_stats.evictions;
  stats.cache_invalidations = cache_stats.invalidations;
  stats.resident_bytes = cache_stats.resident_bytes;
  stats.resident_entries = cache_stats.resident_entries;
  return stats;
}

void OutlierVerifier::ClearCache() const { memo_->cache_.Clear(); }

}  // namespace pcor
