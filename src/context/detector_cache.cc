#include "src/context/detector_cache.h"

#include <algorithm>
#include <mutex>

namespace pcor {

OutlierVerifier::OutlierVerifier(const PopulationIndex& index,
                                 const OutlierDetector& detector,
                                 VerifierOptions options)
    : index_(&index), detector_(&detector), options_(options) {}

bool OutlierVerifier::IsOutlierInContext(const ContextVec& c,
                                         uint32_t v_row) const {
  // Fast precheck: V must belong to D_C at all (one bit test per attribute).
  if (!context_ops::ContainsRow(index_->schema(), index_->dataset(), v_row,
                                c)) {
    return false;
  }
  auto outliers = OutliersInContext(c);
  return std::binary_search(outliers->begin(), outliers->end(), v_row);
}

std::shared_ptr<const std::vector<uint32_t>>
OutlierVerifier::OutliersInContext(const ContextVec& c) const {
  if (options_.enable_cache) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = cache_.find(c);
      if (it != cache_.end()) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    auto computed = Compute(c);
    std::unique_lock<std::shared_mutex> lock(mu_);
    if (cache_.size() >= options_.max_cache_entries) cache_.clear();
    auto [it, inserted] = cache_.emplace(c, std::move(computed));
    return it->second;
  }
  return Compute(c);
}

std::shared_ptr<const std::vector<uint32_t>> OutlierVerifier::Compute(
    const ContextVec& c) const {
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  auto result = std::make_shared<std::vector<uint32_t>>();
  const std::vector<uint32_t> rows = index_->RowIdsOf(c);
  if (rows.size() < detector_->min_population()) return result;
  std::vector<double> metric;
  metric.reserve(rows.size());
  const auto& column = index_->dataset().metric_column();
  for (uint32_t row : rows) metric.push_back(column[row]);
  const std::vector<size_t> flagged = detector_->Detect(metric);
  result->reserve(flagged.size());
  for (size_t pos : flagged) result->push_back(rows[pos]);
  // Detect returns ascending positions; rows are ascending, so result is
  // already sorted for binary_search.
  return result;
}

void OutlierVerifier::ClearCache() const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  cache_.clear();
}

}  // namespace pcor
