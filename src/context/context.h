#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/dataset.h"
#include "src/data/schema.h"

namespace pcor {

/// \brief A context: a binary vector of length t = sum_i |A_i| choosing, for
/// each attribute, a subset of its domain values (Section 3 of the paper).
///
/// Bit layout follows Schema: attribute i owns bits
/// [schema.value_offset(i), schema.value_offset(i) + |A_i|). Two contexts
/// are *connected* (adjacent in the context graph) iff their Hamming
/// distance is 1. Storage is inline (up to kMaxBits bits), so contexts are
/// cheap to copy, hash and compare — they are used as hash-map keys
/// throughout the search layer.
class ContextVec {
 public:
  static constexpr size_t kMaxBits = 256;
  static constexpr size_t kWords = kMaxBits / 64;

  ContextVec() : num_bits_(0) { words_.fill(0); }
  explicit ContextVec(size_t num_bits);

  size_t num_bits() const { return num_bits_; }

  void Set(size_t i);
  void Clear(size_t i);
  void Flip(size_t i);
  bool Test(size_t i) const;

  /// \brief Hamming weight (number of chosen attribute values).
  size_t Weight() const;

  /// \brief Hamming distance to another context of the same length.
  size_t HammingDistance(const ContextVec& other) const;

  /// \brief True iff the two contexts are connected in the context graph.
  bool IsConnectedTo(const ContextVec& other) const {
    return HammingDistance(other) == 1;
  }

  /// \brief Applies fn(bit) for every set bit, ascending.
  void ForEachSetBit(const std::function<void(size_t)>& fn) const;

  /// \brief Bit string rendering, most significant attribute first, e.g.
  /// "101001010" for the paper's running example.
  std::string ToBitString() const;

  /// \brief Parses a bit string of '0'/'1' characters.
  static Result<ContextVec> FromBitString(const std::string& bits);

  bool operator==(const ContextVec& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }
  bool operator!=(const ContextVec& other) const { return !(*this == other); }

  /// \brief Deterministic hash for unordered containers.
  size_t Hash() const;

  /// \brief Lexicographic order (for canonical sorting in tests/reports).
  bool operator<(const ContextVec& other) const;

 private:
  std::array<uint64_t, kWords> words_;
  size_t num_bits_;
};

/// \brief std::hash adapter.
struct ContextVecHash {
  size_t operator()(const ContextVec& c) const { return c.Hash(); }
};

/// \brief Context helpers bound to a schema.
namespace context_ops {

/// \brief Context with every domain value of every attribute chosen.
ContextVec FullContext(const Schema& schema);

/// \brief Context choosing exactly the attribute values of `row` — the
/// narrowest context containing the record.
ContextVec ExactContext(const Schema& schema, const Dataset& dataset,
                        size_t row);

/// \brief True iff the record `row` satisfies context `c` (each attribute's
/// chosen-value set contains the record's value) — the "V in D_C" test.
bool ContainsRow(const Schema& schema, const Dataset& dataset, size_t row,
                 const ContextVec& c);

/// \brief True iff every attribute has at least one chosen value (minimum
/// Hamming weight m; anything less denotes an empty population).
bool HasAllAttributes(const Schema& schema, const ContextVec& c);

/// \brief Number of chosen values of attribute `attr` in `c`.
size_t AttributeWeight(const Schema& schema, const ContextVec& c,
                       size_t attr);

/// \brief Human-readable conjunction-of-disjunctions, e.g.
/// "[Jobtitle IN {CEO, Lawyer}] AND [City IN {Toronto}]".
std::string Describe(const Schema& schema, const ContextVec& c);

}  // namespace context_ops
}  // namespace pcor
