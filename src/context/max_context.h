#pragma once

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/context/context.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief Options for the non-private maximum-context search.
struct MaxContextOptions {
  /// Hill-climbing restarts (each from a random valid context).
  size_t restarts = 8;
  /// Upper bound on climb steps per restart.
  size_t max_steps = 1024;
};

/// \brief Result of the search: the best matching context found and its
/// population size.
struct MaxContextResult {
  ContextVec context;
  size_t population = 0;
};

/// \brief Data-owner-side (non-private) search for the maximum context of
/// Definition 3.3 — the matching context with the largest population.
///
/// Exact computation requires enumerating COE (O(2^t), the paper's
/// three-day reference file). This finder is the practical alternative for
/// large t: steepest-ascent hill climbing on the context graph restricted
/// to matching contexts, with random restarts. Population is monotone
/// under adding values, so each climb follows matching "add" edges first
/// and only then considers sideways moves. The result is a lower bound on
/// the true maximum; the experiment harness uses exact enumeration when t
/// permits and this finder otherwise (bench/direct_vs_sampling projection).
Result<MaxContextResult> FindMaxContext(const OutlierVerifier& verifier,
                                        uint32_t v_row,
                                        const MaxContextOptions& options,
                                        Rng* rng);

}  // namespace pcor
