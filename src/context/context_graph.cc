#include "src/context/context_graph.h"

namespace pcor {

void ContextGraph::ForEachNeighbor(
    const ContextVec& c,
    const std::function<void(const ContextVec&)>& fn) const {
  ContextVec neighbor = c;
  for (size_t bit = 0; bit < t_; ++bit) {
    neighbor.Flip(bit);
    fn(neighbor);
    neighbor.Flip(bit);  // restore
  }
}

std::vector<ContextVec> ContextGraph::Neighbors(const ContextVec& c) const {
  std::vector<ContextVec> out;
  out.reserve(t_);
  ForEachNeighbor(c, [&out](const ContextVec& n) { out.push_back(n); });
  return out;
}

std::vector<ContextVec> ContextGraph::MatchingNeighbors(
    const OutlierVerifier& verifier, const ContextVec& c,
    uint32_t v_row) const {
  std::vector<ContextVec> out;
  ForEachNeighbor(c, [&](const ContextVec& n) {
    if (verifier.IsOutlierInContext(n, v_row)) out.push_back(n);
  });
  return out;
}

LocalityStats MeasureLocality(const OutlierVerifier& verifier,
                              const ContextGraph& graph, uint32_t v_row,
                              const ContextVec& seed, size_t probes,
                              Rng* rng) {
  LocalityStats stats;
  const size_t t = graph.degree();

  size_t neighbor_matches = 0;
  size_t random_matches = 0;

  // Random walk over matching contexts starting at the seed; at each step
  // measure the fraction of matching neighbors, then move to one of them.
  ContextVec current = seed;
  for (size_t p = 0; p < probes; ++p) {
    auto matching = graph.MatchingNeighbors(verifier, current, v_row);
    stats.neighbor_probes += t;
    neighbor_matches += matching.size();
    if (!matching.empty()) {
      current = matching[rng->NextBounded(matching.size())];
    } else {
      current = seed;
    }

    // Paired uniform probe: a random vertex of the whole context graph
    // (the paper's hypothesis compares against "some randomly chosen
    // vertex among Vtx", not against contexts already containing V).
    ContextVec random_ctx(t);
    for (size_t bit = 0; bit < t; ++bit) {
      if (rng->NextBernoulli(0.5)) random_ctx.Set(bit);
    }
    ++stats.random_probes;
    if (verifier.IsOutlierInContext(random_ctx, v_row)) ++random_matches;
  }

  if (stats.neighbor_probes > 0) {
    stats.neighbor_match_rate = static_cast<double>(neighbor_matches) /
                                static_cast<double>(stats.neighbor_probes);
  }
  if (stats.random_probes > 0) {
    stats.random_match_rate = static_cast<double>(random_matches) /
                              static_cast<double>(stats.random_probes);
  }
  return stats;
}

}  // namespace pcor
