#pragma once

#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/context/context.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief Strategies for obtaining the starting context C_V that the
/// graph-based samplers walk from (the paper assumes the data owner "can
/// obtain this context through an initial search", footnote 5).
enum class StartingContextStrategy {
  /// The narrowest context: exactly V's own attribute values.
  kExactRecord,
  /// The widest context: every domain value of every attribute.
  kFullDomain,
  /// Start from the exact context and greedily add the value whose
  /// addition grows the population most, until f_M matches (deterministic).
  kGreedyGrow,
  /// Random contexts containing V until one matches (bounded attempts).
  kRandomValid,
  /// The best (largest-population) of `best_of_tries` random matching
  /// contexts containing V — a cheap stand-in for the data owner's
  /// "initial search": it lands on a mid-utility valid context, which is
  /// what puts the DP-BFS/DFS Exponential-mechanism draws into their
  /// directed regime (eps1 * u >> 1) from the first step.
  kBestOfRandom,
};

/// \brief Options for FindStartingContext.
struct StartingContextOptions {
  /// Strategies tried in order; the first one that yields a matching
  /// context wins.
  std::vector<StartingContextStrategy> pipeline = {
      StartingContextStrategy::kBestOfRandom,
      StartingContextStrategy::kExactRecord,
      StartingContextStrategy::kGreedyGrow,
      StartingContextStrategy::kFullDomain,
      StartingContextStrategy::kRandomValid,
  };
  /// Attempt budget for kRandomValid.
  size_t random_attempts = 512;
  /// Attempt budget for kBestOfRandom.
  size_t best_of_tries = 8;

  /// Memberwise equality, so per-request PcorOptions overrides can be
  /// compared against a batch's defaults (see BatchRequest::options).
  bool operator==(const StartingContextOptions&) const = default;
};

/// \brief Finds a matching (valid) context for row `v_row`, or
/// NoValidContext when every strategy fails — in that case V is simply not
/// a contextual outlier under this detector and PCOR has nothing to
/// release. `rng` is only consumed by kRandomValid.
Result<ContextVec> FindStartingContext(const OutlierVerifier& verifier,
                                       uint32_t v_row,
                                       const StartingContextOptions& options,
                                       Rng* rng);

}  // namespace pcor
