#pragma once

#include <vector>

#include "src/common/bitvector.h"
#include "src/context/context.h"
#include "src/data/dataset.h"

namespace pcor {

/// \brief Bitmap index mapping contexts to their populations.
///
/// For each (attribute, value) pair the index holds one BitVector over the
/// dataset's rows. A context's population D_C is then
///   AND over attributes ( OR over the attribute's chosen values )
/// computed word-wise — O(t * n/64) per context instead of a full row scan.
/// This is the workhorse under the outlier verification f_M and both
/// utility functions.
class PopulationIndex {
 public:
  explicit PopulationIndex(const Dataset& dataset);

  const Dataset& dataset() const { return *dataset_; }
  const Schema& schema() const { return dataset_->schema(); }
  size_t num_rows() const { return dataset_->num_rows(); }

  /// \brief Bitmap of rows selected by context `c`.
  BitVector PopulationOf(const ContextVec& c) const;

  /// \brief |D_C| without materializing row ids.
  size_t PopulationCount(const ContextVec& c) const;

  /// \brief |D_C1 ∩ D_C2| — the paper's overlap utility numerator.
  size_t OverlapCount(const ContextVec& c1, const ContextVec& c2) const;

  /// \brief Row ids selected by `c`, ascending.
  std::vector<uint32_t> RowIdsOf(const ContextVec& c) const;

  /// \brief Metric values of the population, aligned with RowIdsOf order.
  std::vector<double> MetricOf(const ContextVec& c) const;

  /// \brief Metric values plus the position of row `v_row` inside them.
  /// Returns false when `v_row` is not in the population.
  bool MetricWithTarget(const ContextVec& c, uint32_t v_row,
                        std::vector<double>* metric,
                        size_t* v_position) const;

  /// \brief Bitmap of rows matching attribute value (attr, value) — exposed
  /// for tests and micro-benchmarks.
  const BitVector& ValueBitmap(size_t attr, size_t value) const;

 private:
  const Dataset* dataset_;
  // bitmaps_[attr][value] = rows where dataset.code(row, attr) == value.
  std::vector<std::vector<BitVector>> bitmaps_;
};

}  // namespace pcor
