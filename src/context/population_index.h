#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/compressed_bitmap.h"
#include "src/context/context.h"
#include "src/data/dataset.h"

namespace pcor {

/// \brief How the index stores its per-(attribute, value) bitmaps.
///
/// kCompressed (the default) uses roaring-style CompressedBitmap containers
/// — the million-row working-set optimization. kDense keeps one flat
/// BitVector per value, retained as the ablation baseline and the reference
/// implementation the exact-equivalence tests compare against. Both
/// storages produce bit-identical populations, counts, and overlaps.
enum class IndexStorage { kDense, kCompressed };

/// \brief Storage picked by the PCOR_COMPRESSED_INDEX env var:
/// unset or nonzero → kCompressed, 0 → kDense (ablation toggle).
IndexStorage DefaultIndexStorage();

/// \brief Working-set accounting for benchmarks and the memory acceptance
/// bar. The chunk census fields are zero for dense storage.
struct PopulationIndexStats {
  size_t bitmap_bytes = 0;  ///< heap bytes held by the value bitmaps
  size_t empty_chunks = 0;
  size_t array_chunks = 0;
  size_t dense_chunks = 0;
};

/// \brief Caller-owned scratch buffers for allocation-free population
/// probes. Reuse one instance per thread (or per tight loop): after a few
/// probes every buffer has reached its steady-state capacity and ViewOf /
/// PopulationInto perform zero heap allocations.
struct PopulationScratch {
  BitVector population;        ///< the result bitmap
  BitVector attr_union;        ///< per-attribute OR accumulator
  std::vector<uint32_t> row_ids;
  std::vector<double> metric;
};

/// \brief A materialized population, borrowing a PopulationScratch.
///
/// Valid only until the scratch is reused or destroyed; never store one.
/// `row_ids` is ascending and `metric[i]` is the metric value of
/// `row_ids[i]` — the contiguous span the detectors consume.
class PopulationView {
 public:
  PopulationView() = default;
  PopulationView(const BitVector* population,
                 std::span<const uint32_t> row_ids,
                 std::span<const double> metric)
      : population_(population), row_ids_(row_ids), metric_(metric) {}

  const BitVector& population() const { return *population_; }
  std::span<const uint32_t> row_ids() const { return row_ids_; }
  std::span<const double> metric() const { return metric_; }
  size_t size() const { return row_ids_.size(); }
  bool empty() const { return row_ids_.empty(); }

 private:
  const BitVector* population_ = nullptr;
  std::span<const uint32_t> row_ids_;
  std::span<const double> metric_;
};

/// \brief Bitmap index mapping contexts to their populations.
///
/// For each (attribute, value) pair the index holds one BitVector over the
/// dataset's rows. A context's population D_C is then
///   AND over attributes ( OR over the attribute's chosen values )
/// computed word-wise — O(t * n/64) per context instead of a full row scan.
/// This is the workhorse under the outlier verification f_M and both
/// utility functions.
///
/// The scratch-based entry points (PopulationInto, ViewOf) are the hot
/// path: they fill caller-owned buffers and allocate nothing in steady
/// state. The value-returning methods are thin wrappers kept for
/// convenience and tests.
///
/// With IndexStorage::kCompressed the probe API is unchanged but gains
/// container-aware fast paths: single-value attributes AND straight into
/// the population (array∩dense probe), and all-singleton contexts — the
/// exact contexts that dominate the search frontier — fold through
/// CompressedBitmap::IntersectInto (array∩array galloping, dense∩dense
/// words) without ever materializing a dense bitmap. OverlapCount
/// additionally exploits that value bitmaps within an attribute partition
/// the rows, so D_C1 ∩ D_C2 equals the population of the bitwise-AND
/// merged context.
class PopulationIndex {
 public:
  explicit PopulationIndex(const Dataset& dataset,
                           IndexStorage storage = DefaultIndexStorage());

  const Dataset& dataset() const { return *dataset_; }
  const Schema& schema() const { return dataset_->schema(); }
  size_t num_rows() const { return dataset_->num_rows(); }
  IndexStorage storage() const { return storage_; }

  /// \brief Heap footprint of the value bitmaps plus (for compressed
  /// storage) the container census.
  PopulationIndexStats MemoryStats() const;

  /// \brief Fills `*population` with the bitmap of rows selected by `c`,
  /// using `*attr_union` as the per-attribute accumulator. Allocation-free
  /// once the two BitVectors have reached dataset size.
  void PopulationInto(const ContextVec& c, BitVector* population,
                      BitVector* attr_union) const;

  /// \brief Materializes D_C (bitmap, row ids, metric values) into
  /// `*scratch` and returns a view over it — the zero-allocation probe.
  PopulationView ViewOf(const ContextVec& c, PopulationScratch* scratch) const;

  /// \brief Bitmap of rows selected by context `c`.
  BitVector PopulationOf(const ContextVec& c) const;

  /// \brief |D_C| without materializing row ids.
  size_t PopulationCount(const ContextVec& c) const;

  /// \brief |D_C1 ∩ D_C2| — the paper's overlap utility numerator.
  size_t OverlapCount(const ContextVec& c1, const ContextVec& c2) const;

  /// \brief Row ids selected by `c`, ascending.
  std::vector<uint32_t> RowIdsOf(const ContextVec& c) const;

  /// \brief Metric values of the population, aligned with RowIdsOf order.
  std::vector<double> MetricOf(const ContextVec& c) const;

  /// \brief Metric values plus the position of row `v_row` inside them.
  /// Returns false when `v_row` is not in the population.
  bool MetricWithTarget(const ContextVec& c, uint32_t v_row,
                        std::vector<double>* metric,
                        size_t* v_position) const;

  /// \brief Bitmap of rows matching attribute value (attr, value) — exposed
  /// for tests and micro-benchmarks. For compressed storage the bitmap is
  /// materialized into a thread_local buffer; the reference is invalidated
  /// by the next ValueBitmap call on the same thread.
  const BitVector& ValueBitmap(size_t attr, size_t value) const;

 private:
  void PopulationIntoDense(const ContextVec& c, BitVector* population,
                           BitVector* attr_union) const;
  void PopulationIntoCompressed(const ContextVec& c, BitVector* population,
                                BitVector* attr_union) const;
  /// \brief Chosen values of attribute `a` in `c`, appended to `*values`.
  void ChosenValues(const ContextVec& c, size_t a,
                    std::vector<size_t>* values) const;

  const Dataset* dataset_;
  IndexStorage storage_;
  // Exactly one of the two stores is populated, per storage_.
  // bitmaps_[attr][value] = rows where dataset.code(row, attr) == value.
  std::vector<std::vector<BitVector>> bitmaps_;
  std::vector<std::vector<CompressedBitmap>> compressed_;
};

}  // namespace pcor
