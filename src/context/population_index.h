#pragma once

#include <span>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/compressed_bitmap.h"
#include "src/context/context.h"
#include "src/data/dataset.h"

namespace pcor {

class ThreadPool;

/// \brief How the index stores its per-(attribute, value) bitmaps.
///
/// kCompressed (the default) uses roaring-style CompressedBitmap containers
/// — the million-row working-set optimization. kDense keeps one flat
/// BitVector per value, retained as the ablation baseline and the reference
/// implementation the exact-equivalence tests compare against. Both
/// storages produce bit-identical populations, counts, and overlaps.
enum class IndexStorage { kDense, kCompressed };

/// \brief Storage picked by the PCOR_COMPRESSED_INDEX env var:
/// unset or nonzero → kCompressed, 0 → kDense (ablation toggle).
IndexStorage DefaultIndexStorage();

/// \brief Working-set accounting for benchmarks and the memory acceptance
/// bar. The chunk census fields are zero for dense storage.
struct PopulationIndexStats {
  size_t bitmap_bytes = 0;  ///< heap bytes held by the value bitmaps
  size_t empty_chunks = 0;
  size_t array_chunks = 0;
  size_t dense_chunks = 0;
};

/// \brief Caller-owned scratch buffers for allocation-free population
/// probes. Reuse one instance per thread (or per tight loop): after a few
/// probes every buffer has reached its steady-state capacity and ViewOf /
/// PopulationInto perform zero heap allocations.
struct PopulationScratch {
  BitVector population;        ///< the result bitmap
  BitVector attr_union;        ///< per-attribute OR accumulator
  std::vector<uint32_t> row_ids;
  std::vector<double> metric;
};

/// \brief A materialized population, borrowing a PopulationScratch.
///
/// Valid only until the scratch is reused or destroyed; never store one.
/// `row_ids` is ascending and `metric[i]` is the metric value of
/// `row_ids[i]` — the contiguous span the detectors consume.
class PopulationView {
 public:
  PopulationView() = default;
  PopulationView(const BitVector* population,
                 std::span<const uint32_t> row_ids,
                 std::span<const double> metric)
      : population_(population), row_ids_(row_ids), metric_(metric) {}

  const BitVector& population() const { return *population_; }
  std::span<const uint32_t> row_ids() const { return row_ids_; }
  std::span<const double> metric() const { return metric_; }
  size_t size() const { return row_ids_.size(); }
  bool empty() const { return row_ids_.empty(); }

 private:
  const BitVector* population_ = nullptr;
  std::span<const uint32_t> row_ids_;
  std::span<const double> metric_;
};

/// \brief Probe interface over a population store: everything the verifier,
/// utilities and context-space algorithms need from "the index", abstracted
/// so the single-box PopulationIndex and the row-sharded
/// ShardedPopulationIndex interchange freely. Implementations must be
/// bit-identical to each other on every probe — the equivalence fuzz suites
/// enforce it; virtual dispatch costs nanoseconds against probes that walk
/// O(rows/64) words minimum.
///
/// The value-returning helpers (PopulationOf, RowIdsOf, MetricOf,
/// MetricWithTarget, ViewOf) are defined once here over the virtual core,
/// so every implementation inherits identical materialization behavior.
class PopulationProbe {
 public:
  virtual ~PopulationProbe() = default;

  /// \brief The backing dataset. Shards report their slice through
  /// num_rows(), never through a narrowed dataset; composed probes whose
  /// rows live in several datasets (the streaming layer's segmented probe)
  /// return a zero-row schema anchor instead. Callers must therefore reach
  /// row data through RowCode / RowMetric / GatherMetrics, never through
  /// dataset() — the anchor carries only the schema.
  virtual const Dataset& dataset() const = 0;
  const Schema& schema() const { return dataset().schema(); }
  /// \brief Rows this probe spans — the local row space of its bitmaps.
  virtual size_t num_rows() const = 0;
  virtual IndexStorage storage() const = 0;

  /// \brief Heap footprint of the value bitmaps plus (for compressed
  /// storage) the container census.
  virtual PopulationIndexStats MemoryStats() const = 0;

  /// \brief Fills `*population` with the bitmap of rows selected by `c`,
  /// using `*attr_union` as scratch. Allocation-free once the two
  /// BitVectors have reached dataset size. The contents of `*attr_union`
  /// after the call are unspecified (it is an accumulator, not an output).
  virtual void PopulationInto(const ContextVec& c, BitVector* population,
                              BitVector* attr_union) const = 0;

  /// \brief |D_C| without materializing row ids.
  virtual size_t PopulationCount(const ContextVec& c) const = 0;

  /// \brief |D_C1 ∩ D_C2| — the paper's overlap utility numerator.
  virtual size_t OverlapCount(const ContextVec& c1,
                              const ContextVec& c2) const = 0;

  /// \brief Bitmap of rows matching attribute value (attr, value) — exposed
  /// for tests and micro-benchmarks. May be materialized into a
  /// thread_local buffer; the reference is invalidated by the next
  /// ValueBitmap call on the same thread.
  virtual const BitVector& ValueBitmap(size_t attr, size_t value) const = 0;

  /// \brief Attribute code of local row `row` — the probe-level row
  /// accessor call sites use instead of dataset().code(), so probes whose
  /// rows are scattered over several datasets answer correctly.
  virtual uint32_t RowCode(uint32_t row, size_t attr) const;

  /// \brief Metric value of local row `row` (same contract as RowCode).
  virtual double RowMetric(uint32_t row) const;

  /// \brief Replaces `*row_ids` / `*metric` with the set rows of
  /// `population` (ascending, local row space) and their metric values —
  /// the materialization primitive behind ViewOf / MetricOf /
  /// MetricWithTarget. The default walks dataset().metric_column();
  /// composed probes override it to resolve rows per segment.
  virtual void GatherMetrics(const BitVector& population,
                             std::vector<uint32_t>* row_ids,
                             std::vector<double>* metric) const;

  /// \brief Shared worker pool for scatter probes, or nullptr when this
  /// probe runs serially. The engine reuses it for the intra-release
  /// scoring loop so one release never owns two pools.
  virtual ThreadPool* probe_pool() const { return nullptr; }

  /// \brief The exact context of local row `row` — one chosen value per
  /// attribute, the row's own codes (context_ops::ExactContext lifted to
  /// the probe so it works for composed probes too).
  ContextVec ExactContextOf(uint32_t row) const;

  /// \brief Whether context `c` selects local row `row`.
  bool ContextContainsRow(const ContextVec& c, uint32_t row) const;

  /// \brief Materializes D_C (bitmap, row ids, metric values) into
  /// `*scratch` and returns a view over it — the zero-allocation probe.
  PopulationView ViewOf(const ContextVec& c, PopulationScratch* scratch) const;

  /// \brief Bitmap of rows selected by context `c`.
  BitVector PopulationOf(const ContextVec& c) const;

  /// \brief Row ids selected by `c`, ascending (local row space).
  std::vector<uint32_t> RowIdsOf(const ContextVec& c) const;

  /// \brief Metric values of the population, aligned with RowIdsOf order.
  std::vector<double> MetricOf(const ContextVec& c) const;

  /// \brief Metric values plus the position of row `v_row` inside them.
  /// Returns false when `v_row` is not in the population.
  bool MetricWithTarget(const ContextVec& c, uint32_t v_row,
                        std::vector<double>* metric,
                        size_t* v_position) const;

 protected:
  /// \brief Offset from this probe's local row 0 into the dataset's global
  /// row ids — nonzero only for row-range shards, where local bitmap bit i
  /// is dataset row row_offset() + i (used for metric lookups).
  virtual uint32_t row_offset() const { return 0; }
};

/// \brief Bitmap index mapping contexts to their populations.
///
/// For each (attribute, value) pair the index holds one BitVector over the
/// dataset's rows. A context's population D_C is then
///   AND over attributes ( OR over the attribute's chosen values )
/// computed word-wise — O(t * n/64) per context instead of a full row scan.
/// This is the workhorse under the outlier verification f_M and both
/// utility functions.
///
/// The scratch-based entry points (PopulationInto, ViewOf) are the hot
/// path: they fill caller-owned buffers and allocate nothing in steady
/// state. The value-returning methods are thin wrappers kept for
/// convenience and tests.
///
/// With IndexStorage::kCompressed the probe API is unchanged but gains
/// container-aware fast paths: single-value attributes AND straight into
/// the population (array∩dense probe), and all-singleton contexts — the
/// exact contexts that dominate the search frontier — fold through
/// CompressedBitmap::IntersectInto (array∩array galloping, dense∩dense
/// words) without ever materializing a dense bitmap. OverlapCount
/// additionally exploits that value bitmaps within an attribute partition
/// the rows, so D_C1 ∩ D_C2 equals the population of the bitwise-AND
/// merged context.
class PopulationIndex : public PopulationProbe {
 public:
  explicit PopulationIndex(const Dataset& dataset,
                           IndexStorage storage = DefaultIndexStorage());

  /// \brief Row-range shard constructor: indexes only dataset rows
  /// [row_begin, row_end), stored in a local row space where bit i means
  /// dataset row row_begin + i. All probes answer in the local row space;
  /// ShardedPopulationIndex owns the global reassembly. `row_begin` must
  /// be word-aligned (a multiple of 64) so shard populations concatenate
  /// word-wise into global bitmaps.
  PopulationIndex(const Dataset& dataset, IndexStorage storage,
                  uint32_t row_begin, uint32_t row_end);

  const Dataset& dataset() const override { return *dataset_; }
  size_t num_rows() const override { return num_local_rows_; }
  IndexStorage storage() const override { return storage_; }

  PopulationIndexStats MemoryStats() const override;

  void PopulationInto(const ContextVec& c, BitVector* population,
                      BitVector* attr_union) const override;

  size_t PopulationCount(const ContextVec& c) const override;

  size_t OverlapCount(const ContextVec& c1,
                      const ContextVec& c2) const override;

  const BitVector& ValueBitmap(size_t attr, size_t value) const override;

 protected:
  uint32_t row_offset() const override { return row_begin_; }

 private:
  void PopulationIntoDense(const ContextVec& c, BitVector* population,
                           BitVector* attr_union) const;
  void PopulationIntoCompressed(const ContextVec& c, BitVector* population,
                                BitVector* attr_union) const;
  /// \brief Chosen values of attribute `a` in `c`, appended to `*values`.
  void ChosenValues(const ContextVec& c, size_t a,
                    std::vector<size_t>* values) const;

  const Dataset* dataset_;
  IndexStorage storage_;
  uint32_t row_begin_ = 0;       // first dataset row this index covers
  size_t num_local_rows_ = 0;    // rows covered: [row_begin_, row_begin_+n)
  // Exactly one of the two stores is populated, per storage_.
  // bitmaps_[attr][value] = local rows where
  // dataset.code(row_begin_ + row, attr) == value.
  std::vector<std::vector<BitVector>> bitmaps_;
  std::vector<std::vector<CompressedBitmap>> compressed_;
};

}  // namespace pcor
