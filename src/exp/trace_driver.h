#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/data/dataset.h"
#include "src/data/schema.h"
#include "src/exp/trace.h"
#include "src/serve/server.h"

namespace pcor {

/// \brief Open-loop dispatch loop: fires every trace event at its
/// scheduled time on the given Clock, regardless of how long earlier
/// dispatches took. A driver that falls behind fires late events
/// immediately (SleepUntil on a past deadline returns at once — it never
/// re-schedules or drops them) and records the lag, which is exactly the
/// queueing delay a closed-loop client would silently absorb.
///
/// The driver is clock-agnostic: benches run it on a RealClock; tests run
/// it on a VirtualClock, where auto-advance mode replays any trace
/// deterministically with zero wall-clock sleeps and manual mode
/// single-steps a dispatch loop running on its own thread.
class TraceDriver {
 public:
  /// \brief How the dispatch loop went. `late` counts events fired past
  /// their schedule; `max_lag_us`/`total_lag_us` quantify by how much.
  struct Stats {
    size_t dispatched = 0;
    size_t late = 0;
    int64_t max_lag_us = 0;
    int64_t total_lag_us = 0;
  };

  /// \brief Dispatch callback: the event, its scheduled time, and the
  /// clock reading at fire (fired_us >= scheduled_us always).
  using Handler = std::function<void(const TraceEvent& event,
                                     int64_t scheduled_us,
                                     int64_t fired_us)>;

  /// \brief Takes the event list (stable-sorted by at_us, so recorded
  /// order breaks timestamp ties) and the clock to schedule against.
  /// The clock must outlive the driver.
  TraceDriver(std::vector<TraceEvent> events, Clock* clock);

  /// \brief The dispatch order Run will use.
  const std::vector<TraceEvent>& events() const { return events_; }

  /// \brief Dispatches every event in order on the calling thread:
  /// SleepUntil(at_us), then handler(event, at_us, now). Returns the lag
  /// accounting.
  Stats Run(const Handler& handler);

 private:
  std::vector<TraceEvent> events_;
  Clock* clock_;
};

/// \brief Deterministic synthetic row stream for replaying Append events:
/// row i's codes derive from SplitMix64Mix(seed, i) over the schema's
/// domains, and every `outlier_stride`-th row carries `outlier_metric`
/// (the rest draw small uniform metrics) — so replays know exactly which
/// row ids are plantable outliers: i % outlier_stride == 0.
std::function<Row(uint64_t)> MakeUniformRowSource(
    const Schema& schema, uint64_t seed, uint64_t outlier_stride = 17,
    double outlier_metric = 1'000.0);

/// \brief Per-tenant slice of a TraceReplayResult.
struct TenantReplayStats {
  std::string id;
  LatencyHistogram scheduled;  ///< scheduled-fire-time -> completion
  LatencyHistogram submitted;  ///< SubmitAsync-return -> completion
  size_t releases = 0;         ///< release events dispatched
  size_t released = 0;         ///< entries completed OK
  size_t failed = 0;           ///< entries completed with an error status
  size_t rejected_budget = 0;  ///< admissions refused: budget cap
  size_t rejected_other = 0;   ///< every other admission refusal
  size_t exceptions = 0;       ///< futures that rethrew a worker error
};

/// \brief ReplayTrace configuration.
struct TraceReplayOptions {
  /// Clock the dispatch loop schedules against. Null = a fresh RealClock
  /// owned by the replay (t=0 at replay start). Tests pass a VirtualClock
  /// for zero-sleep deterministic replays.
  Clock* clock = nullptr;
  /// Threads collecting completed futures (latency recording). The
  /// release payload digest is independent of this by the server's
  /// determinism contract — the streaming integration test replays at 1
  /// and 16 and asserts bit-identical digests.
  size_t collector_threads = 1;
  /// Drain every in-flight release before dispatching a Seal event. This
  /// pins each release to a deterministic epoch (a micro-batch pins
  /// whichever snapshot is current at dispatch, so sealing under open
  /// releases would make their epoch a race). Required for bit-identical
  /// streaming replays; turn off only to measure seal/release contention.
  bool seal_barrier = true;
  /// Bucket layout for all latency histograms.
  LatencyHistogram::Options histogram;
  /// Synthesizes the i-th appended row (global append index). Required
  /// when the trace has Append events; see MakeUniformRowSource.
  std::function<Row(uint64_t)> row_source;
};

/// \brief Aggregate outcome of one open-loop trace replay.
struct TraceReplayResult {
  /// Both percentile families over every terminal release outcome
  /// (completion, failure, or admission rejection — rejections terminate
  /// at admission time). scheduled >= submitted pointwise: the scheduled
  /// latency is the submitted latency plus the dispatch lag, so any
  /// scheduled percentile dominates its submitted twin — the difference
  /// is the coordinated-omission gap closed-loop numbers hide.
  LatencyHistogram scheduled;
  LatencyHistogram submitted;
  TraceDriver::Stats driver;    ///< dispatch-loop lag accounting
  size_t releases = 0;          ///< release events dispatched
  size_t released = 0;          ///< entries completed OK
  size_t failed = 0;            ///< entries completed with error status
  size_t rejected_budget = 0;   ///< admissions refused: budget cap
  size_t rejected_other = 0;    ///< every other admission refusal
  size_t exceptions = 0;        ///< futures that rethrew a worker error
  size_t appends = 0;           ///< rows buffered via SubmitAppend
  size_t append_errors = 0;     ///< rows the stream refused
  size_t seals = 0;             ///< Seal events dispatched
  uint64_t final_epoch = 0;     ///< stream epoch after the last event
  /// Order-insensitive only across collector threading, order-SENSITIVE
  /// across payloads: a SplitMix64Mix fold over every release outcome in
  /// trace order (status; on success the full deterministic payload —
  /// context bits, epsilons, candidate/probe counts, utility, epoch,
  /// stream index). Two replays of the same trace are bit-identical iff
  /// their digests match.
  uint64_t release_digest = 0;
  double wall_seconds = 0.0;    ///< real wall time of the whole replay
  /// Per-tenant breakdown in order of first appearance in the trace.
  std::vector<TenantReplayStats> tenants;
};

/// \brief Folds one release outcome into the replay digest (exposed for
/// tests that want to pre-compute expected digests).
uint64_t DigestBatchEntry(const BatchEntry& entry);

/// \brief Replays `events` against `server` open-loop: the calling thread
/// runs the TraceDriver dispatch loop (sleeping on options.clock),
/// submitting releases / appends / seals as scheduled;
/// options.collector_threads background threads block on the returned
/// futures and record both latency families. Release events pick their
/// target row as outlier_pool[event.rows % pool.size()].
///
/// Fails fast with kInvalidArgument (nothing dispatched) when the trace
/// has releases but the pool is empty, has appends but no
/// options.row_source, or has streaming events against a classic server.
Result<TraceReplayResult> ReplayTrace(PcorServer& server,
                                      std::span<const TraceEvent> events,
                                      std::span<const uint32_t> outlier_pool,
                                      const TraceReplayOptions& options = {});

}  // namespace pcor
