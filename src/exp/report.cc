#include "src/exp/report.h"

#include <algorithm>
#include <cstdio>

#include "src/common/string_util.h"

namespace pcor {

TableRenderer::TableRenderer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableRenderer::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableRenderer::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      line += " " + cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace report {

void SectionHeader(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void Note(const std::string& text) {
  std::printf("   %s\n", text.c_str());
}

std::string FormatUtilityCi(const ConfidenceInterval& ci) {
  return strings::Format("%.2f (%.2f, %.2f)", ci.mean, ci.lower, ci.upper);
}

std::string FormatRuntime(double seconds) {
  return strings::HumanDuration(seconds);
}

void PrintHistogram(const std::string& title,
                    const std::vector<double>& samples, double lo, double hi,
                    size_t bins) {
  std::printf("-- %s (%zu samples) --\n", title.c_str(), samples.size());
  if (samples.empty()) return;
  HistogramBuilder hist(lo, hi, bins);
  hist.AddAll(samples);
  std::printf("%s", hist.ToAscii().c_str());
}

}  // namespace report
}  // namespace pcor
