#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/serve/server.h"

namespace pcor {

/// \brief One tenant's share of a serving workload: its QoS registration
/// plus the request stream its client threads submit.
struct TenantWorkload {
  /// Tenant id the requests are submitted under (must be unique and
  /// non-empty across the workload).
  std::string id;
  /// Registered on the server before any client thread starts.
  TenantConfig tenant;
  /// Concurrent closed-loop client threads submitting as this tenant.
  size_t threads = 1;
  /// Requests each thread submits.
  size_t requests_per_thread = 25;
  /// Per-request PcorOptions override carried on every one of this
  /// tenant's requests (nullopt = the server's ServeOptions::release).
  std::optional<PcorOptions> request_options;
  /// Closed loop (default): each thread blocks on its future before the
  /// next submission. Flood: each thread submits its whole stream
  /// up-front, then collects — an adversarial tenant saturating the queue,
  /// which is what the fairness bench uses as the heavy aggressor.
  bool flood = false;
};

/// \brief Per-tenant slice of a ServingResult.
struct TenantResult {
  std::string id;
  std::vector<double> latencies_s;  ///< per completed request, any order
  size_t released = 0;              ///< entries with OK status
  size_t failed = 0;                ///< entries with an error status
  size_t rejected_budget = 0;       ///< admissions refused over budget
  /// Every other admission refusal: global-queue backpressure, the
  /// tenant's own depth bound, invalid options, shutdown. The driver sees
  /// only the returned Status (depth and queue-full are both
  /// kResourceExhausted); consult ServerStats for the precise
  /// rejected_queue / rejected_depth / rejected_invalid split.
  size_t rejected_queue = 0;
  size_t exceptions = 0;            ///< futures that rethrew a worker error
  /// Workload start to this tenant's last completion — the denominator of
  /// this tenant's observed service rate.
  double wall_seconds = 0.0;

  /// 0.0 for a tenant with no completions (e.g. everything was
  /// door-rejected) rather than the Percentile CHECK on an empty sample.
  double latency_quantile(double q) const {
    return latencies_s.empty() ? 0.0 : Percentile(latencies_s, q);
  }
  double releases_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(released) / wall_seconds
                              : 0.0;
  }
};

/// \brief One serving experiment: concurrent client threads submit
/// releases (round-robin over the outlier pool) to a PcorServer and block
/// on their futures, measuring the end-to-end submit-to-completion latency
/// the paper-style trial loop never sees.
///
/// Two ways to describe the clients:
///  * homogeneous (legacy): `clients` threads of `requests_per_client`
///    each, one tenant per thread named "client-<i>", default QoS;
///  * multi-tenant: explicit `tenants`, each with its own TenantConfig
///    (weight, depth bound, epsilon cap), thread count, per-request
///    options and submission mode. When `tenants` is non-empty it wins.
struct ServingConfig {
  size_t clients = 4;
  size_t requests_per_client = 25;
  /// Server configuration (micro-batching, queue bound, scheduling policy,
  /// budget cap, and the default PcorOptions under `serve.release`).
  ServeOptions serve;
  /// Explicit multi-tenant mix (see above).
  std::vector<TenantWorkload> tenants;
};

/// \brief Aggregate outcome of RunServingWorkload.
struct ServingResult {
  std::vector<double> latencies_s;  ///< per completed request, any order
  size_t released = 0;              ///< entries with OK status
  size_t failed = 0;                ///< entries with an error status
  size_t rejected_budget = 0;       ///< admissions refused over budget
  size_t rejected_queue = 0;        ///< all non-budget admission refusals
  size_t exceptions = 0;            ///< futures that rethrew a worker error
  size_t batches = 0;               ///< micro-batches the server executed
  size_t max_coalesced = 0;         ///< largest micro-batch observed
  size_t hit_probe_cap = 0;         ///< released entries that hit the cap
  double epsilon_spent = 0.0;       ///< across all client ledgers
  double wall_seconds = 0.0;        ///< whole-workload wall time
  /// Per-tenant breakdown, one entry per configured tenant (or per legacy
  /// "client-<i>"), in configuration order.
  std::vector<TenantResult> tenants;

  /// 0.0 when nothing completed (see TenantResult::latency_quantile).
  double latency_quantile(double q) const {
    return latencies_s.empty() ? 0.0 : Percentile(latencies_s, q);
  }
  double releases_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(released) / wall_seconds
               : 0.0;
  }
};

/// \brief Drives a fresh PcorServer over `engine` with concurrent client
/// threads; tenants are registered with their TenantConfig before any
/// submission. Each tenant draws its deterministic per-(tenant, seq)
/// request streams. Returns aggregate latency/throughput, the server's own
/// counters, and the per-tenant breakdown.
Result<ServingResult> RunServingWorkload(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ServingConfig& config);

}  // namespace pcor
