#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/serve/server.h"

namespace pcor {

/// \brief One serving experiment: `clients` concurrent client threads each
/// submit `requests_per_client` releases (round-robin over the outlier
/// pool) to a PcorServer and block on their futures, measuring the
/// end-to-end submit-to-completion latency the paper-style trial loop
/// never sees.
struct ServingConfig {
  size_t clients = 4;
  size_t requests_per_client = 25;
  /// Server configuration (micro-batching, queue bound, budget cap, and
  /// the shared PcorOptions under `serve.release`).
  ServeOptions serve;
};

/// \brief Aggregate outcome of RunServingWorkload.
struct ServingResult {
  std::vector<double> latencies_s;  ///< per completed request, any order
  size_t released = 0;              ///< entries with OK status
  size_t failed = 0;                ///< entries with an error status
  size_t rejected_budget = 0;       ///< admissions refused over budget
  size_t rejected_queue = 0;        ///< admissions refused by backpressure
  size_t exceptions = 0;            ///< futures that rethrew a worker error
  size_t batches = 0;               ///< micro-batches the server executed
  size_t max_coalesced = 0;         ///< largest micro-batch observed
  size_t hit_probe_cap = 0;         ///< released entries that hit the cap
  double epsilon_spent = 0.0;       ///< across all client ledgers
  double wall_seconds = 0.0;        ///< whole-workload wall time

  double latency_quantile(double q) const {
    return Percentile(latencies_s, q);
  }
  double releases_per_second() const {
    return wall_seconds > 0.0
               ? static_cast<double>(released) / wall_seconds
               : 0.0;
  }
};

/// \brief Drives a fresh PcorServer over `engine` with concurrent client
/// threads (client c is named "client-c" and draws its deterministic
/// per-(client, seq) request streams). Returns aggregate latency/throughput
/// plus the server's own counters.
Result<ServingResult> RunServingWorkload(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ServingConfig& config);

}  // namespace pcor
