#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace pcor {

/// \brief What one trace event asks the server to do.
enum class TraceEventKind {
  kRelease,  ///< submit one release request for `tenant`
  kAppend,   ///< buffer `rows` synthesized rows into the stream's tail
  kSeal,     ///< seal buffered rows into a new epoch snapshot
};

/// \brief One scheduled event of an open-loop workload trace.
///
/// The open-loop contract: `at_us` is when the event FIRES, fixed when the
/// trace is generated or recorded — never a function of how long earlier
/// events took. The driver sleeps until `at_us` and dispatches, so a slow
/// server makes the driver late (an observable omission gap), not the
/// workload lighter.
///
/// Field use by kind:
///   kRelease: `epsilon` is the per-request total_epsilon override (0 =
///     the server's default options), and `rows` indexes the replay's
///     outlier pool (`pool[rows % pool.size()]` picks the target row), so
///     a trace stays valid across datasets of different sizes.
///   kAppend: `rows` is how many synthesized rows to buffer; epsilon 0.
///   kSeal: both auxiliary fields 0.
struct TraceEvent {
  int64_t at_us = 0;     ///< scheduled fire time, micros from trace start
  std::string tenant;    ///< submitting tenant id (non-empty)
  TraceEventKind kind = TraceEventKind::kRelease;
  double epsilon = 0.0;  ///< kRelease only; 0 = server default options
  uint64_t rows = 0;     ///< see field-use table above

  bool operator==(const TraceEvent&) const = default;
};

const char* TraceEventKindName(TraceEventKind kind);

/// \brief Parse-time validation context.
struct TraceParseOptions {
  /// When non-empty, every event's tenant must be one of these ids;
  /// a line naming any other tenant fails with kNotFound. Empty = any
  /// non-empty tenant id is accepted (recorded traces carry their own
  /// tenant universe).
  std::vector<std::string> allowed_tenants;
};

/// \brief Serializes a trace to its recorded text form:
///
///     # pcor-trace v1
///     at_us,tenant,kind,eps,rows
///     0,acme,release,0.2,0
///     1000,acme,append,0,64
///     2000,acme,seal,0,0
///
/// Lines starting with '#' are comments; the column header is required.
/// Epsilon is printed with %.17g, so FormatTrace -> ParseTrace round-trips
/// to an identical event stream (bit-exact doubles included).
std::string FormatTrace(const std::vector<TraceEvent>& events);

/// \brief Parses a recorded trace. Errors are typed and name the exact
/// 1-based line: kInvalidArgument for a missing/wrong header, wrong field
/// count, unknown kind, malformed or negative at_us, malformed or negative
/// eps, malformed rows, or an empty tenant; kNotFound for a tenant outside
/// `options.allowed_tenants`. Events are returned in file order (the
/// driver stable-sorts by at_us before dispatch, so recorded order breaks
/// timestamp ties).
Result<std::vector<TraceEvent>> ParseTrace(
    const std::string& text, const TraceParseOptions& options = {});

/// \brief Diurnal release load: per-tenant Poisson arrivals whose rate
/// swings sinusoidally between trough and peak over each period — the
/// classic day/night serving curve compressed to bench scale.
struct DiurnalTraceOptions {
  std::vector<std::string> tenants = {"day-0", "day-1"};
  int64_t duration_us = 1'000'000;
  int64_t period_us = 250'000;          ///< one full day/night cycle
  double trough_releases_per_sec = 50;  ///< rate at the cycle's low point
  double peak_releases_per_sec = 400;   ///< rate at the cycle's high point
  uint64_t seed = 2021;
};
std::vector<TraceEvent> MakeDiurnalTrace(const DiurnalTraceOptions& options);

/// \brief Tenant flood: steady baseline tenants plus one aggressor that
/// fires `flood_events` releases in a near-instant burst mid-trace. The
/// canonical coordinated-omission demonstration — a closed-loop client
/// would politely pace itself through the burst; the open-loop driver
/// keeps firing on schedule and the scheduled-to-completion tail shows
/// what every enqueued-behind-the-flood request actually waited.
struct FloodTraceOptions {
  std::vector<std::string> baseline_tenants = {"steady-0", "steady-1"};
  std::string flood_tenant = "flood";
  int64_t duration_us = 1'000'000;
  int64_t baseline_interval_us = 10'000;  ///< per-tenant steady cadence
  int64_t flood_at_us = 300'000;          ///< burst start
  int64_t flood_spacing_us = 10;          ///< near-simultaneous arrivals
  size_t flood_events = 256;
  uint64_t seed = 2021;
};
std::vector<TraceEvent> MakeFloodTrace(const FloodTraceOptions& options);

/// \brief Budget-exhaustion storm: each tenant submits `events_per_tenant`
/// releases of `epsilon_per_release` on a fixed cadence. With a per-tenant
/// cap of C, exactly floor(C / eps) admissions per tenant succeed and the
/// rest are typed kPrivacyBudgetExceeded rejections — admission order
/// equals trace order, so the expected rejection count is exact arithmetic
/// a bench can enforce without relaxation.
struct BudgetStormTraceOptions {
  size_t tenant_count = 4;
  size_t events_per_tenant = 32;
  double epsilon_per_release = 0.2;
  int64_t interval_us = 2'000;  ///< global cadence, tenants round-robin
  uint64_t seed = 2021;
};
std::vector<TraceEvent> MakeBudgetStormTrace(
    const BudgetStormTraceOptions& options);

/// \brief Streaming interleave: epochs of (append burst, seal, release
/// volley) — the open-loop version of the continual-release lifecycle.
/// Release events' pool indices simply cycle, so a replay need only
/// supply an outlier pool whose row ids are all sealed by the FIRST
/// epoch (row ids below appends_per_epoch * rows_per_append) for every
/// release to be valid by the time it dispatches under a seal barrier.
struct StreamingTraceOptions {
  std::vector<std::string> tenants = {"stream-0", "stream-1"};
  size_t epochs = 3;
  size_t appends_per_epoch = 4;    ///< append events per epoch
  uint64_t rows_per_append = 16;   ///< rows buffered per append event
  size_t releases_per_epoch = 8;   ///< release events after each seal
  int64_t epoch_interval_us = 100'000;
  uint64_t seed = 2021;
};
std::vector<TraceEvent> MakeStreamingTrace(
    const StreamingTraceOptions& options);

}  // namespace pcor
