#include "src/exp/reference.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <mutex>

#include "src/common/string_util.h"
#include "src/common/threading.h"

namespace pcor {

Result<ReferenceTable> ReferenceTable::Build(
    const OutlierVerifier& verifier, const std::vector<uint32_t>& rows,
    const CoeOptions& options, size_t threads) {
  ReferenceTable table;
  std::mutex mu;
  Status first_error;
  ParallelFor(rows.size(), std::max<size_t>(threads, 1), [&](size_t i) {
    auto coe = EnumerateCoe(verifier, rows[i], options);
    std::lock_guard<std::mutex> lock(mu);
    if (!coe.ok()) {
      if (first_error.ok()) first_error = coe.status();
      return;
    }
    table.entries_.emplace(rows[i], std::move(coe).value());
  });
  if (!first_error.ok()) return first_error;
  return table;
}

const std::vector<ContextVec>* ReferenceTable::Coe(uint32_t row) const {
  auto it = entries_.find(row);
  return it == entries_.end() ? nullptr : &it->second;
}

double ReferenceTable::MaxUtility(uint32_t row,
                                  const UtilityFunction& utility) const {
  const auto* coe = Coe(row);
  double best = -std::numeric_limits<double>::infinity();
  if (coe == nullptr) return best;
  for (const ContextVec& c : *coe) {
    best = std::max(best, utility.Score(c, row));
  }
  return best;
}

std::vector<uint32_t> ReferenceTable::RowsWithMatches() const {
  std::vector<uint32_t> rows;
  for (const auto& [row, coe] : entries_) {
    if (!coe.empty()) rows.push_back(row);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

Status ReferenceTable::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  std::vector<uint32_t> rows;
  rows.reserve(entries_.size());
  for (const auto& [row, coe] : entries_) rows.push_back(row);
  std::sort(rows.begin(), rows.end());
  for (uint32_t row : rows) {
    for (const ContextVec& c : entries_.at(row)) {
      out << row << "," << c.ToBitString() << "\n";
    }
    // A row with an empty COE is recorded with an empty context field so
    // Load can distinguish "built, no matches" from "not built".
    if (entries_.at(row).empty()) out << row << ",\n";
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<ReferenceTable> ReferenceTable::LoadCsv(const std::string& path,
                                               size_t t) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  ReferenceTable table;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Status::InvalidArgument(
          strings::Format("line %zu: expected 'row,bits'", line_no));
    }
    const size_t row = strings::ParseSizeOr(line.substr(0, comma), SIZE_MAX);
    if (row == SIZE_MAX) {
      return Status::InvalidArgument(
          strings::Format("line %zu: bad row id", line_no));
    }
    const std::string bits = line.substr(comma + 1);
    auto& entry = table.entries_[static_cast<uint32_t>(row)];
    if (bits.empty()) continue;  // explicit empty-COE marker
    if (bits.size() != t) {
      return Status::InvalidArgument(strings::Format(
          "line %zu: context has %zu bits, schema expects %zu", line_no,
          bits.size(), t));
    }
    PCOR_ASSIGN_OR_RETURN(ContextVec c, ContextVec::FromBitString(bits));
    entry.push_back(c);
  }
  for (auto& [row, coe] : table.entries_) {
    std::sort(coe.begin(), coe.end());
  }
  return table;
}

}  // namespace pcor
