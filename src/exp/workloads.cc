#include "src/exp/workloads.h"

#include <algorithm>

#include "src/context/starting_context.h"
#include "src/data/homicide_generator.h"
#include "src/data/salary_generator.h"

namespace pcor {

namespace {

size_t Scaled(size_t rows, double scale) {
  if (scale >= 1.0) return rows;
  const double scaled = static_cast<double>(rows) * std::max(scale, 0.0);
  return std::max<size_t>(500, static_cast<size_t>(scaled));
}

}  // namespace

Result<Workload> MakeReducedSalaryWorkload(double scale) {
  SalaryDatasetSpec spec = ReducedSalarySpec();
  spec.num_rows = Scaled(spec.num_rows, scale);
  spec.num_planted = std::max<size_t>(20, spec.num_planted * spec.num_rows /
                                              ReducedSalarySpec().num_rows);
  PCOR_ASSIGN_OR_RETURN(GeneratedData data, GenerateSalaryDataset(spec));
  return Workload{"salary_reduced", std::move(data)};
}

Result<Workload> MakeFullSalaryWorkload(double scale) {
  SalaryDatasetSpec spec = FullSalarySpec();
  spec.num_rows = Scaled(spec.num_rows, scale);
  spec.num_planted = std::max<size_t>(20, spec.num_planted * spec.num_rows /
                                              FullSalarySpec().num_rows);
  PCOR_ASSIGN_OR_RETURN(GeneratedData data, GenerateSalaryDataset(spec));
  return Workload{"salary_full", std::move(data)};
}

Result<Workload> MakeReducedHomicideWorkload(double scale) {
  HomicideDatasetSpec spec = ReducedHomicideSpec();
  spec.num_rows = Scaled(spec.num_rows, scale);
  spec.num_planted =
      std::max<size_t>(20, spec.num_planted * spec.num_rows /
                               ReducedHomicideSpec().num_rows);
  PCOR_ASSIGN_OR_RETURN(GeneratedData data, GenerateHomicideDataset(spec));
  return Workload{"homicide_reduced", std::move(data)};
}

Result<Workload> MakeFullHomicideWorkload(double scale) {
  HomicideDatasetSpec spec = FullHomicideSpec();
  spec.num_rows = Scaled(spec.num_rows, scale);
  spec.num_planted =
      std::max<size_t>(20, spec.num_planted * spec.num_rows /
                               FullHomicideSpec().num_rows);
  PCOR_ASSIGN_OR_RETURN(GeneratedData data, GenerateHomicideDataset(spec));
  return Workload{"homicide_full", std::move(data)};
}

std::vector<uint32_t> SelectQueryOutliers(
    const OutlierVerifier& verifier,
    const std::vector<uint32_t>& candidates, size_t max_outliers, Rng* rng) {
  std::vector<uint32_t> shuffled = candidates;
  rng->Shuffle(&shuffled);
  StartingContextOptions options;  // deterministic pipeline first
  std::vector<uint32_t> selected;
  for (uint32_t row : shuffled) {
    if (selected.size() >= max_outliers) break;
    Rng probe = rng->Fork();
    auto start = FindStartingContext(verifier, row, options, &probe);
    if (start.ok()) selected.push_back(row);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace pcor
