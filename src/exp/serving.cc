#include "src/exp/serving.h"

#include <mutex>
#include <thread>

#include "src/common/string_util.h"
#include "src/common/timer.h"

namespace pcor {

Result<ServingResult> RunServingWorkload(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ServingConfig& config) {
  if (outlier_rows.empty()) {
    return Status::InvalidArgument("serving workload needs outlier rows");
  }
  if (config.clients == 0 || config.requests_per_client == 0) {
    return Status::InvalidArgument(
        "serving workload needs at least one client and one request");
  }

  ServingResult result;
  WallTimer timer;
  PcorServer server(engine, config.serve);

  std::mutex result_mu;
  std::vector<std::thread> clients;
  clients.reserve(config.clients);
  for (size_t c = 0; c < config.clients; ++c) {
    clients.emplace_back([&, c] {
      const std::string client_id = strings::Format("client-%zu", c);
      // Local tallies merged once at the end: the measurement must not
      // serialize the very concurrency it exists to measure.
      std::vector<double> latencies;
      latencies.reserve(config.requests_per_client);
      size_t rejected_budget = 0;
      size_t rejected_queue = 0;
      size_t exceptions = 0;
      for (size_t k = 0; k < config.requests_per_client; ++k) {
        BatchRequest request;
        request.v_row = outlier_rows[(c + k) % outlier_rows.size()];
        WallTimer latency;
        auto submitted = server.SubmitAsync(request, client_id);
        if (!submitted.ok()) {
          if (submitted.status().IsPrivacyBudgetExceeded()) {
            ++rejected_budget;
          } else {
            ++rejected_queue;
          }
          continue;
        }
        // A closed-loop client: block on the future, then submit the next
        // request. Coalescing across the *other* clients still happens.
        // Get() rethrows worker-side exceptions (poisoned pre_batch_hook,
        // BrokenPromise); letting one escape a std::thread body would
        // std::terminate the whole process, so tally it instead.
        try {
          (void)submitted.value().Get();
          latencies.push_back(latency.ElapsedSeconds());
        } catch (...) {
          ++exceptions;
        }
      }
      std::unique_lock<std::mutex> lock(result_mu);
      result.latencies_s.insert(result.latencies_s.end(), latencies.begin(),
                                latencies.end());
      result.rejected_budget += rejected_budget;
      result.rejected_queue += rejected_queue;
      result.exceptions += exceptions;
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown(/*drain=*/true);
  result.wall_seconds = timer.ElapsedSeconds();

  const ServerStats stats = server.stats();
  result.released = stats.released;
  result.failed = stats.failed;
  result.batches = stats.batches;
  result.max_coalesced = stats.max_coalesced;
  result.hit_probe_cap = stats.hit_probe_cap;
  result.epsilon_spent = stats.epsilon_spent;
  return result;
}

}  // namespace pcor
