#include "src/exp/serving.h"

#include <algorithm>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "src/common/string_util.h"
#include "src/common/timer.h"

namespace pcor {

namespace {

/// Tally one client thread accumulates locally and merges into its
/// tenant's result once, so the measurement never serializes the very
/// concurrency it exists to measure.
struct ThreadTally {
  std::vector<double> latencies;
  size_t released = 0;
  size_t failed = 0;
  size_t rejected_budget = 0;
  size_t rejected_queue = 0;
  size_t exceptions = 0;
  double end_seconds = 0.0;  ///< workload-clock time of the last completion
};

void RecordOutcome(const Result<Future<BatchEntry>>& submitted,
                   ThreadTally* tally) {
  if (submitted.status().IsPrivacyBudgetExceeded()) {
    ++tally->rejected_budget;
  } else {
    ++tally->rejected_queue;
  }
}

}  // namespace

Result<ServingResult> RunServingWorkload(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ServingConfig& config) {
  if (outlier_rows.empty()) {
    return Status::InvalidArgument("serving workload needs outlier rows");
  }

  // Resolve the tenant mix: explicit tenants win; otherwise synthesize the
  // legacy homogeneous client-<i> layout.
  std::vector<TenantWorkload> tenants = config.tenants;
  if (tenants.empty()) {
    if (config.clients == 0 || config.requests_per_client == 0) {
      return Status::InvalidArgument(
          "serving workload needs at least one client and one request");
    }
    tenants.reserve(config.clients);
    for (size_t c = 0; c < config.clients; ++c) {
      TenantWorkload workload;
      workload.id = strings::Format("client-%zu", c);
      workload.requests_per_thread = config.requests_per_client;
      tenants.push_back(std::move(workload));
    }
  }
  std::unordered_set<std::string> seen_ids;
  for (const TenantWorkload& tenant : tenants) {
    if (tenant.id.empty()) {
      return Status::InvalidArgument("tenant id must be non-empty");
    }
    if (!seen_ids.insert(tenant.id).second) {
      return Status::InvalidArgument(
          strings::Format("duplicate tenant id '%s'", tenant.id.c_str()));
    }
    if (tenant.threads == 0 || tenant.requests_per_thread == 0) {
      return Status::InvalidArgument(strings::Format(
          "tenant '%s' needs at least one thread and one request",
          tenant.id.c_str()));
    }
    PCOR_RETURN_NOT_OK(ValidateTenantConfig(tenant.tenant));
    if (tenant.request_options.has_value()) {
      PCOR_RETURN_NOT_OK(ValidatePcorOptions(*tenant.request_options));
    }
  }

  ServingResult result;
  result.tenants.resize(tenants.size());
  WallTimer timer;
  PcorServer server(engine, config.serve);
  for (const TenantWorkload& tenant : tenants) {
    PCOR_RETURN_NOT_OK(server.RegisterTenant(tenant.id, tenant.tenant));
  }

  std::mutex result_mu;
  std::vector<std::thread> clients;
  for (size_t t = 0; t < tenants.size(); ++t) {
    const TenantWorkload& tenant = tenants[t];
    for (size_t w = 0; w < tenant.threads; ++w) {
      clients.emplace_back([&, t, w] {
        const TenantWorkload& me = tenants[t];
        ThreadTally tally;
        tally.latencies.reserve(me.requests_per_thread);

        const auto make_request = [&](size_t k) {
          BatchRequest request;
          request.v_row =
              outlier_rows[(t * 31 + w * 7 + k) % outlier_rows.size()];
          request.options = me.request_options;
          return request;
        };
        const auto collect = [&](Future<BatchEntry>* future,
                                 const WallTimer& latency) {
          // Get() rethrows worker-side exceptions (poisoned
          // pre_batch_hook, BrokenPromise); letting one escape a
          // std::thread body would std::terminate the whole process, so
          // tally it instead.
          try {
            const BatchEntry entry = future->Get();
            tally.latencies.push_back(latency.ElapsedSeconds());
            entry.status.ok() ? ++tally.released : ++tally.failed;
          } catch (...) {
            ++tally.exceptions;
          }
          tally.end_seconds = timer.ElapsedSeconds();
        };

        if (me.flood) {
          // Open loop: saturate first, collect after — the aggressor mode.
          std::vector<Future<BatchEntry>> futures;
          std::vector<WallTimer> submitted_at;
          futures.reserve(me.requests_per_thread);
          submitted_at.reserve(me.requests_per_thread);
          for (size_t k = 0; k < me.requests_per_thread; ++k) {
            WallTimer latency;
            auto submitted = server.SubmitAsync(make_request(k), me.id);
            if (!submitted.ok()) {
              RecordOutcome(submitted, &tally);
              continue;
            }
            futures.push_back(std::move(*submitted));
            submitted_at.push_back(latency);
          }
          for (size_t i = 0; i < futures.size(); ++i) {
            collect(&futures[i], submitted_at[i]);
          }
        } else {
          // Closed loop: block on each future, then submit the next.
          // Coalescing across the *other* clients still happens.
          for (size_t k = 0; k < me.requests_per_thread; ++k) {
            WallTimer latency;
            auto submitted = server.SubmitAsync(make_request(k), me.id);
            if (!submitted.ok()) {
              RecordOutcome(submitted, &tally);
              continue;
            }
            collect(&*submitted, latency);
          }
        }

        std::unique_lock<std::mutex> lock(result_mu);
        TenantResult& mine = result.tenants[t];
        mine.latencies_s.insert(mine.latencies_s.end(),
                                tally.latencies.begin(),
                                tally.latencies.end());
        mine.released += tally.released;
        mine.failed += tally.failed;
        mine.rejected_budget += tally.rejected_budget;
        mine.rejected_queue += tally.rejected_queue;
        mine.exceptions += tally.exceptions;
        mine.wall_seconds = std::max(mine.wall_seconds, tally.end_seconds);
      });
    }
  }
  for (auto& t : clients) t.join();
  server.Shutdown(/*drain=*/true);
  result.wall_seconds = timer.ElapsedSeconds();

  for (size_t t = 0; t < tenants.size(); ++t) {
    TenantResult& tenant = result.tenants[t];
    tenant.id = tenants[t].id;
    result.latencies_s.insert(result.latencies_s.end(),
                              tenant.latencies_s.begin(),
                              tenant.latencies_s.end());
    result.rejected_budget += tenant.rejected_budget;
    result.rejected_queue += tenant.rejected_queue;
    result.exceptions += tenant.exceptions;
  }

  const ServerStats stats = server.stats();
  result.released = stats.released;
  result.failed = stats.failed;
  result.batches = stats.batches;
  result.max_coalesced = stats.max_coalesced;
  result.hit_probe_cap = stats.hit_probe_cap;
  result.epsilon_spent = stats.epsilon_spent;
  return result;
}

}  // namespace pcor
