#include "src/exp/trace_driver.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"
#include "src/common/mpmc_queue.h"
#include "src/common/random.h"

namespace pcor {

TraceDriver::TraceDriver(std::vector<TraceEvent> events, Clock* clock)
    : events_(std::move(events)), clock_(clock) {
  PCOR_CHECK(clock_ != nullptr) << "TraceDriver needs a clock";
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at_us < b.at_us;
                   });
}

TraceDriver::Stats TraceDriver::Run(const Handler& handler) {
  Stats stats;
  for (const TraceEvent& e : events_) {
    clock_->SleepUntil(e.at_us);
    const int64_t fired_us = clock_->NowMicros();
    const int64_t lag_us = fired_us - e.at_us;
    ++stats.dispatched;
    if (lag_us > 0) {
      ++stats.late;
      stats.total_lag_us += lag_us;
      stats.max_lag_us = std::max(stats.max_lag_us, lag_us);
    }
    handler(e, e.at_us, fired_us);
  }
  return stats;
}

std::function<Row(uint64_t)> MakeUniformRowSource(const Schema& schema,
                                                  uint64_t seed,
                                                  uint64_t outlier_stride,
                                                  double outlier_metric) {
  PCOR_CHECK(outlier_stride > 0) << "outlier_stride must be positive";
  std::vector<uint32_t> domains;
  domains.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    domains.push_back(
        static_cast<uint32_t>(schema.attribute(a).domain_size()));
  }
  return [domains, seed, outlier_stride, outlier_metric](uint64_t index) {
    Row row;
    row.codes.resize(domains.size());
    for (size_t a = 0; a < domains.size(); ++a) {
      const uint64_t h = SplitMix64Mix(
          seed ^ SplitMix64Mix(index * 0x9e3779b97f4a7c15ULL + a + 1));
      row.codes[a] = static_cast<uint32_t>(h % domains[a]);
    }
    if (index % outlier_stride == 0) {
      row.metric = outlier_metric;
    } else {
      const uint64_t h = SplitMix64Mix(seed ^ SplitMix64Mix(~index));
      // Benign band well inside any z-score threshold.
      row.metric = 10.0 + static_cast<double>(h % 1000) / 100.0;
    }
    return row;
  };
}

namespace {

inline uint64_t Fold(uint64_t h, uint64_t v) {
  return SplitMix64Mix(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

inline uint64_t DoubleBits(double d) {
  uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

/// One submitted release awaiting collection.
struct InFlight {
  Future<BatchEntry> future;
  size_t tenant = 0;        // index into the replay's tenant table
  size_t slot = 0;          // digest slot = release index in trace order
  int64_t scheduled_us = 0;
  int64_t submitted_us = 0;
};

/// Per-thread accumulator; merged deterministically after the join
/// (histogram merge is an element-wise sum, so the merged result is
/// independent of which collector handled which future).
struct TenantAccum {
  explicit TenantAccum(const LatencyHistogram::Options& layout)
      : scheduled(layout), submitted(layout) {}
  LatencyHistogram scheduled;
  LatencyHistogram submitted;
  size_t released = 0;
  size_t failed = 0;
  size_t exceptions = 0;
};

}  // namespace

uint64_t DigestBatchEntry(const BatchEntry& entry) {
  uint64_t h = 0x5ca1ab1e;
  h = Fold(h, static_cast<uint64_t>(entry.status.code()));
  h = Fold(h, entry.v_row);
  h = Fold(h, entry.rng_seed);
  if (entry.status.ok()) {
    const PcorRelease& r = entry.release;
    // Only the deterministic slice of the payload: cache hit counts,
    // kernel backend and wall seconds legitimately vary run to run.
    h = Fold(h, static_cast<uint64_t>(r.context.Hash()));
    h = Fold(h, DoubleBits(r.epsilon_spent));
    h = Fold(h, DoubleBits(r.epsilon1));
    h = Fold(h, r.num_candidates);
    h = Fold(h, r.probes);
    h = Fold(h, DoubleBits(r.utility_score));
    h = Fold(h, r.epoch);
    h = Fold(h, r.stream_release_index);
    h = Fold(h, DoubleBits(r.stream_epsilon_charged));
    h = Fold(h, r.hit_probe_cap ? 1 : 0);
  }
  return h;
}

Result<TraceReplayResult> ReplayTrace(PcorServer& server,
                                      std::span<const TraceEvent> events,
                                      std::span<const uint32_t> outlier_pool,
                                      const TraceReplayOptions& options) {
  size_t n_releases = 0;
  bool has_streaming = false;
  bool has_appends = false;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kRelease:
        ++n_releases;
        break;
      case TraceEventKind::kAppend:
        has_appends = true;
        has_streaming = true;
        break;
      case TraceEventKind::kSeal:
        has_streaming = true;
        break;
    }
  }
  if (n_releases > 0 && outlier_pool.empty()) {
    return Status::InvalidArgument(
        "trace has release events but the outlier pool is empty");
  }
  if (has_appends && !options.row_source) {
    return Status::InvalidArgument(
        "trace has append events but no TraceReplayOptions::row_source");
  }
  if (has_streaming && !server.streaming()) {
    return Status::InvalidArgument(
        "trace has append/seal events but the server is not streaming");
  }

  std::optional<RealClock> owned_clock;
  Clock* clock =
      options.clock != nullptr ? options.clock : &owned_clock.emplace();

  TraceDriver driver(std::vector<TraceEvent>(events.begin(), events.end()),
                     clock);

  // Tenant table: order of first appearance in dispatch order, so the
  // per-tenant breakdown is a deterministic function of the trace.
  std::unordered_map<std::string, size_t> tenant_index;
  std::vector<std::string> tenant_ids;
  for (const TraceEvent& e : driver.events()) {
    if (tenant_index.emplace(e.tenant, tenant_ids.size()).second) {
      tenant_ids.push_back(e.tenant);
    }
  }

  const size_t n_collectors = std::max<size_t>(1, options.collector_threads);
  BoundedMpmcQueue<InFlight> completions(std::max<size_t>(1, n_releases));
  std::vector<uint64_t> digest_slots(n_releases, 0);

  // Seal barrier state: releases admitted but not yet collected.
  std::mutex outstanding_mu;
  std::condition_variable outstanding_cv;
  size_t outstanding = 0;

  std::vector<std::vector<TenantAccum>> collector_accums;
  collector_accums.reserve(n_collectors);
  for (size_t c = 0; c < n_collectors; ++c) {
    std::vector<TenantAccum> accums;
    accums.reserve(tenant_ids.size());
    for (size_t t = 0; t < tenant_ids.size(); ++t) {
      accums.emplace_back(options.histogram);
    }
    collector_accums.push_back(std::move(accums));
  }

  std::vector<std::thread> collectors;
  collectors.reserve(n_collectors);
  for (size_t c = 0; c < n_collectors; ++c) {
    collectors.emplace_back([&, c] {
      std::vector<TenantAccum>& accums = collector_accums[c];
      InFlight item;
      while (completions.Pop(&item) == QueueOp::kOk) {
        TenantAccum& accum = accums[item.tenant];
        uint64_t digest = 0;
        try {
          BatchEntry entry = item.future.Get();
          digest = DigestBatchEntry(entry);
          if (entry.status.ok()) {
            ++accum.released;
          } else {
            ++accum.failed;
          }
        } catch (const std::exception&) {
          ++accum.exceptions;
          digest = Fold(0xdead, 1);
        }
        const int64_t done_us = clock->NowMicros();
        accum.scheduled.Record(done_us - item.scheduled_us);
        accum.submitted.Record(done_us - item.submitted_us);
        digest_slots[item.slot] = digest;
        {
          std::lock_guard<std::mutex> lock(outstanding_mu);
          --outstanding;
        }
        outstanding_cv.notify_all();
      }
    });
  }

  // Dispatcher-side accumulator: admission rejections terminate at the
  // admission call itself, so the dispatch thread records them.
  std::vector<TenantAccum> reject_accums;
  reject_accums.reserve(tenant_ids.size());
  for (size_t t = 0; t < tenant_ids.size(); ++t) {
    reject_accums.emplace_back(options.histogram);
  }

  TraceReplayResult result;
  result.tenants.resize(tenant_ids.size());
  for (size_t t = 0; t < tenant_ids.size(); ++t) {
    result.tenants[t].id = tenant_ids[t];
    result.tenants[t].scheduled = LatencyHistogram(options.histogram);
    result.tenants[t].submitted = LatencyHistogram(options.histogram);
  }
  result.scheduled = LatencyHistogram(options.histogram);
  result.submitted = LatencyHistogram(options.histogram);

  size_t release_slot = 0;
  uint64_t append_index = 0;
  const auto wall_start = std::chrono::steady_clock::now();

  result.driver = driver.Run([&](const TraceEvent& e, int64_t scheduled_us,
                                 int64_t /*fired_us*/) {
    const size_t tenant = tenant_index.at(e.tenant);
    switch (e.kind) {
      case TraceEventKind::kRelease: {
        ++result.releases;
        ++result.tenants[tenant].releases;
        BatchRequest request;
        request.v_row = outlier_pool[e.rows % outlier_pool.size()];
        if (e.epsilon > 0.0) {
          PcorOptions override_options = server.options().release;
          override_options.total_epsilon = e.epsilon;
          request.options = override_options;
        }
        const size_t slot = release_slot++;
        Result<Future<BatchEntry>> admitted =
            server.SubmitAsync(request, e.tenant);
        // Recorded AFTER SubmitAsync returns: admission-side blocking
        // (backpressure) lands in the omission gap, not in the
        // submit-to-completion latency — that is the whole point.
        const int64_t submitted_us = clock->NowMicros();
        if (!admitted.ok()) {
          TenantAccum& accum = reject_accums[tenant];
          if (admitted.status().IsPrivacyBudgetExceeded()) {
            ++result.rejected_budget;
            ++result.tenants[tenant].rejected_budget;
          } else {
            ++result.rejected_other;
            ++result.tenants[tenant].rejected_other;
          }
          // A rejection terminates at admission time.
          accum.scheduled.Record(submitted_us - scheduled_us);
          accum.submitted.Record(0);
          digest_slots[slot] =
              Fold(0xbad, static_cast<uint64_t>(admitted.status().code()));
          break;
        }
        {
          std::lock_guard<std::mutex> lock(outstanding_mu);
          ++outstanding;
        }
        InFlight item;
        item.future = std::move(admitted).value();
        item.tenant = tenant;
        item.slot = slot;
        item.scheduled_us = scheduled_us;
        item.submitted_us = submitted_us;
        completions.Push(std::move(item));
        break;
      }
      case TraceEventKind::kAppend: {
        for (uint64_t r = 0; r < e.rows; ++r) {
          const Row row = options.row_source(append_index++);
          if (server.SubmitAppend(row).ok()) {
            ++result.appends;
          } else {
            ++result.append_errors;
          }
        }
        break;
      }
      case TraceEventKind::kSeal: {
        if (options.seal_barrier) {
          std::unique_lock<std::mutex> lock(outstanding_mu);
          outstanding_cv.wait(lock, [&] { return outstanding == 0; });
        }
        ++result.seals;
        Result<uint64_t> sealed = server.SealEpoch();
        if (sealed.ok()) result.final_epoch = sealed.value();
        break;
      }
    }
  });

  completions.Close();
  for (std::thread& t : collectors) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Deterministic assembly: per-tenant merges walk collectors in thread
  // order (any order would do — element-wise sums commute), then the
  // aggregate merges tenants in first-appearance order.
  for (size_t t = 0; t < tenant_ids.size(); ++t) {
    TenantReplayStats& out = result.tenants[t];
    out.scheduled.Merge(reject_accums[t].scheduled);
    out.submitted.Merge(reject_accums[t].submitted);
    for (size_t c = 0; c < n_collectors; ++c) {
      const TenantAccum& accum = collector_accums[c][t];
      out.scheduled.Merge(accum.scheduled);
      out.submitted.Merge(accum.submitted);
      out.released += accum.released;
      out.failed += accum.failed;
      out.exceptions += accum.exceptions;
    }
    result.scheduled.Merge(out.scheduled);
    result.submitted.Merge(out.submitted);
    result.released += out.released;
    result.failed += out.failed;
    result.exceptions += out.exceptions;
  }

  uint64_t digest = 0x9e3779b97f4a7c15ULL;
  for (uint64_t slot : digest_slots) digest = Fold(digest, slot);
  result.release_digest = digest;
  if (server.streaming()) result.final_epoch = server.stats().epoch;
  return result;
}

}  // namespace pcor
