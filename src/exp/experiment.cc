#include "src/exp/experiment.h"

#include <atomic>
#include <limits>
#include <mutex>

#include "src/common/threading.h"
#include "src/common/timer.h"
#include "src/context/starting_context.h"

namespace pcor {

Result<ExperimentResult> RunPcorExperiment(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ReferenceTable& reference, const TrialConfig& config) {
  if (outlier_rows.empty()) {
    return Status::InvalidArgument("experiment needs at least one outlier");
  }
  if (config.trials == 0) {
    return Status::InvalidArgument("experiment needs at least one trial");
  }

  // Fix, per row: the starting context C_V, the utility function, and the
  // reference maximum utility.
  struct RowSetup {
    uint32_t row = 0;
    std::unique_ptr<UtilityFunction> utility;
    double max_utility = 0.0;
    bool usable = false;
  };
  std::vector<RowSetup> setups;
  setups.reserve(outlier_rows.size());
  Rng setup_rng(config.seed ^ 0x5bf03635ULL);
  for (uint32_t row : outlier_rows) {
    RowSetup setup;
    setup.row = row;
    StartingContextOptions start_options;
    Rng row_rng = setup_rng.Fork();
    auto start =
        FindStartingContext(engine.verifier(), row, start_options, &row_rng);
    if (!start.ok()) {
      setups.push_back(std::move(setup));  // unusable
      continue;
    }
    setup.utility = MakeUtility(config.utility, engine.verifier(), *start);
    setup.max_utility = reference.MaxUtility(row, *setup.utility);
    setup.usable = setup.max_utility >
                   -std::numeric_limits<double>::infinity();
    setups.push_back(std::move(setup));
  }
  // Keep only usable rows.
  std::vector<const RowSetup*> pool;
  for (const auto& s : setups) {
    if (s.usable && s.max_utility > 0) pool.push_back(&s);
  }
  if (pool.empty()) {
    return Status::NoValidContext(
        "no query outlier has a usable reference entry");
  }

  PcorOptions options;
  options.sampler = config.sampler;
  options.num_samples = config.num_samples;
  options.total_epsilon = config.total_epsilon;
  options.utility = config.utility;
  options.max_probes = config.max_probes;

  ExperimentResult result;
  result.utility_ratios.assign(config.trials, 0.0);
  result.runtimes.assign(config.trials, 0.0);
  std::vector<char> trial_ok(config.trials, 0);
  std::atomic<size_t> failures{0};

  ParallelFor(config.trials, std::max<size_t>(config.threads, 1),
              [&](size_t trial) {
                const RowSetup& setup = *pool[trial % pool.size()];
                Rng rng(config.seed + 0x9e3779b9ULL * (trial + 1));
                WallTimer timer;
                auto release = engine.ReleaseWithUtility(
                    setup.row, options, *setup.utility, &rng);
                const double seconds = timer.ElapsedSeconds();
                if (!release.ok()) {
                  failures.fetch_add(1, std::memory_order_relaxed);
                  return;
                }
                result.utility_ratios[trial] =
                    release->utility_score / setup.max_utility;
                result.runtimes[trial] = seconds;
                trial_ok[trial] = 1;
              });

  // Compact out failed trials.
  ExperimentResult compact;
  compact.failures = failures.load();
  for (size_t i = 0; i < config.trials; ++i) {
    if (!trial_ok[i]) continue;
    compact.utility_ratios.push_back(result.utility_ratios[i]);
    compact.runtimes.push_back(result.runtimes[i]);
  }
  return compact;
}

}  // namespace pcor
