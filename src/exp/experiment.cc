#include "src/exp/experiment.h"

#include <algorithm>
#include <limits>
#include <span>

#include "src/context/starting_context.h"

namespace pcor {

Result<ExperimentResult> RunPcorExperiment(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ReferenceTable& reference, const TrialConfig& config) {
  if (outlier_rows.empty()) {
    return Status::InvalidArgument("experiment needs at least one outlier");
  }
  if (config.trials == 0) {
    return Status::InvalidArgument("experiment needs at least one trial");
  }

  // Fix, per row: the starting context C_V, the utility function, and the
  // reference maximum utility.
  struct RowSetup {
    uint32_t row = 0;
    std::unique_ptr<UtilityFunction> utility;
    double max_utility = 0.0;
    bool usable = false;
  };
  std::vector<RowSetup> setups;
  setups.reserve(outlier_rows.size());
  Rng setup_rng(config.seed ^ 0x5bf03635ULL);
  for (uint32_t row : outlier_rows) {
    RowSetup setup;
    setup.row = row;
    StartingContextOptions start_options;
    Rng row_rng = setup_rng.Fork();
    auto start =
        FindStartingContext(engine.verifier(), row, start_options, &row_rng);
    if (!start.ok()) {
      setups.push_back(std::move(setup));  // unusable
      continue;
    }
    setup.utility = MakeUtility(config.utility, engine.verifier(), *start);
    setup.max_utility = reference.MaxUtility(row, *setup.utility);
    setup.usable = setup.max_utility >
                   -std::numeric_limits<double>::infinity();
    setups.push_back(std::move(setup));
  }
  // Keep only usable rows.
  std::vector<const RowSetup*> pool;
  for (const auto& s : setups) {
    if (s.usable && s.max_utility > 0) pool.push_back(&s);
  }
  if (pool.empty()) {
    return Status::NoValidContext(
        "no query outlier has a usable reference entry");
  }

  PcorOptions options;
  options.sampler = config.sampler;
  options.num_samples = config.num_samples;
  options.total_epsilon = config.total_epsilon;
  options.utility = config.utility;
  options.max_probes = config.max_probes;

  // Trials rotate round-robin over the usable rows; each trial pins its
  // row's fixed utility. The batch engine fans the trials out over its
  // ThreadPool with per-trial Rng streams derived from (seed, trial) — the
  // same derivation the pre-batch harness used, so results reproduce.
  std::vector<BatchRequest> requests(config.trials);
  std::vector<double> max_utilities(config.trials, 0.0);
  for (size_t trial = 0; trial < config.trials; ++trial) {
    const RowSetup& setup = *pool[trial % pool.size()];
    requests[trial].v_row = setup.row;
    requests[trial].utility = setup.utility.get();
    max_utilities[trial] = setup.max_utility;
  }
  const BatchReleaseReport report = engine.ReleaseBatch(
      std::span<const BatchRequest>(requests), options, config.seed,
      std::max<size_t>(config.threads, 1));

  ExperimentResult compact;
  compact.failures = report.failures;
  compact.kernel_backend = report.kernel_backend;
  compact.f_evaluations = report.total_f_evaluations;
  compact.cache_hits = report.cache_hits;
  compact.cache_evictions = report.cache_evictions;
  for (size_t trial = 0; trial < report.entries.size(); ++trial) {
    const BatchEntry& entry = report.entries[trial];
    if (!entry.status.ok()) continue;
    compact.utility_ratios.push_back(entry.release.utility_score /
                                     max_utilities[trial]);
    compact.runtimes.push_back(entry.release.seconds);
  }
  return compact;
}

}  // namespace pcor
