#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/exp/reference.h"
#include "src/search/pcor.h"

namespace pcor {

/// \brief Configuration of one experiment: repeated PCOR releases over a
/// pool of query outliers, mirroring the paper's 200-trial methodology
/// (Section 6.2).
struct TrialConfig {
  SamplerKind sampler = SamplerKind::kBfs;
  size_t num_samples = 50;
  double total_epsilon = 0.2;
  UtilityKind utility = UtilityKind::kPopulationSize;
  size_t trials = 30;
  uint64_t seed = 7;
  size_t threads = 1;
  size_t max_probes = 20'000'000;
};

/// \brief Per-experiment raw series plus summaries.
struct ExperimentResult {
  std::vector<double> utility_ratios;  ///< utility / reference max, per trial
  std::vector<double> runtimes;        ///< seconds, per trial
  size_t failures = 0;                 ///< trials whose release failed

  // Verifier hot-path accounting for the experiment's batch (exact deltas
  // of the engine's shared cache counters across the trial fan-out).
  size_t f_evaluations = 0;   ///< detector runs
  size_t cache_hits = 0;      ///< verifier cache hits
  size_t cache_evictions = 0; ///< LRU evictions under memory pressure
  std::string kernel_backend; ///< detector kernel path ("scalar"/"sse2"/"avx2")

  RuntimeSummary runtime() const { return SummarizeRuntimes(runtimes); }
  ConfidenceInterval utility_ci(double level = 0.90) const {
    return MeanConfidenceInterval(utility_ratios, level);
  }
  /// \brief Fraction of f_M probes served from the cache.
  double cache_hit_rate() const {
    const size_t probes = cache_hits + f_evaluations;
    return probes == 0 ? 0.0
                       : static_cast<double>(cache_hits) /
                             static_cast<double>(probes);
  }
};

/// \brief Runs `config.trials` PCOR releases. Trials rotate round-robin
/// over `outlier_rows`; each trial uses an independent seeded Rng, and the
/// utility of the released context is normalized by the reference maximum
/// for that row (the paper's utility metric). The starting context and the
/// utility function are fixed per row (as in the paper, where C_V is a
/// given), so trial variance reflects only the mechanism's randomness.
Result<ExperimentResult> RunPcorExperiment(
    const PcorEngine& engine, const std::vector<uint32_t>& outlier_rows,
    const ReferenceTable& reference, const TrialConfig& config);

}  // namespace pcor
