#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/context/coe.h"
#include "src/dp/utility.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief The paper's "reference file" (Section 6.2): for each query
/// outlier, the full set of matching contexts. Utility normalization
/// divides a PCOR release's utility by the maximum utility over this set —
/// that maximum is exactly what the direct approach would (expensively)
/// compute.
class ReferenceTable {
 public:
  /// \brief Enumerates COE for every row in `rows` (parallelized across
  /// `threads`; the verifier's memo cache is shared).
  static Result<ReferenceTable> Build(const OutlierVerifier& verifier,
                                      const std::vector<uint32_t>& rows,
                                      const CoeOptions& options = {},
                                      size_t threads = 1);

  /// \brief Matching contexts of `row`, or nullptr if the row was not part
  /// of the build.
  const std::vector<ContextVec>* Coe(uint32_t row) const;

  /// \brief max_{C in COE(row)} utility(C); -infinity when COE is empty.
  double MaxUtility(uint32_t row, const UtilityFunction& utility) const;

  /// \brief Rows with a non-empty COE.
  std::vector<uint32_t> RowsWithMatches() const;

  size_t size() const { return entries_.size(); }

  /// \brief Persists as CSV lines "row,bitstring" (one context per line).
  Status SaveCsv(const std::string& path) const;

  /// \brief Loads a table previously written by SaveCsv; `t` is the context
  /// bit length of the schema it was built against.
  static Result<ReferenceTable> LoadCsv(const std::string& path, size_t t);

 private:
  std::unordered_map<uint32_t, std::vector<ContextVec>> entries_;
};

}  // namespace pcor
