#pragma once

#include <string>
#include <vector>

#include "src/common/stats.h"

namespace pcor {

/// \brief Fixed-width ASCII table renderer used by the benchmark binaries
/// to print the paper's tables next to our measured values.
class TableRenderer {
 public:
  explicit TableRenderer(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

namespace report {

/// \brief "== title ==" banner.
void SectionHeader(const std::string& title);

/// \brief Indented note, e.g. the paper's reported numbers for comparison.
void Note(const std::string& text);

/// \brief "0.90 (0.88, 0.93)" — the paper's utility-with-CI format.
std::string FormatUtilityCi(const ConfidenceInterval& ci);

/// \brief "Tmin/Tmax/Tavg" runtime cells in human units.
std::string FormatRuntime(double seconds);

/// \brief Histogram series rendering for the paper's figure panels.
void PrintHistogram(const std::string& title,
                    const std::vector<double>& samples, double lo, double hi,
                    size_t bins);

}  // namespace report
}  // namespace pcor
