#include "src/exp/trace.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/data/csv.h"

namespace pcor {

namespace {

constexpr char kTraceHeader[] = "at_us,tenant,kind,eps,rows";

bool ParseStrictInt64(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseStrictUint64(const std::string& field, uint64_t* out) {
  if (field.empty() || field[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(field.c_str(), &end, 10);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseStrictDouble(const std::string& field, double* out) {
  if (field.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(field.c_str(), &end);
  if (errno != 0 || end != field.c_str() + field.size()) return false;
  *out = v;
  return true;
}

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument(
      strings::Format("trace line %zu: %s", line_no, what.c_str()));
}

}  // namespace

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kAppend:
      return "append";
    case TraceEventKind::kSeal:
      return "seal";
  }
  return "unknown";
}

std::string FormatTrace(const std::vector<TraceEvent>& events) {
  std::ostringstream out;
  out << "# pcor-trace v1\n" << kTraceHeader << "\n";
  for (const TraceEvent& e : events) {
    out << strings::Format(
        "%lld,%s,%s,%.17g,%llu\n", static_cast<long long>(e.at_us),
        csv::EscapeField(e.tenant, ',').c_str(), TraceEventKindName(e.kind),
        e.epsilon, static_cast<unsigned long long>(e.rows));
  }
  return out.str();
}

Result<std::vector<TraceEvent>> ParseTrace(const std::string& text,
                                           const TraceParseOptions& options) {
  std::vector<TraceEvent> events;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = strings::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (!saw_header) {
      if (trimmed != kTraceHeader) {
        return LineError(line_no,
                         strings::Format("expected header \"%s\", got \"%s\"",
                                         kTraceHeader, trimmed.c_str()));
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> fields = csv::ParseLine(trimmed, ',');
    if (fields.size() != 5) {
      return LineError(
          line_no, strings::Format("expected 5 fields, got %zu",
                                   fields.size()));
    }
    TraceEvent e;
    if (!ParseStrictInt64(fields[0], &e.at_us)) {
      return LineError(line_no, strings::Format("malformed at_us \"%s\"",
                                                fields[0].c_str()));
    }
    if (e.at_us < 0) {
      return LineError(line_no,
                       strings::Format("negative at_us %lld",
                                       static_cast<long long>(e.at_us)));
    }
    e.tenant = fields[1];
    if (e.tenant.empty()) return LineError(line_no, "empty tenant id");
    if (!options.allowed_tenants.empty()) {
      bool known = false;
      for (const std::string& t : options.allowed_tenants) {
        if (t == e.tenant) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::NotFound(
            strings::Format("trace line %zu: unknown tenant \"%s\"", line_no,
                            e.tenant.c_str()));
      }
    }
    const std::string kind = strings::ToLower(fields[2]);
    if (kind == "release") {
      e.kind = TraceEventKind::kRelease;
    } else if (kind == "append") {
      e.kind = TraceEventKind::kAppend;
    } else if (kind == "seal") {
      e.kind = TraceEventKind::kSeal;
    } else {
      return LineError(line_no, strings::Format("unknown event kind \"%s\"",
                                                fields[2].c_str()));
    }
    if (!ParseStrictDouble(fields[3], &e.epsilon) ||
        !std::isfinite(e.epsilon) || e.epsilon < 0.0) {
      return LineError(line_no, strings::Format("malformed eps \"%s\"",
                                                fields[3].c_str()));
    }
    if (!ParseStrictUint64(fields[4], &e.rows)) {
      return LineError(line_no, strings::Format("malformed rows \"%s\"",
                                                fields[4].c_str()));
    }
    events.push_back(std::move(e));
  }
  if (!saw_header) {
    return Status::InvalidArgument(
        strings::Format("trace has no \"%s\" header", kTraceHeader));
  }
  return events;
}

std::vector<TraceEvent> MakeDiurnalTrace(const DiurnalTraceOptions& options) {
  std::vector<TraceEvent> events;
  if (options.tenants.empty() || options.duration_us <= 0) return events;
  Rng rng(options.seed);
  const double two_pi = 2.0 * 3.14159265358979323846;
  double t = 0.0;
  uint64_t index = 0;
  while (true) {
    // Inhomogeneous Poisson by thinning against the peak rate: candidate
    // gaps at the peak rate, each kept with probability rate(t)/peak.
    const double peak_per_us = options.peak_releases_per_sec / 1e6;
    if (peak_per_us <= 0.0) break;
    t += rng.NextExponential(peak_per_us);
    if (t >= static_cast<double>(options.duration_us)) break;
    const double phase =
        two_pi * t / static_cast<double>(options.period_us);
    const double rate_per_sec =
        options.trough_releases_per_sec +
        (options.peak_releases_per_sec - options.trough_releases_per_sec) *
            0.5 * (1.0 - std::cos(phase));
    if (rng.NextDouble() * options.peak_releases_per_sec > rate_per_sec) {
      continue;  // thinned
    }
    TraceEvent e;
    e.at_us = static_cast<int64_t>(t);
    e.tenant = options.tenants[rng.NextBounded(options.tenants.size())];
    e.kind = TraceEventKind::kRelease;
    e.rows = index++;
    events.push_back(std::move(e));
  }
  return events;
}

std::vector<TraceEvent> MakeFloodTrace(const FloodTraceOptions& options) {
  std::vector<TraceEvent> events;
  uint64_t index = 0;
  for (size_t i = 0; i < options.baseline_tenants.size(); ++i) {
    // Small per-tenant phase offset so baseline tenants interleave
    // instead of firing in lockstep.
    const int64_t phase = static_cast<int64_t>(i) *
                          options.baseline_interval_us /
                          static_cast<int64_t>(
                              options.baseline_tenants.size());
    for (int64_t at = phase; at < options.duration_us;
         at += options.baseline_interval_us) {
      TraceEvent e;
      e.at_us = at;
      e.tenant = options.baseline_tenants[i];
      e.kind = TraceEventKind::kRelease;
      e.rows = index++;
      events.push_back(std::move(e));
    }
  }
  for (size_t i = 0; i < options.flood_events; ++i) {
    TraceEvent e;
    e.at_us = options.flood_at_us +
              static_cast<int64_t>(i) * options.flood_spacing_us;
    e.tenant = options.flood_tenant;
    e.kind = TraceEventKind::kRelease;
    e.rows = index++;
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at_us < b.at_us;
                   });
  return events;
}

std::vector<TraceEvent> MakeBudgetStormTrace(
    const BudgetStormTraceOptions& options) {
  std::vector<TraceEvent> events;
  const size_t total = options.tenant_count * options.events_per_tenant;
  events.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    TraceEvent e;
    e.at_us = static_cast<int64_t>(i) * options.interval_us;
    e.tenant = strings::Format("storm-%zu", i % options.tenant_count);
    e.kind = TraceEventKind::kRelease;
    e.epsilon = options.epsilon_per_release;
    e.rows = i;
    events.push_back(std::move(e));
  }
  return events;
}

std::vector<TraceEvent> MakeStreamingTrace(
    const StreamingTraceOptions& options) {
  std::vector<TraceEvent> events;
  if (options.tenants.empty()) return events;
  // Each epoch interval splits into evenly spaced slots: the append burst,
  // one seal, then the release volley against the freshly sealed epoch.
  const int64_t slots = static_cast<int64_t>(options.appends_per_epoch +
                                             1 + options.releases_per_epoch);
  const int64_t spacing = std::max<int64_t>(1, options.epoch_interval_us /
                                                   std::max<int64_t>(slots,
                                                                     1));
  uint64_t release_index = 0;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    const int64_t base =
        static_cast<int64_t>(epoch) * options.epoch_interval_us;
    int64_t slot = 0;
    for (size_t a = 0; a < options.appends_per_epoch; ++a, ++slot) {
      TraceEvent e;
      e.at_us = base + slot * spacing;
      e.tenant = options.tenants[a % options.tenants.size()];
      e.kind = TraceEventKind::kAppend;
      e.rows = options.rows_per_append;
      events.push_back(std::move(e));
    }
    {
      TraceEvent e;
      e.at_us = base + slot * spacing;
      ++slot;
      e.tenant = options.tenants[0];
      e.kind = TraceEventKind::kSeal;
      events.push_back(std::move(e));
    }
    for (size_t r = 0; r < options.releases_per_epoch; ++r, ++slot) {
      TraceEvent e;
      e.at_us = base + slot * spacing;
      e.tenant = options.tenants[release_index % options.tenants.size()];
      e.kind = TraceEventKind::kRelease;
      // Pool index: cycles, so replays need only supply a pool whose row
      // ids are all sealed by the FIRST epoch (see trace.h).
      e.rows = release_index++;
      events.push_back(std::move(e));
    }
  }
  return events;
}

}  // namespace pcor
