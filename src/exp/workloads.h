#pragma once

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/data/generator.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief A named dataset workload for the experiment harness: the
/// generated data plus its planted-outlier rows.
struct Workload {
  std::string name;
  GeneratedData data;
};

/// \brief The paper's four dataset configurations (Section 6.1/6.7),
/// reproduced synthetically — see DESIGN.md §4 for the substitution
/// argument. `scale` in (0, 1] shrinks the row count proportionally so the
/// default benchmark run finishes quickly; scale = 1 is the paper's size.
Result<Workload> MakeReducedSalaryWorkload(double scale = 1.0);
Result<Workload> MakeFullSalaryWorkload(double scale = 1.0);
Result<Workload> MakeReducedHomicideWorkload(double scale = 1.0);
Result<Workload> MakeFullHomicideWorkload(double scale = 1.0);

/// \brief Filters `candidates` down to rows that are verified contextual
/// outliers under `verifier` (a matching starting context exists), keeping
/// at most `max_outliers`, chosen deterministically from `rng`.
std::vector<uint32_t> SelectQueryOutliers(
    const OutlierVerifier& verifier,
    const std::vector<uint32_t>& candidates, size_t max_outliers, Rng* rng);

}  // namespace pcor
