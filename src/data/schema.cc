#include "src/data/schema.h"

#include <unordered_set>

namespace pcor {

Status Schema::AddAttribute(std::string name,
                            std::vector<std::string> domain) {
  if (domain.empty()) {
    return Status::InvalidArgument("attribute '" + name +
                                   "' must have a non-empty domain");
  }
  for (const auto& attr : attributes_) {
    if (attr.name == name) {
      return Status::AlreadyExists("attribute '" + name + "' already defined");
    }
  }
  std::unordered_set<std::string> seen;
  for (const auto& v : domain) {
    if (!seen.insert(v).second) {
      return Status::InvalidArgument("attribute '" + name +
                                     "' has duplicate domain value '" + v +
                                     "'");
    }
  }
  offsets_.push_back(total_values());
  attributes_.push_back(Attribute{std::move(name), std::move(domain)});
  return Status::OK();
}

Result<size_t> Schema::AttributeIndex(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

size_t Schema::total_values() const {
  size_t total = 0;
  for (const auto& attr : attributes_) total += attr.domain_size();
  return total;
}

size_t Schema::value_offset(size_t attribute_index) const {
  return offsets_[attribute_index];
}

Status Schema::BitToAttributeValue(size_t bit, size_t* attribute_index,
                                   size_t* value_index) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const size_t off = offsets_[i];
    if (bit >= off && bit < off + attributes_[i].domain_size()) {
      *attribute_index = i;
      *value_index = bit - off;
      return Status::OK();
    }
  }
  return Status::OutOfRange("bit " + std::to_string(bit) +
                            " outside context vector of length " +
                            std::to_string(total_values()));
}

Result<uint32_t> Schema::ValueCode(size_t attribute_index,
                                   const std::string& value) const {
  if (attribute_index >= attributes_.size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  const auto& domain = attributes_[attribute_index].domain;
  for (size_t j = 0; j < domain.size(); ++j) {
    if (domain[j] == value) return static_cast<uint32_t>(j);
  }
  return Status::NotFound("value '" + value + "' not in domain of '" +
                          attributes_[attribute_index].name + "'");
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].domain != other.attributes_[i].domain) {
      return false;
    }
  }
  return metric_name_ == other.metric_name_;
}

}  // namespace pcor
