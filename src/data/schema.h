#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace pcor {

/// \brief One categorical context attribute: a name plus its full domain.
///
/// Per the paper (Section 3/4), the domain must list *all* possible values of
/// the attribute — including values that never occur in the dataset
/// instance — because contexts enumerate over the domain, not the data.
/// Releasing domain values that may be absent from the data is exactly what
/// blunts the "who is in the context" inference.
struct Attribute {
  std::string name;
  std::vector<std::string> domain;

  size_t domain_size() const { return domain.size(); }
};

/// \brief Relational schema: m categorical context attributes plus one
/// numeric metric attribute M (the attribute outliers are defined over).
class Schema {
 public:
  Schema() = default;

  /// \brief Appends a context attribute. Fails on duplicate attribute names,
  /// duplicate domain values, or an empty domain.
  Status AddAttribute(std::string name, std::vector<std::string> domain);

  /// \brief Names the metric attribute (default "metric").
  void SetMetricName(std::string name) { metric_name_ = std::move(name); }

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }
  const std::string& metric_name() const { return metric_name_; }

  /// \brief Index of the attribute with the given name.
  Result<size_t> AttributeIndex(const std::string& name) const;

  /// \brief Total number of attribute values t = sum_i |A_i| — the context
  /// bit-vector length.
  size_t total_values() const;

  /// \brief First bit position of attribute i inside a context vector.
  size_t value_offset(size_t attribute_index) const;

  /// \brief Maps a global bit position to (attribute, value) indices.
  Status BitToAttributeValue(size_t bit, size_t* attribute_index,
                             size_t* value_index) const;

  /// \brief Code (value index) of `value` inside attribute i.
  Result<uint32_t> ValueCode(size_t attribute_index,
                             const std::string& value) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attributes_;
  std::vector<size_t> offsets_;  // prefix sums of domain sizes
  std::string metric_name_ = "metric";
};

}  // namespace pcor
