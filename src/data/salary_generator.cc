#include "src/data/salary_generator.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pcor {

namespace {

// Realistic label pools; specs asking for more values than the pool holds
// get synthetic "<Kind>N" labels appended.
const char* kJobTitles[] = {"Professor",      "Police Officer", "Nurse",
                            "Teacher",        "Engineer",       "Physician",
                            "Manager",        "Firefighter",    "Analyst",
                            "Director",       "Technician",     "Planner"};
const char* kEmployers[] = {"City of Toronto",   "Univ of Waterloo",
                            "Ontario Power",     "Hydro One",
                            "Toronto Transit",   "Hamilton Health",
                            "Provincial Police", "Metrolinx",
                            "City of Ottawa",    "Univ of Toronto"};

std::vector<std::string> TakeLabels(const char* const* pool, size_t pool_size,
                                    size_t n, const char* kind) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < pool_size) {
      out.emplace_back(pool[i]);
    } else {
      out.push_back(strings::Format("%s%zu", kind, i));
    }
  }
  return out;
}

}  // namespace

Schema SalarySchema(const SalaryDatasetSpec& spec) {
  Schema schema;
  schema
      .AddAttribute("Jobtitle",
                    TakeLabels(kJobTitles, std::size(kJobTitles),
                               spec.num_jobs, "Job"))
      .CheckOK();
  schema
      .AddAttribute("Employer",
                    TakeLabels(kEmployers, std::size(kEmployers),
                               spec.num_employers, "Employer"))
      .CheckOK();
  std::vector<std::string> years;
  for (size_t i = 0; i < spec.num_years; ++i) {
    years.push_back(strings::Format("%zu", 2012 + i));
  }
  schema.AddAttribute("Year", std::move(years)).CheckOK();
  schema.SetMetricName("Salary");
  return schema;
}

Result<GeneratedData> GenerateSalaryDataset(const SalaryDatasetSpec& spec) {
  MixtureGeneratorConfig config;
  config.schema = SalarySchema(spec);
  config.num_rows = spec.num_rows;
  config.seed = spec.seed;
  config.metric_model = MetricModel::kLogNormal;
  config.base_mean = 11.75;        // exp(11.75) ~ $127k
  // Moderate group separation and mild popularity skew: matching contexts
  // then span a wide utility range whose maximum is a *specific* large
  // value-combination — rarely hit by undirected sampling but reachable by
  // utility-directed search, which is the landscape the paper's Table 3
  // numbers (uniform 0.65 vs BFS 0.90) imply.
  config.value_effect_scale = 0.30;
  config.noise_sigma = 0.16;
  config.zipf_s = 0.30;
  config.metric_lo = 100000.0;     // the paper filters to >= $100k
  config.metric_hi = 5e6;
  config.num_planted = spec.num_planted;
  config.planted_z = 4.5;
  return GenerateMixtureData(config);
}

SalaryDatasetSpec ReducedSalarySpec() {
  SalaryDatasetSpec spec;
  spec.num_rows = 11000;
  spec.num_jobs = 5;
  spec.num_employers = 5;
  spec.num_years = 4;  // 5 + 5 + 4 = 14 attribute values, as in Section 6.7
  spec.num_planted = 120;
  spec.seed = 2021;
  return spec;
}

SalaryDatasetSpec FullSalarySpec() { return SalaryDatasetSpec{}; }

}  // namespace pcor
