#include "src/data/neighbor.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/logging.h"

namespace pcor {

Result<NeighborDataset> MakeNeighbor(const Dataset& dataset,
                                     const NeighborOptions& options,
                                     Rng* rng) {
  const size_t n = dataset.num_rows();
  if (options.delta == 0) {
    return Status::InvalidArgument("neighbor delta must be >= 1");
  }
  std::unordered_set<uint32_t> protected_set(options.protected_rows.begin(),
                                             options.protected_rows.end());
  if (n <= protected_set.size() ||
      options.delta > n - protected_set.size()) {
    return Status::InvalidArgument(
        "not enough unprotected rows for the requested delta");
  }

  // Choose delta distinct unprotected victim rows.
  std::vector<uint32_t> victims;
  victims.reserve(options.delta);
  std::unordered_set<uint32_t> chosen;
  while (victims.size() < options.delta) {
    uint32_t row = static_cast<uint32_t>(rng->NextBounded(n));
    if (protected_set.count(row) || chosen.count(row)) continue;
    chosen.insert(row);
    victims.push_back(row);
  }
  std::sort(victims.begin(), victims.end());

  NeighborDataset out{Dataset(dataset.schema()), {}, victims};
  out.row_mapping.assign(n, UINT32_MAX);

  if (options.mode == NeighborMode::kRemove) {
    PCOR_ASSIGN_OR_RETURN(out.dataset, dataset.RemoveRows(victims));
    uint32_t next_id = 0;
    size_t v = 0;
    for (uint32_t row = 0; row < n; ++row) {
      if (v < victims.size() && victims[v] == row) {
        ++v;
        continue;
      }
      out.row_mapping[row] = next_id++;
    }
    return out;
  }

  // kReplace: keep all rows, resample the metric of the victims from the
  // empirical metric distribution of the other rows (a record swap).
  std::vector<double> pool;
  pool.reserve(n - victims.size());
  {
    size_t v = 0;
    for (uint32_t row = 0; row < n; ++row) {
      if (v < victims.size() && victims[v] == row) {
        ++v;
        continue;
      }
      pool.push_back(dataset.metric(row));
    }
  }
  PCOR_CHECK(!pool.empty()) << "replacement pool empty";
  size_t v = 0;
  for (uint32_t row = 0; row < n; ++row) {
    Row r = dataset.GetRow(row);
    if (v < victims.size() && victims[v] == row) {
      r.metric = pool[rng->NextBounded(pool.size())];
      ++v;
    }
    PCOR_RETURN_NOT_OK(out.dataset.AppendRow(r));
    out.row_mapping[row] = row;
  }
  return out;
}

}  // namespace pcor
