#pragma once

#include <string>

#include "src/common/result.h"
#include "src/data/dataset.h"

namespace pcor {

/// \brief CSV persistence for datasets.
///
/// Format: a header row with the context attribute names followed by the
/// metric name; then one row per record. Values containing the separator,
/// quotes or newlines are double-quoted per RFC 4180.
namespace csv {

/// \brief Writes `dataset` to `path`. Overwrites existing files.
Status WriteDataset(const Dataset& dataset, const std::string& path,
                    char sep = ',');

/// \brief Reads a dataset whose columns must match `schema` (same attribute
/// order; final column is the metric). Values outside an attribute's domain
/// fail with NotFound — the schema's domains are authoritative (the paper
/// requires enumerating the *full* domain, so it cannot be inferred from the
/// file).
Result<Dataset> ReadDataset(const Schema& schema, const std::string& path,
                            char sep = ',');

/// \brief Parses one CSV line honoring RFC-4180 quoting.
std::vector<std::string> ParseLine(const std::string& line, char sep);

/// \brief Quotes a field if it contains sep, quote or newline.
std::string EscapeField(const std::string& field, char sep);

}  // namespace csv
}  // namespace pcor
