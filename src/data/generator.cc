#include "src/data/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace pcor {

namespace internal {

std::vector<double> ZipfWeights(size_t n, double s, Rng* rng) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  rng->Shuffle(&w);
  return w;
}

}  // namespace internal

Result<GeneratedData> GenerateMixtureData(
    const MixtureGeneratorConfig& config) {
  const Schema& schema = config.schema;
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("generator requires >= 1 attribute");
  }
  if (config.num_rows == 0) {
    return Status::InvalidArgument("generator requires num_rows > 0");
  }
  if (config.num_planted > config.num_rows) {
    return Status::InvalidArgument("cannot plant more outliers than rows");
  }

  Rng rng(config.seed);

  // Fixed per-(attribute, value) structures: popularity weights and metric
  // effects. Drawn once so the same seed always yields the same population.
  std::vector<std::vector<double>> value_weights(schema.num_attributes());
  std::vector<std::vector<double>> value_effects(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const size_t k = schema.attribute(a).domain_size();
    value_weights[a] = internal::ZipfWeights(k, config.zipf_s, &rng);
    value_effects[a].resize(k);
    for (size_t v = 0; v < k; ++v) {
      value_effects[a][v] = rng.NextGaussian() * config.value_effect_scale;
    }
  }

  auto group_mean = [&](const std::vector<uint32_t>& codes) {
    double mu = config.base_mean;
    for (size_t a = 0; a < codes.size(); ++a) {
      mu += value_effects[a][codes[a]];
    }
    return mu;
  };

  auto to_metric = [&](double latent) {
    double out = (config.metric_model == MetricModel::kLogNormal)
                     ? std::exp(latent)
                     : latent;
    if (out < config.metric_lo) out = config.metric_lo;
    if (out > config.metric_hi) out = config.metric_hi;
    return out;
  };

  // Draw all rows first, then overwrite the metric of the planted set.
  std::vector<std::vector<uint32_t>> all_codes;
  std::vector<double> metrics(config.num_rows);
  all_codes.reserve(config.num_rows);
  for (size_t row = 0; row < config.num_rows; ++row) {
    std::vector<uint32_t> codes(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      codes[a] = static_cast<uint32_t>(rng.NextDiscrete(value_weights[a]));
    }
    metrics[row] = to_metric(group_mean(codes) +
                             config.noise_sigma * rng.NextGaussian());
    all_codes.push_back(std::move(codes));
  }

  // Plant contextual outliers: the metric is `planted_z` group standard
  // deviations above the row's own group mean. Groups differ in mean by the
  // value effects, so this is usually well inside the global metric range —
  // a hidden outlier, per the paper's motivation.
  std::vector<size_t> picks =
      rng.SampleWithoutReplacement(config.num_rows, config.num_planted);
  GeneratedData out{Dataset(schema), {}};
  for (size_t row : picks) {
    metrics[row] = to_metric(group_mean(all_codes[row]) +
                             config.planted_z * config.noise_sigma);
    out.planted_outlier_rows.push_back(static_cast<uint32_t>(row));
  }

  for (size_t row = 0; row < config.num_rows; ++row) {
    PCOR_RETURN_NOT_OK(out.dataset.AppendRow(all_codes[row], metrics[row]));
  }
  std::sort(out.planted_outlier_rows.begin(), out.planted_outlier_rows.end());
  return out;
}

}  // namespace pcor
