#pragma once

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/data/dataset.h"

namespace pcor {

/// \brief A generated dataset plus the rows planted as contextual outliers.
///
/// Planted rows have a metric value that is extreme relative to their own
/// attribute group but unremarkable in the global distribution — the
/// "hidden outlier" shape the paper's introduction motivates. They are the
/// natural query records for PCOR experiments.
struct GeneratedData {
  Dataset dataset;
  std::vector<uint32_t> planted_outlier_rows;
};

/// \brief Metric models supported by the mixture generator.
enum class MetricModel {
  kLogNormal,        ///< exp(mu + effects + sigma*N); salary-like
  kTruncatedNormal,  ///< clamp(mu + effects + sigma*N, lo, hi); age-like
};

/// \brief Configuration of the categorical mixture generator.
///
/// Every categorical cell is drawn from a Zipf-skewed distribution over the
/// attribute's domain; the metric is a group-dependent mixture where each
/// (attribute, value) pair contributes an additive effect. This reproduces
/// the statistical shape the paper's experiments depend on: populations of
/// widely varying size across contexts, and group-conditional metric
/// distributions in which contextual outliers can hide.
struct MixtureGeneratorConfig {
  Schema schema;
  size_t num_rows = 1000;
  uint64_t seed = 42;

  MetricModel metric_model = MetricModel::kLogNormal;
  double base_mean = 11.7;        ///< log-space for kLogNormal (~120k)
  double value_effect_scale = 0.25;  ///< stddev of per-value additive effects
  double noise_sigma = 0.18;      ///< within-group metric noise
  double zipf_s = 0.7;            ///< popularity skew of domain values
  double metric_lo = 100000.0;    ///< lower clamp (output space)
  double metric_hi = 1e9;         ///< upper clamp (output space)

  size_t num_planted = 20;   ///< contextual outliers to plant
  double planted_z = 4.5;    ///< group z-score of planted metric values
};

/// \brief Generates a dataset per `config`. Deterministic in config.seed.
Result<GeneratedData> GenerateMixtureData(const MixtureGeneratorConfig& config);

namespace internal {

/// \brief Zipf-like sampling weights for `n` values with exponent s,
/// shuffled by `rng` so value index does not correlate with popularity.
std::vector<double> ZipfWeights(size_t n, double s, Rng* rng);

}  // namespace internal
}  // namespace pcor
