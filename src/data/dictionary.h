#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/data/schema.h"

namespace pcor {

/// \brief O(1) string-to-code lookup for one attribute's domain.
///
/// Schema::ValueCode is a linear scan (fine for ad-hoc use); the dictionary
/// is built once per attribute for bulk ingest paths such as the CSV reader
/// and the synthetic generators.
class ValueDictionary {
 public:
  explicit ValueDictionary(const Attribute& attribute);

  /// \brief Code of `value`, or NotFound when outside the domain.
  Result<uint32_t> Encode(const std::string& value) const;

  /// \brief Value string for `code`, or OutOfRange.
  Result<std::string> Decode(uint32_t code) const;

  size_t size() const { return values_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> values_;
};

/// \brief Dictionaries for every attribute of a schema, built in one pass.
class SchemaDictionaries {
 public:
  explicit SchemaDictionaries(const Schema& schema);

  const ValueDictionary& attribute(size_t i) const { return dicts_[i]; }
  size_t num_attributes() const { return dicts_.size(); }

 private:
  std::vector<ValueDictionary> dicts_;
};

}  // namespace pcor
