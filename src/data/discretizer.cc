#include "src/data/discretizer.h"

#include <algorithm>
#include <cmath>

#include "src/common/string_util.h"

namespace pcor {

namespace {

std::vector<std::string> MakeLabels(const std::vector<double>& edges) {
  std::vector<std::string> labels;
  labels.reserve(edges.size() - 1);
  for (size_t i = 0; i + 1 < edges.size(); ++i) {
    labels.push_back(strings::Format("[%.6g, %.6g)", edges[i], edges[i + 1]));
  }
  return labels;
}

}  // namespace

Result<Discretizer> Discretizer::EqualWidth(double lo, double hi,
                                            size_t buckets) {
  if (buckets == 0) {
    return Status::InvalidArgument("discretizer needs at least one bucket");
  }
  if (!(hi > lo)) {
    return Status::InvalidArgument("discretizer range must be non-empty");
  }
  std::vector<double> edges(buckets + 1);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (size_t i = 0; i <= buckets; ++i) {
    edges[i] = lo + width * static_cast<double>(i);
  }
  edges.back() = hi;  // avoid rounding drift on the last edge
  auto labels = MakeLabels(edges);
  return Discretizer(std::move(edges), std::move(labels));
}

Result<Discretizer> Discretizer::Quantile(const std::vector<double>& values,
                                          size_t buckets) {
  if (buckets == 0) {
    return Status::InvalidArgument("discretizer needs at least one bucket");
  }
  if (values.size() < 2) {
    return Status::InvalidArgument("quantile discretizer needs >= 2 values");
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> edges;
  edges.push_back(sorted.front());
  for (size_t i = 1; i < buckets; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(buckets);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    double cut = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    if (cut > edges.back()) edges.push_back(cut);
  }
  if (sorted.back() > edges.back()) {
    edges.push_back(sorted.back());
  } else {
    edges.back() = std::nextafter(edges.back(), 1e308);
  }
  if (edges.size() < 2) {
    return Status::InvalidArgument(
        "all values identical; cannot build quantile buckets");
  }
  auto labels = MakeLabels(edges);
  return Discretizer(std::move(edges), std::move(labels));
}

uint32_t Discretizer::Bucket(double x) const {
  // upper_bound over inner edges; clamp to [0, buckets-1].
  auto it = std::upper_bound(edges_.begin() + 1, edges_.end() - 1, x);
  size_t idx = static_cast<size_t>(it - (edges_.begin() + 1));
  if (idx >= labels_.size()) idx = labels_.size() - 1;
  return static_cast<uint32_t>(idx);
}

}  // namespace pcor
