#pragma once

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/data/dataset.h"

namespace pcor {

/// \brief How a neighboring dataset differs from the original.
enum class NeighborMode {
  kRemove,   ///< delete k random records (the paper's add/remove semantics)
  kReplace,  ///< resample the metric of k random records
};

/// \brief Options for neighboring-dataset generation (Section 6.7 uses
/// neighbors at record distance 1, 5, 10 and 25).
struct NeighborOptions {
  NeighborMode mode = NeighborMode::kRemove;
  size_t delta = 1;  ///< number of records changed
  /// Rows that must survive in the neighbor (e.g. the queried outlier V —
  /// OCDP compares COE(D1, V) and COE(D2, V), which requires V in both).
  std::vector<uint32_t> protected_rows;
};

/// \brief A neighboring dataset plus the mapping old-row-id -> new-row-id
/// (UINT32_MAX for rows removed by the perturbation).
struct NeighborDataset {
  Dataset dataset;
  std::vector<uint32_t> row_mapping;
  std::vector<uint32_t> changed_rows;  ///< original ids that were touched
};

/// \brief Generates a neighbor of `dataset` at record distance
/// `options.delta`. Deterministic given the Rng state.
Result<NeighborDataset> MakeNeighbor(const Dataset& dataset,
                                     const NeighborOptions& options,
                                     Rng* rng);

}  // namespace pcor
