#include "src/data/csv.h"

#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace pcor {
namespace csv {

std::string EscapeField(const std::string& field, char sep) {
  bool needs_quote = field.find(sep) != std::string::npos ||
                     field.find('"') != std::string::npos ||
                     field.find('\n') != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> ParseLine(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

Status WriteDataset(const Dataset& dataset, const std::string& path,
                    char sep) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const Schema& schema = dataset.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i) out << sep;
    out << EscapeField(schema.attribute(i).name, sep);
  }
  out << sep << EscapeField(schema.metric_name(), sep) << "\n";
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      if (a) out << sep;
      out << EscapeField(schema.attribute(a).domain[dataset.code(row, a)],
                         sep);
    }
    out << sep << strings::Format("%.17g", dataset.metric(row)) << "\n";
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Dataset> ReadDataset(const Schema& schema, const std::string& path,
                            char sep) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (no header)");
  }
  auto header = ParseLine(line, sep);
  const size_t expected = schema.num_attributes() + 1;
  if (header.size() != expected) {
    return Status::InvalidArgument(strings::Format(
        "header has %zu columns, schema expects %zu", header.size(),
        expected));
  }
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (strings::Trim(header[i]) != schema.attribute(i).name) {
      return Status::InvalidArgument(
          "header column '" + header[i] + "' does not match attribute '" +
          schema.attribute(i).name + "'");
    }
  }
  Dataset dataset(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = ParseLine(line, sep);
    if (fields.size() != expected) {
      return Status::InvalidArgument(
          strings::Format("line %zu has %zu fields, expected %zu", line_no,
                          fields.size(), expected));
    }
    std::vector<uint32_t> codes(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      auto code = schema.ValueCode(a, strings::Trim(fields[a]));
      if (!code.ok()) {
        return Status::NotFound(strings::Format(
            "line %zu: %s", line_no, code.status().message().c_str()));
      }
      codes[a] = *code;
    }
    char* end = nullptr;
    const std::string metric_field = strings::Trim(fields.back());
    double metric = std::strtod(metric_field.c_str(), &end);
    if (end == metric_field.c_str() || *end != '\0') {
      return Status::InvalidArgument(
          strings::Format("line %zu: metric '%s' is not numeric", line_no,
                          metric_field.c_str()));
    }
    PCOR_RETURN_NOT_OK(dataset.AppendRow(codes, metric));
  }
  return dataset;
}

}  // namespace csv
}  // namespace pcor
