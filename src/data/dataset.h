#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/data/schema.h"

namespace pcor {

/// \brief One record: categorical codes (one per context attribute) plus the
/// numeric metric value.
struct Row {
  std::vector<uint32_t> codes;
  double metric = 0.0;
};

/// \brief In-memory column store over a Schema.
///
/// Categorical attributes are stored as dictionary codes (uint32 per cell);
/// the metric attribute as doubles. Rows are addressed by dense row id in
/// [0, num_rows); removing rows produces a *new* Dataset (datasets are
/// value-like, matching the add/remove-a-record neighboring semantics of
/// differential privacy).
class Dataset {
 public:
  /// \brief Empty dataset over an empty schema (useful as a placeholder
  /// before assignment; appending rows requires a real schema).
  Dataset() : Dataset(Schema()) {}
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return metric_.size(); }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// \brief Appends a record; validates code ranges.
  Status AppendRow(const std::vector<uint32_t>& codes, double metric);
  Status AppendRow(const Row& row) { return AppendRow(row.codes, row.metric); }

  /// \brief Appends a record given value strings (slow path, for tests).
  Status AppendRowByName(const std::vector<std::string>& values,
                         double metric);

  /// \brief Code of context attribute `attr` at row `row`.
  uint32_t code(size_t row, size_t attr) const {
    return columns_[attr][row];
  }

  double metric(size_t row) const { return metric_[row]; }
  const std::vector<double>& metric_column() const { return metric_; }
  const std::vector<uint32_t>& attribute_column(size_t attr) const {
    return columns_[attr];
  }

  /// \brief Materializes row `row`.
  Row GetRow(size_t row) const;

  /// \brief New dataset containing only rows whose ids appear in `keep`
  /// (ascending, de-duplicated by the caller).
  Result<Dataset> SelectRows(const std::vector<uint32_t>& keep) const;

  /// \brief New dataset with the given row ids removed.
  Result<Dataset> RemoveRows(std::vector<uint32_t> remove) const;

  /// \brief Human-readable record rendering, e.g. for release reports.
  std::string DescribeRow(size_t row) const;

 private:
  Schema schema_;
  std::vector<std::vector<uint32_t>> columns_;  // one per context attribute
  std::vector<double> metric_;
};

}  // namespace pcor
