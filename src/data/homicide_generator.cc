#include "src/data/homicide_generator.h"

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pcor {

namespace {

const char* kAgencies[] = {"Municipal Police", "County Police",
                           "State Police", "Sheriff", "Special Police",
                           "Tribal Police"};
const char* kStates[] = {"California", "Texas",    "New York", "Florida",
                         "Michigan",   "Ohio",     "Illinois", "Georgia"};
const char* kWeapons[] = {"Handgun",       "Knife",  "Blunt Object",
                          "Shotgun",       "Rifle",  "Strangulation",
                          "Fire",          "Poison"};

std::vector<std::string> TakeLabels(const char* const* pool, size_t pool_size,
                                    size_t n, const char* kind) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i < pool_size) {
      out.emplace_back(pool[i]);
    } else {
      out.push_back(strings::Format("%s%zu", kind, i));
    }
  }
  return out;
}

}  // namespace

Schema HomicideSchema(const HomicideDatasetSpec& spec) {
  Schema schema;
  schema
      .AddAttribute("AgencyType", TakeLabels(kAgencies, std::size(kAgencies),
                                             spec.num_agencies, "Agency"))
      .CheckOK();
  schema
      .AddAttribute("State", TakeLabels(kStates, std::size(kStates),
                                        spec.num_states, "State"))
      .CheckOK();
  schema
      .AddAttribute("Weapon", TakeLabels(kWeapons, std::size(kWeapons),
                                         spec.num_weapons, "Weapon"))
      .CheckOK();
  schema.SetMetricName("VictimAge");
  return schema;
}

Result<GeneratedData> GenerateHomicideDataset(
    const HomicideDatasetSpec& spec) {
  MixtureGeneratorConfig config;
  config.schema = HomicideSchema(spec);
  config.num_rows = spec.num_rows;
  config.seed = spec.seed;
  config.metric_model = MetricModel::kTruncatedNormal;
  config.base_mean = 31.0;       // victim age mixture center
  config.value_effect_scale = 4.5;
  config.noise_sigma = 9.0;
  config.zipf_s = 0.8;
  config.metric_lo = 0.0;
  config.metric_hi = 99.0;
  config.num_planted = spec.num_planted;
  config.planted_z = 4.0;
  return GenerateMixtureData(config);
}

HomicideDatasetSpec ReducedHomicideSpec() {
  HomicideDatasetSpec spec;
  spec.num_rows = 28000;
  spec.num_agencies = 4;
  spec.num_states = 4;
  spec.num_weapons = 4;  // 4 + 4 + 4 = 12 attribute values (Section 6.7)
  spec.num_planted = 200;
  spec.seed = 1976;
  return spec;
}

HomicideDatasetSpec FullHomicideSpec() { return HomicideDatasetSpec{}; }

}  // namespace pcor
