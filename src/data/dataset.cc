#include "src/data/dataset.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace pcor {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attributes());
}

Status Dataset::AppendRow(const std::vector<uint32_t>& codes, double metric) {
  if (codes.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        strings::Format("row has %zu codes, schema has %zu attributes",
                        codes.size(), schema_.num_attributes()));
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= schema_.attribute(i).domain_size()) {
      return Status::OutOfRange(strings::Format(
          "code %u out of range for attribute '%s' (domain size %zu)",
          codes[i], schema_.attribute(i).name.c_str(),
          schema_.attribute(i).domain_size()));
    }
  }
  for (size_t i = 0; i < codes.size(); ++i) columns_[i].push_back(codes[i]);
  metric_.push_back(metric);
  return Status::OK();
}

Status Dataset::AppendRowByName(const std::vector<std::string>& values,
                                double metric) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("value count does not match schema");
  }
  std::vector<uint32_t> codes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    PCOR_ASSIGN_OR_RETURN(codes[i], schema_.ValueCode(i, values[i]));
  }
  return AppendRow(codes, metric);
}

Row Dataset::GetRow(size_t row) const {
  Row out;
  out.codes.resize(num_attributes());
  for (size_t i = 0; i < num_attributes(); ++i) out.codes[i] = code(row, i);
  out.metric = metric(row);
  return out;
}

Result<Dataset> Dataset::SelectRows(const std::vector<uint32_t>& keep) const {
  Dataset out(schema_);
  for (size_t a = 0; a < columns_.size(); ++a) {
    out.columns_[a].reserve(keep.size());
  }
  out.metric_.reserve(keep.size());
  for (uint32_t row : keep) {
    if (row >= num_rows()) {
      return Status::OutOfRange("SelectRows: row id out of range");
    }
    for (size_t a = 0; a < columns_.size(); ++a) {
      out.columns_[a].push_back(columns_[a][row]);
    }
    out.metric_.push_back(metric_[row]);
  }
  return out;
}

Result<Dataset> Dataset::RemoveRows(std::vector<uint32_t> remove) const {
  std::sort(remove.begin(), remove.end());
  remove.erase(std::unique(remove.begin(), remove.end()), remove.end());
  if (!remove.empty() && remove.back() >= num_rows()) {
    return Status::OutOfRange("RemoveRows: row id out of range");
  }
  std::vector<uint32_t> keep;
  keep.reserve(num_rows() - remove.size());
  size_t r = 0;
  for (uint32_t row = 0; row < num_rows(); ++row) {
    if (r < remove.size() && remove[r] == row) {
      ++r;
      continue;
    }
    keep.push_back(row);
  }
  return SelectRows(keep);
}

std::string Dataset::DescribeRow(size_t row) const {
  std::string out = "{";
  for (size_t i = 0; i < num_attributes(); ++i) {
    if (i) out += ", ";
    out += schema_.attribute(i).name;
    out += "=";
    out += schema_.attribute(i).domain[code(row, i)];
  }
  out += strings::Format(", %s=%.4g}", schema_.metric_name().c_str(),
                         metric(row));
  return out;
}

}  // namespace pcor
