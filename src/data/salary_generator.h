#pragma once

#include "src/data/generator.h"

namespace pcor {

/// \brief Synthetic stand-in for the Ontario public-sector salary dataset
/// evaluated in the paper (Section 6.1).
///
/// The real dataset (51,000 employees earning >= $100k; Jobtitle with 9
/// values, Employer with 8, Year with 8, Salary as metric) is not
/// redistributable, so we generate a seeded synthetic dataset with the same
/// schema arity, Zipf-skewed value popularity, per-(job, employer, year)
/// log-normal salary mixtures, and planted contextual outliers. The
/// experiments only depend on these shape properties — see DESIGN.md §4.
struct SalaryDatasetSpec {
  size_t num_rows = 51000;
  size_t num_jobs = 9;
  size_t num_employers = 8;
  size_t num_years = 8;
  size_t num_planted = 200;
  uint64_t seed = 2021;
};

/// \brief Schema of the full salary dataset (t = 25 attribute values).
Schema SalarySchema(const SalaryDatasetSpec& spec);

/// \brief Generates the full-size salary stand-in (51k rows, t = 25).
Result<GeneratedData> GenerateSalaryDataset(const SalaryDatasetSpec& spec);

/// \brief The paper's reduced salary workload: 11,000 records, 3 attributes
/// with 14 attribute values in total (Section 6.5/6.7). We use domain sizes
/// 5 + 5 + 4 = 14.
SalaryDatasetSpec ReducedSalarySpec();

/// \brief Full-size spec matching Section 6.1 (51,000 rows, 9/8/8 domains).
SalaryDatasetSpec FullSalarySpec();

}  // namespace pcor
