#pragma once

#include "src/data/generator.h"

namespace pcor {

/// \brief Synthetic stand-in for the Murder Accountability Project homicide
/// dataset evaluated in the paper (Section 6.1).
///
/// The paper filters the public dataset to 110,000 records with attributes
/// AgencyType (4 values), State (6), Weapon (6) and metric VictimAge; the
/// group-privacy experiments use a reduced 28,000-record version with 12
/// attribute values in total (4 + 4 + 4). We reproduce those shapes with a
/// truncated-normal age mixture per attribute group and planted contextual
/// outliers (ages extreme within their group, ordinary overall).
struct HomicideDatasetSpec {
  size_t num_rows = 110000;
  size_t num_agencies = 4;
  size_t num_states = 6;
  size_t num_weapons = 6;
  size_t num_planted = 300;
  uint64_t seed = 1976;
};

/// \brief Schema of the homicide dataset (t = 16 for the full spec).
Schema HomicideSchema(const HomicideDatasetSpec& spec);

/// \brief Generates the homicide stand-in dataset.
Result<GeneratedData> GenerateHomicideDataset(const HomicideDatasetSpec& spec);

/// \brief The paper's reduced homicide workload: 28,000 records, 3
/// attributes, 12 attribute values in total (Section 6.7).
HomicideDatasetSpec ReducedHomicideSpec();

/// \brief Full-size spec matching Section 6.1 (110,000 rows, 4/6/6 domains).
HomicideDatasetSpec FullHomicideSpec();

}  // namespace pcor
