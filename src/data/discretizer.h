#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"

namespace pcor {

/// \brief Bucketizes a numeric column into labeled categorical ranges so it
/// can serve as a context attribute (contexts are defined over discrete
/// domains). The homicide dataset's VictimAge is the paper's example of a
/// numeric attribute used in contexts.
class Discretizer {
 public:
  /// \brief Equal-width buckets spanning [lo, hi].
  static Result<Discretizer> EqualWidth(double lo, double hi, size_t buckets);

  /// \brief Quantile buckets fit to `values` (approximately equal mass).
  /// Duplicate cut points collapse, so the result may have fewer buckets.
  static Result<Discretizer> Quantile(const std::vector<double>& values,
                                      size_t buckets);

  /// \brief Bucket index for x; values below/above the range clamp to the
  /// first/last bucket.
  uint32_t Bucket(double x) const;

  size_t num_buckets() const { return labels_.size(); }

  /// \brief Human-readable labels, e.g. "[18.0, 35.0)", forming the domain
  /// of the derived categorical attribute.
  const std::vector<std::string>& labels() const { return labels_; }

  /// \brief Lower edge of bucket i (and upper edge of bucket i-1).
  double edge(size_t i) const { return edges_[i]; }

 private:
  Discretizer(std::vector<double> edges, std::vector<std::string> labels)
      : edges_(std::move(edges)), labels_(std::move(labels)) {}

  std::vector<double> edges_;  // size = buckets + 1, ascending
  std::vector<std::string> labels_;
};

}  // namespace pcor
