#include "src/data/dictionary.h"

namespace pcor {

ValueDictionary::ValueDictionary(const Attribute& attribute)
    : values_(attribute.domain) {
  index_.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    index_.emplace(values_[i], static_cast<uint32_t>(i));
  }
}

Result<uint32_t> ValueDictionary::Encode(const std::string& value) const {
  auto it = index_.find(value);
  if (it == index_.end()) {
    return Status::NotFound("value '" + value + "' not in dictionary");
  }
  return it->second;
}

Result<std::string> ValueDictionary::Decode(uint32_t code) const {
  if (code >= values_.size()) {
    return Status::OutOfRange("code " + std::to_string(code) +
                              " outside dictionary of size " +
                              std::to_string(values_.size()));
  }
  return values_[code];
}

SchemaDictionaries::SchemaDictionaries(const Schema& schema) {
  dicts_.reserve(schema.num_attributes());
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    dicts_.emplace_back(schema.attribute(i));
  }
}

}  // namespace pcor
