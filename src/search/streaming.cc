#include "src/search/streaming.h"

#include <utility>

#include "src/common/string_util.h"

namespace pcor {

StreamingPcorEngine::StreamingPcorEngine(Schema schema,
                                         const OutlierDetector& detector,
                                         StreamingOptions options)
    : schema_(std::move(schema)),
      detector_(&detector),
      options_(options),
      memo_(std::make_shared<VerifierMemo>(options.verifier)) {
  // Epoch 0: an empty sealed view. The dataset exists (schema attached,
  // zero rows) so Pin() is total; the engine is null — nothing to index.
  auto initial = std::make_shared<EpochSnapshot>();
  initial->epoch = 0;
  initial->dataset = std::make_shared<const Dataset>(schema_);
  snapshot_ = std::move(initial);
}

Status StreamingPcorEngine::Append(const std::vector<uint32_t>& codes,
                                   double metric) {
  // Validate eagerly, at the point the producer can still handle the
  // error — a bad row must never poison a later SealEpoch.
  if (codes.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        strings::Format("row has %zu codes, schema has %zu attributes",
                        codes.size(), schema_.num_attributes()));
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= schema_.attribute(i).domain_size()) {
      return Status::OutOfRange(strings::Format(
          "code %u out of range for attribute '%s' (domain size %zu)",
          codes[i], schema_.attribute(i).name.c_str(),
          schema_.attribute(i).domain_size()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  tail_.push_back(Row{codes, metric});
  ++appends_;
  return Status::OK();
}

Status StreamingPcorEngine::AppendRows(std::span<const Row> rows) {
  for (const Row& row : rows) {
    PCOR_RETURN_NOT_OK(Append(row));
  }
  return Status::OK();
}

uint64_t StreamingPcorEngine::SealEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tail_.empty()) return snapshot_->epoch;

  // Copy-on-seal: the new epoch's dataset is the old sealed prefix plus
  // the tail, built fresh so the previous snapshot stays untouched for
  // whoever still pins it. Rows were validated at Append, so AppendRow
  // cannot fail here.
  auto dataset = std::make_shared<Dataset>(*snapshot_->dataset);
  for (const Row& row : tail_) dataset->AppendRow(row).CheckOK();
  tail_.clear();

  auto next = std::make_shared<EpochSnapshot>();
  next->epoch = dataset->num_rows();
  next->engine = std::make_shared<const PcorEngine>(
      *dataset, *detector_, memo_, next->epoch, options_.verifier,
      options_.index);
  next->dataset = std::move(dataset);
  snapshot_ = std::move(next);
  ++seals_;

  // Retire epochs that fell out of the retain window. Safe under pin —
  // swept epochs recompute on lookup instead of hitting — so this is
  // memory reclamation only; correctness lives in the (epoch, context)
  // cache key.
  sealed_epochs_.push_back(snapshot_->epoch);
  if (options_.retain_epochs > 0) {
    while (sealed_epochs_.size() > options_.retain_epochs) {
      sealed_epochs_.pop_front();
    }
    memo_->InvalidateEpochsBefore(sealed_epochs_.front());
  }
  return snapshot_->epoch;
}

std::shared_ptr<const EpochSnapshot> StreamingPcorEngine::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

ContinualRelease StreamingPcorEngine::ChargeAndAnnotate(
    PcorRelease release) {
  const TreeAccountant::Charge charge =
      accountant_.ChargeNextRelease(release.epsilon_spent);
  release.stream_release_index = charge.release_index;
  release.stream_epsilon_charged = charge.marginal;
  ContinualRelease continual;
  continual.cumulative_epsilon = charge.cumulative;
  continual.naive_cumulative_epsilon = charge.naive_cumulative;
  continual.nodes_summed =
      TreeAccountant::NodesSummedAt(charge.release_index);
  continual.release = std::move(release);
  return continual;
}

Result<ContinualRelease> StreamingPcorEngine::ReleaseAsOfNow(
    uint32_t v_row, const PcorOptions& options, Rng* rng) {
  const std::shared_ptr<const EpochSnapshot> snapshot = Pin();
  if (snapshot->engine == nullptr) {
    return Status::FailedPrecondition(
        "no sealed epoch yet: Append rows and SealEpoch before releasing");
  }
  PCOR_ASSIGN_OR_RETURN(PcorRelease release,
                        snapshot->engine->Release(v_row, options, rng));
  return ChargeAndAnnotate(std::move(release));
}

BatchReleaseReport StreamingPcorEngine::ReleaseBatchAsOfNow(
    std::span<const BatchRequest> requests, const PcorOptions& options,
    uint64_t seed, size_t num_threads) {
  const std::shared_ptr<const EpochSnapshot> snapshot = Pin();
  if (snapshot->engine == nullptr) {
    BatchReleaseReport report;
    report.entries.resize(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      report.entries[i].v_row = requests[i].v_row;
      report.entries[i].status = Status::FailedPrecondition(
          "no sealed epoch yet: Append rows and SealEpoch before releasing");
    }
    report.failures = requests.size();
    return report;
  }
  BatchReleaseReport report =
      snapshot->engine->ReleaseBatch(requests, options, seed, num_threads);
  // Charge in entry order, after the parallel section: stream positions —
  // and therefore every marginal — are identical for any thread count.
  for (BatchEntry& entry : report.entries) {
    if (!entry.status.ok()) continue;
    ContinualRelease continual = ChargeAndAnnotate(std::move(entry.release));
    entry.release = std::move(continual.release);
    report.total_stream_epsilon_charged +=
        entry.release.stream_epsilon_charged;
  }
  return report;
}

uint64_t StreamingPcorEngine::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_->epoch;
}

size_t StreamingPcorEngine::buffered_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_.size();
}

StreamingStats StreamingPcorEngine::stats() const {
  StreamingStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.epoch = snapshot_->epoch;
    stats.buffered_rows = tail_.size();
    stats.appends = appends_;
    stats.seals = seals_;
  }
  stats.releases = accountant_.releases();
  stats.cumulative_epsilon = accountant_.cumulative_epsilon();
  stats.naive_epsilon = accountant_.naive_epsilon();
  stats.cache_invalidations = memo_->CacheStats().invalidations;
  return stats;
}

}  // namespace pcor
