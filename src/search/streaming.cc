#include "src/search/streaming.h"

#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace pcor {

namespace {

/// \brief Applies the on-seal compaction policy to `*segments`, returning
/// the number of merges performed. Deterministic: depends only on the
/// segment row counts, never on timing.
uint64_t CompactSegments(
    std::vector<std::shared_ptr<const PopulationSegment>>* segments,
    const CompactionOptions& policy, IndexStorage storage) {
  uint64_t merges = 0;
  // Rule 1 (doubling): merge the maximal trailing run of small segments,
  // but only once its combined rows reach min_segment_rows — the merged
  // result then leaves the "small" class, so each sealed row is re-copied
  // O(log total) times overall instead of once per subsequent seal.
  if (policy.min_segment_rows > 0 && segments->size() >= 2) {
    size_t run_begin = segments->size();
    size_t run_rows = 0;
    while (run_begin > 0 &&
           (*segments)[run_begin - 1]->num_rows() < policy.min_segment_rows) {
      --run_begin;
      run_rows += (*segments)[run_begin]->num_rows();
    }
    if (segments->size() - run_begin >= 2 &&
        run_rows >= policy.min_segment_rows) {
      MergeSegments(segments, run_begin, segments->size(), storage);
      ++merges;
    }
  }
  // Rule 2 (fan-out bound): smallest-adjacent-pair merges until the list
  // fits. Pair sizes roughly double as merges cascade, so the amortized
  // per-row cost stays logarithmic here too.
  if (policy.max_segments > 0) {
    while (segments->size() > policy.max_segments) {
      size_t best = 0;
      size_t best_rows = std::numeric_limits<size_t>::max();
      for (size_t s = 0; s + 1 < segments->size(); ++s) {
        const size_t rows =
            (*segments)[s]->num_rows() + (*segments)[s + 1]->num_rows();
        if (rows < best_rows) {
          best = s;
          best_rows = rows;
        }
      }
      MergeSegments(segments, best, best + 2, storage);
      ++merges;
    }
  }
  return merges;
}

}  // namespace

bool DefaultSegmentedSeal() {
  return strings::EnvSizeOr("PCOR_SEGMENTED_SEAL", 1) != 0;
}

Row EpochSnapshot::RowAt(uint32_t row) const {
  PCOR_CHECK(row < epoch) << "row outside the sealed prefix";
  for (const auto& segment : segments) {
    if (row < segment->row_end()) {
      return segment->rows->GetRow(row - segment->row_begin);
    }
  }
  PCOR_CHECK(false) << "segments do not cover the sealed prefix";
  return Row{};
}

StreamingPcorEngine::StreamingPcorEngine(Schema schema,
                                         const OutlierDetector& detector,
                                         StreamingOptions options)
    : schema_(std::move(schema)),
      detector_(&detector),
      options_(options),
      memo_(std::make_shared<VerifierMemo>(options.verifier)) {
  // Epoch 0: an empty sealed view — no segments, no probe, no engine.
  // Pin() is still total; releases fail with kFailedPrecondition.
  snapshot_ = std::make_shared<EpochSnapshot>();
}

Status StreamingPcorEngine::ValidateRow(
    const std::vector<uint32_t>& codes) const {
  // Validate eagerly, at the point the producer can still handle the
  // error — a bad row must never poison a later SealEpoch.
  if (codes.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        strings::Format("row has %zu codes, schema has %zu attributes",
                        codes.size(), schema_.num_attributes()));
  }
  for (size_t i = 0; i < codes.size(); ++i) {
    if (codes[i] >= schema_.attribute(i).domain_size()) {
      return Status::OutOfRange(strings::Format(
          "code %u out of range for attribute '%s' (domain size %zu)",
          codes[i], schema_.attribute(i).name.c_str(),
          schema_.attribute(i).domain_size()));
    }
  }
  return Status::OK();
}

Status StreamingPcorEngine::Append(const std::vector<uint32_t>& codes,
                                   double metric) {
  PCOR_RETURN_NOT_OK(ValidateRow(codes));
  std::lock_guard<std::mutex> lock(mu_);
  tail_.push_back(Row{codes, metric});
  ++appends_;
  return Status::OK();
}

Status StreamingPcorEngine::AppendRows(std::span<const Row> rows) {
  // Validate the whole span before buffering anything, so failure leaves
  // the tail exactly as it was — the atomicity the contract promises.
  for (const Row& row : rows) {
    PCOR_RETURN_NOT_OK(ValidateRow(row.codes));
  }
  std::lock_guard<std::mutex> lock(mu_);
  tail_.reserve(tail_.size() + rows.size());
  for (const Row& row : rows) {
    tail_.push_back(row);
    ++appends_;
  }
  return Status::OK();
}

uint64_t StreamingPcorEngine::SealEpoch() {
  // Seals serialize with each other only; appends keep landing in the
  // (fresh) tail while this seal indexes the rows it grabbed.
  std::lock_guard<std::mutex> seal_lock(seal_mu_);
  std::vector<Row> tail;
  std::shared_ptr<const EpochSnapshot> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tail_.empty()) return snapshot_->epoch;
    tail.swap(tail_);
    base = snapshot_;
  }

  // Build the new epoch outside mu_. Rows were validated at Append, so
  // AppendRow cannot fail here. The base snapshot cannot go stale under
  // us: only SealEpoch replaces snapshot_, and seal_mu_ is held.
  auto tail_rows = std::make_shared<Dataset>(schema_);
  for (const Row& row : tail) tail_rows->AppendRow(row).CheckOK();

  auto next = std::make_shared<EpochSnapshot>();
  next->epoch = base->epoch + tail.size();
  next->segments = base->segments;  // structural sharing: shared_ptr copies
  next->segments.push_back(MakeSegment(static_cast<uint32_t>(base->epoch),
                                       std::move(tail_rows),
                                       options_.index.storage));
  if (options_.segmented_seal) {
    compactions_ += CompactSegments(&next->segments, options_.compaction,
                                    options_.index.storage);
  } else if (next->segments.size() > 1) {
    // Copy-on-seal ablation: one flat segment over the whole sealed
    // prefix, rebuilt every seal — O(history), the pre-segment baseline.
    MergeSegments(&next->segments, 0, next->segments.size(),
                  options_.index.storage);
  }
  next->probe = std::make_shared<const SegmentedPopulationProbe>(
      schema_, next->segments, options_.index.storage,
      options_.index.probe_threads);
  next->engine = std::make_shared<const PcorEngine>(
      next->probe, *detector_, memo_, next->epoch, options_.verifier);

  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_ = next;
    ++seals_;
  }

  // Retire epochs that fell out of the retain window. Safe under pin —
  // swept epochs recompute on lookup instead of hitting — so this is
  // memory reclamation only; correctness lives in the (epoch, context)
  // cache key. With retain_epochs == 0 the window is unused entirely:
  // tracking it would only grow the deque without bound.
  if (options_.retain_epochs > 0) {
    sealed_epochs_.push_back(next->epoch);
    while (sealed_epochs_.size() > options_.retain_epochs) {
      sealed_epochs_.pop_front();
    }
    retained_epochs_.store(sealed_epochs_.size(), std::memory_order_relaxed);
    memo_->InvalidateEpochsBefore(sealed_epochs_.front());
  }
  return next->epoch;
}

std::shared_ptr<const EpochSnapshot> StreamingPcorEngine::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

ContinualRelease StreamingPcorEngine::ChargeAndAnnotate(
    PcorRelease release) {
  const TreeAccountant::Charge charge =
      accountant_.ChargeNextRelease(release.epsilon_spent);
  release.stream_release_index = charge.release_index;
  release.stream_epsilon_charged = charge.marginal;
  ContinualRelease continual;
  continual.cumulative_epsilon = charge.cumulative;
  continual.naive_cumulative_epsilon = charge.naive_cumulative;
  continual.nodes_summed =
      TreeAccountant::NodesSummedAt(charge.release_index);
  continual.release = std::move(release);
  return continual;
}

Result<ContinualRelease> StreamingPcorEngine::ReleaseAsOfNow(
    uint32_t v_row, const PcorOptions& options, Rng* rng) {
  const std::shared_ptr<const EpochSnapshot> snapshot = Pin();
  if (snapshot->engine == nullptr) {
    return Status::FailedPrecondition(
        "no sealed epoch yet: Append rows and SealEpoch before releasing");
  }
  PCOR_ASSIGN_OR_RETURN(PcorRelease release,
                        snapshot->engine->Release(v_row, options, rng));
  return ChargeAndAnnotate(std::move(release));
}

BatchReleaseReport StreamingPcorEngine::ReleaseBatchAsOfNow(
    std::span<const BatchRequest> requests, const PcorOptions& options,
    uint64_t seed, size_t num_threads) {
  const std::shared_ptr<const EpochSnapshot> snapshot = Pin();
  if (snapshot->engine == nullptr) {
    BatchReleaseReport report;
    report.entries.resize(requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      report.entries[i].v_row = requests[i].v_row;
      report.entries[i].status = Status::FailedPrecondition(
          "no sealed epoch yet: Append rows and SealEpoch before releasing");
    }
    report.failures = requests.size();
    return report;
  }
  BatchReleaseReport report =
      snapshot->engine->ReleaseBatch(requests, options, seed, num_threads);
  // Charge in entry order, after the parallel section: stream positions —
  // and therefore every marginal — are identical for any thread count.
  for (BatchEntry& entry : report.entries) {
    if (!entry.status.ok()) continue;
    ContinualRelease continual = ChargeAndAnnotate(std::move(entry.release));
    entry.release = std::move(continual.release);
    report.total_stream_epsilon_charged +=
        entry.release.stream_epsilon_charged;
  }
  return report;
}

uint64_t StreamingPcorEngine::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_->epoch;
}

size_t StreamingPcorEngine::buffered_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_.size();
}

StreamingStats StreamingPcorEngine::stats() const {
  StreamingStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.epoch = snapshot_->epoch;
    stats.buffered_rows = tail_.size();
    stats.appends = appends_;
    stats.seals = seals_;
    stats.segments = snapshot_->segments.size();
  }
  stats.compactions = compactions_.load(std::memory_order_relaxed);
  stats.retained_epochs = retained_epochs_.load(std::memory_order_relaxed);
  stats.releases = accountant_.releases();
  stats.cumulative_epsilon = accountant_.cumulative_epsilon();
  stats.naive_epsilon = accountant_.naive_epsilon();
  stats.cache_invalidations = memo_->CacheStats().invalidations;
  return stats;
}

}  // namespace pcor
