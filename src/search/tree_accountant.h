#pragma once

#include <cstdint>
#include <mutex>

namespace pcor {

/// \brief Epsilon composition for continual release via the binary-tree
/// (partial-sum) mechanism's schedule.
///
/// Naive accounting for T repeated "as-of-now" releases charges a fresh
/// full budget every time: cumulative epsilon = T * eps. The binary
/// mechanism (Chan–Shi–Song / Dwork et al. continual observation; the
/// NoisePartialSum technique in PrivateLinUCB-style tree aggregation)
/// organizes the stream into a binary tree of partial-sum nodes instead:
///
///   - node (l, j) at level l covers stream positions
///     [j * 2^l + 1, (j + 1) * 2^l], and is perturbed once, when it
///     completes;
///   - the answer at time t sums the popcount(t) completed nodes given by
///     t's binary digits (NodesSummedAt);
///   - nodes *within* one level cover disjoint stream segments, so a
///     level costs one eps under parallel composition no matter how many
///     of its nodes exist; levels compose sequentially.
///
/// Cumulative epsilon after T releases is therefore
///   CumulativeFor(T, eps) = LevelsFor(T) * eps,
/// with LevelsFor(T) = floor(log2(T)) + 1 — O(log T) instead of O(T). The
/// marginal charge of release t is nonzero only when t is a power of two
/// (a new tree level opens); every other release reuses levels already
/// paid for. Strictly below the naive sum for every T >= 3, equal at
/// T <= 2.
///
/// The accountant implements this *schedule*; see docs/streaming.md and
/// docs/privacy.md for exactly what the tree charge does and does not
/// guarantee for PCOR releases.
class TreeAccountant {
 public:
  /// \brief Tree levels spanned after `t` releases:
  /// floor(log2(t)) + 1 for t >= 1, and 0 for t = 0.
  static uint64_t LevelsFor(uint64_t t);

  /// \brief Partial-sum nodes summed to answer release `t`: popcount(t).
  /// Reported for telemetry/docs; it does not enter the epsilon charge
  /// (completed nodes are read, not re-perturbed).
  static uint64_t NodesSummedAt(uint64_t t);

  /// \brief Tree-composed cumulative epsilon after `t` releases at
  /// per-level budget `eps_level`: LevelsFor(t) * eps_level.
  static double CumulativeFor(uint64_t t, double eps_level);

  /// \brief The naive baseline: t * eps_release (fresh budget per
  /// release, sequential composition).
  static double NaiveCumulativeFor(uint64_t t, double eps_release);

  /// \brief The marginal tree charge of one release at stream position
  /// `t` (1-based) with per-level budget `eps_level`:
  /// (LevelsFor(t) - LevelsFor(t - 1)) * eps_level — eps_level when t is
  /// a power of two, else 0.
  static double MarginalFor(uint64_t t, double eps_level);

  /// \brief Outcome of charging one release to the stream.
  struct Charge {
    uint64_t release_index = 0;  ///< 1-based stream position t
    uint64_t new_levels = 0;     ///< tree levels opened by this release
    double marginal = 0.0;       ///< epsilon newly charged (0 off-powers)
    double cumulative = 0.0;     ///< tree-composed total so far
    double naive_cumulative = 0.0;  ///< what T * eps accounting would say
  };

  /// \brief Charges the stream's next release, whose own mechanism budget
  /// is `eps_release` (it doubles as the per-level price: the release
  /// that opens a level sets what that level costs). Thread-safe; stream
  /// positions are assigned in call order. With heterogeneous eps_release
  /// values the cumulative depends on which requests land on the
  /// level-opening positions — serialize admissions (the server does)
  /// when that matters.
  Charge ChargeNextRelease(double eps_release);

  /// \brief Releases charged so far (the current stream position T).
  uint64_t releases() const;
  /// \brief Tree-composed epsilon spent so far.
  double cumulative_epsilon() const;
  /// \brief The naive T-fresh-budgets total, for comparison/reporting.
  double naive_epsilon() const;

 private:
  mutable std::mutex mu_;
  uint64_t releases_ = 0;
  double cumulative_ = 0.0;
  double naive_ = 0.0;
};

}  // namespace pcor
