#include "src/search/pcor.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/simd.h"
#include "src/common/stats.h"
#include "src/common/string_util.h"
#include "src/common/threading.h"
#include "src/common/timer.h"
#include "src/dp/mechanism.h"

namespace pcor {

Status ValidatePcorOptions(const PcorOptions& options) {
  if (options.num_samples == 0) {
    return Status::InvalidArgument("num_samples must be at least 1");
  }
  if (!std::isfinite(options.total_epsilon) || options.total_epsilon <= 0.0) {
    return Status::InvalidArgument(strings::Format(
        "total_epsilon must be finite and positive, got %g",
        options.total_epsilon));
  }
  if (options.max_probes == 0) {
    return Status::InvalidArgument("max_probes must be at least 1");
  }
  return Status::OK();
}

PcorEngine::PcorEngine(const Dataset& dataset,
                       const OutlierDetector& detector,
                       VerifierOptions verifier_options,
                       ShardedIndexOptions index_options)
    : dataset_(&dataset),
      probe_(std::make_shared<const ShardedPopulationIndex>(dataset,
                                                            index_options)),
      sharded_(static_cast<const ShardedPopulationIndex*>(probe_.get())),
      verifier_(*probe_, detector, verifier_options) {}

PcorEngine::PcorEngine(const Dataset& dataset,
                       const OutlierDetector& detector,
                       std::shared_ptr<VerifierMemo> memo, uint64_t epoch,
                       VerifierOptions verifier_options,
                       ShardedIndexOptions index_options)
    : dataset_(&dataset),
      probe_(std::make_shared<const ShardedPopulationIndex>(dataset,
                                                            index_options)),
      sharded_(static_cast<const ShardedPopulationIndex*>(probe_.get())),
      verifier_(*probe_, detector, std::move(memo), epoch,
                verifier_options) {}

namespace {
std::shared_ptr<const PopulationProbe> CheckedProbe(
    std::shared_ptr<const PopulationProbe> probe) {
  PCOR_CHECK(probe != nullptr) << "probe-backed engine requires a probe";
  return probe;
}
}  // namespace

PcorEngine::PcorEngine(std::shared_ptr<const PopulationProbe> probe,
                       const OutlierDetector& detector,
                       std::shared_ptr<VerifierMemo> memo, uint64_t epoch,
                       VerifierOptions verifier_options)
    : probe_(CheckedProbe(std::move(probe))),
      verifier_(*probe_, detector, std::move(memo), epoch,
                verifier_options) {}

const Dataset& PcorEngine::dataset() const {
  PCOR_CHECK(dataset_ != nullptr)
      << "probe-backed engine has no flat dataset; use probe()";
  return *dataset_;
}

const ShardedPopulationIndex& PcorEngine::population_index() const {
  PCOR_CHECK(sharded_ != nullptr)
      << "probe-backed engine has no sharded index; use probe()";
  return *sharded_;
}

Result<PcorRelease> PcorEngine::Release(uint32_t v_row,
                                        const PcorOptions& options,
                                        Rng* rng) const {
  PCOR_RETURN_NOT_OK(ValidatePcorOptions(options));
  // Graph samplers need C_V before the utility can be built (the overlap
  // utility is defined relative to it).
  const bool needs_start = options.sampler == SamplerKind::kRandomWalk ||
                           options.sampler == SamplerKind::kDfs ||
                           options.sampler == SamplerKind::kBfs;
  ContextVec start;
  if (needs_start || options.utility == UtilityKind::kOverlapWithStart) {
    PCOR_ASSIGN_OR_RETURN(
        start,
        FindStartingContext(verifier_, v_row, options.starting_context, rng));
  }
  std::unique_ptr<UtilityFunction> utility =
      MakeUtility(options.utility, verifier_, start);
  PCOR_ASSIGN_OR_RETURN(PcorRelease release,
                        ReleaseWithUtility(v_row, options, *utility, rng));
  return release;
}

Result<PcorRelease> PcorEngine::ReleaseWithUtility(
    uint32_t v_row, const PcorOptions& options,
    const UtilityFunction& utility, Rng* rng) const {
  WallTimer timer;
  PCOR_RETURN_NOT_OK(ValidatePcorOptions(options));
  if (v_row >= probe_->num_rows()) {
    return Status::OutOfRange("v_row outside dataset");
  }

  PcorRelease release;
  const size_t evals_before = verifier_.evaluations();
  const size_t hits_before = verifier_.cache_hits();

  const bool needs_start = options.sampler == SamplerKind::kRandomWalk ||
                           options.sampler == SamplerKind::kDfs ||
                           options.sampler == SamplerKind::kBfs;
  if (needs_start) {
    // The overlap utility carries its own C_V; reuse it so the sampler
    // walks from the same context the utility scores against.
    if (const auto* overlap = dynamic_cast<const OverlapUtility*>(&utility)) {
      release.starting_context = overlap->starting_context();
    } else {
      PCOR_ASSIGN_OR_RETURN(
          release.starting_context,
          FindStartingContext(verifier_, v_row, options.starting_context,
                              rng));
    }
  }

  const double eps1 = Epsilon1ForTotal(options.sampler, options.total_epsilon,
                                       options.num_samples);

  SamplerRequest request;
  request.verifier = &verifier_;
  request.utility = &utility;
  request.v_row = v_row;
  request.start_context = release.starting_context;
  request.num_samples = options.num_samples;
  request.epsilon1 = eps1;
  request.max_probes = options.max_probes;

  std::unique_ptr<ContextSampler> sampler = MakeSampler(options.sampler);
  PCOR_ASSIGN_OR_RETURN(SamplerOutcome outcome,
                        sampler->Sample(request, rng));

  // Final Exponential-mechanism draw over the collected candidates.
  // Scoring is free of randomness (every Rng draw happened in the sampler)
  // and each candidate writes only its own slot, so the loop parallelizes
  // over the index's probe pool without perturbing the draw — scores, and
  // therefore the released context, are bit-identical for any thread count.
  std::vector<double> scores(outcome.samples.size());
  const size_t score_threads = options.intra_release_threads == 0
                                   ? DefaultThreadCount()
                                   : options.intra_release_threads;
  ThreadPool* score_pool =
      score_threads > 1 && scores.size() > 1 ? probe_->probe_pool() : nullptr;
  if (score_pool != nullptr) {
    score_pool->ParallelFor(scores.size(), score_threads,
                            [&](size_t i) {
                              scores[i] = utility.Score(
                                  outcome.samples[i], v_row);
                            });
  } else {
    for (size_t i = 0; i < outcome.samples.size(); ++i) {
      scores[i] = utility.Score(outcome.samples[i], v_row);
    }
  }
  ExponentialMechanism mech(eps1, utility.sensitivity());
  PCOR_ASSIGN_OR_RETURN(size_t pick, mech.Choose(scores, rng));

  release.context = outcome.samples[pick];
  release.description =
      context_ops::Describe(probe_->schema(), release.context);
  release.epsilon1 = eps1;
  release.epsilon_spent =
      TotalForEpsilon1(options.sampler, eps1, options.num_samples);
  release.num_candidates = outcome.samples.size();
  release.probes = outcome.probes;
  release.f_evaluations = verifier_.evaluations() - evals_before;
  release.cache_hits = verifier_.cache_hits() - hits_before;
  release.utility_score = scores[pick];
  release.hit_probe_cap = outcome.hit_probe_cap;
  release.kernel_backend = simd::ActiveBackendName();
  release.epoch = verifier_.epoch();
  release.seconds = timer.ElapsedSeconds();
  return release;
}

BatchReleaseReport PcorEngine::ReleaseBatch(std::span<const uint32_t> v_rows,
                                            const PcorOptions& options,
                                            uint64_t seed,
                                            size_t num_threads) const {
  std::vector<BatchRequest> requests(v_rows.size());
  for (size_t i = 0; i < v_rows.size(); ++i) requests[i].v_row = v_rows[i];
  return ReleaseBatch(std::span<const BatchRequest>(requests), options, seed,
                      num_threads);
}

BatchReleaseReport PcorEngine::ReleaseBatch(
    std::span<const BatchRequest> requests, const PcorOptions& options,
    uint64_t seed, size_t num_threads) const {
  WallTimer timer;
  BatchReleaseReport report;
  if (num_threads == 0) num_threads = DefaultThreadCount();
  // Never spawn more workers than entries (a 4-row batch on a 64-core box
  // must not pay 60 useless thread start/joins).
  report.threads = std::max<size_t>(1, std::min(num_threads, requests.size()));
  report.entries.resize(requests.size());

  // Batch-level counter deltas against the persistent shared verifier; its
  // cache is intentionally NOT dropped between batches — a warm cache is
  // the point of keeping it on the engine.
  const VerifierStats stats_before = verifier_.Stats();

  // Each worker drains a shared index counter; entry i's Rng stream depends
  // only on (seed, i), never on which worker claims it, so scheduling
  // cannot perturb the released contexts. Entries carrying their own
  // PcorOptions resolve them here — a heterogeneous batch is executed as
  // homogeneous per-entry sub-batches on the one pool pass, with no
  // barrier between configurations (nothing in a release depends on a
  // sibling entry's options).
  std::atomic<size_t> next{0};
  const auto run_one = [&](size_t i) {
    BatchEntry& entry = report.entries[i];
    entry.v_row = requests[i].v_row;
    entry.rng_seed = requests[i].use_explicit_seed ? requests[i].rng_seed
                                                   : BatchTrialSeed(seed, i);
    const PcorOptions& effective =
        requests[i].options ? *requests[i].options : options;
    Rng rng(entry.rng_seed);
    Result<PcorRelease> released =
        requests[i].utility == nullptr
            ? Release(entry.v_row, effective, &rng)
            : ReleaseWithUtility(entry.v_row, effective,
                                 *requests[i].utility, &rng);
    if (released.ok()) {
      entry.release = std::move(released).value();
    } else {
      entry.status = released.status();
    }
  };
  if (report.threads <= 1) {
    for (size_t i = 0; i < requests.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(report.threads);
    for (size_t w = 0; w < report.threads; ++w) {
      pool.Submit([&] {
        while (true) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= report.entries.size()) return;
          run_one(i);
        }
      });
    }
    pool.Wait();
  }

  std::vector<double> entry_seconds;
  entry_seconds.reserve(report.entries.size());
  for (const BatchEntry& entry : report.entries) {
    if (!entry.status.ok()) {
      ++report.failures;
      continue;
    }
    report.total_probes += entry.release.probes;
    report.total_epsilon_spent += entry.release.epsilon_spent;
    if (entry.release.hit_probe_cap) ++report.hit_probe_cap;
    entry_seconds.push_back(entry.release.seconds);
  }
  if (!entry_seconds.empty()) {
    std::sort(entry_seconds.begin(), entry_seconds.end());
    report.entry_seconds_p50 = PercentileOfSorted(entry_seconds, 0.50);
    report.entry_seconds_p95 = PercentileOfSorted(entry_seconds, 0.95);
    report.entry_seconds_p99 = PercentileOfSorted(entry_seconds, 0.99);
  }
  report.kernel_backend = simd::ActiveBackendName();
  report.epoch = verifier_.epoch();
  report.verifier_stats = verifier_.Stats();
  report.total_f_evaluations =
      report.verifier_stats.evaluations - stats_before.evaluations;
  report.cache_hits =
      report.verifier_stats.cache_hits - stats_before.cache_hits;
  report.cache_evictions =
      report.verifier_stats.cache_evictions - stats_before.cache_evictions;
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace pcor
