#include "src/search/pcor.h"

#include "src/common/timer.h"
#include "src/dp/mechanism.h"

namespace pcor {

PcorEngine::PcorEngine(const Dataset& dataset,
                       const OutlierDetector& detector,
                       VerifierOptions verifier_options)
    : dataset_(&dataset),
      index_(dataset),
      verifier_(index_, detector, verifier_options) {}

Result<PcorRelease> PcorEngine::Release(uint32_t v_row,
                                        const PcorOptions& options,
                                        Rng* rng) const {
  // Graph samplers need C_V before the utility can be built (the overlap
  // utility is defined relative to it).
  const bool needs_start = options.sampler == SamplerKind::kRandomWalk ||
                           options.sampler == SamplerKind::kDfs ||
                           options.sampler == SamplerKind::kBfs;
  ContextVec start;
  if (needs_start || options.utility == UtilityKind::kOverlapWithStart) {
    PCOR_ASSIGN_OR_RETURN(
        start,
        FindStartingContext(verifier_, v_row, options.starting_context, rng));
  }
  std::unique_ptr<UtilityFunction> utility =
      MakeUtility(options.utility, verifier_, start);
  PCOR_ASSIGN_OR_RETURN(PcorRelease release,
                        ReleaseWithUtility(v_row, options, *utility, rng));
  return release;
}

Result<PcorRelease> PcorEngine::ReleaseWithUtility(
    uint32_t v_row, const PcorOptions& options,
    const UtilityFunction& utility, Rng* rng) const {
  WallTimer timer;
  if (v_row >= dataset_->num_rows()) {
    return Status::OutOfRange("v_row outside dataset");
  }

  PcorRelease release;
  const size_t evals_before = verifier_.evaluations();

  const bool needs_start = options.sampler == SamplerKind::kRandomWalk ||
                           options.sampler == SamplerKind::kDfs ||
                           options.sampler == SamplerKind::kBfs;
  if (needs_start) {
    // The overlap utility carries its own C_V; reuse it so the sampler
    // walks from the same context the utility scores against.
    if (const auto* overlap = dynamic_cast<const OverlapUtility*>(&utility)) {
      release.starting_context = overlap->starting_context();
    } else {
      PCOR_ASSIGN_OR_RETURN(
          release.starting_context,
          FindStartingContext(verifier_, v_row, options.starting_context,
                              rng));
    }
  }

  const double eps1 = Epsilon1ForTotal(options.sampler, options.total_epsilon,
                                       options.num_samples);

  SamplerRequest request;
  request.verifier = &verifier_;
  request.utility = &utility;
  request.v_row = v_row;
  request.start_context = release.starting_context;
  request.num_samples = options.num_samples;
  request.epsilon1 = eps1;
  request.max_probes = options.max_probes;

  std::unique_ptr<ContextSampler> sampler = MakeSampler(options.sampler);
  PCOR_ASSIGN_OR_RETURN(SamplerOutcome outcome,
                        sampler->Sample(request, rng));

  // Final Exponential-mechanism draw over the collected candidates.
  std::vector<double> scores(outcome.samples.size());
  for (size_t i = 0; i < outcome.samples.size(); ++i) {
    scores[i] = utility.Score(outcome.samples[i], v_row);
  }
  ExponentialMechanism mech(eps1, utility.sensitivity());
  PCOR_ASSIGN_OR_RETURN(size_t pick, mech.Choose(scores, rng));

  release.context = outcome.samples[pick];
  release.description =
      context_ops::Describe(dataset_->schema(), release.context);
  release.epsilon1 = eps1;
  release.epsilon_spent =
      TotalForEpsilon1(options.sampler, eps1, options.num_samples);
  release.num_candidates = outcome.samples.size();
  release.probes = outcome.probes;
  release.f_evaluations = verifier_.evaluations() - evals_before;
  release.utility_score = scores[pick];
  release.hit_probe_cap = outcome.hit_probe_cap;
  release.seconds = timer.ElapsedSeconds();
  return release;
}

}  // namespace pcor
