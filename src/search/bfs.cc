#include "src/search/bfs.h"

#include <unordered_set>

#include "src/dp/mechanism.h"

namespace pcor {

Result<SamplerOutcome> BfsSampler::Sample(const SamplerRequest& request,
                                          Rng* rng) const {
  const OutlierVerifier& verifier = *request.verifier;
  const size_t t = verifier.index().schema().total_values();

  if (!verifier.IsOutlierInContext(request.start_context, request.v_row)) {
    return Status::InvalidArgument(
        "BFS requires a matching starting context C_V");
  }
  if (request.utility == nullptr) {
    return Status::InvalidArgument("BFS requires a utility function");
  }
  ExponentialMechanism mech(request.epsilon1,
                            request.utility->sensitivity());

  SamplerOutcome out;
  // Frontier with cached utility scores, treated as a priority queue whose
  // "pop" is an Exponential-mechanism draw.
  std::vector<ContextVec> frontier{request.start_context};
  std::vector<double> frontier_scores{
      request.utility->Score(request.start_context, request.v_row)};
  std::unordered_set<ContextVec, ContextVecHash> seen;  // frontier ∪ visited
  seen.insert(request.start_context);
  std::unordered_set<ContextVec, ContextVecHash> visited;

  while (visited.size() < request.num_samples && !frontier.empty()) {
    if (out.probes >= request.max_probes) {
      out.hit_probe_cap = true;
      break;
    }
    PCOR_ASSIGN_OR_RETURN(size_t pick, mech.Choose(frontier_scores, rng));
    ContextVec current = frontier[pick];
    frontier[pick] = frontier.back();
    frontier.pop_back();
    frontier_scores[pick] = frontier_scores.back();
    frontier_scores.pop_back();

    visited.insert(current);
    out.samples.push_back(current);

    ContextVec neighbor = current;
    for (size_t bit = 0; bit < t; ++bit) {
      neighbor.Flip(bit);
      ++out.probes;
      if (!seen.count(neighbor) &&
          verifier.IsOutlierInContext(neighbor, request.v_row)) {
        seen.insert(neighbor);
        frontier.push_back(neighbor);
        frontier_scores.push_back(
            request.utility->Score(neighbor, request.v_row));
      }
      neighbor.Flip(bit);
    }
  }
  if (out.samples.empty()) {
    return Status::NoValidContext("BFS visited no matching context");
  }
  return out;
}

}  // namespace pcor
