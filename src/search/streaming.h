#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/context/segmented_population_probe.h"
#include "src/search/pcor.h"
#include "src/search/tree_accountant.h"

namespace pcor {

/// \brief Segmented seals on by default; the PCOR_SEGMENTED_SEAL env var
/// set to 0 selects the copy-on-seal ablation (every seal merges the
/// whole sealed prefix into one segment — the O(history) baseline the
/// seal-cost bench compares against).
bool DefaultSegmentedSeal();

/// \brief On-seal segment compaction policy. Compaction runs inside
/// SealEpoch, outside the append lock, and only ever replaces segments in
/// the *new* snapshot's list — pinned snapshots keep their own segment
/// vectors untouched (structural sharing means their segments stay alive
/// regardless of later merges).
struct CompactionOptions {
  /// A maximal trailing run of segments each smaller than this merges
  /// into one once the run's combined rows reach it — LSM-style doubling
  /// that keeps seal cost amortized O(log total) per sealed row even at
  /// seal-per-append cadence. 0 disables the rule.
  size_t min_segment_rows = 1024;
  /// Hard bound on probe fan-out: while the list exceeds this, the
  /// adjacent pair with the fewest combined rows merges (leftmost on
  /// ties). 0 disables the bound.
  size_t max_segments = 64;
};

/// \brief Construction knobs for StreamingPcorEngine.
struct StreamingOptions {
  /// Verifier memo configuration (byte budget, shards, ...). One memo is
  /// shared by every epoch's verifier, keyed by (epoch, context).
  VerifierOptions verifier;
  /// Per-epoch index construction. `storage` and `probe_threads` apply to
  /// every segment index / the segmented probe (PCOR_COMPRESSED_INDEX
  /// included); `shard_count` does not apply — seal points, not computed
  /// splits, define the segment layout.
  ShardedIndexOptions index;
  /// How many most-recent sealed epochs keep their memo entries across a
  /// seal. Sealing epoch e sweeps every entry older than the retain
  /// window (VerifierMemo::InvalidateEpochsBefore) — counted as cache
  /// *invalidations*, never evictions. 2 keeps the new epoch plus the one
  /// in-flight batches are most likely still pinned to; 0 disables the
  /// sweep entirely (the LRU byte budget then does all shedding).
  /// Sweeping an epoch a batch is still pinned to is safe — its lookups
  /// recompute instead of hit — so this knob trades memory for warmth,
  /// never correctness.
  size_t retain_epochs = 2;
  /// Incremental seals (one new segment per seal, O(tail)) when true —
  /// the default, overridable via PCOR_SEGMENTED_SEAL. False selects the
  /// copy-on-seal ablation: every seal rebuilds one flat segment over the
  /// whole sealed prefix, O(history), bit-identical answers.
  bool segmented_seal = DefaultSegmentedSeal();
  /// Segment compaction policy (ignored under copy-on-seal, which always
  /// holds exactly one segment).
  CompactionOptions compaction;
};

/// \brief One immutable, versioned view of the stream: everything sealed
/// as of `epoch` (= the sealed row count, so epoch ids are totally ordered
/// and self-describing). Pinning a snapshot (holding the shared_ptr) keeps
/// its segments, probe and engine alive while appends and later seals
/// continue — the snapshot-consistency half of the streaming contract.
/// Snapshots share unchanged segments structurally: sealing copies the
/// segment *list* (cheap shared_ptr vector), never segment contents.
struct EpochSnapshot {
  uint64_t epoch = 0;
  /// The sealed rows, in stream order, partitioned at (compacted) seal
  /// points. Empty iff epoch == 0.
  std::vector<std::shared_ptr<const PopulationSegment>> segments;
  /// Probe composing `segments` into one global row space. Null iff
  /// epoch == 0 (nothing sealed — no data to probe, no release can run).
  std::shared_ptr<const SegmentedPopulationProbe> probe;
  /// Null iff epoch == 0.
  std::shared_ptr<const PcorEngine> engine;

  size_t num_rows() const { return static_cast<size_t>(epoch); }
  /// \brief Materializes sealed row `row` (tests, oracles, tooling — not
  /// a hot path; probes go through `probe`).
  Row RowAt(uint32_t row) const;
};

/// \brief Lifetime counters of one streaming engine.
struct StreamingStats {
  uint64_t epoch = 0;          ///< current sealed epoch (sealed row count)
  size_t buffered_rows = 0;    ///< appended but not yet sealed
  uint64_t appends = 0;        ///< rows ever appended
  uint64_t seals = 0;          ///< SealEpoch calls that advanced the epoch
  size_t segments = 0;         ///< segment fan-out of the current snapshot
  uint64_t compactions = 0;    ///< segment merges performed at seals
  size_t retained_epochs = 0;  ///< epochs currently inside the retain window
  uint64_t releases = 0;       ///< continual releases charged so far
  double cumulative_epsilon = 0.0;  ///< tree-composed total
  double naive_epsilon = 0.0;       ///< T-fresh-budgets baseline
  size_t cache_invalidations = 0;   ///< memo entries swept at seals
};

/// \brief One "outliers as of now" release plus its continual-release
/// accounting. `release.stream_release_index` / `stream_epsilon_charged`
/// carry the per-release tree charge; the fields here add the stream-level
/// cumulative view.
struct ContinualRelease {
  PcorRelease release;
  double cumulative_epsilon = 0.0;        ///< tree-composed, after this one
  double naive_cumulative_epsilon = 0.0;  ///< what T * eps would have cost
  uint64_t nodes_summed = 0;  ///< popcount(t) partial-sum nodes (telemetry)
};

/// \brief PCOR over data that arrives forever: appends land in a mutable
/// tail, SealEpoch turns the accumulated tail into a new immutable epoch
/// snapshot, and "as of now" releases run against the latest sealed
/// snapshot with tree-composed epsilon accounting.
///
/// Contracts (tested, see tests/search/streaming_engine_test.cc):
///   - **Snapshot consistency.** A release (or batch) pinned to epoch k is
///     bit-identical to the same release against a fresh load-once engine
///     over exactly the k sealed rows — for any storage, shard count and
///     thread count, any seal cadence, any compaction policy, and
///     regardless of appends/seals racing the release.
///   - **Determinism.** Epochs are content-addressed (epoch id = sealed
///     row count) and seeds travel with requests, so identical
///     append/seal/query interleavings at epoch granularity produce
///     bit-identical releases at any thread count.
///   - **Stale-epoch isolation.** The shared verifier memo keys every
///     entry by (epoch, context); a query at epoch e can only see entries
///     computed at epoch e. Epoch retirement (retain_epochs) is storage
///     reclamation, not a correctness mechanism.
///   - **Accounting.** Each release is charged by the binary-tree
///     schedule (TreeAccountant): cumulative epsilon after T releases is
///     O(log T) levels instead of T fresh budgets. The engine-level
///     accountant charges successful releases in completion order; the
///     serving front-end instead charges per tenant at admission (see
///     PcorServer streaming mode), which is the authoritative ledger in
///     multi-tenant deployments.
///
/// Costs, stated plainly: SealEpoch indexes only the tail rows into a new
/// immutable segment — O(tail), plus amortized O(log total) per row of
/// on-seal compaction (CompactionOptions) that keeps probe fan-out
/// bounded. Earlier segments are shared with the previous snapshot, never
/// copied. The pre-segment copy-on-seal behavior (O(history) per seal)
/// remains available as an ablation via PCOR_SEGMENTED_SEAL=0 /
/// StreamingOptions::segmented_seal = false; the streaming_seal bench
/// enforces the segmented path's advantage. Appends are O(1) buffered.
///
/// Thread-safe: appends, seals, pins and releases may race freely from
/// any thread. The segment build runs *outside* the append lock — a seal
/// of any size never blocks concurrent appends beyond two pointer swaps
/// (seals serialize only with each other). While a seal is indexing its
/// tail rows, those rows are transiently neither buffered (they left the
/// tail) nor sealed (the epoch has not advanced) — stats() taken mid-seal
/// reflects that window honestly.
class StreamingPcorEngine {
 public:
  /// \brief The detector must outlive the engine.
  StreamingPcorEngine(Schema schema, const OutlierDetector& detector,
                      StreamingOptions options = {});

  const Schema& schema() const { return schema_; }

  /// \brief Buffers one row in the mutable tail after validating it
  /// against the schema (code count and ranges). The row is invisible to
  /// every probe until the next SealEpoch.
  Status Append(const std::vector<uint32_t>& codes, double metric);
  Status Append(const Row& row) { return Append(row.codes, row.metric); }
  /// \brief Buffers many rows atomically: the whole span is validated up
  /// front, then buffered under one lock acquisition — on error (the
  /// first invalid row) no row of the span is buffered.
  Status AppendRows(std::span<const Row> rows);

  /// \brief Seals every buffered row into a new immutable epoch snapshot
  /// and returns the new epoch id (= total sealed rows). A no-op
  /// returning the current epoch when nothing is buffered. Sweeps memo
  /// entries older than the retain window (see StreamingOptions). The
  /// index build runs outside the append lock (see class comment).
  uint64_t SealEpoch();

  /// \brief Pins the current snapshot: the returned EpochSnapshot (and
  /// everything it references) stays valid and immutable for as long as
  /// the shared_ptr is held, no matter how many appends/seals/compactions
  /// follow.
  std::shared_ptr<const EpochSnapshot> Pin() const;

  /// \brief Releases a private valid context for `v_row` (a sealed row
  /// id) "as of now": against the latest sealed snapshot, charged by the
  /// tree accountant. kFailedPrecondition before the first seal; other
  /// errors as PcorEngine::Release. Only successful releases are charged.
  Result<ContinualRelease> ReleaseAsOfNow(uint32_t v_row,
                                          const PcorOptions& options,
                                          Rng* rng);

  /// \brief Batch variant: pins one snapshot for the whole batch (batches
  /// never straddle epochs), executes PcorEngine::ReleaseBatch, then
  /// charges successful entries in entry order — deterministic for any
  /// thread count. Entries carry epoch/stream fields;
  /// `report.total_stream_epsilon_charged` sums the marginals. Before the
  /// first seal every entry fails with kFailedPrecondition.
  BatchReleaseReport ReleaseBatchAsOfNow(
      std::span<const BatchRequest> requests, const PcorOptions& options,
      uint64_t seed, size_t num_threads = 0);

  uint64_t current_epoch() const;
  size_t buffered_rows() const;
  StreamingStats stats() const;

  /// \brief The shared epoch-keyed memo (for stats and tests).
  const std::shared_ptr<VerifierMemo>& memo() const { return memo_; }
  /// \brief The stream-level tree accountant (see class comment for how
  /// it relates to the serving front-end's per-tenant ledgers).
  const TreeAccountant& accountant() const { return accountant_; }

 private:
  /// \brief Schema validation shared by Append and AppendRows.
  Status ValidateRow(const std::vector<uint32_t>& codes) const;
  /// \brief Annotates a successful release with its tree charge.
  ContinualRelease ChargeAndAnnotate(PcorRelease release);

  Schema schema_;
  const OutlierDetector* detector_;
  StreamingOptions options_;
  std::shared_ptr<VerifierMemo> memo_;
  TreeAccountant accountant_;

  mutable std::mutex mu_;  // guards tail_, snapshot_, appends_, seals_
  std::vector<Row> tail_;
  std::shared_ptr<const EpochSnapshot> snapshot_;
  uint64_t appends_ = 0;
  uint64_t seals_ = 0;

  // Serializes SealEpoch calls and guards sealed_epochs_. Held across the
  // whole (lock-free for appenders) segment build; never taken by the
  // append/pin/stats paths, so a long seal cannot block them.
  std::mutex seal_mu_;
  std::deque<uint64_t> sealed_epochs_;  // most-recent retain window
  // Mirrors for stats(): readable without touching seal_mu_ (a stats call
  // must never block behind an in-flight index build).
  std::atomic<uint64_t> compactions_{0};
  std::atomic<size_t> retained_epochs_{0};
};

}  // namespace pcor
