#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "src/search/pcor.h"
#include "src/search/tree_accountant.h"

namespace pcor {

/// \brief Construction knobs for StreamingPcorEngine.
struct StreamingOptions {
  /// Verifier memo configuration (byte budget, shards, ...). One memo is
  /// shared by every epoch's verifier, keyed by (epoch, context).
  VerifierOptions verifier;
  /// Per-epoch population index construction (shard count, storage,
  /// probe threads) — same knobs as a classic engine, PCOR_SHARD_COUNT /
  /// PCOR_COMPRESSED_INDEX included.
  ShardedIndexOptions index;
  /// How many most-recent sealed epochs keep their memo entries across a
  /// seal. Sealing epoch e sweeps every entry older than the retain
  /// window (VerifierMemo::InvalidateEpochsBefore) — counted as cache
  /// *invalidations*, never evictions. 2 keeps the new epoch plus the one
  /// in-flight batches are most likely still pinned to; 0 disables the
  /// sweep entirely (the LRU byte budget then does all shedding).
  /// Sweeping an epoch a batch is still pinned to is safe — its lookups
  /// recompute instead of hit — so this knob trades memory for warmth,
  /// never correctness.
  size_t retain_epochs = 2;
};

/// \brief One immutable, versioned view of the stream: everything sealed
/// as of `epoch` (= the sealed row count, so epoch ids are totally ordered
/// and self-describing). Pinning a snapshot (holding the shared_ptr) keeps
/// its dataset and engine alive while appends and later seals continue —
/// the snapshot-consistency half of the streaming contract.
struct EpochSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const Dataset> dataset;
  /// Null iff epoch == 0 (nothing sealed yet — there is no data to build
  /// an index over, and no release can run).
  std::shared_ptr<const PcorEngine> engine;
};

/// \brief Lifetime counters of one streaming engine.
struct StreamingStats {
  uint64_t epoch = 0;          ///< current sealed epoch (sealed row count)
  size_t buffered_rows = 0;    ///< appended but not yet sealed
  uint64_t appends = 0;        ///< rows ever appended
  uint64_t seals = 0;          ///< SealEpoch calls that advanced the epoch
  uint64_t releases = 0;       ///< continual releases charged so far
  double cumulative_epsilon = 0.0;  ///< tree-composed total
  double naive_epsilon = 0.0;       ///< T-fresh-budgets baseline
  size_t cache_invalidations = 0;   ///< memo entries swept at seals
};

/// \brief One "outliers as of now" release plus its continual-release
/// accounting. `release.stream_release_index` / `stream_epsilon_charged`
/// carry the per-release tree charge; the fields here add the stream-level
/// cumulative view.
struct ContinualRelease {
  PcorRelease release;
  double cumulative_epsilon = 0.0;        ///< tree-composed, after this one
  double naive_cumulative_epsilon = 0.0;  ///< what T * eps would have cost
  uint64_t nodes_summed = 0;  ///< popcount(t) partial-sum nodes (telemetry)
};

/// \brief PCOR over data that arrives forever: appends land in a mutable
/// tail, SealEpoch turns the accumulated tail into a new immutable epoch
/// snapshot, and "as of now" releases run against the latest sealed
/// snapshot with tree-composed epsilon accounting.
///
/// Contracts (tested, see tests/search/streaming_engine_test.cc):
///   - **Snapshot consistency.** A release (or batch) pinned to epoch k is
///     bit-identical to the same release against a fresh load-once engine
///     over exactly the k sealed rows — for any storage, shard count and
///     thread count, and regardless of appends/seals racing the release.
///   - **Determinism.** Epochs are content-addressed (epoch id = sealed
///     row count) and seeds travel with requests, so identical
///     append/seal/query interleavings at epoch granularity produce
///     bit-identical releases at any thread count.
///   - **Stale-epoch isolation.** The shared verifier memo keys every
///     entry by (epoch, context); a query at epoch e can only see entries
///     computed at epoch e. Epoch retirement (retain_epochs) is storage
///     reclamation, not a correctness mechanism.
///   - **Accounting.** Each release is charged by the binary-tree
///     schedule (TreeAccountant): cumulative epsilon after T releases is
///     O(log T) levels instead of T fresh budgets. The engine-level
///     accountant charges successful releases in completion order; the
///     serving front-end instead charges per tenant at admission (see
///     PcorServer streaming mode), which is the authoritative ledger in
///     multi-tenant deployments.
///
/// Costs, stated plainly: SealEpoch copies the sealed prefix and rebuilds
/// the epoch's index — O(total sealed rows) per seal, amortized fine for
/// batched seals (seal every S appends), wasteful for seal-per-append.
/// Incremental segment-sharing index builds are the designated follow-up
/// (see ROADMAP). Appends are O(1) buffered.
///
/// Thread-safe: appends, seals, pins and releases may race freely from any
/// thread. Seals serialize with appends on one mutex; releases only take
/// it long enough to pin the snapshot.
class StreamingPcorEngine {
 public:
  /// \brief The detector must outlive the engine.
  StreamingPcorEngine(Schema schema, const OutlierDetector& detector,
                      StreamingOptions options = {});

  const Schema& schema() const { return schema_; }

  /// \brief Buffers one row in the mutable tail after validating it
  /// against the schema (code count and ranges). The row is invisible to
  /// every probe until the next SealEpoch.
  Status Append(const std::vector<uint32_t>& codes, double metric);
  Status Append(const Row& row) { return Append(row.codes, row.metric); }
  /// \brief Buffers many rows; fails atomically on the first invalid row
  /// (earlier rows of the span stay buffered — they were valid).
  Status AppendRows(std::span<const Row> rows);

  /// \brief Seals every buffered row into a new immutable epoch snapshot
  /// and returns the new epoch id (= total sealed rows). A no-op
  /// returning the current epoch when nothing is buffered. Sweeps memo
  /// entries older than the retain window (see StreamingOptions).
  uint64_t SealEpoch();

  /// \brief Pins the current snapshot: the returned EpochSnapshot (and
  /// everything it references) stays valid and immutable for as long as
  /// the shared_ptr is held, no matter how many appends/seals follow.
  std::shared_ptr<const EpochSnapshot> Pin() const;

  /// \brief Releases a private valid context for `v_row` (a sealed row
  /// id) "as of now": against the latest sealed snapshot, charged by the
  /// tree accountant. kFailedPrecondition before the first seal; other
  /// errors as PcorEngine::Release. Only successful releases are charged.
  Result<ContinualRelease> ReleaseAsOfNow(uint32_t v_row,
                                          const PcorOptions& options,
                                          Rng* rng);

  /// \brief Batch variant: pins one snapshot for the whole batch (batches
  /// never straddle epochs), executes PcorEngine::ReleaseBatch, then
  /// charges successful entries in entry order — deterministic for any
  /// thread count. Entries carry epoch/stream fields;
  /// `report.total_stream_epsilon_charged` sums the marginals. Before the
  /// first seal every entry fails with kFailedPrecondition.
  BatchReleaseReport ReleaseBatchAsOfNow(
      std::span<const BatchRequest> requests, const PcorOptions& options,
      uint64_t seed, size_t num_threads = 0);

  uint64_t current_epoch() const;
  size_t buffered_rows() const;
  StreamingStats stats() const;

  /// \brief The shared epoch-keyed memo (for stats and tests).
  const std::shared_ptr<VerifierMemo>& memo() const { return memo_; }
  /// \brief The stream-level tree accountant (see class comment for how
  /// it relates to the serving front-end's per-tenant ledgers).
  const TreeAccountant& accountant() const { return accountant_; }

 private:
  /// \brief Annotates a successful release with its tree charge.
  ContinualRelease ChargeAndAnnotate(PcorRelease release);

  Schema schema_;
  const OutlierDetector* detector_;
  StreamingOptions options_;
  std::shared_ptr<VerifierMemo> memo_;
  TreeAccountant accountant_;

  mutable std::mutex mu_;  // guards tail_, snapshot_, counters below
  std::vector<Row> tail_;
  std::shared_ptr<const EpochSnapshot> snapshot_;
  std::deque<uint64_t> sealed_epochs_;  // most-recent retain window
  uint64_t appends_ = 0;
  uint64_t seals_ = 0;
};

}  // namespace pcor
