#pragma once

#include "src/search/sampler.h"

namespace pcor {

/// \brief Algorithm 2 — uniform sampling: draw contexts by setting each of
/// the t bits independently with probability p = 1/2 and keep the matching
/// ones until n samples are found. Satisfies (2*eps1, COE)-OCDP (Theorem
/// 5.1) but stays O(2^t) in expectation (Theorem 5.2): when matching
/// contexts are a 2^-k fraction of the space, every accepted sample costs
/// ~2^k probes — this is the paper's motivation for graph-based sampling.
class UniformSampler : public ContextSampler {
 public:
  std::string name() const override { return "uniform"; }
  SamplerKind kind() const override { return SamplerKind::kUniform; }
  Result<SamplerOutcome> Sample(const SamplerRequest& request,
                                Rng* rng) const override;
};

}  // namespace pcor
