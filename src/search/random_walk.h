#pragma once

#include "src/search/sampler.h"

namespace pcor {

/// \brief Algorithm 3 — random-walk sampling on the context graph.
///
/// Starting from C_V, the walk repeatedly picks an untried connected
/// context uniformly at random; a matching pick is appended to C_M and the
/// walk moves there (exploiting the locality hypothesis of Section 5.2);
/// a non-matching pick is removed from the current candidate set. The walk
/// stops at n samples or when the current vertex has no untried neighbor
/// left. Satisfies (2*eps1, COE)-OCDP (Theorem 5.3) at O(n*t) cost
/// (Theorem 5.4) — the fastest sampler, but undirected, hence the paper's
/// measured utility loss versus DFS/BFS (Table 3).
class RandomWalkSampler : public ContextSampler {
 public:
  std::string name() const override { return "random_walk"; }
  SamplerKind kind() const override { return SamplerKind::kRandomWalk; }
  Result<SamplerOutcome> Sample(const SamplerRequest& request,
                                Rng* rng) const override;
};

}  // namespace pcor
