#pragma once

#include "src/search/sampler.h"

namespace pcor {

/// \brief Algorithm 5 — differentially private breadth-first search, the
/// paper's final sampler choice for PCOR (Section 6.3).
///
/// The frontier C_M acts as a priority queue: at each step the Exponential
/// mechanism (scored by the utility function) selects which frontier
/// context to expand; its matching, unseen neighbors join the frontier.
/// Like DP-DFS it satisfies ((2n+2)*eps1, COE)-OCDP (Theorem 5.7) at
/// O(n^2*t + n*t) cost (Theorem 5.8) — slightly slower than DFS in theory,
/// but the utility-directed frontier finds larger-population contexts,
/// which is why the paper measures BFS >= DFS on both axes.
class BfsSampler : public ContextSampler {
 public:
  std::string name() const override { return "bfs"; }
  SamplerKind kind() const override { return SamplerKind::kBfs; }
  Result<SamplerOutcome> Sample(const SamplerRequest& request,
                                Rng* rng) const override;
};

}  // namespace pcor
