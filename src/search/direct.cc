#include "src/search/direct.h"

#include "src/context/coe.h"

namespace pcor {

Result<SamplerOutcome> DirectSampler::Sample(const SamplerRequest& request,
                                             Rng* rng) const {
  (void)rng;  // enumeration is deterministic
  CoeOptions options;
  options.max_contexts = request.max_probes;
  PCOR_ASSIGN_OR_RETURN(
      std::vector<ContextVec> coe,
      EnumerateCoe(*request.verifier, request.v_row, options));
  if (coe.empty()) {
    return Status::NoValidContext("COE is empty: V is not a contextual "
                                  "outlier under this detector");
  }
  SamplerOutcome out;
  const Schema& schema = request.verifier->index().schema();
  const size_t free_bits =
      schema.total_values() - schema.num_attributes();
  out.probes = size_t{1} << free_bits;
  out.samples = std::move(coe);
  return out;
}

}  // namespace pcor
