#include "src/search/uniform.h"

namespace pcor {

Result<SamplerOutcome> UniformSampler::Sample(const SamplerRequest& request,
                                              Rng* rng) const {
  const OutlierVerifier& verifier = *request.verifier;
  const size_t t = verifier.index().schema().total_values();
  SamplerOutcome out;
  while (out.samples.size() < request.num_samples) {
    if (out.probes >= request.max_probes) {
      out.hit_probe_cap = true;
      break;
    }
    ContextVec c(t);
    for (size_t bit = 0; bit < t; ++bit) {
      if (rng->NextBernoulli(0.5)) c.Set(bit);
    }
    ++out.probes;
    if (verifier.IsOutlierInContext(c, request.v_row)) {
      out.samples.push_back(c);
    }
  }
  if (out.samples.empty()) {
    return Status::NoValidContext(
        "uniform sampling found no matching context within the probe cap");
  }
  return out;
}

}  // namespace pcor
