#include "src/search/tree_accountant.h"

#include <bit>

namespace pcor {

uint64_t TreeAccountant::LevelsFor(uint64_t t) {
  if (t == 0) return 0;
  // floor(log2(t)) + 1 == bit_width(t).
  return static_cast<uint64_t>(std::bit_width(t));
}

uint64_t TreeAccountant::NodesSummedAt(uint64_t t) {
  return static_cast<uint64_t>(std::popcount(t));
}

double TreeAccountant::CumulativeFor(uint64_t t, double eps_level) {
  return static_cast<double>(LevelsFor(t)) * eps_level;
}

double TreeAccountant::NaiveCumulativeFor(uint64_t t, double eps_release) {
  return static_cast<double>(t) * eps_release;
}

double TreeAccountant::MarginalFor(uint64_t t, double eps_level) {
  if (t == 0) return 0.0;
  return static_cast<double>(LevelsFor(t) - LevelsFor(t - 1)) * eps_level;
}

TreeAccountant::Charge TreeAccountant::ChargeNextRelease(
    double eps_release) {
  std::lock_guard<std::mutex> lock(mu_);
  Charge charge;
  charge.release_index = ++releases_;
  charge.new_levels =
      LevelsFor(charge.release_index) - LevelsFor(charge.release_index - 1);
  charge.marginal = static_cast<double>(charge.new_levels) * eps_release;
  cumulative_ += charge.marginal;
  naive_ += eps_release;
  charge.cumulative = cumulative_;
  charge.naive_cumulative = naive_;
  return charge;
}

uint64_t TreeAccountant::releases() const {
  std::lock_guard<std::mutex> lock(mu_);
  return releases_;
}

double TreeAccountant::cumulative_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cumulative_;
}

double TreeAccountant::naive_epsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return naive_;
}

}  // namespace pcor
