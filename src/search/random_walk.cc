#include "src/search/random_walk.h"

#include <numeric>

namespace pcor {

Result<SamplerOutcome> RandomWalkSampler::Sample(
    const SamplerRequest& request, Rng* rng) const {
  const OutlierVerifier& verifier = *request.verifier;
  const size_t t = verifier.index().schema().total_values();

  if (!verifier.IsOutlierInContext(request.start_context, request.v_row)) {
    return Status::InvalidArgument(
        "random walk requires a matching starting context C_V");
  }

  SamplerOutcome out;
  out.samples.push_back(request.start_context);  // C_M = [C_V]

  ContextVec current = request.start_context;
  while (out.samples.size() < request.num_samples) {
    if (out.probes >= request.max_probes) {
      out.hit_probe_cap = true;
      break;
    }
    // Untried neighbor bits of the current vertex, consumed without
    // replacement (the paper removes failed candidates from C_conn).
    std::vector<size_t> untried(t);
    std::iota(untried.begin(), untried.end(), 0);
    bool moved = false;
    while (!untried.empty()) {
      const size_t pick = rng->NextBounded(untried.size());
      const size_t bit = untried[pick];
      untried[pick] = untried.back();
      untried.pop_back();

      ContextVec candidate = current;
      candidate.Flip(bit);
      ++out.probes;
      if (verifier.IsOutlierInContext(candidate, request.v_row)) {
        out.samples.push_back(candidate);
        current = candidate;
        moved = true;
        break;
      }
    }
    if (!moved) break;  // every neighbor failed: the walk is stuck
  }
  return out;
}

}  // namespace pcor
