#include "src/search/dfs.h"

#include <unordered_set>

#include "src/dp/mechanism.h"

namespace pcor {

Result<SamplerOutcome> DfsSampler::Sample(const SamplerRequest& request,
                                          Rng* rng) const {
  const OutlierVerifier& verifier = *request.verifier;
  const size_t t = verifier.index().schema().total_values();

  if (!verifier.IsOutlierInContext(request.start_context, request.v_row)) {
    return Status::InvalidArgument(
        "DFS requires a matching starting context C_V");
  }
  if (request.utility == nullptr) {
    return Status::InvalidArgument("DFS requires a utility function");
  }
  ExponentialMechanism mech(request.epsilon1,
                            request.utility->sensitivity());

  SamplerOutcome out;
  std::vector<ContextVec> stack{request.start_context};
  std::unordered_set<ContextVec, ContextVecHash> visited;

  while (visited.size() < request.num_samples && !stack.empty()) {
    if (out.probes >= request.max_probes) {
      out.hit_probe_cap = true;
      break;
    }
    ContextVec current = stack.back();
    if (visited.insert(current).second) {
      out.samples.push_back(current);
    }

    // Children: matching, unvisited neighbors of the stack top.
    std::vector<ContextVec> children;
    std::vector<double> scores;
    ContextVec neighbor = current;
    for (size_t bit = 0; bit < t; ++bit) {
      neighbor.Flip(bit);
      ++out.probes;
      if (!visited.count(neighbor) &&
          verifier.IsOutlierInContext(neighbor, request.v_row)) {
        children.push_back(neighbor);
        scores.push_back(request.utility->Score(neighbor, request.v_row));
      }
      neighbor.Flip(bit);
    }

    if (children.empty()) {
      stack.pop_back();
      continue;
    }
    PCOR_ASSIGN_OR_RETURN(size_t pick, mech.Choose(scores, rng));
    stack.push_back(children[pick]);
  }
  if (out.samples.empty()) {
    return Status::NoValidContext("DFS visited no matching context");
  }
  return out;
}

}  // namespace pcor
