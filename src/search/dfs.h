#pragma once

#include "src/search/sampler.h"

namespace pcor {

/// \brief Algorithm 4 — differentially private depth-first search.
///
/// Plain DFS is deterministic and therefore cannot satisfy DP (Section
/// 5.2.2): an output with probability 1 on D1 may have probability 0 on a
/// neighbor D2. The paper's modification replaces the fixed child order
/// with an Exponential-mechanism draw over the *matching, unvisited*
/// children of the stack top, scored by the utility function. Each of the
/// n pushes leaks 2*eps1, so the sampler satisfies
/// ((2n+2)*eps1, COE)-OCDP including the final selection (Theorem 5.5), at
/// O(n*t) verification cost (Theorem 5.6).
class DfsSampler : public ContextSampler {
 public:
  std::string name() const override { return "dfs"; }
  SamplerKind kind() const override { return SamplerKind::kDfs; }
  Result<SamplerOutcome> Sample(const SamplerRequest& request,
                                Rng* rng) const override;
};

}  // namespace pcor
