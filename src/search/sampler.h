#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/context/context.h"
#include "src/dp/budget.h"
#include "src/dp/utility.h"
#include "src/context/detector_cache.h"

namespace pcor {

/// \brief One sampling request: everything an algorithm needs to collect
/// the candidate multiset C_M for outlier V.
struct SamplerRequest {
  const OutlierVerifier* verifier = nullptr;
  /// Directs DP-DFS/DP-BFS child selection; unused by the others.
  const UtilityFunction* utility = nullptr;
  uint32_t v_row = 0;
  /// Starting context C_V; required by graph samplers (random walk, DFS,
  /// BFS), ignored by direct and uniform sampling.
  ContextVec start_context;
  /// n — the number of samples to collect.
  size_t num_samples = 50;
  /// eps1 for the internal Exponential-mechanism draws of DP-DFS/DP-BFS.
  double epsilon1 = 0.1;
  /// Safety cap on candidate-context probes (uniform sampling can stall
  /// when matching contexts are rare; the paper's Table 2 shows Tmax of a
  /// full day). On hitting the cap, the sampler returns what it has.
  size_t max_probes = 20'000'000;
};

/// \brief Sampler outcome: the candidate multiset plus work counters.
struct SamplerOutcome {
  std::vector<ContextVec> samples;  ///< C_M / Visited, in collection order
  size_t probes = 0;                ///< candidate contexts examined
  bool hit_probe_cap = false;
};

/// \brief Interface over the paper's five candidate-collection strategies.
/// The final private selection from the collected samples (one more
/// Exponential-mechanism draw) is applied by the PCOR engine, identically
/// for every sampler.
class ContextSampler {
 public:
  virtual ~ContextSampler() = default;

  virtual std::string name() const = 0;
  virtual SamplerKind kind() const = 0;

  /// \brief Collects candidate contexts. Every returned context is a
  /// matching context for v_row. Fails with NoValidContext when no
  /// matching context was found at all.
  virtual Result<SamplerOutcome> Sample(const SamplerRequest& request,
                                        Rng* rng) const = 0;
};

/// \brief Factory for the five algorithms.
std::unique_ptr<ContextSampler> MakeSampler(SamplerKind kind);

}  // namespace pcor
