#pragma once

#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/context/population_index.h"
#include "src/context/starting_context.h"
#include "src/data/dataset.h"
#include "src/dp/budget.h"
#include "src/dp/utility.h"
#include "src/outlier/detector.h"
#include "src/outlier/detector_cache.h"
#include "src/search/sampler.h"

namespace pcor {

/// \brief Options for one PCOR release.
struct PcorOptions {
  /// Which sampling layer to use (the paper's final choice is BFS).
  SamplerKind sampler = SamplerKind::kBfs;
  /// n — the number of samples the sampler collects.
  size_t num_samples = 50;
  /// Total OCDP budget epsilon for this release. eps1 is derived per
  /// algorithm: eps/2 for direct/uniform/random-walk, eps/(2n+2) for
  /// DFS/BFS (see dp/budget.h).
  double total_epsilon = 0.2;
  /// Utility family scoring candidate contexts.
  UtilityKind utility = UtilityKind::kPopulationSize;
  /// How the starting context C_V is obtained.
  StartingContextOptions starting_context;
  /// Probe cap forwarded to the sampler.
  size_t max_probes = 20'000'000;
};

/// \brief The released context plus release metadata (data-owner side).
struct PcorRelease {
  ContextVec context;            ///< C_p — the private valid context
  std::string description;       ///< human-readable rendering of C_p
  ContextVec starting_context;   ///< C_V used by graph samplers
  double epsilon_spent = 0.0;    ///< total OCDP epsilon consumed
  double epsilon1 = 0.0;         ///< per-draw mechanism parameter
  size_t num_candidates = 0;     ///< |C_M| the final draw chose from
  size_t probes = 0;             ///< candidate contexts examined
  size_t f_evaluations = 0;      ///< detector runs (cache misses)
  double utility_score = 0.0;    ///< u_V(D, C_p) — private to the owner
  double seconds = 0.0;          ///< wall time of the release
  bool hit_probe_cap = false;
};

/// \brief PCOR — the end-to-end private contextual outlier release engine
/// (Definition 3.2). Owns the population index and the memoized verifier
/// for one (dataset, detector) pair; Release() can be called for many
/// outliers and options combinations. Thread-safe for concurrent Release()
/// calls with distinct Rngs.
class PcorEngine {
 public:
  PcorEngine(const Dataset& dataset, const OutlierDetector& detector,
             VerifierOptions verifier_options = {});

  /// \brief Releases a private valid context for row `v_row`.
  ///
  /// Steps: (1) find C_V, (2) derive eps1 from the OCDP budget and the
  /// sampler kind, (3) collect C_M with the sampler, (4) one final
  /// Exponential-mechanism draw over C_M picks the release.
  Result<PcorRelease> Release(uint32_t v_row, const PcorOptions& options,
                              Rng* rng) const;

  /// \brief Variant with a caller-supplied utility (any UtilityFunction
  /// implementation; PCOR's contribution 4 is utility-agnosticism).
  Result<PcorRelease> ReleaseWithUtility(uint32_t v_row,
                                         const PcorOptions& options,
                                         const UtilityFunction& utility,
                                         Rng* rng) const;

  const Dataset& dataset() const { return *dataset_; }
  const PopulationIndex& population_index() const { return index_; }
  const OutlierVerifier& verifier() const { return verifier_; }

 private:
  const Dataset* dataset_;
  PopulationIndex index_;
  OutlierVerifier verifier_;
};

}  // namespace pcor
