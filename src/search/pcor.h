#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/context/population_index.h"
#include "src/context/sharded_population_index.h"
#include "src/context/starting_context.h"
#include "src/data/dataset.h"
#include "src/dp/budget.h"
#include "src/dp/utility.h"
#include "src/outlier/detector.h"
#include "src/context/detector_cache.h"
#include "src/search/sampler.h"

namespace pcor {

/// \brief Options for one PCOR release.
struct PcorOptions {
  /// Which sampling layer to use (the paper's final choice is BFS).
  SamplerKind sampler = SamplerKind::kBfs;
  /// n — the number of samples the sampler collects.
  size_t num_samples = 50;
  /// Total OCDP budget epsilon for this release. eps1 is derived per
  /// algorithm: eps/2 for direct/uniform/random-walk, eps/(2n+2) for
  /// DFS/BFS (see dp/budget.h).
  double total_epsilon = 0.2;
  /// Utility family scoring candidate contexts.
  UtilityKind utility = UtilityKind::kPopulationSize;
  /// How the starting context C_V is obtained.
  StartingContextOptions starting_context;
  /// Probe cap forwarded to the sampler.
  size_t max_probes = 20'000'000;
  /// Threads used *inside* this one release for the candidate-scoring loop
  /// (1 = serial, the default; 0 = all cores). Purely a latency knob: the
  /// Rng draws all happen in the sampler and each candidate's score lands
  /// in its own result slot, so the released context is bit-identical for
  /// any value — enforced by the intra-release parallelism tests. Raise it
  /// when micro-batches are shallow (one tenant, one huge request) and
  /// batch-level fan-out leaves cores idle; see ServeOptions.
  size_t intra_release_threads = 1;

  /// Memberwise equality; the batch/serving layers use it to recognize
  /// entries that share a configuration (homogeneous sub-batches).
  bool operator==(const PcorOptions&) const = default;
};

/// \brief Checks a PcorOptions for values no release can run under:
/// `num_samples == 0`, a non-finite or non-positive `total_epsilon`, or
/// `max_probes == 0`. Returns kInvalidArgument naming the offending field.
///
/// Release/ReleaseWithUtility apply it on entry, and the serving front-end
/// applies it at admission so a bad per-request override is rejected
/// synchronously, before any budget is charged.
Status ValidatePcorOptions(const PcorOptions& options);

/// \brief The released context plus release metadata (data-owner side).
struct PcorRelease {
  ContextVec context;            ///< C_p — the private valid context
  std::string description;       ///< human-readable rendering of C_p
  ContextVec starting_context;   ///< C_V used by graph samplers
  double epsilon_spent = 0.0;    ///< total OCDP epsilon consumed
  double epsilon1 = 0.0;         ///< per-draw mechanism parameter
  size_t num_candidates = 0;     ///< |C_M| the final draw chose from
  size_t probes = 0;             ///< candidate contexts examined
  size_t f_evaluations = 0;      ///< detector runs (cache misses)
  size_t cache_hits = 0;         ///< verifier cache hits during the release
  double utility_score = 0.0;    ///< u_V(D, C_p) — private to the owner
  double seconds = 0.0;          ///< wall time of the release
  bool hit_probe_cap = false;
  /// Detector kernel path the release ran on ("scalar", "sse2", "avx2");
  /// recorded so perf numbers are attributable to a backend.
  std::string kernel_backend;
  /// Epoch (sealed-row count) of the dataset view this release ran
  /// against. For a classic load-once engine this is simply the dataset's
  /// row count; under continual release it identifies which snapshot the
  /// release was pinned to (see src/search/streaming.h).
  uint64_t epoch = 0;
  /// Continual-release metadata, zero outside streaming mode: the 1-based
  /// position of this release in its stream, and the epsilon actually
  /// charged to the ledger for it. Served releases charge per
  /// ServeOptions::streaming_charge — the full effective epsilon under
  /// kPerRelease (the default), or the tree-schedule marginal under
  /// kTreeSchedule (0 for releases that reuse already-paid tree levels,
  /// level_price times the levels opened otherwise). The engine-level
  /// ReleaseAsOfNow path always stamps the tree marginal (its accountant
  /// is the schedule meter; see src/search/tree_accountant.h).
  uint64_t stream_release_index = 0;
  double stream_epsilon_charged = 0.0;
};

/// \brief One unit of work for ReleaseBatch: a query outlier plus an
/// optional fixed utility. When `utility` is null the engine derives one
/// from the effective PcorOptions per release (starting context included);
/// a non-null utility pins both, which the experiment harness uses to keep
/// C_V fixed per row. The pointee must outlive the batch call.
struct BatchRequest {
  uint32_t v_row = 0;
  const UtilityFunction* utility = nullptr;
  /// When true, `rng_seed` is used verbatim as this entry's Rng stream seed
  /// instead of BatchTrialSeed(batch seed, index). The serving front-end
  /// pins admission-time seeds through this hook, so how requests coalesce
  /// into micro-batches cannot perturb any release: the entry's reported
  /// seed, context, epsilon and stats are identical whether it ran alone or
  /// packed with 63 strangers.
  bool use_explicit_seed = false;
  uint64_t rng_seed = 0;
  /// Per-request release configuration (sampler, epsilon split, probe
  /// budget, ...). When set, it replaces the batch-level PcorOptions for
  /// this entry only — a heterogeneous batch partitions into homogeneous
  /// sub-batches by construction, since every entry resolves its own
  /// effective options while still executing on the shared ThreadPool and
  /// verifier cache. Held by value: the serving front-end copies requests
  /// into its admission queue, where a pointee could not be kept alive.
  /// Callers are responsible for passing a valid configuration (see
  /// ValidatePcorOptions); an invalid one fails the entry, not the batch.
  std::optional<PcorOptions> options;
};

/// \brief Outcome of one batch item. `release` is meaningful iff
/// `status.ok()`. `rng_seed` is the per-trial stream seed, recorded so any
/// single item can be replayed in isolation with Release().
struct BatchEntry {
  uint32_t v_row = 0;
  uint64_t rng_seed = 0;
  Status status;
  PcorRelease release;
};

/// \brief Aggregated outcome of ReleaseBatch. Entries keep input order.
///
/// `total_f_evaluations` / `cache_hits` / `cache_evictions` are exact
/// batch-level deltas of the shared verifier's counters; the per-entry
/// `release.f_evaluations` / `release.cache_hits` are only attribution
/// estimates when the batch runs multi-threaded (concurrent releases
/// interleave on the shared cache).
struct BatchReleaseReport {
  std::vector<BatchEntry> entries;
  size_t threads = 1;             ///< worker threads the batch ran on
  size_t failures = 0;            ///< entries whose status is not OK
  size_t total_probes = 0;        ///< candidate contexts examined
  size_t total_f_evaluations = 0; ///< detector runs (verifier cache misses)
  size_t cache_hits = 0;          ///< verifier cache hits during the batch
  size_t cache_evictions = 0;     ///< LRU evictions during the batch
  /// End-of-batch snapshot of the shared verifier; the cache is persistent
  /// across batches, so resident_bytes/entries carry over to the next one.
  VerifierStats verifier_stats;
  double total_epsilon_spent = 0.0;  ///< sum over successful releases
  size_t hit_probe_cap = 0;       ///< successful entries that hit max_probes
  /// Per-entry wall-time percentiles over the successful entries (seconds),
  /// pre-aggregated so exporters (serving stats, benches) never rescan the
  /// entry vector. All zero when every entry failed.
  double entry_seconds_p50 = 0.0;
  double entry_seconds_p95 = 0.0;
  double entry_seconds_p99 = 0.0;
  double seconds = 0.0;           ///< wall time of the whole batch
  std::string kernel_backend;     ///< detector kernel path of the batch
  /// Epoch every entry of this batch executed against (batches never
  /// straddle epochs — the streaming layer pins one snapshot per batch).
  uint64_t epoch = 0;
  /// Sum of the entries' marginal tree charges; 0 outside streaming mode
  /// (filled by the continual-release layer, which owns the accountant).
  double total_stream_epsilon_charged = 0.0;

  size_t num_released() const { return entries.size() - failures; }
};

/// \brief PCOR — the end-to-end private contextual outlier release engine
/// (Definition 3.2). Owns the population index and the memoized verifier
/// for one (dataset, detector) pair; Release() can be called for many
/// outliers and options combinations. Thread-safe for concurrent Release()
/// calls with distinct Rngs.
class PcorEngine {
 public:
  /// \brief Builds the engine's row-sharded population index per
  /// `index_options` (shard count, storage, probe threads). The default
  /// resolves shard count from PCOR_SHARD_COUNT / DefaultShardCount(), so
  /// existing callers transparently gain sharding on large datasets while
  /// small ones stay single-shard.
  PcorEngine(const Dataset& dataset, const OutlierDetector& detector,
             VerifierOptions verifier_options = {},
             ShardedIndexOptions index_options = {});

  /// \brief Streaming construction: the verifier memoizes into the shared
  /// epoch-keyed `memo` under epoch id `epoch` instead of a private cache,
  /// so per-epoch engines of one stream reuse each other's still-valid
  /// results while stale-epoch hits stay impossible (the epoch is part of
  /// the cache key). `memo` must not be null; see VerifierMemo for the
  /// sharing contract. Used by StreamingPcorEngine — classic callers keep
  /// the constructor above.
  PcorEngine(const Dataset& dataset, const OutlierDetector& detector,
             std::shared_ptr<VerifierMemo> memo, uint64_t epoch,
             VerifierOptions verifier_options = {},
             ShardedIndexOptions index_options = {});

  /// \brief Probe-backed streaming construction: the engine runs over an
  /// externally built PopulationProbe — the streaming layer's
  /// SegmentedPopulationProbe over shared epoch segments — instead of
  /// building its own index, held alive by shared ownership. Shares the
  /// epoch-keyed `memo` like the constructor above; neither `probe` nor
  /// `memo` may be null. dataset() / population_index() are unavailable
  /// on a probe-backed engine (row data lives behind the probe's row
  /// accessors); everything else behaves identically.
  PcorEngine(std::shared_ptr<const PopulationProbe> probe,
             const OutlierDetector& detector,
             std::shared_ptr<VerifierMemo> memo, uint64_t epoch,
             VerifierOptions verifier_options = {});

  /// \brief Releases a private valid context for row `v_row`.
  ///
  /// Steps: (1) find C_V, (2) derive eps1 from the OCDP budget and the
  /// sampler kind, (3) collect C_M with the sampler, (4) one final
  /// Exponential-mechanism draw over C_M picks the release.
  ///
  /// Errors: kInvalidArgument (options fail ValidatePcorOptions),
  /// kOutOfRange (v_row outside the dataset), kNoValidContext (V is not a
  /// contextual outlier under this detector).
  Result<PcorRelease> Release(uint32_t v_row, const PcorOptions& options,
                              Rng* rng) const;

  /// \brief Variant with a caller-supplied utility (any UtilityFunction
  /// implementation; PCOR's contribution 4 is utility-agnosticism).
  Result<PcorRelease> ReleaseWithUtility(uint32_t v_row,
                                         const PcorOptions& options,
                                         const UtilityFunction& utility,
                                         Rng* rng) const;

  /// \brief Releases many outliers in one call, fanned out over a
  /// ThreadPool with the shared verifier cache. Entry i draws from an
  /// independent Rng stream derived from (seed, i), so the batch outcome
  /// is identical for every thread count, including 1.
  ///
  /// `num_threads` 0 means DefaultThreadCount(). Per-entry errors (e.g. a
  /// row with no valid context) are recorded in the entry, not returned:
  /// one bad row must not sink a 10k-row batch. Blocks until every entry
  /// completed; thread-safe for concurrent calls on one engine.
  BatchReleaseReport ReleaseBatch(std::span<const uint32_t> v_rows,
                                  const PcorOptions& options, uint64_t seed,
                                  size_t num_threads = 0) const;

  /// \brief Generalized batch: per-item fixed utilities, explicit seeds,
  /// and per-item PcorOptions overrides (see BatchRequest). `options` is
  /// the default an entry without its own override runs under. Entries with
  /// differing options form homogeneous sub-batches executed on the same
  /// pool pass and verifier cache; an entry whose override fails
  /// ValidatePcorOptions completes with a kInvalidArgument status.
  BatchReleaseReport ReleaseBatch(std::span<const BatchRequest> requests,
                                  const PcorOptions& options, uint64_t seed,
                                  size_t num_threads = 0) const;

  /// \brief The Rng stream seed ReleaseBatch assigns to entry `index`.
  /// Exposed so callers (experiment harness, tests) can replay one trial.
  /// The Weyl step keeps (seed, index) pairs distinct; the SplitMix64
  /// finalizer then avalanches them so neighboring trials start from
  /// decorrelated streams (a bare linear step leaves xoshiro's SplitMix64
  /// seeding with nearly-identical low bits across a batch).
  static uint64_t BatchTrialSeed(uint64_t seed, size_t index) {
    return SplitMix64Mix(seed + 0x9e3779b97f4a7c15ULL * (index + 1));
  }

  /// \brief The backing dataset — dataset-built engines only; CHECK-fails
  /// on a probe-backed engine (its rows live in segments, reached through
  /// the probe's row accessors).
  const Dataset& dataset() const;
  /// \brief The engine-owned sharded index — dataset-built engines only;
  /// CHECK-fails on a probe-backed engine.
  const ShardedPopulationIndex& population_index() const;
  /// \brief The population probe every release runs against (always set).
  const PopulationProbe& probe() const { return *probe_; }
  const OutlierVerifier& verifier() const { return verifier_; }

 private:
  const Dataset* dataset_ = nullptr;  // null for probe-backed engines
  std::shared_ptr<const PopulationProbe> probe_;
  // Downcast of probe_ when this engine built its own sharded index;
  // null for probe-backed construction.
  const ShardedPopulationIndex* sharded_ = nullptr;
  OutlierVerifier verifier_;
};

}  // namespace pcor
