#include "src/search/sampler.h"

#include "src/search/bfs.h"
#include "src/search/dfs.h"
#include "src/search/direct.h"
#include "src/search/random_walk.h"
#include "src/search/uniform.h"

namespace pcor {

std::unique_ptr<ContextSampler> MakeSampler(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kDirect:
      return std::make_unique<DirectSampler>();
    case SamplerKind::kUniform:
      return std::make_unique<UniformSampler>();
    case SamplerKind::kRandomWalk:
      return std::make_unique<RandomWalkSampler>();
    case SamplerKind::kDfs:
      return std::make_unique<DfsSampler>();
    case SamplerKind::kBfs:
      return std::make_unique<BfsSampler>();
  }
  return nullptr;
}

}  // namespace pcor
