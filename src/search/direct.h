#pragma once

#include "src/search/sampler.h"

namespace pcor {

/// \brief Algorithm 1 — the direct approach: enumerate COE_M(D, V)
/// exhaustively; the whole matching set becomes the candidate multiset.
/// Satisfies (2*eps1, COE)-OCDP (Theorem 4.1) and costs O(2^t) (Theorem
/// 4.2); it is the exact-but-slow baseline every sampler is compared to.
class DirectSampler : public ContextSampler {
 public:
  std::string name() const override { return "direct"; }
  SamplerKind kind() const override { return SamplerKind::kDirect; }
  Result<SamplerOutcome> Sample(const SamplerRequest& request,
                                Rng* rng) const override;
};

}  // namespace pcor
