#pragma once

#include <sstream>
#include <string>

namespace pcor {

/// \brief Severity levels for the library logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PCOR_LOG(level)                                            \
  ::pcor::internal::LogMessage(::pcor::LogLevel::k##level,         \
                               __FILE__, __LINE__)

/// \brief CHECK-style invariant assertion, active in all build types.
#define PCOR_CHECK(cond)                                           \
  if (!(cond))                                                     \
  ::pcor::internal::FatalMessage(__FILE__, __LINE__).stream()      \
      << "Check failed: " #cond " "

namespace internal {

/// \brief Emits its message and aborts on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line);
  [[noreturn]] ~FatalMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pcor
