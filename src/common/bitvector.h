#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pcor {

/// \brief Dense, fixed-size bitset over row ids.
///
/// This is the population-filtering engine: each attribute value owns one
/// BitVector over the dataset's rows, and a context's population is computed
/// with word-wise OR (within an attribute's disjunction) and AND (across
/// attributes). All binary operations require equal sizes.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t size, bool value = false);

  size_t size() const { return size_; }
  size_t num_words() const { return words_.size(); }

  /// \brief Resizes to `size` bits, all set to `value`, reusing the word
  /// storage — no allocation once the vector has grown to its steady-state
  /// capacity. The scratch-buffer counterpart of the sizing constructor.
  void Assign(size_t size, bool value);

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  /// \brief Sets/clears every bit.
  void FillAll(bool value);

  /// \brief Number of set bits.
  size_t Count() const;
  bool AnySet() const;
  bool NoneSet() const { return !AnySet(); }

  /// \brief In-place boolean algebra; sizes must match.
  void AndWith(const BitVector& other);
  void OrWith(const BitVector& other);
  void AndNotWith(const BitVector& other);
  void XorWith(const BitVector& other);

  /// \brief Count of set bits in (this AND other), without materializing.
  size_t AndCount(const BitVector& other) const;

  /// \brief Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  /// \brief Appends the indices of all set bits to `*out`, ascending —
  /// allocation-free when the caller's buffer has capacity.
  void AppendSetBits(std::vector<uint32_t>* out) const;

  /// \brief Applies fn(index) for each set bit, ascending.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn(static_cast<uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  const uint64_t* data() const { return words_.data(); }

  /// \brief Mutable word access for the compressed-bitmap kernels, which
  /// operate on whole 64Ki-bit chunks of the word array in place. Callers
  /// must not set bits at or above size().
  uint64_t* mutable_data() { return words_.data(); }

 private:
  void ZeroTailBits();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace pcor
