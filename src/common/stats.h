#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pcor {

/// \brief Single-pass accumulator for mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// \brief Unbiased sample variance (0 when count < 2).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;  ///< e.g. 0.90 for the paper's 90% CIs
};

/// \brief Student-t confidence interval for the mean of `samples`.
/// Falls back to a degenerate [mean, mean] interval for n < 2.
ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& samples,
                                          double level);

/// \brief Exact percentile with linear interpolation (q in [0, 1]).
double Percentile(std::vector<double> samples, double q);

/// \brief Percentile of an already ascending-sorted sample — no copy, no
/// sort. Callers that need several quantiles of one sample sort once into a
/// scratch buffer and query this repeatedly.
double PercentileOfSorted(std::span<const double> sorted, double q);

/// \brief Fixed-width histogram over [min, max] used to reproduce the
/// paper's figure panels (utility / runtime distributions).
class HistogramBuilder {
 public:
  /// \brief Buckets `samples` into `bins` equal-width bins spanning
  /// [lo, hi]; out-of-range samples clamp to the boundary bins.
  HistogramBuilder(double lo, double hi, size_t bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  const std::vector<size_t>& counts() const { return counts_; }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  size_t total() const { return total_; }

  /// \brief Renders an ASCII histogram, one line per bin, for reports.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// \brief Summary statistics of a runtime series in the paper's format
/// (Tmin / Tmax / Tavg).
struct RuntimeSummary {
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double avg_seconds = 0.0;
  size_t trials = 0;
};

RuntimeSummary SummarizeRuntimes(const std::vector<double>& seconds);

}  // namespace pcor
