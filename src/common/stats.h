#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pcor {

/// \brief Single-pass accumulator for mean/variance/min/max (Welford).
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// \brief Unbiased sample variance (0 when count < 2).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Two-sided confidence interval around a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.0;  ///< e.g. 0.90 for the paper's 90% CIs
};

/// \brief Student-t confidence interval for the mean of `samples`.
/// Falls back to a degenerate [mean, mean] interval for n < 2.
ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& samples,
                                          double level);

/// \brief Exact percentile with linear interpolation (q in [0, 1]).
double Percentile(std::vector<double> samples, double q);

/// \brief Percentile of an already ascending-sorted sample — no copy, no
/// sort. Callers that need several quantiles of one sample sort once into a
/// scratch buffer and query this repeatedly.
double PercentileOfSorted(std::span<const double> sorted, double q);

/// \brief Fixed-width histogram over [min, max] used to reproduce the
/// paper's figure panels (utility / runtime distributions).
class HistogramBuilder {
 public:
  /// \brief Buckets `samples` into `bins` equal-width bins spanning
  /// [lo, hi]; out-of-range samples clamp to the boundary bins.
  HistogramBuilder(double lo, double hi, size_t bins);

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  const std::vector<size_t>& counts() const { return counts_; }
  double bin_lo(size_t i) const;
  double bin_hi(size_t i) const;
  size_t total() const { return total_; }

  /// \brief Renders an ASCII histogram, one line per bin, for reports.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

/// \brief Fixed-footprint log-linear latency histogram (HdrHistogram-style
/// bucket layout) — the bounded-memory replacement for unbounded
/// `latencies_s` vectors on million-event traces.
///
/// Values are non-negative integer microseconds. With precision bits b and
/// S = 2^b, values below S get exact unit-width buckets; every octave
/// [2^m, 2^(m+1)) beyond splits into S/2 equal sub-buckets of width
/// 2^(m-b+1). PercentileUs(q) returns the upper edge of the bucket holding
/// the ceil(q * count)-th smallest recorded value, so for the k-th order
/// statistic os_k:
///
///     os_k <= PercentileUs(q) <= os_k * (1 + 2^(1-b)) + 1
///
/// (the relative error bound, see RelativeErrorBound(); the +1 absorbs the
/// integer bucket edge). min/max/mean are exact. Values above
/// `max_value_us` clamp into the top bucket and are counted in
/// `saturated()` — never dropped silently.
///
/// Not internally synchronized: record into one histogram per thread and
/// Merge() at the end. Merge is an element-wise sum, so it is associative
/// and commutative — any merge tree over the same per-thread histograms
/// yields bit-identical counts and percentiles.
class LatencyHistogram {
 public:
  struct Options {
    /// Top of the tracked range; larger values saturate into the last
    /// bucket. 60 s covers any sane serving latency.
    int64_t max_value_us = 60'000'000;
    /// Precision: relative error bound 2^(1-bits). 6 bits = 64 exact unit
    /// buckets + 32 sub-buckets per octave = <= 3.2% error at ~750
    /// buckets for the 60 s range.
    size_t precision_bits = 6;
  };

  LatencyHistogram();  ///< default Options
  explicit LatencyHistogram(Options options);

  /// \brief Records one value (negative clamps to 0, above-range clamps
  /// to max_value_us and counts as saturated).
  void Record(int64_t value_us);

  /// \brief Element-wise sum. Layouts (max_value_us, precision_bits) must
  /// match — merging differently-shaped histograms is a programming bug.
  void Merge(const LatencyHistogram& other);

  size_t count() const { return count_; }
  size_t saturated() const { return saturated_; }
  int64_t min_us() const { return count_ ? min_ : 0; }  ///< exact
  int64_t max_us() const { return count_ ? max_ : 0; }  ///< exact
  double mean_us() const;                               ///< exact (clamped)

  /// \brief Upper bucket edge of the ceil(q * count)-th order statistic
  /// (q = 0 reads the smallest sample's bucket; q = 1 returns the exact
  /// max). 0 when empty. q must be in [0, 1].
  int64_t PercentileUs(double q) const;

  /// \brief Guaranteed bound on PercentileUs overshoot: 2^(1-bits).
  double RelativeErrorBound() const;

  const Options& options() const { return options_; }
  size_t bucket_count() const { return counts_.size(); }

 private:
  size_t BucketIndex(int64_t value_us) const;
  int64_t BucketUpperEdge(size_t index) const;

  Options options_;
  std::vector<size_t> counts_;
  size_t count_ = 0;
  size_t saturated_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  int64_t sum_ = 0;
};

/// \brief Summary statistics of a runtime series in the paper's format
/// (Tmin / Tmax / Tavg).
struct RuntimeSummary {
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double avg_seconds = 0.0;
  size_t trials = 0;
};

RuntimeSummary SummarizeRuntimes(const std::vector<double>& seconds);

}  // namespace pcor
