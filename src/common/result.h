#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "src/common/status.h"

namespace pcor {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Construction from T yields an OK
/// result; construction from a non-OK Status yields an error result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// \brief Access the value. Aborts in debug builds when not ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  /// \brief Aborts the process when this holds an error; returns the value.
  T& ValueOrDie() {
    status_.CheckOK();
    return *value_;
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// \brief Assigns an OK result to `lhs` or returns its error to the caller.
#define PCOR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define PCOR_ASSIGN_OR_RETURN(lhs, rexpr) \
  PCOR_ASSIGN_OR_RETURN_IMPL(             \
      PCOR_CONCAT_(_pcor_result_, __LINE__), lhs, rexpr)

#define PCOR_CONCAT_INNER_(a, b) a##b
#define PCOR_CONCAT_(a, b) PCOR_CONCAT_INNER_(a, b)

}  // namespace pcor
