#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace pcor {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kPrivacyBudgetExceeded:
      return "PrivacyBudgetExceeded";
    case StatusCode::kNoValidContext:
      return "NoValidContext";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

void Status::CheckOK() const {
  if (ok()) return;
  std::fprintf(stderr, "Status not OK: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace pcor
