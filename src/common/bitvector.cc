#include "src/common/bitvector.h"

#include "src/common/logging.h"

namespace pcor {

BitVector::BitVector(size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value) ZeroTailBits();
}

void BitVector::Assign(size_t size, bool value) {
  size_ = size;
  words_.assign((size + 63) / 64, value ? ~0ULL : 0ULL);
  if (value) ZeroTailBits();
}

void BitVector::Set(size_t i) {
  PCOR_CHECK(i < size_) << "BitVector::Set out of range";
  words_[i / 64] |= (1ULL << (i % 64));
}

void BitVector::Clear(size_t i) {
  PCOR_CHECK(i < size_) << "BitVector::Clear out of range";
  words_[i / 64] &= ~(1ULL << (i % 64));
}

bool BitVector::Test(size_t i) const {
  PCOR_CHECK(i < size_) << "BitVector::Test out of range";
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void BitVector::FillAll(bool value) {
  for (auto& w : words_) w = value ? ~0ULL : 0ULL;
  if (value) ZeroTailBits();
}

size_t BitVector::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) {
    total += static_cast<size_t>(__builtin_popcountll(w));
  }
  return total;
}

bool BitVector::AnySet() const {
  for (uint64_t w : words_) {
    if (w) return true;
  }
  return false;
}

void BitVector::AndWith(const BitVector& other) {
  PCOR_CHECK(size_ == other.size_) << "BitVector size mismatch in AND";
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::OrWith(const BitVector& other) {
  PCOR_CHECK(size_ == other.size_) << "BitVector size mismatch in OR";
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::AndNotWith(const BitVector& other) {
  PCOR_CHECK(size_ == other.size_) << "BitVector size mismatch in ANDNOT";
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

void BitVector::XorWith(const BitVector& other) {
  PCOR_CHECK(size_ == other.size_) << "BitVector size mismatch in XOR";
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
}

size_t BitVector::AndCount(const BitVector& other) const {
  PCOR_CHECK(size_ == other.size_) << "BitVector size mismatch in AndCount";
  size_t total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += static_cast<size_t>(
        __builtin_popcountll(words_[i] & other.words_[i]));
  }
  return total;
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  ForEachSetBit([&out](uint32_t i) { out.push_back(i); });
  return out;
}

void BitVector::AppendSetBits(std::vector<uint32_t>* out) const {
  out->reserve(out->size() + Count());
  ForEachSetBit([out](uint32_t i) { out->push_back(i); });
}

void BitVector::ZeroTailBits() {
  const size_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

}  // namespace pcor
