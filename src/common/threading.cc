#include "src/common/threading.h"

#include <algorithm>
#include <atomic>

#include "src/common/logging.h"

namespace pcor {

ThreadPool::ThreadPool(size_t num_threads) {
  PCOR_CHECK(num_threads > 0) << "ThreadPool requires at least one thread";
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    PCOR_CHECK(!shutdown_) << "Submit after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    threads.emplace_back([&next, n, &fn] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
}

size_t DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace pcor
