#include "src/common/threading.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/logging.h"
#include "src/common/string_util.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#define PCOR_HAS_AFFINITY 1
#else
#define PCOR_HAS_AFFINITY 0
#endif

namespace pcor {

namespace {

// Parses a sysfs cpulist like "0-3,8,10-11" into CPU ids.
std::vector<int> ParseCpuList(const std::string& list) {
  std::vector<int> cpus;
  std::stringstream ss(list);
  std::string range;
  while (std::getline(ss, range, ',')) {
    if (range.empty()) continue;
    const size_t dash = range.find('-');
    if (dash == std::string::npos) {
      cpus.push_back(static_cast<int>(
          strings::ParseSizeOr(range, static_cast<size_t>(-1))));
    } else {
      const size_t lo = strings::ParseSizeOr(range.substr(0, dash),
                                             static_cast<size_t>(-1));
      const size_t hi = strings::ParseSizeOr(range.substr(dash + 1),
                                             static_cast<size_t>(-1));
      if (lo == static_cast<size_t>(-1) || hi == static_cast<size_t>(-1) ||
          hi < lo) {
        continue;
      }
      for (size_t c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    }
  }
  cpus.erase(std::remove(cpus.begin(), cpus.end(), -1), cpus.end());
  return cpus;
}

CpuTopology SingleNodeTopology() {
  CpuTopology topology;
  topology.num_nodes = 1;
  topology.cpus_of_node.resize(1);
  const size_t n = DefaultThreadCount();
  for (size_t c = 0; c < n; ++c) {
    topology.cpus_of_node[0].push_back(static_cast<int>(c));
  }
  return topology;
}

CpuTopology ProbeTopology() {
#if defined(__linux__)
  CpuTopology topology;
  for (size_t node = 0;; ++node) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in.good()) break;
    std::string list;
    std::getline(in, list);
    std::vector<int> cpus = ParseCpuList(list);
    if (cpus.empty()) continue;  // memory-only node: no CPUs to pin to
    topology.cpus_of_node.push_back(std::move(cpus));
  }
  topology.num_nodes = topology.cpus_of_node.size();
  if (topology.num_nodes == 0) return SingleNodeTopology();
  return topology;
#else
  return SingleNodeTopology();
#endif
}

std::mutex g_topology_mu;
CpuTopology g_topology;        // guarded by g_topology_mu
bool g_topology_set = false;   // guarded by g_topology_mu

thread_local int t_numa_node = -1;

#if PCOR_HAS_AFFINITY
// Pins the calling thread to the CPU set of `node`; best-effort (failure
// inside containers with restricted affinity masks is silently ignored —
// placement is an optimization, never a correctness requirement).
void PinSelfToNode(const CpuTopology& topology, size_t node) {
  if (node >= topology.cpus_of_node.size()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : topology.cpus_of_node[node]) CPU_SET(cpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}
#endif

}  // namespace

const CpuTopology& SystemTopology() {
  std::lock_guard<std::mutex> lock(g_topology_mu);
  if (!g_topology_set) {
    g_topology = ProbeTopology();
    g_topology_set = true;
  }
  return g_topology;
}

void SetTopologyForTest(CpuTopology topology) {
  std::lock_guard<std::mutex> lock(g_topology_mu);
  if (topology.num_nodes == 0) {
    g_topology_set = false;  // next SystemTopology() re-probes the host
    return;
  }
  PCOR_CHECK(topology.cpus_of_node.size() == topology.num_nodes)
      << "CpuTopology node count does not match its CPU lists";
  g_topology = std::move(topology);
  g_topology_set = true;
}

size_t CurrentNumaNode() {
  if (t_numa_node >= 0) return static_cast<size_t>(t_numa_node);
#if PCOR_HAS_AFFINITY
  const int cpu = sched_getcpu();
  if (cpu >= 0) {
    const CpuTopology& topology = SystemTopology();
    for (size_t node = 0; node < topology.cpus_of_node.size(); ++node) {
      const auto& cpus = topology.cpus_of_node[node];
      if (std::binary_search(cpus.begin(), cpus.end(), cpu)) return node;
    }
  }
#endif
  return 0;
}

void SetCurrentThreadNumaNode(int node) { t_numa_node = node; }

ThreadPoolOptions DefaultThreadPoolOptions() {
  ThreadPoolOptions options;
  options.pin_to_numa_nodes =
      strings::EnvSizeOr("PCOR_PIN_THREADS", 0) != 0;
  return options;
}

ThreadPool::ThreadPool(size_t num_threads, ThreadPoolOptions options) {
  PCOR_CHECK(num_threads > 0) << "ThreadPool requires at least one thread";
  const CpuTopology& topology = SystemTopology();
  const size_t num_nodes =
      options.pin_to_numa_nodes ? std::max<size_t>(topology.num_nodes, 1) : 1;
  workers_.reserve(num_threads);
  worker_nodes_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    // Round-robin across nodes so every socket gets an even worker share.
    worker_nodes_.push_back(options.pin_to_numa_nodes ? i % num_nodes : 0);
  }
  for (size_t i = 0; i < num_threads; ++i) {
    const bool pin = options.pin_to_numa_nodes && topology.num_nodes > 1;
    workers_.emplace_back([this, i, pin] {
      if (pin) {
#if PCOR_HAS_AFFINITY
        PinSelfToNode(SystemTopology(), worker_nodes_[i]);
#endif
      }
      // Record the association even when the affinity syscall is
      // unavailable, so node-local cache routing still spreads load the
      // way the placement intended.
      SetCurrentThreadNumaNode(static_cast<int>(worker_nodes_[i]));
      WorkerLoop(i);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    PCOR_CHECK(!shutdown_) << "Submit after shutdown";
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  (void)worker_index;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_parallel,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (max_parallel == 0) max_parallel = num_threads() + 1;
  // The caller is one of the executing threads; helpers come from the pool.
  const size_t helpers =
      std::min({num_threads(), max_parallel - 1, n - 1});
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  // Helpers that run after the loop already finished claim an index >= n
  // and return before ever dereferencing `fn` — a claimed index < n implies
  // the caller is still blocked below, so the reference stays alive.
  const std::function<void(size_t)>* fn_ptr = &fn;
  auto drain = [state, n, fn_ptr] {
    while (true) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      (*fn_ptr)(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };
  for (size_t w = 0; w < helpers; ++w) Submit(drain);
  // Caller participation is the deadlock-freedom argument: even if no
  // worker ever becomes free, this thread drains every index itself.
  drain();
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) >= n;
  });
}

void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    threads.emplace_back([&next, n, &fn] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : threads) t.join();
}

size_t DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

}  // namespace pcor
