#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace pcor {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions: fallible operations return a
/// Status (or a Result<T>, see result.h) in the style of RocksDB/Arrow.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kIOError = 8,
  kPrivacyBudgetExceeded = 9,
  kNoValidContext = 10,
  kResourceExhausted = 11,
  kUnavailable = 12,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy in the OK
/// case (no allocation) and carry a message otherwise.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status PrivacyBudgetExceeded(std::string msg) {
    return Status(StatusCode::kPrivacyBudgetExceeded, std::move(msg));
  }
  static Status NoValidContext(std::string msg) {
    return Status(StatusCode::kNoValidContext, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsPrivacyBudgetExceeded() const {
    return code_ == StatusCode::kPrivacyBudgetExceeded;
  }
  bool IsNoValidContext() const {
    return code_ == StatusCode::kNoValidContext;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// \brief "OK" or "<CODE>: <message>".
  std::string ToString() const;

  /// \brief Aborts the process if the status is not OK. Use only where an
  /// error indicates a programming bug, mirroring CHECK-style semantics.
  void CheckOK() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Propagates a non-OK status to the caller.
#define PCOR_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::pcor::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace pcor
