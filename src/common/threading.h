#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pcor {

/// \brief CPU-to-NUMA-node mapping, parsed once from
/// /sys/devices/system/node (no libnuma dependency). On machines without
/// the sysfs tree (or non-Linux) it degrades to a single node owning every
/// CPU, which makes all NUMA-aware behavior a no-op.
struct CpuTopology {
  size_t num_nodes = 1;
  /// cpus_of_node[node] = CPU ids belonging to that node, ascending.
  std::vector<std::vector<int>> cpus_of_node;
};

/// \brief The host's topology (parsed once, cached). Thread-safe.
const CpuTopology& SystemTopology();

/// \brief Replaces the cached topology — lets tests exercise multi-node
/// placement logic on single-node hosts. Pass a default-constructed
/// CpuTopology with num_nodes == 0 to restore the real host topology.
void SetTopologyForTest(CpuTopology topology);

/// \brief The NUMA node the calling thread is associated with: the node a
/// NUMA-aware ThreadPool pinned it to, else the node of the CPU it is
/// currently running on (0 on single-node hosts). Used by ShardedLruCache
/// to route a thread to its node-local shard group.
size_t CurrentNumaNode();

/// \brief Overrides CurrentNumaNode for the calling thread. ThreadPool
/// workers call this after pinning; tests use it to simulate placement.
/// A negative value clears the override.
void SetCurrentThreadNumaNode(int node);

/// \brief Placement policy for ThreadPool workers.
struct ThreadPoolOptions {
  /// Pin each worker to one NUMA node's CPU set, distributing workers
  /// round-robin across nodes (worker i → node i % num_nodes). Workers may
  /// migrate between CPUs of their node but never across nodes, so their
  /// allocations and the cache shards they touch stay node-local. No-op on
  /// single-node hosts and on platforms without sched_setaffinity.
  bool pin_to_numa_nodes = false;
};

/// \brief Options picked by the PCOR_PIN_THREADS env var (nonzero → pin);
/// the default keeps the placement-blind behavior.
ThreadPoolOptions DefaultThreadPoolOptions();

/// \brief Fixed-size worker pool for embarrassingly parallel experiment
/// trials (the paper repeats every configuration 200 times).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads,
                      ThreadPoolOptions options = DefaultThreadPoolOptions());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  /// \brief Deterministic scatter-gather over [0, n): runs fn(i) for every
  /// i exactly once across the pool's workers plus the calling thread, and
  /// returns when all n calls have completed. At most `max_parallel`
  /// threads (caller included; 0 = no limit) execute concurrently.
  ///
  /// Chunk boundaries are fixed by (n) alone — workers dynamically claim
  /// the next unclaimed index, so *which* thread runs fn(i) varies, but as
  /// long as fn(i) writes only to its own result slot i the gathered output
  /// is bit-identical for every thread count, including 1. This is the
  /// same canonical-merge discipline the SIMD kernels use for lane
  /// reductions, lifted to task granularity.
  ///
  /// Reentrancy-safe by construction: the caller participates in draining
  /// the index range, so the loop completes even when every pool worker is
  /// busy — including when the caller *is* a pool worker already inside an
  /// outer ParallelFor (nested calls submit helper tasks that are a no-op
  /// if they arrive late, and never wait on the pool's queue). A thread
  /// waiting in ParallelFor only executes chunks of its *own* loop, never
  /// unrelated pool tasks, which is what keeps the detectors'
  /// thread_local scratch buffers safe (see outlier/detector.h).
  ///
  /// fn must not throw.
  void ParallelFor(size_t n, size_t max_parallel,
                   const std::function<void(size_t)>& fn);

  size_t num_threads() const { return workers_.size(); }

  /// \brief The NUMA node worker `i` is associated with (0 when pinning is
  /// off or the host has one node).
  size_t worker_node(size_t i) const { return worker_nodes_[i]; }

 private:
  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::vector<size_t> worker_nodes_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs fn(i) for i in [0, n) across up to `num_threads` workers and
/// blocks until completion. fn must be thread-safe across distinct i.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// \brief Hardware concurrency with a sane floor of 1.
size_t DefaultThreadCount();

}  // namespace pcor
