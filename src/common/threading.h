#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pcor {

/// \brief Fixed-size worker pool for embarrassingly parallel experiment
/// trials (the paper repeats every configuration 200 times).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  /// \brief Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

/// \brief Runs fn(i) for i in [0, n) across up to `num_threads` workers and
/// blocks until completion. fn must be thread-safe across distinct i.
void ParallelFor(size_t n, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// \brief Hardware concurrency with a sane floor of 1.
size_t DefaultThreadCount();

}  // namespace pcor
