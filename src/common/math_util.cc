#include "src/common/math_util.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace pcor {
namespace math {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = std::numeric_limits<double>::epsilon();
constexpr int kMaxIterations = 300;
}  // namespace

double LogSumExp(const std::vector<double>& x) {
  double m = -kInf;
  for (double v : x) m = std::max(m, v);
  if (m == -kInf) return -kInf;
  double sum = 0.0;
  for (double v : x) {
    if (v == -kInf) continue;
    sum += std::exp(v - m);
  }
  return m + std::log(sum);
}

std::vector<double> Softmax(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.0);
  double lse = LogSumExp(x);
  if (lse == -kInf) return out;
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] == -kInf) ? 0.0 : std::exp(x[i] - lse);
  }
  return out;
}

double RegularizedGammaP(double a, double x) {
  PCOR_CHECK(a > 0 && x >= 0) << "RegularizedGammaP domain error";
  if (x == 0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < kMaxIterations; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * kEps) break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
  }
  // Continued fraction for Q(a, x), then P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1.0 / 1e-300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) break;
  }
  double q = std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
  return 1.0 - q;
}

namespace {

// Continued-fraction core of the incomplete beta (Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  PCOR_CHECK(a > 0 && b > 0) << "IncompleteBeta requires a,b > 0";
  PCOR_CHECK(x >= 0.0 && x <= 1.0) << "IncompleteBeta requires x in [0,1]";
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double InverseRegularizedIncompleteBeta(double a, double b, double p) {
  PCOR_CHECK(p >= 0.0 && p <= 1.0) << "Inverse beta requires p in [0,1]";
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Bisection with Newton refinement; robust over the full domain.
  double lo = 0.0, hi = 1.0, x = 0.5;
  for (int it = 0; it < 200; ++it) {
    x = 0.5 * (lo + hi);
    double v = RegularizedIncompleteBeta(a, b, x);
    if (std::abs(v - p) < 1e-14) break;
    if (v < p) {
      lo = x;
    } else {
      hi = x;
    }
  }
  return x;
}

double StudentTCdf(double t, double nu) {
  PCOR_CHECK(nu > 0) << "Student-t requires nu > 0";
  if (std::isinf(t)) return t > 0 ? 1.0 : 0.0;
  const double x = nu / (nu + t * t);
  const double ib = RegularizedIncompleteBeta(nu / 2.0, 0.5, x);
  return t > 0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double StudentTQuantile(double p, double nu) {
  PCOR_CHECK(p > 0.0 && p < 1.0) << "Student-t quantile requires p in (0,1)";
  PCOR_CHECK(nu > 0) << "Student-t requires nu > 0";
  if (p == 0.5) return 0.0;
  const bool upper = p > 0.5;
  const double pp = upper ? 2.0 * (1.0 - p) : 2.0 * p;  // two-tail prob
  const double x = InverseRegularizedIncompleteBeta(nu / 2.0, 0.5, pp);
  double t = std::sqrt(nu * (1.0 - x) / std::max(x, 1e-300));
  return upper ? t : -t;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  PCOR_CHECK(p > 0.0 && p < 1.0) << "NormalQuantile requires p in (0,1)";
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double GrubbsCriticalValue(size_t n, double alpha) {
  PCOR_CHECK(n >= 3) << "Grubbs' test requires n >= 3";
  PCOR_CHECK(alpha > 0 && alpha < 1) << "alpha must be in (0,1)";
  const double nd = static_cast<double>(n);
  const double p = alpha / (2.0 * nd);
  const double t = StudentTQuantile(1.0 - p, nd - 2.0);
  return ((nd - 1.0) / std::sqrt(nd)) *
         std::sqrt(t * t / (nd - 2.0 + t * t));
}

bool AlmostEqual(double a, double b, double rtol, double atol) {
  if (a == b) return true;
  return std::abs(a - b) <= atol + rtol * std::abs(b);
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

}  // namespace math
}  // namespace pcor
