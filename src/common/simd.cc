#include "src/common/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "src/common/string_util.h"

// x86-64 only: SSE2 is the ABI baseline there, so the SSE2 kernel bodies
// need no target attribute and no cpuid gate. (32-bit x86 deliberately
// falls back to scalar — SSE2 is not its baseline.)
#if defined(__x86_64__)
#define PCOR_SIMD_X86 1
#include <immintrin.h>
#else
#define PCOR_SIMD_X86 0
#endif

namespace pcor {
namespace simd {
namespace {

// -1 = not yet resolved; otherwise a Backend value. Resolving twice is
// harmless (both writers compute the same value), so a benign CAS-free
// publish is enough.
std::atomic<int> g_backend{-1};

// ---------------------------------------------------------------------------
// Scalar backend. Reductions emulate the canonical 4-lane accumulation so
// scalar results are bit-identical to the vector paths (see simd.h).
// ---------------------------------------------------------------------------

inline double CombineLanes(const double lane[4]) {
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double SumScalar(std::span<const double> v) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < v.size(); ++i) lane[i & 3] += v[i];
  return CombineLanes(lane);
}

double SumSqDevScalar(std::span<const double> v, double center) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < v.size(); ++i) {
    const double d = v[i] - center;
    lane[i & 3] += d * d;
  }
  return CombineLanes(lane);
}

MinMax MinMaxScalar(std::span<const double> v) {
  MinMax mm{v[0], v[0]};
  for (double x : v) {
    mm.min = std::min(mm.min, x);
    mm.max = std::max(mm.max, x);
  }
  return mm;
}

// A first-wins linear scan. The vector paths keep per-lane earliest
// maxima and resolve cross-lane ties toward the smallest index, which
// provably reduces to these exact semantics (|deviations| compare exactly;
// no reassociation is involved).
ArgAbsDev ArgMaxAbsDevScalar(std::span<const double> v, double center) {
  ArgAbsDev best{0, std::abs(v[0] - center)};
  for (size_t i = 1; i < v.size(); ++i) {
    const double dev = std::abs(v[i] - center);
    if (dev > best.abs_dev) {
      best.abs_dev = dev;
      best.index = i;
    }
  }
  return best;
}

void ScanAbsZScalar(std::span<const double> v, double mean, double sd,
                    double t, std::vector<size_t>* out) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (std::abs(v[i] - mean) / sd > t) out->push_back(i);
  }
}

void ScanOutsideScalar(std::span<const double> v, double lo, double hi,
                       std::vector<size_t>* out) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] < lo || v[i] > hi) out->push_back(i);
  }
}

void ScanAboveScalar(std::span<const double> v, double t,
                     std::vector<size_t>* out) {
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] > t) out->push_back(i);
  }
}

size_t CountOutsideScalar(std::span<const double> v, double lo, double hi) {
  size_t count = 0;
  for (double x : v) {
    // lo <= hi, so at most one side fires; the sum is the disjunction,
    // with no branch for the predictor to miss on shuffled data.
    count += static_cast<size_t>(x < lo) + static_cast<size_t>(x > hi);
  }
  return count;
}

double ReachSumScalar(std::span<const double> x,
                      std::span<const double> kdist, double xi) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t j = 0; j < x.size(); ++j) {
    lane[j & 3] += std::max(kdist[j], std::abs(xi - x[j]));
  }
  return CombineLanes(lane);
}

#if PCOR_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 backend (baseline on x86-64). Two 2-wide accumulators form the same
// four canonical lanes as AVX2's single 4-wide register: lanes {0,1} in
// acc01, lanes {2,3} in acc23.
// ---------------------------------------------------------------------------

inline __m128d Abs128(__m128d v) {
  return _mm_andnot_pd(_mm_set1_pd(-0.0), v);
}

double SumSse2(std::span<const double> v) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    acc01 = _mm_add_pd(acc01, _mm_loadu_pd(v.data() + i));
    acc23 = _mm_add_pd(acc23, _mm_loadu_pd(v.data() + i + 2));
  }
  alignas(16) double lane[4];
  _mm_store_pd(lane, acc01);
  _mm_store_pd(lane + 2, acc23);
  for (size_t i = n4; i < n; ++i) lane[i & 3] += v[i];
  return CombineLanes(lane);
}

double SumSqDevSse2(std::span<const double> v, double center) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m128d c = _mm_set1_pd(center);
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(v.data() + i), c);
    const __m128d d1 = _mm_sub_pd(_mm_loadu_pd(v.data() + i + 2), c);
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d0, d0));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d1, d1));
  }
  alignas(16) double lane[4];
  _mm_store_pd(lane, acc01);
  _mm_store_pd(lane + 2, acc23);
  for (size_t i = n4; i < n; ++i) {
    const double d = v[i] - center;
    lane[i & 3] += d * d;
  }
  return CombineLanes(lane);
}

MinMax MinMaxSse2(std::span<const double> v) {
  const size_t n = v.size();
  const size_t n2 = n & ~size_t{1};
  __m128d vmin = _mm_set1_pd(v[0]);
  __m128d vmax = vmin;
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d x = _mm_loadu_pd(v.data() + i);
    vmin = _mm_min_pd(vmin, x);
    vmax = _mm_max_pd(vmax, x);
  }
  alignas(16) double mn[2], mx[2];
  _mm_store_pd(mn, vmin);
  _mm_store_pd(mx, vmax);
  MinMax mm{std::min(mn[0], mn[1]), std::max(mx[0], mx[1])};
  for (size_t i = n2; i < n; ++i) {
    mm.min = std::min(mm.min, v[i]);
    mm.max = std::max(mm.max, v[i]);
  }
  return mm;
}

ArgAbsDev ArgMaxAbsDevSse2(std::span<const double> v, double center) {
  const size_t n = v.size();
  const size_t n2 = n & ~size_t{1};
  const __m128d c = _mm_set1_pd(center);
  __m128d best = _mm_set1_pd(-1.0);
  __m128d best_idx = _mm_setzero_pd();
  __m128d idx = _mm_set_pd(1.0, 0.0);
  const __m128d step = _mm_set1_pd(2.0);
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d dev = Abs128(_mm_sub_pd(_mm_loadu_pd(v.data() + i), c));
    const __m128d gt = _mm_cmpgt_pd(dev, best);
    best = _mm_or_pd(_mm_and_pd(gt, dev), _mm_andnot_pd(gt, best));
    best_idx = _mm_or_pd(_mm_and_pd(gt, idx), _mm_andnot_pd(gt, best_idx));
    idx = _mm_add_pd(idx, step);
  }
  alignas(16) double dev_lane[2], idx_lane[2];
  _mm_store_pd(dev_lane, best);
  _mm_store_pd(idx_lane, best_idx);
  ArgAbsDev out{0, -1.0};
  for (int lane = 0; lane < 2; ++lane) {
    const size_t lane_index = static_cast<size_t>(idx_lane[lane]);
    if (dev_lane[lane] > out.abs_dev ||
        (dev_lane[lane] == out.abs_dev && lane_index < out.index)) {
      out.abs_dev = dev_lane[lane];
      out.index = lane_index;
    }
  }
  for (size_t i = n2; i < n; ++i) {
    const double dev = std::abs(v[i] - center);
    if (dev > out.abs_dev) {
      out.abs_dev = dev;
      out.index = i;
    }
  }
  return out;
}

// Emits the indices of set mask bits (ascending) for a block starting at
// `base`; the scans below share it.
inline void EmitMaskBits(int mask, size_t base, std::vector<size_t>* out) {
  while (mask != 0) {
    const int bit = __builtin_ctz(static_cast<unsigned>(mask));
    out->push_back(base + static_cast<size_t>(bit));
    mask &= mask - 1;
  }
}

void ScanAbsZSse2(std::span<const double> v, double mean, double sd,
                  double t, std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n2 = n & ~size_t{1};
  const __m128d m = _mm_set1_pd(mean);
  const __m128d s = _mm_set1_pd(sd);
  const __m128d thr = _mm_set1_pd(t);
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d z = _mm_div_pd(
        Abs128(_mm_sub_pd(_mm_loadu_pd(v.data() + i), m)), s);
    EmitMaskBits(_mm_movemask_pd(_mm_cmpgt_pd(z, thr)), i, out);
  }
  for (size_t i = n2; i < n; ++i) {
    if (std::abs(v[i] - mean) / sd > t) out->push_back(i);
  }
}

void ScanOutsideSse2(std::span<const double> v, double lo, double hi,
                     std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n2 = n & ~size_t{1};
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d x = _mm_loadu_pd(v.data() + i);
    const __m128d outside =
        _mm_or_pd(_mm_cmplt_pd(x, vlo), _mm_cmpgt_pd(x, vhi));
    EmitMaskBits(_mm_movemask_pd(outside), i, out);
  }
  for (size_t i = n2; i < n; ++i) {
    if (v[i] < lo || v[i] > hi) out->push_back(i);
  }
}

void ScanAboveSse2(std::span<const double> v, double t,
                   std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n2 = n & ~size_t{1};
  const __m128d thr = _mm_set1_pd(t);
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d x = _mm_loadu_pd(v.data() + i);
    EmitMaskBits(_mm_movemask_pd(_mm_cmpgt_pd(x, thr)), i, out);
  }
  for (size_t i = n2; i < n; ++i) {
    if (v[i] > t) out->push_back(i);
  }
}

size_t CountOutsideSse2(std::span<const double> v, double lo, double hi) {
  const size_t n = v.size();
  const size_t n2 = n & ~size_t{1};
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  size_t count = 0;
  for (size_t i = 0; i < n2; i += 2) {
    const __m128d x = _mm_loadu_pd(v.data() + i);
    const __m128d outside =
        _mm_or_pd(_mm_cmplt_pd(x, vlo), _mm_cmpgt_pd(x, vhi));
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(_mm_movemask_pd(outside))));
  }
  for (size_t i = n2; i < n; ++i) {
    count += static_cast<size_t>(v[i] < lo) + static_cast<size_t>(v[i] > hi);
  }
  return count;
}

double ReachSumSse2(std::span<const double> x, std::span<const double> kdist,
                    double xi) {
  const size_t n = x.size();
  const size_t n4 = n & ~size_t{3};
  const __m128d vxi = _mm_set1_pd(xi);
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  for (size_t j = 0; j < n4; j += 4) {
    const __m128d d0 = Abs128(_mm_sub_pd(vxi, _mm_loadu_pd(x.data() + j)));
    const __m128d d1 =
        Abs128(_mm_sub_pd(vxi, _mm_loadu_pd(x.data() + j + 2)));
    acc01 = _mm_add_pd(acc01, _mm_max_pd(_mm_loadu_pd(kdist.data() + j), d0));
    acc23 = _mm_add_pd(acc23,
                       _mm_max_pd(_mm_loadu_pd(kdist.data() + j + 2), d1));
  }
  alignas(16) double lane[4];
  _mm_store_pd(lane, acc01);
  _mm_store_pd(lane + 2, acc23);
  for (size_t j = n4; j < n; ++j) {
    lane[j & 3] += std::max(kdist[j], std::abs(xi - x[j]));
  }
  return CombineLanes(lane);
}

// ---------------------------------------------------------------------------
// AVX2 backend. Each function carries the target attribute so the rest of
// the binary stays buildable for plain x86-64; the dispatcher guarantees
// these bodies only run after a cpuid check.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256d Abs256(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

__attribute__((target("avx2"))) double SumAvx2(std::span<const double> v) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(v.data() + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t i = n4; i < n; ++i) lane[i & 3] += v[i];
  return CombineLanes(lane);
}

__attribute__((target("avx2"))) double SumSqDevAvx2(
    std::span<const double> v, double center) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d c = _mm256_set1_pd(center);
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(v.data() + i), c);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t i = n4; i < n; ++i) {
    const double d = v[i] - center;
    lane[i & 3] += d * d;
  }
  return CombineLanes(lane);
}

__attribute__((target("avx2"))) MinMax MinMaxAvx2(std::span<const double> v) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  __m256d vmin = _mm256_set1_pd(v[0]);
  __m256d vmax = vmin;
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    vmin = _mm256_min_pd(vmin, x);
    vmax = _mm256_max_pd(vmax, x);
  }
  alignas(32) double mn[4], mx[4];
  _mm256_store_pd(mn, vmin);
  _mm256_store_pd(mx, vmax);
  MinMax mm{std::min(std::min(mn[0], mn[1]), std::min(mn[2], mn[3])),
            std::max(std::max(mx[0], mx[1]), std::max(mx[2], mx[3]))};
  for (size_t i = n4; i < n; ++i) {
    mm.min = std::min(mm.min, v[i]);
    mm.max = std::max(mm.max, v[i]);
  }
  return mm;
}

__attribute__((target("avx2"))) ArgAbsDev ArgMaxAbsDevAvx2(
    std::span<const double> v, double center) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d c = _mm256_set1_pd(center);
  __m256d best = _mm256_set1_pd(-1.0);
  __m256d best_idx = _mm256_setzero_pd();
  __m256d idx = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  const __m256d step = _mm256_set1_pd(4.0);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d dev =
        Abs256(_mm256_sub_pd(_mm256_loadu_pd(v.data() + i), c));
    const __m256d gt = _mm256_cmp_pd(dev, best, _CMP_GT_OQ);
    best = _mm256_blendv_pd(best, dev, gt);
    best_idx = _mm256_blendv_pd(best_idx, idx, gt);
    idx = _mm256_add_pd(idx, step);
  }
  alignas(32) double dev_lane[4], idx_lane[4];
  _mm256_store_pd(dev_lane, best);
  _mm256_store_pd(idx_lane, best_idx);
  ArgAbsDev out{0, -1.0};
  for (int lane = 0; lane < 4; ++lane) {
    const size_t lane_index = static_cast<size_t>(idx_lane[lane]);
    if (dev_lane[lane] > out.abs_dev ||
        (dev_lane[lane] == out.abs_dev && lane_index < out.index)) {
      out.abs_dev = dev_lane[lane];
      out.index = lane_index;
    }
  }
  for (size_t i = n4; i < n; ++i) {
    const double dev = std::abs(v[i] - center);
    if (dev > out.abs_dev) {
      out.abs_dev = dev;
      out.index = i;
    }
  }
  return out;
}

__attribute__((target("avx2"))) void ScanAbsZAvx2(std::span<const double> v,
                                                  double mean, double sd,
                                                  double t,
                                                  std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d m = _mm256_set1_pd(mean);
  const __m256d s = _mm256_set1_pd(sd);
  const __m256d thr = _mm256_set1_pd(t);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d z = _mm256_div_pd(
        Abs256(_mm256_sub_pd(_mm256_loadu_pd(v.data() + i), m)), s);
    EmitMaskBits(_mm256_movemask_pd(_mm256_cmp_pd(z, thr, _CMP_GT_OQ)), i,
                 out);
  }
  for (size_t i = n4; i < n; ++i) {
    if (std::abs(v[i] - mean) / sd > t) out->push_back(i);
  }
}

__attribute__((target("avx2"))) void ScanOutsideAvx2(
    std::span<const double> v, double lo, double hi,
    std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    const __m256d outside = _mm256_or_pd(_mm256_cmp_pd(x, vlo, _CMP_LT_OQ),
                                         _mm256_cmp_pd(x, vhi, _CMP_GT_OQ));
    EmitMaskBits(_mm256_movemask_pd(outside), i, out);
  }
  for (size_t i = n4; i < n; ++i) {
    if (v[i] < lo || v[i] > hi) out->push_back(i);
  }
}

__attribute__((target("avx2"))) void ScanAboveAvx2(std::span<const double> v,
                                                   double t,
                                                   std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d thr = _mm256_set1_pd(t);
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    EmitMaskBits(_mm256_movemask_pd(_mm256_cmp_pd(x, thr, _CMP_GT_OQ)), i,
                 out);
  }
  for (size_t i = n4; i < n; ++i) {
    if (v[i] > t) out->push_back(i);
  }
}

__attribute__((target("avx2"))) size_t CountOutsideAvx2(
    std::span<const double> v, double lo, double hi) {
  const size_t n = v.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  size_t count = 0;
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d x = _mm256_loadu_pd(v.data() + i);
    const __m256d outside = _mm256_or_pd(_mm256_cmp_pd(x, vlo, _CMP_LT_OQ),
                                         _mm256_cmp_pd(x, vhi, _CMP_GT_OQ));
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(outside))));
  }
  for (size_t i = n4; i < n; ++i) {
    count += static_cast<size_t>(v[i] < lo) + static_cast<size_t>(v[i] > hi);
  }
  return count;
}

__attribute__((target("avx2"))) double ReachSumAvx2(
    std::span<const double> x, std::span<const double> kdist, double xi) {
  const size_t n = x.size();
  const size_t n4 = n & ~size_t{3};
  const __m256d vxi = _mm256_set1_pd(xi);
  __m256d acc = _mm256_setzero_pd();
  for (size_t j = 0; j < n4; j += 4) {
    const __m256d d =
        Abs256(_mm256_sub_pd(vxi, _mm256_loadu_pd(x.data() + j)));
    acc = _mm256_add_pd(acc,
                        _mm256_max_pd(_mm256_loadu_pd(kdist.data() + j), d));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t j = n4; j < n; ++j) {
    lane[j & 3] += std::max(kdist[j], std::abs(xi - x[j]));
  }
  return CombineLanes(lane);
}

// ---------------------------------------------------------------------------
// AVX-512F backend. Reductions do 512-bit loads but keep the canonical
// 4-lane accumulator: the low and high 256-bit halves of each load are
// added into one __m256d in order, which is exactly the lane-canonical
// sequence (elements i..i+3 then i+4..i+7). Eight independent lanes or FMA
// would change the rounding order and break bit parity with the other
// backends, so they are deliberately not used. The order-insensitive
// kernels (min/max, argmax with exact compares, threshold scans and counts
// via __mmask8) are genuinely 8-wide — that is where the tier wins.
// ---------------------------------------------------------------------------

// GCC's unmasked AVX-512 intrinsics pass _mm512_undefined_pd() as the
// merge operand, which trips -Wmaybe-uninitialized once inlined into user
// code (GCC PR105593). The value is architecturally ignored under an
// all-ones mask; silence the false positive for this backend only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

__attribute__((target("avx512f"))) inline __m512d Abs512(__m512d v) {
  return _mm512_abs_pd(v);
}

// acc += lo(x) ; acc += hi(x) — the parity-preserving 8-element step.
__attribute__((target("avx512f"))) inline __m256d AccumHalves512(
    __m256d acc, __m512d x) {
  acc = _mm256_add_pd(acc, _mm512_castpd512_pd256(x));
  return _mm256_add_pd(acc, _mm512_extractf64x4_pd(x, 1));
}

__attribute__((target("avx512f"))) double SumAvx512(
    std::span<const double> v) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n8; i += 8) {
    acc = AccumHalves512(acc, _mm512_loadu_pd(v.data() + i));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t i = n8; i < n; ++i) lane[i & 3] += v[i];
  return CombineLanes(lane);
}

__attribute__((target("avx512f"))) double SumSqDevAvx512(
    std::span<const double> v, double center) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d c = _mm512_set1_pd(center);
  __m256d acc = _mm256_setzero_pd();
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d d = _mm512_sub_pd(_mm512_loadu_pd(v.data() + i), c);
    acc = AccumHalves512(acc, _mm512_mul_pd(d, d));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t i = n8; i < n; ++i) {
    const double d = v[i] - center;
    lane[i & 3] += d * d;
  }
  return CombineLanes(lane);
}

__attribute__((target("avx512f"))) MinMax MinMaxAvx512(
    std::span<const double> v) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  __m512d vmin = _mm512_set1_pd(v[0]);
  __m512d vmax = vmin;
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d x = _mm512_loadu_pd(v.data() + i);
    vmin = _mm512_min_pd(vmin, x);
    vmax = _mm512_max_pd(vmax, x);
  }
  alignas(64) double mn[8], mx[8];
  _mm512_store_pd(mn, vmin);
  _mm512_store_pd(mx, vmax);
  MinMax mm{mn[0], mx[0]};
  for (int lane = 1; lane < 8; ++lane) {
    mm.min = std::min(mm.min, mn[lane]);
    mm.max = std::max(mm.max, mx[lane]);
  }
  for (size_t i = n8; i < n; ++i) {
    mm.min = std::min(mm.min, v[i]);
    mm.max = std::max(mm.max, v[i]);
  }
  return mm;
}

__attribute__((target("avx512f"))) ArgAbsDev ArgMaxAbsDevAvx512(
    std::span<const double> v, double center) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d c = _mm512_set1_pd(center);
  __m512d best = _mm512_set1_pd(-1.0);
  __m512d best_idx = _mm512_setzero_pd();
  __m512d idx = _mm512_set_pd(7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0);
  const __m512d step = _mm512_set1_pd(8.0);
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d dev =
        Abs512(_mm512_sub_pd(_mm512_loadu_pd(v.data() + i), c));
    const __mmask8 gt = _mm512_cmp_pd_mask(dev, best, _CMP_GT_OQ);
    best = _mm512_mask_blend_pd(gt, best, dev);
    best_idx = _mm512_mask_blend_pd(gt, best_idx, idx);
    idx = _mm512_add_pd(idx, step);
  }
  alignas(64) double dev_lane[8], idx_lane[8];
  _mm512_store_pd(dev_lane, best);
  _mm512_store_pd(idx_lane, best_idx);
  ArgAbsDev out{0, -1.0};
  for (int lane = 0; lane < 8; ++lane) {
    const size_t lane_index = static_cast<size_t>(idx_lane[lane]);
    if (dev_lane[lane] > out.abs_dev ||
        (dev_lane[lane] == out.abs_dev && lane_index < out.index)) {
      out.abs_dev = dev_lane[lane];
      out.index = lane_index;
    }
  }
  for (size_t i = n8; i < n; ++i) {
    const double dev = std::abs(v[i] - center);
    if (dev > out.abs_dev) {
      out.abs_dev = dev;
      out.index = i;
    }
  }
  return out;
}

__attribute__((target("avx512f"))) void ScanAbsZAvx512(
    std::span<const double> v, double mean, double sd, double t,
    std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d m = _mm512_set1_pd(mean);
  const __m512d s = _mm512_set1_pd(sd);
  const __m512d thr = _mm512_set1_pd(t);
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d z = _mm512_div_pd(
        Abs512(_mm512_sub_pd(_mm512_loadu_pd(v.data() + i), m)), s);
    EmitMaskBits(static_cast<int>(_mm512_cmp_pd_mask(z, thr, _CMP_GT_OQ)), i,
                 out);
  }
  for (size_t i = n8; i < n; ++i) {
    if (std::abs(v[i] - mean) / sd > t) out->push_back(i);
  }
}

__attribute__((target("avx512f"))) void ScanOutsideAvx512(
    std::span<const double> v, double lo, double hi,
    std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vhi = _mm512_set1_pd(hi);
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d x = _mm512_loadu_pd(v.data() + i);
    const __mmask8 outside =
        _mm512_cmp_pd_mask(x, vlo, _CMP_LT_OQ) |
        _mm512_cmp_pd_mask(x, vhi, _CMP_GT_OQ);
    EmitMaskBits(static_cast<int>(outside), i, out);
  }
  for (size_t i = n8; i < n; ++i) {
    if (v[i] < lo || v[i] > hi) out->push_back(i);
  }
}

__attribute__((target("avx512f"))) void ScanAboveAvx512(
    std::span<const double> v, double t, std::vector<size_t>* out) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d thr = _mm512_set1_pd(t);
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d x = _mm512_loadu_pd(v.data() + i);
    EmitMaskBits(static_cast<int>(_mm512_cmp_pd_mask(x, thr, _CMP_GT_OQ)), i,
                 out);
  }
  for (size_t i = n8; i < n; ++i) {
    if (v[i] > t) out->push_back(i);
  }
}

__attribute__((target("avx512f"))) size_t CountOutsideAvx512(
    std::span<const double> v, double lo, double hi) {
  const size_t n = v.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d vlo = _mm512_set1_pd(lo);
  const __m512d vhi = _mm512_set1_pd(hi);
  size_t count = 0;
  for (size_t i = 0; i < n8; i += 8) {
    const __m512d x = _mm512_loadu_pd(v.data() + i);
    const __mmask8 outside =
        _mm512_cmp_pd_mask(x, vlo, _CMP_LT_OQ) |
        _mm512_cmp_pd_mask(x, vhi, _CMP_GT_OQ);
    count += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(outside)));
  }
  for (size_t i = n8; i < n; ++i) {
    count += static_cast<size_t>(v[i] < lo) + static_cast<size_t>(v[i] > hi);
  }
  return count;
}

__attribute__((target("avx512f"))) double ReachSumAvx512(
    std::span<const double> x, std::span<const double> kdist, double xi) {
  const size_t n = x.size();
  const size_t n8 = n & ~size_t{7};
  const __m512d vxi = _mm512_set1_pd(xi);
  __m256d acc = _mm256_setzero_pd();
  for (size_t j = 0; j < n8; j += 8) {
    const __m512d d =
        Abs512(_mm512_sub_pd(vxi, _mm512_loadu_pd(x.data() + j)));
    acc = AccumHalves512(
        acc, _mm512_max_pd(_mm512_loadu_pd(kdist.data() + j), d));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  for (size_t j = n8; j < n; ++j) {
    lane[j & 3] += std::max(kdist[j], std::abs(xi - x[j]));
  }
  return CombineLanes(lane);
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // PCOR_SIMD_X86

}  // namespace

Backend BestSupportedBackend() {
#if PCOR_SIMD_X86
  if (__builtin_cpu_supports("avx512f")) return Backend::kAvx512;
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
  return Backend::kSse2;  // SSE2 is the x86-64 baseline.
#else
  return Backend::kScalar;
#endif
}

std::optional<Backend> ParseBackendName(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "sse2") return Backend::kSse2;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  return std::nullopt;
}

std::optional<Backend> ForcedBackendFromEnv() {
  const std::string forced = strings::EnvStringOr("PCOR_FORCE_SIMD", "");
  if (!forced.empty()) return ParseBackendName(forced);
  // Legacy alias: any nonzero PCOR_FORCE_SCALAR pins the scalar path.
  if (strings::EnvSizeOr("PCOR_FORCE_SCALAR", 0) != 0) {
    return Backend::kScalar;
  }
  return std::nullopt;
}

Backend ActiveBackend() {
  int backend = g_backend.load(std::memory_order_acquire);
  if (backend < 0) {
    const Backend best = BestSupportedBackend();
    Backend resolved = ForcedBackendFromEnv().value_or(best);
    // A forced tier above the hardware's degrades instead of faulting;
    // the forced-tier ctest entries detect this via ForcedBackendFromEnv
    // and skip.
    if (static_cast<int>(resolved) > static_cast<int>(best)) resolved = best;
    backend = static_cast<int>(resolved);
    g_backend.store(backend, std::memory_order_release);
  }
  return static_cast<Backend>(backend);
}

Backend SetBackendForTest(Backend backend) {
  const Backend best = BestSupportedBackend();
  if (static_cast<int>(backend) > static_cast<int>(best)) backend = best;
  g_backend.store(static_cast<int>(backend), std::memory_order_release);
  return backend;
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
    case Backend::kScalar:
      break;
  }
  return "scalar";
}

const char* ActiveBackendName() { return BackendName(ActiveBackend()); }

double Sum(std::span<const double> values) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return SumAvx512(values);
    case Backend::kAvx2:
      return SumAvx2(values);
    case Backend::kSse2:
      return SumSse2(values);
#endif
    default:
      return SumScalar(values);
  }
}

double SumSqDev(std::span<const double> values, double center) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return SumSqDevAvx512(values, center);
    case Backend::kAvx2:
      return SumSqDevAvx2(values, center);
    case Backend::kSse2:
      return SumSqDevSse2(values, center);
#endif
    default:
      return SumSqDevScalar(values, center);
  }
}

MeanVar MeanAndVariance(std::span<const double> values) {
  MeanVar mv;
  const size_t n = values.size();
  if (n == 0) return mv;
  mv.mean = Sum(values) / static_cast<double>(n);
  if (n < 2) return mv;
  mv.variance = SumSqDev(values, mv.mean) / static_cast<double>(n - 1);
  return mv;
}

MinMax MinMaxOf(std::span<const double> values) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return MinMaxAvx512(values);
    case Backend::kAvx2:
      return MinMaxAvx2(values);
    case Backend::kSse2:
      return MinMaxSse2(values);
#endif
    default:
      return MinMaxScalar(values);
  }
}

ArgAbsDev ArgMaxAbsDeviation(std::span<const double> values, double center) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return ArgMaxAbsDevAvx512(values, center);
    case Backend::kAvx2:
      return ArgMaxAbsDevAvx2(values, center);
    case Backend::kSse2:
      return ArgMaxAbsDevSse2(values, center);
#endif
    default:
      return ArgMaxAbsDevScalar(values, center);
  }
}

void ScanAbsZAbove(std::span<const double> values, double mean,
                   double stddev, double threshold,
                   std::vector<size_t>* out) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return ScanAbsZAvx512(values, mean, stddev, threshold, out);
    case Backend::kAvx2:
      return ScanAbsZAvx2(values, mean, stddev, threshold, out);
    case Backend::kSse2:
      return ScanAbsZSse2(values, mean, stddev, threshold, out);
#endif
    default:
      return ScanAbsZScalar(values, mean, stddev, threshold, out);
  }
}

void ScanOutsideRange(std::span<const double> values, double lo, double hi,
                      std::vector<size_t>* out) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return ScanOutsideAvx512(values, lo, hi, out);
    case Backend::kAvx2:
      return ScanOutsideAvx2(values, lo, hi, out);
    case Backend::kSse2:
      return ScanOutsideSse2(values, lo, hi, out);
#endif
    default:
      return ScanOutsideScalar(values, lo, hi, out);
  }
}

void ScanAbove(std::span<const double> values, double threshold,
               std::vector<size_t>* out) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return ScanAboveAvx512(values, threshold, out);
    case Backend::kAvx2:
      return ScanAboveAvx2(values, threshold, out);
    case Backend::kSse2:
      return ScanAboveSse2(values, threshold, out);
#endif
    default:
      return ScanAboveScalar(values, threshold, out);
  }
}

size_t CountOutsideRange(std::span<const double> values, double lo,
                         double hi) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return CountOutsideAvx512(values, lo, hi);
    case Backend::kAvx2:
      return CountOutsideAvx2(values, lo, hi);
    case Backend::kSse2:
      return CountOutsideSse2(values, lo, hi);
#endif
    default:
      return CountOutsideScalar(values, lo, hi);
  }
}

double ReachSum(std::span<const double> x, std::span<const double> kdist,
                double xi) {
  switch (ActiveBackend()) {
#if PCOR_SIMD_X86
    case Backend::kAvx512:
      return ReachSumAvx512(x, kdist, xi);
    case Backend::kAvx2:
      return ReachSumAvx2(x, kdist, xi);
    case Backend::kSse2:
      return ReachSumSse2(x, kdist, xi);
#endif
    default:
      return ReachSumScalar(x, kdist, xi);
  }
}

}  // namespace simd
}  // namespace pcor
