#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace pcor {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& samples,
                                          double level) {
  PCOR_CHECK(level > 0 && level < 1) << "CI level must be in (0,1)";
  ConfidenceInterval ci;
  ci.level = level;
  if (samples.empty()) return ci;
  RunningStats rs;
  for (double s : samples) rs.Add(s);
  ci.mean = rs.mean();
  if (samples.size() < 2) {
    ci.lower = ci.upper = ci.mean;
    return ci;
  }
  const double n = static_cast<double>(samples.size());
  const double se = rs.stddev() / std::sqrt(n);
  const double t =
      math::StudentTQuantile(0.5 + level / 2.0, n - 1.0);
  ci.lower = ci.mean - t * se;
  ci.upper = ci.mean + t * se;
  return ci;
}

double Percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return PercentileOfSorted(samples, q);
}

double PercentileOfSorted(std::span<const double> sorted, double q) {
  PCOR_CHECK(!sorted.empty()) << "Percentile of empty sample";
  PCOR_CHECK(q >= 0.0 && q <= 1.0) << "Percentile q must be in [0,1]";
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

HistogramBuilder::HistogramBuilder(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PCOR_CHECK(bins > 0) << "Histogram needs at least one bin";
  PCOR_CHECK(hi > lo) << "Histogram range must be non-empty";
}

void HistogramBuilder::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double idx = (x - lo_) / width;
  long bin = static_cast<long>(std::floor(idx));
  bin = std::max(0L, std::min(bin, static_cast<long>(counts_.size()) - 1));
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void HistogramBuilder::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double HistogramBuilder::bin_lo(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double HistogramBuilder::bin_hi(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string HistogramBuilder::ToAscii(size_t max_width) const {
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%8.3f, %8.3f) %6zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out << label;
    size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / std::max<size_t>(peak, 1);
    for (size_t b = 0; b < bar; ++b) out << '#';
    out << '\n';
  }
  return out.str();
}

namespace {

/// bit_width for positive values: index of the highest set bit plus one.
inline size_t BitWidth(uint64_t v) {
  size_t w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

}  // namespace

LatencyHistogram::LatencyHistogram() : LatencyHistogram(Options()) {}

LatencyHistogram::LatencyHistogram(Options options)
    : options_(options) {
  PCOR_CHECK(options_.max_value_us > 0)
      << "LatencyHistogram range must be non-empty";
  PCOR_CHECK(options_.precision_bits >= 2 && options_.precision_bits <= 14)
      << "LatencyHistogram precision_bits must be in [2, 14]";
  counts_.assign(BucketIndex(options_.max_value_us) + 1, 0);
}

size_t LatencyHistogram::BucketIndex(int64_t value_us) const {
  if (value_us < 0) value_us = 0;
  if (value_us > options_.max_value_us) value_us = options_.max_value_us;
  const uint64_t v = static_cast<uint64_t>(value_us);
  const size_t bits = options_.precision_bits;
  const uint64_t sub_count = uint64_t{1} << bits;  // S
  if (v < sub_count) return static_cast<size_t>(v);
  // v lives in octave [2^m, 2^(m+1)) with m >= bits; the octave splits
  // into S/2 sub-buckets of width 2^(m-bits+1).
  const size_t m = BitWidth(v) - 1;
  const size_t octave = m - bits + 1;  // 1-based past the unit region
  const uint64_t half = sub_count / 2;
  const uint64_t sub = (v >> (m - bits + 1)) - half;
  return static_cast<size_t>(sub_count + (octave - 1) * half + sub);
}

int64_t LatencyHistogram::BucketUpperEdge(size_t index) const {
  const size_t bits = options_.precision_bits;
  const uint64_t sub_count = uint64_t{1} << bits;
  if (index < sub_count) return static_cast<int64_t>(index);  // exact
  const uint64_t half = sub_count / 2;
  const size_t octave = (index - sub_count) / half + 1;
  const uint64_t sub = (index - sub_count) % half;
  const size_t width_shift = octave;  // 2^(m-bits+1) with m = bits+octave-1
  const uint64_t lower = (half + sub) << width_shift;
  return static_cast<int64_t>(lower + (uint64_t{1} << width_shift) - 1);
}

void LatencyHistogram::Record(int64_t value_us) {
  if (value_us < 0) value_us = 0;
  if (value_us > options_.max_value_us) {
    value_us = options_.max_value_us;
    ++saturated_;
  }
  ++counts_[BucketIndex(value_us)];
  if (count_ == 0) {
    min_ = max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  ++count_;
  sum_ += value_us;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  PCOR_CHECK(options_.max_value_us == other.options_.max_value_us &&
             options_.precision_bits == other.options_.precision_bits)
      << "merging LatencyHistograms with different bucket layouts";
  if (other.count_ == 0) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  saturated_ += other.saturated_;
  sum_ += other.sum_;
}

double LatencyHistogram::mean_us() const {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t LatencyHistogram::PercentileUs(double q) const {
  PCOR_CHECK(q >= 0.0 && q <= 1.0) << "Percentile q must be in [0,1]";
  if (count_ == 0) return 0;
  const double exact_rank = q * static_cast<double>(count_);
  size_t rank = static_cast<size_t>(std::ceil(exact_rank));
  rank = std::max<size_t>(1, std::min(rank, count_));
  size_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= rank) {
      // The upper edge can overshoot the largest recorded value; clamping
      // to the exact max keeps q = 1 exact and never drops below the
      // order statistic (max >= os_k for every k).
      return std::min(BucketUpperEdge(i), max_);
    }
  }
  return max_;  // unreachable: cumulative == count_ by the loop's end
}

double LatencyHistogram::RelativeErrorBound() const {
  return std::ldexp(1.0, 1 - static_cast<int>(options_.precision_bits));
}

RuntimeSummary SummarizeRuntimes(const std::vector<double>& seconds) {
  RuntimeSummary s;
  if (seconds.empty()) return s;
  RunningStats rs;
  for (double v : seconds) rs.Add(v);
  s.min_seconds = rs.min();
  s.max_seconds = rs.max();
  s.avg_seconds = rs.mean();
  s.trials = rs.count();
  return s;
}

}  // namespace pcor
