#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/math_util.h"

namespace pcor {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ConfidenceInterval MeanConfidenceInterval(const std::vector<double>& samples,
                                          double level) {
  PCOR_CHECK(level > 0 && level < 1) << "CI level must be in (0,1)";
  ConfidenceInterval ci;
  ci.level = level;
  if (samples.empty()) return ci;
  RunningStats rs;
  for (double s : samples) rs.Add(s);
  ci.mean = rs.mean();
  if (samples.size() < 2) {
    ci.lower = ci.upper = ci.mean;
    return ci;
  }
  const double n = static_cast<double>(samples.size());
  const double se = rs.stddev() / std::sqrt(n);
  const double t =
      math::StudentTQuantile(0.5 + level / 2.0, n - 1.0);
  ci.lower = ci.mean - t * se;
  ci.upper = ci.mean + t * se;
  return ci;
}

double Percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return PercentileOfSorted(samples, q);
}

double PercentileOfSorted(std::span<const double> sorted, double q) {
  PCOR_CHECK(!sorted.empty()) << "Percentile of empty sample";
  PCOR_CHECK(q >= 0.0 && q <= 1.0) << "Percentile q must be in [0,1]";
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

HistogramBuilder::HistogramBuilder(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PCOR_CHECK(bins > 0) << "Histogram needs at least one bin";
  PCOR_CHECK(hi > lo) << "Histogram range must be non-empty";
}

void HistogramBuilder::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double idx = (x - lo_) / width;
  long bin = static_cast<long>(std::floor(idx));
  bin = std::max(0L, std::min(bin, static_cast<long>(counts_.size()) - 1));
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void HistogramBuilder::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double HistogramBuilder::bin_lo(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double HistogramBuilder::bin_hi(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i + 1);
}

std::string HistogramBuilder::ToAscii(size_t max_width) const {
  size_t peak = 0;
  for (size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    char label[64];
    std::snprintf(label, sizeof(label), "[%8.3f, %8.3f) %6zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out << label;
    size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / std::max<size_t>(peak, 1);
    for (size_t b = 0; b < bar; ++b) out << '#';
    out << '\n';
  }
  return out.str();
}

RuntimeSummary SummarizeRuntimes(const std::vector<double>& seconds) {
  RuntimeSummary s;
  if (seconds.empty()) return s;
  RunningStats rs;
  for (double v : seconds) rs.Add(v);
  s.min_seconds = rs.min();
  s.max_seconds = rs.max();
  s.avg_seconds = rs.mean();
  s.trials = rs.count();
  return s;
}

}  // namespace pcor
