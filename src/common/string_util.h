#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pcor {
namespace strings {

/// \brief Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// \brief Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// \brief Strips ASCII whitespace from both ends.
std::string Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Lower-cases ASCII characters.
std::string ToLower(std::string_view s);

/// \brief printf-style formatting into std::string.
std::string Format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Renders seconds as "1.5s", "2m 03s", or "450ms" as appropriate.
std::string HumanDuration(double seconds);

/// \brief Parses a non-negative integer; returns fallback on failure.
size_t ParseSizeOr(std::string_view s, size_t fallback);

/// \brief Parses a double; returns fallback on failure.
double ParseDoubleOr(std::string_view s, double fallback);

/// \brief Reads an environment variable as size_t/double, with fallback.
size_t EnvSizeOr(const char* name, size_t fallback);
double EnvDoubleOr(const char* name, double fallback);

/// \brief Reads an environment variable as a string; returns fallback when
/// unset (an empty-but-set variable is returned as the empty string).
std::string EnvStringOr(const char* name, std::string_view fallback);

}  // namespace strings
}  // namespace pcor
