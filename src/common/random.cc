#include "src/common/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/logging.h"

namespace pcor {

uint64_t SplitMix64Mix(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  return SplitMix64Mix(*state += 0x9e3779b97f4a7c15ULL);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PCOR_CHECK(bound > 0) << "NextBounded requires bound > 0";
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDoublePositive() {
  return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PCOR_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextGumbel() { return -std::log(-std::log(NextDoublePositive())); }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDoublePositive();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLaplace(double scale) {
  PCOR_CHECK(scale > 0) << "Laplace scale must be positive";
  double u = NextDouble() - 0.5;
  return -scale * std::copysign(std::log(1.0 - 2.0 * std::abs(u)), u);
}

double Rng::NextExponential(double rate) {
  PCOR_CHECK(rate > 0) << "Exponential rate must be positive";
  return -std::log(NextDoublePositive()) / rate;
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  PCOR_CHECK(!weights.empty()) << "NextDiscrete requires weights";
  double total = 0.0;
  for (double w : weights) {
    PCOR_CHECK(w >= 0.0) << "NextDiscrete weights must be non-negative";
    total += w;
  }
  PCOR_CHECK(total > 0.0) << "NextDiscrete weights must have positive sum";
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point rounding can push target past the last boundary; return
  // the last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PCOR_CHECK(k <= n) << "cannot sample " << k << " of " << n;
  std::vector<size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense regime: partial Fisher-Yates.
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + static_cast<size_t>(NextBounded(n - i));
      std::swap(all[i], all[j]);
    }
    out.assign(all.begin(), all.begin() + static_cast<ptrdiff_t>(k));
  } else {
    // Sparse regime: rejection into a hash set.
    std::unordered_set<size_t> seen;
    seen.reserve(k * 2);
    while (seen.size() < k) seen.insert(static_cast<size_t>(NextBounded(n)));
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa0761d6478bd642fULL); }

}  // namespace pcor
