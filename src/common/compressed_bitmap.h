#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/bitvector.h"

namespace pcor {

/// \brief Roaring-style compressed bitmap over row ids.
///
/// The row space is split into 64Ki-row chunks; each chunk is stored as the
/// cheapest of three containers:
///   - empty: no set bits, no storage;
///   - array: at most kArrayMax sorted 16-bit in-chunk offsets (sparse);
///   - dense: the chunk's raw 64-bit words (the break-even point — an array
///     of kArrayMax offsets costs exactly as much as a full dense chunk).
///
/// This is the PopulationIndex's storage format for per-(attribute, value)
/// bitmaps at million-row scale: value bitmaps are sparse (density 1/|A|
/// per attribute), so the working set shrinks by the chunk density rather
/// than staying at n/8 bytes per value. Every operation is defined to be
/// *bit-identical* to the equivalent dense BitVector computation — the
/// compressed index is a representation change, never an approximation —
/// and the container-pair kernels (array∩array galloping, array∩dense
/// probe, dense∩dense words) are what keep the probe hot path fast.
///
/// Immutable after construction; safe to share across threads.
class CompressedBitmap {
 public:
  /// Rows per chunk (64Ki) and words per full chunk.
  static constexpr size_t kChunkBits = size_t{1} << 16;
  static constexpr size_t kChunkWords = kChunkBits / 64;
  /// Largest cardinality stored as a sorted offset array. At 4096 offsets
  /// the array (2 bytes each) costs exactly one dense chunk (8 KiB).
  static constexpr size_t kArrayMax = 4096;

  CompressedBitmap() = default;

  /// \brief Compresses a dense bitmap, chunk by chunk.
  static CompressedBitmap FromBitVector(const BitVector& bits);

  /// \brief Decompresses back to a dense bitmap (round-trip exact).
  BitVector ToBitVector() const;

  size_t size() const { return size_; }
  /// \brief Number of set bits (cached at construction).
  size_t count() const { return count_; }

  /// \brief Bytes of the compressed working set: container heap storage
  /// plus the fixed per-chunk bookkeeping structs. Savings only appear
  /// when chunk cardinality sits well below kArrayMax — an array of
  /// kArrayMax offsets costs exactly one dense chunk.
  size_t MemoryBytes() const;

  /// \brief out |= this. `out` must already have size() bits.
  void OrIntoDense(BitVector* out) const;

  /// \brief inout &= this — the array∩dense probe path when this bitmap is
  /// sparse. `inout` must have size() bits.
  void AndIntoDense(BitVector* inout) const;

  /// \brief |this ∩ other| without materializing, via the container-pair
  /// kernels. Sizes must match.
  size_t AndCountWith(const CompressedBitmap& other) const;

  /// \brief |this ∩ dense| without materializing.
  size_t AndCountDense(const BitVector& other) const;

  /// \brief out = a ∩ b, reusing out's container storage (allocation-free
  /// in steady state). Intersections of dense chunks stay dense even when
  /// the result is sparse — a representation (not correctness) choice that
  /// keeps the kernel single-pass.
  static void IntersectInto(const CompressedBitmap& a,
                            const CompressedBitmap& b, CompressedBitmap* out);

  /// \brief Container census for benchmarks and the equivalence tests.
  struct Census {
    size_t empty_chunks = 0;
    size_t array_chunks = 0;
    size_t dense_chunks = 0;
  };
  Census ChunkCensus() const;

 private:
  struct Chunk {
    enum class Kind : uint8_t { kEmpty, kArray, kDense };
    Kind kind = Kind::kEmpty;
    std::vector<uint16_t> array;  ///< sorted in-chunk offsets (kArray)
    std::vector<uint64_t> words;  ///< raw chunk words (kDense)

    void MakeEmpty() {
      kind = Kind::kEmpty;
      array.clear();
      words.clear();
    }
  };

  /// \brief Words the chunk at `chunk_index` spans in a dense bitmap.
  size_t ChunkWordCount(size_t chunk_index) const;

  size_t size_ = 0;
  size_t count_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace pcor
