#include "src/common/compressed_bitmap.h"

#include <algorithm>
#include <cstring>

#include "src/common/logging.h"

namespace pcor {
namespace {

size_t PopcountWords(const uint64_t* words, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words[i]));
  }
  return count;
}

// Intersects two sorted offset arrays into `out` (which may alias neither
// input). Uses a linear merge when the sizes are comparable and switches to
// galloping (exponential probe + binary search of the smaller array into the
// larger) when one side is much smaller — the classic roaring heuristic.
void IntersectArrays(const std::vector<uint16_t>& a,
                     const std::vector<uint16_t>& b,
                     std::vector<uint16_t>* out) {
  out->clear();
  if (a.empty() || b.empty()) return;
  const std::vector<uint16_t>* small = &a;
  const std::vector<uint16_t>* large = &b;
  if (small->size() > large->size()) std::swap(small, large);
  if (large->size() / 32 > small->size()) {
    // Galloping: advance a moving lower bound through the large array.
    auto it = large->begin();
    for (uint16_t v : *small) {
      it = std::lower_bound(it, large->end(), v);
      if (it == large->end()) break;
      if (*it == v) out->push_back(v);
    }
    return;
  }
  // Linear merge.
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

size_t IntersectArraysCount(const std::vector<uint16_t>& a,
                            const std::vector<uint16_t>& b) {
  if (a.empty() || b.empty()) return 0;
  const std::vector<uint16_t>* small = &a;
  const std::vector<uint16_t>* large = &b;
  if (small->size() > large->size()) std::swap(small, large);
  size_t count = 0;
  if (large->size() / 32 > small->size()) {
    auto it = large->begin();
    for (uint16_t v : *small) {
      it = std::lower_bound(it, large->end(), v);
      if (it == large->end()) break;
      if (*it == v) ++count;
    }
    return count;
  }
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool WordTest(const uint64_t* words, uint16_t offset) {
  return (words[offset >> 6] >> (offset & 63)) & 1u;
}

size_t IntersectArrayDenseCount(const std::vector<uint16_t>& array,
                                const uint64_t* words) {
  size_t count = 0;
  for (uint16_t v : array) count += WordTest(words, v) ? 1 : 0;
  return count;
}

}  // namespace

size_t CompressedBitmap::ChunkWordCount(size_t chunk_index) const {
  const size_t total_words = (size_ + 63) / 64;
  const size_t first_word = chunk_index * kChunkWords;
  return std::min(kChunkWords, total_words - first_word);
}

CompressedBitmap CompressedBitmap::FromBitVector(const BitVector& bits) {
  CompressedBitmap out;
  out.size_ = bits.size();
  const size_t num_chunks = (bits.size() + kChunkBits - 1) / kChunkBits;
  out.chunks_.resize(num_chunks);
  const uint64_t* words = bits.data();
  for (size_t c = 0; c < num_chunks; ++c) {
    const uint64_t* chunk_words = words + c * kChunkWords;
    const size_t chunk_word_count = out.ChunkWordCount(c);
    const size_t card = PopcountWords(chunk_words, chunk_word_count);
    Chunk& chunk = out.chunks_[c];
    if (card == 0) {
      chunk.kind = Chunk::Kind::kEmpty;
    } else if (card <= kArrayMax) {
      chunk.kind = Chunk::Kind::kArray;
      chunk.array.reserve(card);
      for (size_t w = 0; w < chunk_word_count; ++w) {
        uint64_t word = chunk_words[w];
        while (word) {
          const unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
          chunk.array.push_back(static_cast<uint16_t>(w * 64 + bit));
          word &= word - 1;
        }
      }
    } else {
      chunk.kind = Chunk::Kind::kDense;
      chunk.words.assign(chunk_words, chunk_words + chunk_word_count);
    }
    out.count_ += card;
  }
  return out;
}

BitVector CompressedBitmap::ToBitVector() const {
  BitVector out(size_, false);
  OrIntoDense(&out);
  return out;
}

size_t CompressedBitmap::MemoryBytes() const {
  size_t bytes = chunks_.capacity() * sizeof(Chunk);
  for (const Chunk& chunk : chunks_) {
    bytes += chunk.array.capacity() * sizeof(uint16_t);
    bytes += chunk.words.capacity() * sizeof(uint64_t);
  }
  return bytes;
}

void CompressedBitmap::OrIntoDense(BitVector* out) const {
  PCOR_CHECK(out->size() == size_) << "OrIntoDense size mismatch";
  uint64_t* words = out->mutable_data();
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk& chunk = chunks_[c];
    uint64_t* chunk_words = words + c * kChunkWords;
    switch (chunk.kind) {
      case Chunk::Kind::kEmpty:
        break;
      case Chunk::Kind::kArray:
        for (uint16_t v : chunk.array) {
          chunk_words[v >> 6] |= uint64_t{1} << (v & 63);
        }
        break;
      case Chunk::Kind::kDense: {
        const size_t n = chunk.words.size();
        for (size_t w = 0; w < n; ++w) chunk_words[w] |= chunk.words[w];
        break;
      }
    }
  }
}

void CompressedBitmap::AndIntoDense(BitVector* inout) const {
  PCOR_CHECK(inout->size() == size_) << "AndIntoDense size mismatch";
  uint64_t* words = inout->mutable_data();
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk& chunk = chunks_[c];
    uint64_t* chunk_words = words + c * kChunkWords;
    const size_t chunk_word_count = ChunkWordCount(c);
    switch (chunk.kind) {
      case Chunk::Kind::kEmpty:
        std::memset(chunk_words, 0, chunk_word_count * sizeof(uint64_t));
        break;
      case Chunk::Kind::kArray: {
        // Probe each offset against the (pre-AND) dense words, collect the
        // survivors, then rebuild the chunk from them. The survivor buffer
        // is bounded by kArrayMax, so it lives on the stack.
        uint16_t kept[kArrayMax];
        size_t num_kept = 0;
        for (uint16_t v : chunk.array) {
          if (WordTest(chunk_words, v)) kept[num_kept++] = v;
        }
        std::memset(chunk_words, 0, chunk_word_count * sizeof(uint64_t));
        for (size_t i = 0; i < num_kept; ++i) {
          chunk_words[kept[i] >> 6] |= uint64_t{1} << (kept[i] & 63);
        }
        break;
      }
      case Chunk::Kind::kDense: {
        const size_t n = chunk.words.size();
        for (size_t w = 0; w < n; ++w) chunk_words[w] &= chunk.words[w];
        break;
      }
    }
  }
}

size_t CompressedBitmap::AndCountWith(const CompressedBitmap& other) const {
  PCOR_CHECK(size_ == other.size_) << "AndCountWith size mismatch";
  size_t count = 0;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk& a = chunks_[c];
    const Chunk& b = other.chunks_[c];
    if (a.kind == Chunk::Kind::kEmpty || b.kind == Chunk::Kind::kEmpty) {
      continue;
    }
    if (a.kind == Chunk::Kind::kArray && b.kind == Chunk::Kind::kArray) {
      count += IntersectArraysCount(a.array, b.array);
    } else if (a.kind == Chunk::Kind::kArray) {
      count += IntersectArrayDenseCount(a.array, b.words.data());
    } else if (b.kind == Chunk::Kind::kArray) {
      count += IntersectArrayDenseCount(b.array, a.words.data());
    } else {
      const size_t n = a.words.size();
      for (size_t w = 0; w < n; ++w) {
        count += static_cast<size_t>(
            __builtin_popcountll(a.words[w] & b.words[w]));
      }
    }
  }
  return count;
}

size_t CompressedBitmap::AndCountDense(const BitVector& other) const {
  PCOR_CHECK(size_ == other.size()) << "AndCountDense size mismatch";
  const uint64_t* words = other.data();
  size_t count = 0;
  for (size_t c = 0; c < chunks_.size(); ++c) {
    const Chunk& chunk = chunks_[c];
    const uint64_t* chunk_words = words + c * kChunkWords;
    switch (chunk.kind) {
      case Chunk::Kind::kEmpty:
        break;
      case Chunk::Kind::kArray:
        count += IntersectArrayDenseCount(chunk.array, chunk_words);
        break;
      case Chunk::Kind::kDense: {
        const size_t n = chunk.words.size();
        for (size_t w = 0; w < n; ++w) {
          count += static_cast<size_t>(
              __builtin_popcountll(chunk.words[w] & chunk_words[w]));
        }
        break;
      }
    }
  }
  return count;
}

void CompressedBitmap::IntersectInto(const CompressedBitmap& a,
                                     const CompressedBitmap& b,
                                     CompressedBitmap* out) {
  PCOR_CHECK(a.size_ == b.size_) << "IntersectInto size mismatch";
  PCOR_CHECK(out != &a && out != &b)
      << "IntersectInto must not alias an input";
  out->size_ = a.size_;
  out->count_ = 0;
  out->chunks_.resize(a.chunks_.size());
  for (size_t c = 0; c < a.chunks_.size(); ++c) {
    const Chunk& ca = a.chunks_[c];
    const Chunk& cb = b.chunks_[c];
    Chunk& co = out->chunks_[c];
    if (ca.kind == Chunk::Kind::kEmpty || cb.kind == Chunk::Kind::kEmpty) {
      co.MakeEmpty();
      continue;
    }
    if (ca.kind == Chunk::Kind::kArray && cb.kind == Chunk::Kind::kArray) {
      co.words.clear();
      IntersectArrays(ca.array, cb.array, &co.array);
      co.kind = co.array.empty() ? Chunk::Kind::kEmpty : Chunk::Kind::kArray;
      out->count_ += co.array.size();
    } else if (ca.kind == Chunk::Kind::kArray ||
               cb.kind == Chunk::Kind::kArray) {
      const std::vector<uint16_t>& array =
          ca.kind == Chunk::Kind::kArray ? ca.array : cb.array;
      const uint64_t* words =
          ca.kind == Chunk::Kind::kArray ? cb.words.data() : ca.words.data();
      co.words.clear();
      co.array.clear();
      for (uint16_t v : array) {
        if (WordTest(words, v)) co.array.push_back(v);
      }
      co.kind = co.array.empty() ? Chunk::Kind::kEmpty : Chunk::Kind::kArray;
      out->count_ += co.array.size();
    } else {
      co.array.clear();
      const size_t n = ca.words.size();
      co.words.resize(n);
      size_t card = 0;
      for (size_t w = 0; w < n; ++w) {
        co.words[w] = ca.words[w] & cb.words[w];
        card += static_cast<size_t>(__builtin_popcountll(co.words[w]));
      }
      if (card == 0) {
        co.MakeEmpty();
      } else {
        co.kind = Chunk::Kind::kDense;
      }
      out->count_ += card;
    }
  }
}

CompressedBitmap::Census CompressedBitmap::ChunkCensus() const {
  Census census;
  for (const Chunk& chunk : chunks_) {
    switch (chunk.kind) {
      case Chunk::Kind::kEmpty:
        ++census.empty_chunks;
        break;
      case Chunk::Kind::kArray:
        ++census.array_chunks;
        break;
      case Chunk::Kind::kDense:
        ++census.dense_chunks;
        break;
    }
  }
  return census;
}

}  // namespace pcor
