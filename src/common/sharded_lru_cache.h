#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/threading.h"

namespace pcor {

/// \brief Tuning knobs for ShardedLruCache.
struct LruCacheOptions {
  /// Approximate resident-byte budget across all shards (caller-supplied
  /// per-entry costs plus a fixed bookkeeping overhead). 0 = unbounded.
  size_t max_bytes = size_t{64} << 20;
  /// Upper bound on resident entries across all shards. 0 = unbounded.
  size_t max_entries = 0;
  /// Number of shards; rounded up to a power of two. 0 = one shard per
  /// hardware thread (also rounded up), capped at 64; explicit requests
  /// are honored beyond the cap.
  size_t num_shards = 0;
  /// Ablation mode reproducing the pre-LRU behavior: when an insert pushes
  /// a shard over budget, the whole shard is dropped instead of evicting
  /// entries one by one from the cold end. With num_shards = 1 this is
  /// exactly the old single-map wholesale clear.
  bool wholesale_clear = false;
  /// Route each thread to a node-local shard group: the cache keeps one
  /// full set of `num_shards` shards per NUMA node and a thread only ever
  /// touches its own node's group, so hot cache lines never bounce across
  /// sockets. A key answered on one node may be recomputed on another —
  /// answer-invariant because the cache is a pure memo — while the global
  /// byte/entry budgets still cover all groups together. No-op on
  /// single-node hosts.
  bool numa_aware = false;
  /// Resize the global byte budget from observed pressure: every
  /// adapt_interval inserts (or an explicit AdaptBudget() call) the cache
  /// inspects the hit/eviction counters it already maintains. Evictions
  /// with a useful hit rate mean the working set is being squeezed — the
  /// budget doubles (up to adapt_max_bytes); a cold window with no
  /// eviction pressure halves it (down to adapt_min_bytes), returning
  /// memory the workload is not using. max_bytes is the starting point.
  bool adaptive_budget = false;
  size_t adapt_interval = 1024;
  size_t adapt_min_bytes = size_t{1} << 20;
  /// 0 = 4 * max_bytes.
  size_t adapt_max_bytes = 0;
};

/// \brief Counter snapshot; taken with Stats() (locks each shard briefly).
struct LruCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;       ///< entries dropped to satisfy a budget
  size_t invalidations = 0;   ///< entries dropped by EraseIf (staleness)
  size_t resident_bytes = 0;  ///< approximate bytes currently cached
  size_t resident_entries = 0;
};

/// \brief Thread-safe LRU cache sharded by key hash.
///
/// N power-of-two shards, each a hash map plus an intrusive doubly-linked
/// recency list threaded through the map's nodes (unordered_map guarantees
/// pointer stability of elements, so the links never dangle across
/// rehashes). A lookup takes exactly one shard mutex; distinct shards never
/// contend. Eviction walks the cold end of the per-shard list until the
/// shard is back under its slice of the byte/entry budgets.
///
/// V is returned by copy from Get(), so it should be cheap to copy — a
/// shared_ptr, an index, a small POD. The cache is a pure memo: dropping
/// any entry at any time must be answer-invariant for the caller.
template <typename K, typename V, typename Hash = std::hash<K>>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(LruCacheOptions options = {})
      : options_(options),
        num_groups_(options.numa_aware
                        ? std::max<size_t>(SystemTopology().num_nodes, 1)
                        : 1),
        shards_per_group_(ResolveShardCount(options.num_shards)),
        shards_(num_groups_ * shards_per_group_) {
    shard_mask_ = shards_per_group_ - 1;
    current_max_bytes_.store(options_.max_bytes, std::memory_order_relaxed);
    // Per-shard slices of the global budgets (rounded up so tiny budgets
    // still admit at least something per shard).
    const size_t n = shards_.size();
    shard_max_bytes_.store(
        options_.max_bytes == 0 ? 0 : (options_.max_bytes + n - 1) / n,
        std::memory_order_relaxed);
    shard_max_entries_ =
        options_.max_entries == 0 ? 0 : (options_.max_entries + n - 1) / n;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// \brief Looks up `key`; on a hit copies the value into `*value`,
  /// refreshes the entry's recency, and returns true.
  bool Get(const K& key, V* value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    MoveToFront(&shard, &it->second);
    *value = it->second.value;
    return true;
  }

  /// \brief Inserts or refreshes `key`. `cost_bytes` is the caller's
  /// approximation of the value's footprint; the cache adds its own
  /// per-entry bookkeeping overhead before charging the budget.
  void Put(const K& key, V value, size_t cost_bytes) {
    const size_t charged = cost_bytes + kEntryOverhead;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.bytes += charged - it->second.charged_bytes;
      it->second.value = std::move(value);
      it->second.charged_bytes = charged;
      MoveToFront(&shard, &it->second);
    } else {
      auto [ins, inserted] = shard.map.try_emplace(key);
      Node& node = ins->second;
      node.key = &ins->first;
      node.value = std::move(value);
      node.charged_bytes = charged;
      LinkFront(&shard, &node);
      shard.bytes += charged;
    }
    EnforceBudget(&shard);
    if (options_.adaptive_budget && options_.adapt_interval != 0 &&
        (put_ops_.fetch_add(1, std::memory_order_relaxed) + 1) %
                options_.adapt_interval ==
            0) {
      AdaptBudget();
    }
  }

  /// rief One adaptation step over the counter window since the last
  /// call (see LruCacheOptions::adaptive_budget). Runs automatically every
  /// adapt_interval inserts; public so tests and benches can step the
  /// controller deterministically.
  void AdaptBudget() {
    if (options_.max_bytes == 0) return;
    std::lock_guard<std::mutex> lock(adapt_mu_);
    const size_t hits = hits_.load(std::memory_order_relaxed);
    const size_t misses = misses_.load(std::memory_order_relaxed);
    const size_t evictions = evictions_.load(std::memory_order_relaxed);
    const size_t window_hits = hits - last_hits_;
    const size_t window_misses = misses - last_misses_;
    const size_t window_evictions = evictions - last_evictions_;
    last_hits_ = hits;
    last_misses_ = misses;
    last_evictions_ = evictions;
    const size_t window = window_hits + window_misses;
    if (window == 0) return;
    const double hit_rate =
        static_cast<double>(window_hits) / static_cast<double>(window);
    const size_t floor_bytes = options_.adapt_min_bytes;
    const size_t ceiling_bytes = options_.adapt_max_bytes != 0
                                     ? options_.adapt_max_bytes
                                     : options_.max_bytes * 4;
    size_t budget = current_max_bytes_.load(std::memory_order_relaxed);
    if (window_evictions > 0 && hit_rate >= 0.10) {
      // Useful entries are being squeezed out: grow toward the ceiling.
      budget = std::min(budget * 2, ceiling_bytes);
    } else if (window_evictions == 0 && hit_rate <= 0.01 &&
               budget > floor_bytes) {
      // Cold window with headroom to spare: hand memory back.
      budget = std::max(budget / 2, floor_bytes);
    } else {
      return;
    }
    current_max_bytes_.store(budget, std::memory_order_relaxed);
    const size_t n = shards_.size();
    shard_max_bytes_.store((budget + n - 1) / n, std::memory_order_relaxed);
    // Shards above the shrunk slice converge lazily on their next insert.
  }

  /// rief The byte budget the adaptive controller currently enforces
  /// (equals options().max_bytes when adaptation is off or idle).
  size_t current_max_bytes() const {
    return current_max_bytes_.load(std::memory_order_relaxed);
  }

  /// \brief Erases every resident entry whose key satisfies `pred`,
  /// returning how many were dropped. Counted as *invalidations*, never as
  /// evictions: evictions are capacity pressure shedding still-valid memo
  /// entries, while an EraseIf sweep removes entries the caller has
  /// declared stale (e.g. superseded epochs) — the two must stay
  /// distinguishable in the stats or cache-pressure telemetry lies.
  /// Locks one shard at a time; concurrent Get/Put on other shards
  /// proceed, and an entry inserted into an already-swept shard during the
  /// walk survives (callers invalidating by epoch must therefore sweep
  /// only epochs no writer produces anymore).
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t erased = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.map.begin(); it != shard.map.end();) {
        if (pred(it->first)) {
          Node* node = &it->second;
          Unlink(&shard, node);
          shard.bytes -= node->charged_bytes;
          it = shard.map.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    invalidations_.fetch_add(erased, std::memory_order_relaxed);
    return erased;
  }

  /// \brief Drops every entry (not counted as evictions).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.mru = shard.lru = nullptr;
      shard.bytes = 0;
    }
  }

  LruCacheStats Stats() const {
    LruCacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    stats.invalidations = invalidations_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      stats.resident_bytes += shard.bytes;
      stats.resident_entries += shard.map.size();
    }
    return stats;
  }

  /// \brief Lock-free counter reads for hot-path callers that only need
  /// one number (Stats() locks every shard to sum residency).
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }

  size_t num_shards() const { return shards_.size(); }
  /// rief Shard groups (NUMA nodes covered); 1 unless numa_aware.
  size_t num_shard_groups() const { return num_groups_; }
  const LruCacheOptions& options() const { return options_; }

 private:
  struct Node {
    const K* key = nullptr;  ///< points at the owning map entry's key
    V value{};
    size_t charged_bytes = 0;
    Node* prev = nullptr;  ///< toward MRU
    Node* next = nullptr;  ///< toward LRU
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<K, Node, Hash> map;
    Node* mru = nullptr;
    Node* lru = nullptr;
    size_t bytes = 0;
  };

  // Beyond the caller's value cost, every resident entry pays for a map
  // node (key + Node) plus hash-table control structures.
  static constexpr size_t kEntryOverhead =
      sizeof(K) + sizeof(Node) + 4 * sizeof(void*);

  static size_t ResolveShardCount(size_t requested) {
    size_t n = requested;
    if (n == 0) {
      // Auto: one shard per hardware thread, capped — explicit requests
      // are honored beyond the cap.
      n = static_cast<size_t>(std::thread::hardware_concurrency());
      if (n == 0) n = 1;
      if (n > 64) n = 64;
    }
    size_t pow2 = 1;
    while (pow2 < n) pow2 <<= 1;
    return pow2;
  }

  Shard& ShardFor(const K& key) {
    // unordered_map consumes the low bits of the same hash, so pick the
    // shard from well-mixed high bits to keep the two partitions
    // independent even for weak hashes.
    const uint64_t h =
        static_cast<uint64_t>(Hash{}(key)) * 0x9e3779b97f4a7c15ULL;
    const size_t within_group = (h >> 48) & shard_mask_;
    if (num_groups_ == 1) return shards_[within_group];
    // Node-local routing: the calling thread only touches its own node's
    // shard group (see LruCacheOptions::numa_aware).
    const size_t group = CurrentNumaNode() % num_groups_;
    return shards_[group * shards_per_group_ + within_group];
  }

  void LinkFront(Shard* shard, Node* node) {
    node->prev = nullptr;
    node->next = shard->mru;
    if (shard->mru != nullptr) shard->mru->prev = node;
    shard->mru = node;
    if (shard->lru == nullptr) shard->lru = node;
  }

  void Unlink(Shard* shard, Node* node) {
    if (node->prev != nullptr) {
      node->prev->next = node->next;
    } else {
      shard->mru = node->next;
    }
    if (node->next != nullptr) {
      node->next->prev = node->prev;
    } else {
      shard->lru = node->prev;
    }
    node->prev = node->next = nullptr;
  }

  void MoveToFront(Shard* shard, Node* node) {
    if (shard->mru == node) return;
    Unlink(shard, node);
    LinkFront(shard, node);
  }

  bool OverBudget(const Shard& shard) const {
    const size_t max_bytes =
        shard_max_bytes_.load(std::memory_order_relaxed);
    if (max_bytes != 0 && shard.bytes > max_bytes) return true;
    if (shard_max_entries_ != 0 && shard.map.size() > shard_max_entries_) {
      return true;
    }
    return false;
  }

  void EnforceBudget(Shard* shard) {
    if (!OverBudget(*shard)) return;
    if (options_.wholesale_clear) {
      // Pre-LRU semantics: drop everything except the entry just touched
      // (the old single-map code cleared, then inserted the new result).
      Node* keep = shard->mru;
      if (keep == nullptr) return;
      const size_t dropped = shard->map.size() - 1;
      if (dropped == 0) return;
      K key = *keep->key;
      Node survivor = std::move(*keep);
      shard->map.clear();
      shard->mru = shard->lru = nullptr;
      shard->bytes = 0;
      auto [ins, inserted] = shard->map.try_emplace(std::move(key));
      ins->second.value = std::move(survivor.value);
      ins->second.charged_bytes = survivor.charged_bytes;
      ins->second.key = &ins->first;
      LinkFront(shard, &ins->second);
      shard->bytes = survivor.charged_bytes;
      evictions_.fetch_add(dropped, std::memory_order_relaxed);
      return;
    }
    // Real per-entry eviction from the cold end. Never evict the MRU entry:
    // a single value larger than the shard budget still has to be servable
    // right after its own insert.
    while (OverBudget(*shard) && shard->lru != nullptr &&
           shard->lru != shard->mru) {
      Node* victim = shard->lru;
      Unlink(shard, victim);
      shard->bytes -= victim->charged_bytes;
      // find() only reads the key before the node dies, and erasing by
      // iterator neither copies nor re-hashes it — this is the hottest
      // path under memory pressure.
      shard->map.erase(shard->map.find(*victim->key));
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  LruCacheOptions options_;
  size_t num_groups_ = 1;
  size_t shards_per_group_ = 1;
  std::vector<Shard> shards_;
  size_t shard_mask_ = 0;
  std::atomic<size_t> shard_max_bytes_{0};
  size_t shard_max_entries_ = 0;
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> evictions_{0};
  std::atomic<size_t> invalidations_{0};
  // Adaptive-budget controller state (all guarded by adapt_mu_ except the
  // published budgets above).
  std::mutex adapt_mu_;
  std::atomic<size_t> put_ops_{0};
  std::atomic<size_t> current_max_bytes_{0};
  size_t last_hits_ = 0;     // guarded by adapt_mu_
  size_t last_misses_ = 0;   // guarded by adapt_mu_
  size_t last_evictions_ = 0;  // guarded by adapt_mu_
};

}  // namespace pcor
