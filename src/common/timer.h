#pragma once

#include <chrono>

namespace pcor {

/// \brief Monotonic wall-clock stopwatch used by the experiment harness.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// \brief Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pcor
