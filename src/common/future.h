#pragma once

#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "src/common/logging.h"

namespace pcor {

/// \brief Thrown by Future<T>::Get when its Promise was destroyed without
/// delivering a value — the async analogue of a dangling reference, always
/// a server bug, never a client-visible failure mode.
class BrokenPromise : public std::runtime_error {
 public:
  BrokenPromise() : std::runtime_error("promise abandoned without a value") {}
};

namespace future_detail {

template <typename T>
struct SharedState {
  std::mutex mu;
  std::condition_variable ready_cv;
  std::optional<T> value;
  std::exception_ptr error;
  bool ready = false;

  void Deliver(std::optional<T> v, std::exception_ptr e) {
    {
      std::unique_lock<std::mutex> lock(mu);
      PCOR_CHECK(!ready) << "promise fulfilled twice";
      value = std::move(v);
      error = std::move(e);
      ready = true;
    }
    ready_cv.notify_all();
  }
};

}  // namespace future_detail

/// \brief Single-shot value consumer paired with a Promise<T>.
///
/// Deliberately smaller than std::future: movable, one Get() that blocks
/// and consumes, timed readiness probing, and exception propagation from
/// the producer side (a worker that threw surfaces its exception at the
/// submitting client's Get(), not inside the server). The serving
/// front-end completes one of these per accepted request.
template <typename T>
class Future {
 public:
  Future() = default;

  // Move-only: Get() consumes, so a copy would either double-move the
  // value or dereference the emptied state after the original's Get().
  Future(Future&&) noexcept = default;
  Future& operator=(Future&&) noexcept = default;
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;

  bool valid() const { return state_ != nullptr; }

  /// \brief True once a value or an exception has been delivered.
  bool Ready() const {
    PCOR_CHECK(valid()) << "Ready() on an invalid Future";
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->ready;
  }

  /// \brief Blocks until delivery.
  void Wait() const {
    PCOR_CHECK(valid()) << "Wait() on an invalid Future";
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->ready_cv.wait(lock, [this] { return state_->ready; });
  }

  /// \brief Blocks up to `timeout`; true iff the result became ready.
  template <typename Rep, typename Period>
  bool WaitFor(std::chrono::duration<Rep, Period> timeout) const {
    PCOR_CHECK(valid()) << "WaitFor() on an invalid Future";
    std::unique_lock<std::mutex> lock(state_->mu);
    return state_->ready_cv.wait_for(lock, timeout,
                                     [this] { return state_->ready; });
  }

  /// \brief Blocks until delivery, then returns the value — or rethrows
  /// the producer's exception (BrokenPromise when the producer vanished).
  /// Consumes the future: valid() is false afterwards.
  ///
  /// The error is MOVED out of the shared state before rethrowing: once
  /// delivered, the exception object's remaining lifetime belongs to this
  /// thread alone. (exception_ptr refcounting lives in the uninstrumented
  /// C++ runtime, so cross-thread teardown of a shared exception has no
  /// TSan-visible synchronization — keeping it single-threaded sidesteps
  /// the whole class of reports.)
  T Get() {
    PCOR_CHECK(valid()) << "Get() on an invalid Future";
    std::shared_ptr<future_detail::SharedState<T>> state = std::move(state_);
    std::unique_lock<std::mutex> lock(state->mu);
    state->ready_cv.wait(lock, [&state] { return state->ready; });
    if (state->error) {
      std::exception_ptr error = std::move(state->error);
      state->error = nullptr;
      lock.unlock();
      std::rethrow_exception(std::move(error));
    }
    return std::move(*state->value);
  }

 private:
  template <typename U>
  friend class Promise;
  explicit Future(std::shared_ptr<future_detail::SharedState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<future_detail::SharedState<T>> state_;
};

/// \brief Single-shot value producer. Destroying an unfulfilled promise
/// whose future is still alive delivers BrokenPromise, so a crashed or
/// early-exiting worker can never strand a waiting client.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<future_detail::SharedState<T>>()) {}

  Promise(Promise&&) noexcept = default;
  Promise& operator=(Promise&& other) noexcept {
    AbandonIfPending();
    state_ = std::move(other.state_);
    future_taken_ = other.future_taken_;
    return *this;
  }
  Promise(const Promise&) = delete;
  Promise& operator=(const Promise&) = delete;

  ~Promise() { AbandonIfPending(); }

  /// \brief The paired future; may be taken once.
  Future<T> GetFuture() {
    PCOR_CHECK(state_ != nullptr) << "GetFuture() on a moved-from Promise";
    PCOR_CHECK(!future_taken_) << "GetFuture() called twice";
    future_taken_ = true;
    return Future<T>(state_);
  }

  void Set(T value) {
    PCOR_CHECK(state_ != nullptr) << "Set() on a moved-from Promise";
    state_->Deliver(std::move(value), nullptr);
  }

  void SetException(std::exception_ptr error) {
    PCOR_CHECK(state_ != nullptr)
        << "SetException() on a moved-from Promise";
    PCOR_CHECK(error != nullptr) << "SetException(nullptr)";
    state_->Deliver(std::nullopt, std::move(error));
  }

 private:
  void AbandonIfPending() {
    if (state_ == nullptr) return;
    std::unique_lock<std::mutex> lock(state_->mu);
    const bool pending = !state_->ready;
    lock.unlock();
    if (pending) {
      state_->Deliver(std::nullopt,
                      std::make_exception_ptr(BrokenPromise()));
    }
    state_.reset();
  }

  std::shared_ptr<future_detail::SharedState<T>> state_;
  bool future_taken_ = false;
};

}  // namespace pcor
