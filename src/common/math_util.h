#pragma once

#include <cstddef>
#include <vector>

namespace pcor {

/// \brief Numerical routines shared by the DP mechanisms and detectors.
///
/// Everything here is deterministic, header-declared and unit-tested against
/// closed forms or high-precision references.
namespace math {

/// \brief log(sum_i exp(x[i])) computed stably. Entries equal to -inf are
/// skipped; returns -inf when all entries are -inf or the vector is empty.
double LogSumExp(const std::vector<double>& x);

/// \brief Stable softmax of x (entries may be -inf, which map to 0).
/// Returns an all-zero vector when every entry is -inf.
std::vector<double> Softmax(const std::vector<double>& x);

/// \brief Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// \brief Regularized incomplete beta I_x(a, b) for a,b > 0, x in [0,1].
double RegularizedIncompleteBeta(double a, double b, double x);

/// \brief Inverse of the regularized incomplete beta in x for fixed (a, b).
double InverseRegularizedIncompleteBeta(double a, double b, double p);

/// \brief CDF of Student's t distribution with nu degrees of freedom.
double StudentTCdf(double t, double nu);

/// \brief Quantile (inverse CDF) of Student's t with nu degrees of freedom.
double StudentTQuantile(double p, double nu);

/// \brief Standard normal CDF.
double NormalCdf(double x);

/// \brief Standard normal quantile (Acklam's rational approximation,
/// refined with one Halley step).
double NormalQuantile(double p);

/// \brief Grubbs' test two-sided critical value for sample size n at
/// significance alpha: G_crit = ((n-1)/sqrt(n)) * sqrt(t^2 / (n-2+t^2)),
/// where t is the upper alpha/(2n) quantile of Student-t with n-2 dof.
double GrubbsCriticalValue(size_t n, double alpha);

/// \brief True when |a - b| <= atol + rtol * |b|.
bool AlmostEqual(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// \brief Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

}  // namespace math
}  // namespace pcor
