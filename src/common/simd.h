#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace pcor {
namespace simd {

/// \brief Vectorized kernels for the detector hot loops.
///
/// Every kernel comes in four implementations — portable scalar, SSE2,
/// AVX2 and AVX-512F — selected once at process start via cpuid (see
/// ActiveBackend) and dispatched per call through one predictable branch.
/// The key contract is *bit-exact backend parity*: all sum-style
/// reductions accumulate into four lanes (lane j takes elements with index
/// ≡ j mod 4, in increasing index order) and combine them as
/// (l0 + l1) + (l2 + l3), regardless of backend — scalar emulates the
/// lanes, SSE2 uses two 2-wide accumulators, AVX2 one 4-wide accumulator,
/// and AVX-512 performs 512-bit loads whose halves feed the same 4-wide
/// accumulator in order (two dependent adds per 8 elements). The AVX-512
/// reductions deliberately use neither 8 independent lanes nor FMA: both
/// would change the rounding sequence and break parity. Element-wise
/// predicates (threshold scans, via mask registers on AVX-512) and min/max
/// are order-insensitive for NaN-free input, so those kernels do run
/// genuinely 8-wide. Consequently a detector built on these kernels
/// returns the *identical* outlier index set on every backend, which is
/// what makes the scalar/SIMD parity tests exact and the verifier cache
/// answer-invariant across machines.
///
/// Inputs are assumed NaN-free; the population index only ever feeds real
/// metric values.
enum class Backend {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// \brief Best backend the running CPU supports (cpuid probe, no env).
Backend BestSupportedBackend();

/// \brief The backend all kernels dispatch to. Resolved once on first use:
/// PCOR_FORCE_SIMD=scalar|sse2|avx2|avx512 pins a tier (clamped to
/// BestSupportedBackend), PCOR_FORCE_SCALAR=1 is the legacy alias for
/// PCOR_FORCE_SIMD=scalar, otherwise BestSupportedBackend() wins.
/// Thread-safe.
Backend ActiveBackend();

/// \brief Overrides the active backend (clamped to BestSupportedBackend so
/// an AVX-512 request on an AVX2-only host degrades instead of faulting).
/// Returns the backend actually installed. Intended for parity tests and
/// the scalar-vs-SIMD micro benches; not part of the serving API.
Backend SetBackendForTest(Backend backend);

/// \brief Parses a backend name ("scalar", "sse2", "avx2", "avx512");
/// nullopt for anything else.
std::optional<Backend> ParseBackendName(std::string_view name);

/// \brief The tier requested via PCOR_FORCE_SIMD / PCOR_FORCE_SCALAR,
/// *before* clamping to hardware support — nullopt when neither var is set
/// (or the value is unparseable). Lets the forced-tier ctest entries skip
/// cleanly when the requested tier exceeds the host's.
std::optional<Backend> ForcedBackendFromEnv();

/// \brief Stable lower-case name: "scalar", "sse2", "avx2" or "avx512".
const char* BackendName(Backend backend);

/// \brief BackendName(ActiveBackend()) — recorded in release metadata so
/// every PcorRelease / BENCH_JSON line says which kernel path produced it.
const char* ActiveBackendName();

/// \brief Lane-canonical sum of `values`.
double Sum(std::span<const double> values);

/// \brief Lane-canonical sum of squared deviations Σ (x - center)^2.
double SumSqDev(std::span<const double> values, double center);

/// \brief Two-pass fused mean / unbiased sample variance (n - 1 in the
/// denominator; variance is 0 for n < 2). mean is Sum(values)/n.
struct MeanVar {
  double mean = 0.0;
  double variance = 0.0;
};
MeanVar MeanAndVariance(std::span<const double> values);

/// \brief Minimum and maximum of a non-empty span.
struct MinMax {
  double min = 0.0;
  double max = 0.0;
};
MinMax MinMaxOf(std::span<const double> values);

/// \brief Position and value of the largest |x - center| over a non-empty
/// span; ties break toward the smallest index (exactly the semantics of a
/// first-wins linear scan, on every backend).
struct ArgAbsDev {
  size_t index = 0;
  double abs_dev = 0.0;
};
ArgAbsDev ArgMaxAbsDeviation(std::span<const double> values, double center);

/// \brief Appends (ascending) every index i with |x_i - mean| / stddev >
/// threshold. The division is performed per element, matching the z-score
/// definition exactly.
void ScanAbsZAbove(std::span<const double> values, double mean,
                   double stddev, double threshold,
                   std::vector<size_t>* out);

/// \brief Appends (ascending) every index i with x_i < lo or x_i > hi.
void ScanOutsideRange(std::span<const double> values, double lo, double hi,
                      std::vector<size_t>* out);

/// \brief Appends (ascending) every index i with x_i > threshold.
void ScanAbove(std::span<const double> values, double threshold,
               std::vector<size_t>* out);

/// \brief Branch-free count of elements with x < lo or x > hi (lo <= hi).
size_t CountOutsideRange(std::span<const double> values, double lo,
                         double hi);

/// \brief LOF reachability accumulation: lane-canonical sum of
/// max(kdist[j], |xi - x[j]|) over the whole window. `x` and `kdist` must
/// have equal length. Callers that need to exclude the self term subtract
/// it afterwards (the j == self addend is exactly kdist[self] since
/// |xi - xi| = 0 and kdist >= 0).
double ReachSum(std::span<const double> x, std::span<const double> kdist,
                double xi);

}  // namespace simd
}  // namespace pcor
