#include "src/common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pcor {
namespace strings {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) {
    // Built with insert() rather than `"-" + ...` — the rvalue operator+
    // trips a GCC 12 -Wrestrict false positive under -O3 -Werror.
    std::string out = HumanDuration(-seconds);
    out.insert(out.begin(), '-');
    return out;
  }
  if (seconds < 1.0) return Format("%.0fms", seconds * 1000.0);
  if (seconds < 60.0) return Format("%.1fs", seconds);
  if (seconds < 3600.0) {
    int m = static_cast<int>(seconds / 60.0);
    return Format("%dm %04.1fs", m, seconds - 60.0 * m);
  }
  int h = static_cast<int>(seconds / 3600.0);
  double rem = seconds - 3600.0 * h;
  return Format("%dh %dm", h, static_cast<int>(rem / 60.0));
}

size_t ParseSizeOr(std::string_view s, size_t fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  std::string tmp(s);
  unsigned long long v = std::strtoull(tmp.c_str(), &end, 10);
  if (end == tmp.c_str() || *end != '\0') return fallback;
  return static_cast<size_t>(v);
}

double ParseDoubleOr(std::string_view s, double fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  std::string tmp(s);
  double v = std::strtod(tmp.c_str(), &end);
  if (end == tmp.c_str() || *end != '\0') return fallback;
  return v;
}

size_t EnvSizeOr(const char* name, size_t fallback) {
  const char* v = std::getenv(name);
  return v ? ParseSizeOr(v, fallback) : fallback;
}

double EnvDoubleOr(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v ? ParseDoubleOr(v, fallback) : fallback;
}

std::string EnvStringOr(const char* name, std::string_view fallback) {
  const char* v = std::getenv(name);
  return v ? std::string(v) : std::string(fallback);
}

}  // namespace strings
}  // namespace pcor
