#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/logging.h"

namespace pcor {

/// \brief Outcome of a queue operation; lets callers translate each failure
/// mode into its own typed Status (full -> ResourceExhausted backpressure,
/// closed -> Unavailable shutdown) instead of collapsing them into a bool.
enum class QueueOp {
  kOk = 0,
  kFull,       ///< TryPush on a queue at capacity
  kEmpty,      ///< TryPop on an empty (but open) queue
  kClosed,     ///< Push after Close(), or Pop after Close() drained everything
  kTimedOut,   ///< PopFor expired before an element arrived
  kTenantFull, ///< push past a per-tenant depth bound (WeightedFairQueue)
};

/// \brief Bounded multi-producer multi-consumer FIFO queue.
///
/// The admission spine of the serving front-end: many client threads push,
/// the dispatcher pops. Blocking, non-blocking and timed variants cover the
/// two backpressure policies (block vs. reject) and the dispatcher's
/// bounded-delay coalescing wait.
///
/// Close() semantics follow Go channels: after Close() every push fails
/// with kClosed, but pops continue to drain already-accepted elements and
/// only report kClosed once the queue is empty — so a graceful shutdown
/// never drops accepted work on the floor.
template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(size_t capacity) : capacity_(capacity) {
    PCOR_CHECK(capacity > 0) << "queue capacity must be positive";
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// \brief Blocks while the queue is full; kOk once `item` is accepted,
  /// kClosed if the queue closed before (or while) waiting for space.
  QueueOp Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return QueueOp::kClosed;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// \brief Non-blocking push: kFull when at capacity (item untouched).
  QueueOp TryPush(T&& item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return QueueOp::kClosed;
    if (items_.size() >= capacity_) return QueueOp::kFull;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return QueueOp::kOk;
  }

  /// \brief Blocks until an element is available or the queue is closed
  /// *and* drained.
  QueueOp Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(out, &lock);
  }

  /// \brief Non-blocking pop.
  QueueOp TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return closed_ ? QueueOp::kClosed : QueueOp::kEmpty;
    return PopLocked(out, &lock);
  }

  /// \brief Pop waiting up to `timeout`; kTimedOut when nothing arrived.
  /// The dispatcher's coalescing loop uses this as its bounded-delay wait.
  template <typename Rep, typename Period>
  QueueOp PopFor(T* out, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool got = not_empty_.wait_for(
        lock, timeout, [this] { return closed_ || !items_.empty(); });
    if (!got) return QueueOp::kTimedOut;
    return PopLocked(out, &lock);
  }

  /// \brief Closes the queue: wakes every waiter, fails future pushes,
  /// lets pops drain the remaining elements. Idempotent.
  void Close() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  // Precondition: lock held and the wait predicate satisfied.
  QueueOp PopLocked(T* out, std::unique_lock<std::mutex>* lock) {
    if (items_.empty()) return QueueOp::kClosed;
    *out = std::move(items_.front());
    items_.pop_front();
    lock->unlock();
    not_full_.notify_one();
    return QueueOp::kOk;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pcor
