#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace pcor {

/// \brief Monotonic microsecond clock the open-loop trace driver schedules
/// against. Two implementations: RealClock (steady_clock; benches and
/// production replays) and VirtualClock (tests advance time explicitly, so
/// dispatch schedules are asserted exactly and suites run with zero
/// wall-clock sleeps).
///
/// The contract every implementation honors:
///   - NowMicros() is monotone non-decreasing across calls from any thread;
///   - SleepUntil(d) returns with NowMicros() >= d, immediately when the
///     clock is already at or past d (a late caller is never re-scheduled
///     or penalized further — it observes its lag and moves on).
class Clock {
 public:
  virtual ~Clock() = default;

  /// \brief Microseconds since this clock's origin.
  virtual int64_t NowMicros() = 0;

  /// \brief Blocks until NowMicros() >= deadline_us (see class contract).
  virtual void SleepUntil(int64_t deadline_us) = 0;
};

/// \brief Wall clock over std::chrono::steady_clock. The origin is the
/// instance's construction, so trace timestamps (which start near 0) map
/// directly onto a replay's own timeline.
class RealClock final : public Clock {
 public:
  RealClock() : origin_(std::chrono::steady_clock::now()) {}

  /// \brief Process-wide shared instance (origin = first use). Replays
  /// that want t=0 at replay start construct their own instead.
  static RealClock* Get();

  int64_t NowMicros() override;
  void SleepUntil(int64_t deadline_us) override;

 private:
  const std::chrono::steady_clock::time_point origin_;
};

/// \brief Deterministic test clock: time moves only when told to.
///
/// Two modes:
///   - auto-advance (default): SleepUntil jumps the clock straight to the
///     deadline and returns. A whole trace replays deterministically on
///     the calling thread with zero blocking and zero wall time, and a
///     dispatch hook that calls AdvanceBy simulates slow event handling
///     (making the driver observably late for later events).
///   - manual (auto_advance = false): SleepUntil blocks on a condition
///     variable until another thread's AdvanceTo/AdvanceBy moves the
///     clock past the deadline — for tests that drive a dispatch loop
///     running on its own thread, step by step.
///
/// Thread-safe; time is monotone (AdvanceTo clamps, never rewinds).
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(int64_t start_us = 0, bool auto_advance = true)
      : now_us_(start_us), auto_advance_(auto_advance) {}

  int64_t NowMicros() override;
  void SleepUntil(int64_t deadline_us) override;

  /// \brief Moves the clock forward to `now_us` (no-op when already
  /// past — the clock never rewinds) and wakes manual-mode sleepers whose
  /// deadlines are now reached.
  void AdvanceTo(int64_t now_us);
  void AdvanceBy(int64_t delta_us);

  /// \brief SleepUntil calls that found their deadline in the future (an
  /// on-time dispatch loop sleeps once per event; a late one never does).
  size_t sleeps() const;
  /// \brief Threads currently blocked inside a manual-mode SleepUntil.
  size_t waiters() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable advanced_;
  int64_t now_us_;
  const bool auto_advance_;
  size_t sleeps_ = 0;
  size_t waiters_ = 0;
};

}  // namespace pcor
