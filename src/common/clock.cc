#include "src/common/clock.h"

#include <thread>

namespace pcor {

RealClock* RealClock::Get() {
  static RealClock* instance = new RealClock();
  return instance;
}

int64_t RealClock::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void RealClock::SleepUntil(int64_t deadline_us) {
  const auto deadline = origin_ + std::chrono::microseconds(deadline_us);
  // sleep_until on an already-past deadline returns immediately, which is
  // exactly the late-runner contract.
  std::this_thread::sleep_until(deadline);
}

int64_t VirtualClock::NowMicros() {
  std::unique_lock<std::mutex> lock(mu_);
  return now_us_;
}

void VirtualClock::SleepUntil(int64_t deadline_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (now_us_ >= deadline_us) return;  // late: fire immediately
  ++sleeps_;
  if (auto_advance_) {
    now_us_ = deadline_us;
    lock.unlock();
    advanced_.notify_all();
    return;
  }
  ++waiters_;
  advanced_.wait(lock, [&] { return now_us_ >= deadline_us; });
  --waiters_;
}

void VirtualClock::AdvanceTo(int64_t now_us) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (now_us <= now_us_) return;  // monotone: never rewind
    now_us_ = now_us;
  }
  advanced_.notify_all();
}

void VirtualClock::AdvanceBy(int64_t delta_us) {
  if (delta_us <= 0) return;
  {
    std::unique_lock<std::mutex> lock(mu_);
    now_us_ += delta_us;
  }
  advanced_.notify_all();
}

size_t VirtualClock::sleeps() const {
  std::unique_lock<std::mutex> lock(mu_);
  return sleeps_;
}

size_t VirtualClock::waiters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return waiters_;
}

}  // namespace pcor
