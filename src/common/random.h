#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pcor {

/// \brief The SplitMix64 finalizer: a bijective avalanche mix of one 64-bit
/// word (Steele, Lea & Flood 2014). Every output bit depends on every input
/// bit, so nearby inputs (seed, seed+1, ...) map to decorrelated outputs —
/// the right tool for deriving independent per-trial stream seeds from a
/// (batch seed, index) pair.
uint64_t SplitMix64Mix(uint64_t x);

/// \brief Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every randomized component of the library draws from an explicitly passed
/// Rng so that experiments are reproducible from a single seed. The
/// generator is not cryptographically secure; a production deployment of a
/// DP mechanism must swap in a CSPRNG behind the same interface (the call
/// sites only use the methods below).
class Rng {
 public:
  /// \brief Seeds the four lanes of xoshiro256** from SplitMix64(seed).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Uniform 64-bit word.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound), bound > 0. Uses rejection
  /// sampling (Lemire) to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform double in (0, 1]; never returns 0 (safe for log()).
  double NextDoublePositive();

  /// \brief Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// \brief Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// \brief Standard Gumbel(0,1) draw: -log(-log(U)).
  double NextGumbel();

  /// \brief Standard normal via Box-Muller.
  double NextGaussian();

  /// \brief Laplace(0, scale) draw via inverse CDF.
  double NextLaplace(double scale);

  /// \brief Exponential(rate) draw.
  double NextExponential(double rate);

  /// \brief Log-normal with the given log-space mean and stddev.
  double NextLogNormal(double mu, double sigma);

  /// \brief Samples index i with probability weights[i] / sum(weights).
  /// Weights must be non-negative with a positive sum.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// \brief Fisher-Yates shuffle of [first, last) indices of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Samples k distinct indices from [0, n) (k <= n), sorted.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Derives an independent child generator (for per-thread use).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pcor
