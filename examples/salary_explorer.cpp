// Salary explorer: the paper's headline workload. Generates the synthetic
// Ontario-like salary dataset, finds contextual outliers with LOF, and
// privately releases a high-population explanation context for each,
// tracking the cumulative privacy budget.
//
//   ./build/examples/salary_explorer [num_outliers]
#include <cstdio>
#include <cstdlib>

#include "src/common/string_util.h"
#include "src/exp/workloads.h"
#include "src/outlier/lof.h"
#include "src/search/pcor.h"

using namespace pcor;

int main(int argc, char** argv) {
  const size_t num_outliers =
      argc > 1 ? strings::ParseSizeOr(argv[1], 3) : 3;

  std::printf("generating reduced salary dataset (paper Section 6.1)...\n");
  auto workload = MakeReducedSalaryWorkload(/*scale=*/0.25);
  if (!workload.ok()) {
    std::printf("%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = workload->data.dataset;
  std::printf("  %zu records, %zu attributes, t = %zu attribute values\n",
              dataset.num_rows(), dataset.num_attributes(),
              dataset.schema().total_values());

  LofOptions lof;
  lof.k = 10;
  LofDetector detector(lof);
  PcorEngine engine(dataset, detector);

  Rng rng(7);
  auto outliers = SelectQueryOutliers(
      engine.verifier(), workload->data.planted_outlier_rows, num_outliers,
      &rng);
  std::printf("verified %zu contextual outliers to explain\n\n",
              outliers.size());

  PcorOptions options;
  options.sampler = SamplerKind::kBfs;  // the paper's final choice
  options.num_samples = 30;
  options.total_epsilon = 0.2;

  PrivacyAccountant accountant(/*budget=*/1.0);
  for (uint32_t row : outliers) {
    if (!accountant.CanAfford(options.total_epsilon)) {
      std::printf("privacy budget exhausted; stopping releases.\n");
      break;
    }
    auto release = engine.Release(row, options, &rng);
    if (!release.ok()) {
      std::printf("row %u: %s\n", row, release.status().ToString().c_str());
      continue;
    }
    accountant.Charge(release->epsilon_spent).CheckOK();
    std::printf("outlier: %s\n", dataset.DescribeRow(row).c_str());
    std::printf("  context : %s\n", release->description.c_str());
    std::printf("  |D_C|   : %.0f of %zu records\n", release->utility_score,
                dataset.num_rows());
    std::printf("  privacy : eps %.3g spent, %.3g budget left\n\n",
                release->epsilon_spent, accountant.remaining());
  }
  std::printf("total releases: %zu, total epsilon: %.3g\n",
              accountant.releases(), accountant.spent());
  return 0;
}
