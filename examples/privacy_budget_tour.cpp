// Privacy budget tour: how the OCDP budget splits across the five release
// algorithms, what one release costs, and how the exponential mechanism's
// selection sharpens as epsilon grows. Uses a small synthetic dataset so it
// runs in seconds.
//
//   ./build/examples/privacy_budget_tour
#include <cstdio>

#include "src/dp/laplace.h"
#include "src/dp/mechanism.h"
#include "src/exp/workloads.h"
#include "src/outlier/iqr.h"
#include "src/search/pcor.h"

using namespace pcor;

int main() {
  std::printf("== 1. Budget accounting per algorithm (n = 50 samples) ==\n");
  std::printf("%-12s %-28s %s\n", "algorithm", "theorem", "eps1 at eps=0.2");
  struct RowSpec {
    SamplerKind kind;
    const char* theorem;
  };
  const RowSpec specs[] = {
      {SamplerKind::kDirect, "Thm 4.1: eps = 2*eps1"},
      {SamplerKind::kUniform, "Thm 5.1: eps = 2*eps1"},
      {SamplerKind::kRandomWalk, "Thm 5.3: eps = 2*eps1"},
      {SamplerKind::kDfs, "Thm 5.5: eps = (2n+2)*eps1"},
      {SamplerKind::kBfs, "Thm 5.7: eps = (2n+2)*eps1"},
  };
  for (const auto& spec : specs) {
    std::printf("%-12s %-28s %.5f\n", SamplerKindName(spec.kind).c_str(),
                spec.theorem, Epsilon1ForTotal(spec.kind, 0.2, 50));
  }

  std::printf("\n== 2. Epsilon sharpens the exponential mechanism ==\n");
  std::vector<double> scores{100, 200, 300, 400, 500};
  for (double eps1 : {0.001, 0.01, 0.1}) {
    ExponentialMechanism mech(eps1, 1.0);
    auto p = mech.Probabilities(scores);
    std::printf("eps1 = %-6g -> Pr[max-score context] = %.3f\n", eps1,
                p.back());
  }

  std::printf("\n== 3. A full release under a fixed owner budget ==\n");
  auto workload = MakeReducedSalaryWorkload(/*scale=*/0.1);
  workload.status().CheckOK();
  IqrOptions iqr;
  iqr.min_population = 12;
  IqrDetector detector(iqr);
  PcorEngine engine(workload->data.dataset, detector);
  Rng rng(3);
  auto outliers = SelectQueryOutliers(
      engine.verifier(), workload->data.planted_outlier_rows, 3, &rng);

  PrivacyAccountant accountant(/*budget=*/0.5);
  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = 20;
  options.total_epsilon = 0.2;
  for (uint32_t row : outliers) {
    if (!accountant.CanAfford(options.total_epsilon)) {
      std::printf("budget exhausted after %zu releases — refusing more.\n",
                  accountant.releases());
      break;
    }
    auto release = engine.Release(row, options, &rng);
    if (!release.ok()) continue;
    accountant.Charge(release->epsilon_spent).CheckOK();
    std::printf("released |D_C| = %.0f for row %u (spent %.2f / %.2f)\n",
                release->utility_score, row, accountant.spent(),
                accountant.budget());
  }

  std::printf("\n== 4. Composing with a Laplace count release ==\n");
  if (accountant.CanAfford(0.1)) {
    LaplaceMechanism laplace(/*epsilon=*/0.1, /*sensitivity=*/1.0);
    const size_t true_count = workload->data.dataset.num_rows();
    const double noisy = laplace.NoisyCount(true_count, &rng);
    accountant.Charge(0.1).CheckOK();
    std::printf("noisy dataset size: %.0f (true %zu), eps 0.1 charged\n",
                noisy, true_count);
  }
  std::printf("final budget: %.2f spent of %.2f across %zu releases\n",
              accountant.spent(), accountant.budget(),
              accountant.releases());
  return 0;
}
