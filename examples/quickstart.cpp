// Quickstart: private contextual outlier release on the paper's running
// example — a tiny income table over {Jobtitle, City, District} (Table 1).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/outlier/zscore.h"
#include "src/search/pcor.h"

using namespace pcor;

int main() {
  // 1. Schema. Domains list *all* possible values, per Section 4 of the
  //    paper — including values that may not occur in the data.
  Schema schema;
  schema.AddAttribute("Jobtitle", {"CEO", "MedicalDoctor", "Lawyer"})
      .CheckOK();
  schema.AddAttribute("City", {"Montreal", "Ottawa", "Toronto"}).CheckOK();
  schema.AddAttribute("District", {"Business", "Historic", "Diplomatic"})
      .CheckOK();
  schema.SetMetricName("Salary");

  // 2. Data, shaped after Table 1, replicated so populations are large
  //    enough for the detector, plus one record (the "Lawyer in Ottawa's
  //    Diplomatic district") whose salary is extreme within its context.
  Dataset dataset(schema);
  struct Template {
    const char* job;
    const char* city;
    const char* district;
    double salary;
  };
  const Template rows[] = {
      {"MedicalDoctor", "Montreal", "Business", 140000},
      {"Lawyer", "Toronto", "Business", 150000},
      {"CEO", "Ottawa", "Diplomatic", 250000},
      {"Lawyer", "Toronto", "Business", 152000},
      {"Lawyer", "Ottawa", "Diplomatic", 149000},
      {"MedicalDoctor", "Toronto", "Historic", 160000},
      {"Lawyer", "Ottawa", "Business", 151000},
      {"CEO", "Montreal", "Historic", 240000},
      {"MedicalDoctor", "Toronto", "Diplomatic", 158000},
  };
  for (int copy = 0; copy < 8; ++copy) {
    for (const auto& r : rows) {
      double jitter = 1000.0 * ((copy * 7) % 5);
      dataset
          .AppendRowByName({r.job, r.city, r.district}, r.salary + jitter)
          .CheckOK();
    }
  }
  // Record 8 of Table 1: a Lawyer in Ottawa's Diplomatic district with a
  // salary that is normal globally (less than every CEO) but an outlier
  // among Diplomatic-district lawyers.
  dataset.AppendRowByName({"Lawyer", "Ottawa", "Diplomatic"}, 230000.0)
      .CheckOK();
  const uint32_t v_row = static_cast<uint32_t>(dataset.num_rows() - 1);

  // 3. Detector + engine. Any deterministic detector plugs in; we use
  //    z-score here for a transparent quickstart.
  ZscoreOptions zopts;
  zopts.threshold = 2.5;
  zopts.min_population = 6;
  ZscoreDetector detector(zopts);
  PcorEngine engine(dataset, detector);

  // 4. One private release: BFS sampling (the paper's final choice),
  //    population-size utility, total OCDP budget eps = 0.2.
  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = 20;
  options.total_epsilon = 0.2;

  Rng rng(2021);
  auto release = engine.Release(v_row, options, &rng);
  if (!release.ok()) {
    std::printf("release failed: %s\n", release.status().ToString().c_str());
    return 1;
  }

  std::printf("query record : %s\n", dataset.DescribeRow(v_row).c_str());
  std::printf("released context (eps = %.3g, eps1 = %.4g):\n  %s\n",
              release->epsilon_spent, release->epsilon1,
              release->description.c_str());
  std::printf("context population: %.0f records\n", release->utility_score);
  std::printf("candidates sampled: %zu, detector runs: %zu\n",
              release->num_candidates, release->f_evaluations);

  // 5. Composition: a second release for the same dataset must fit in the
  //    owner's total budget.
  PrivacyAccountant accountant(/*budget=*/0.5);
  accountant.Charge(release->epsilon_spent).CheckOK();
  std::printf("privacy budget: spent %.2f of %.2f (%.2f left)\n",
              accountant.spent(), accountant.budget(),
              accountant.remaining());
  return 0;
}
