// Serving: the async multi-tenant front-end over the batched release
// engine. Three tenants with different QoS registrations submit query
// outliers concurrently; the server picks admitted requests in
// weighted-fair order, coalesces them into micro-batches over
// PcorEngine::ReleaseBatch, charges each tenant's OCDP budget at
// admission, and completes one future per request — deterministically:
// tenant T's k-th request draws the same Rng stream no matter how the
// requests interleave, coalesce, or get scheduled.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_serving
#include <cstdio>
#include <thread>
#include <vector>

#include "src/exp/serving.h"
#include "src/outlier/zscore.h"
#include "src/serve/server.h"

using namespace pcor;

int main() {
  // A small synthetic table: 3x3 categorical grid, tight metric clusters,
  // plus one planted extreme row V (the query outlier of every request).
  Schema schema;
  schema.AddAttribute("Region", {"north", "south", "west"}).CheckOK();
  schema.AddAttribute("Tier", {"basic", "plus", "pro"}).CheckOK();
  schema.SetMetricName("spend");
  Dataset dataset(schema);
  for (uint32_t region = 0; region < 3; ++region) {
    for (uint32_t tier = 0; tier < 3; ++tier) {
      for (size_t i = 0; i < 12; ++i) {
        dataset.AppendRow({region, tier}, 95.0 + static_cast<double>(i % 7))
            .CheckOK();
      }
    }
  }
  const uint32_t v_row = static_cast<uint32_t>(dataset.num_rows());
  dataset.AppendRow({0, 0}, 400.0).CheckOK();

  ZscoreOptions detector_options;
  detector_options.threshold = 3.0;
  detector_options.min_population = 4;
  ZscoreDetector detector(detector_options);
  PcorEngine engine(dataset, detector);

  // Server: BFS releases at eps=0.2 each by default, micro-batches of up
  // to 16 held open 500us for stragglers, weighted-fair scheduling, and a
  // default per-tenant budget cap of eps=1.0 — five releases per tenant,
  // then typed rejections.
  ServeOptions options;
  options.release.sampler = SamplerKind::kBfs;
  options.release.num_samples = 8;
  options.release.total_epsilon = 0.2;
  options.scheduling = SchedulingPolicy::kWeightedFair;
  options.max_batch = 16;
  options.max_delay_us = 500;
  options.per_client_epsilon_cap = 1.0;
  options.seed = 2021;
  PcorServer server(engine, options);

  // Per-tenant QoS: tenant-0 is a premium analyst (4x scheduling share and
  // a raised budget cap), tenant-1 rides the defaults, tenant-2 registers
  // a queue-depth bound of 4 as burst protection — a flood past it would
  // fail fast with a typed kResourceExhausted instead of crowding the
  // shared queue. (The closed-loop submissions below keep at most one
  // request queued per tenant, so the bound never trips here; the depth
  // contract is exercised by tests/serve/ and docs/serving.md.)
  TenantConfig premium;
  premium.weight = 4.0;
  premium.epsilon_cap = 2.0;
  server.RegisterTenant("tenant-0", premium).CheckOK();
  TenantConfig bursty;
  bursty.max_queue_depth = 4;
  server.RegisterTenant("tenant-2", bursty).CheckOK();

  // tenant-1 overrides the release configuration per request: a cheaper
  // eps=0.1 uniform-sampling release instead of the server default. The
  // override is validated at admission and charged at its own epsilon.
  PcorOptions cheap;
  cheap.sampler = SamplerKind::kUniform;
  cheap.num_samples = 8;
  cheap.total_epsilon = 0.1;

  std::printf(
      "three tenants, 7 submissions each; tenant-0's raised cap admits all "
      "7 at\neps=0.2, tenant-1 submits eps=0.1 overrides (all 7 fit its "
      "1.0 cap),\ntenant-2's default cap admits 5 and rejects 2:\n\n");
  std::vector<std::thread> tenants;
  std::mutex print_mu;
  for (int t = 0; t < 3; ++t) {
    tenants.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      for (int k = 0; k < 7; ++k) {
        BatchRequest request;
        request.v_row = v_row;
        if (t == 1) request.options = cheap;
        auto future = server.SubmitAsync(request, tenant);
        if (!future.ok()) {
          std::unique_lock<std::mutex> lock(print_mu);
          std::printf("%-9s #%d REJECTED: %s\n", tenant.c_str(), k,
                      future.status().ToString().c_str());
          continue;
        }
        BatchEntry entry = future->Get();
        std::unique_lock<std::mutex> lock(print_mu);
        if (entry.status.ok()) {
          std::printf("%-9s #%d released %-28s eps=%.2f (seed %016llx)\n",
                      tenant.c_str(), k, entry.release.description.c_str(),
                      entry.release.epsilon_spent,
                      static_cast<unsigned long long>(entry.rng_seed));
        } else {
          std::printf("%-9s #%d failed: %s\n", tenant.c_str(), k,
                      entry.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : tenants) t.join();
  server.Shutdown();

  const ServerStats stats = server.stats();
  std::printf(
      "\nserver: %zu released, %zu budget rejections, %zu micro-batches "
      "(largest %zu), eps ledger total %.2f\n",
      stats.released, stats.rejected_budget, stats.batches,
      stats.max_coalesced, stats.epsilon_spent);
  std::printf(
      "ledgers: tenant-0 %.2f/2.00, tenant-1 %.2f/1.00, tenant-2 "
      "%.2f/1.00\n",
      server.accountant().SpentBy("tenant-0"),
      server.accountant().SpentBy("tenant-1"),
      server.accountant().SpentBy("tenant-2"));
  std::printf(
      "replay: any line above reproduces via PcorEngine::Release with the "
      "printed seed — scheduling and coalescing never change an answer.\n");
  return 0;
}
