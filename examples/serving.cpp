// Serving: the async front-end over the batched release engine. Three
// tenants submit query outliers concurrently; the server coalesces the
// submissions into micro-batches over PcorEngine::ReleaseBatch, charges
// each tenant's OCDP budget at admission, and completes one future per
// request — deterministically: tenant T's k-th request draws the same Rng
// stream no matter how the requests interleave or coalesce.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/serving
#include <cstdio>
#include <thread>
#include <vector>

#include "src/exp/serving.h"
#include "src/outlier/zscore.h"
#include "src/serve/server.h"

using namespace pcor;

int main() {
  // A small synthetic table: 3x3 categorical grid, tight metric clusters,
  // plus one planted extreme row V (the query outlier of every request).
  Schema schema;
  schema.AddAttribute("Region", {"north", "south", "west"}).CheckOK();
  schema.AddAttribute("Tier", {"basic", "plus", "pro"}).CheckOK();
  schema.SetMetricName("spend");
  Dataset dataset(schema);
  for (uint32_t region = 0; region < 3; ++region) {
    for (uint32_t tier = 0; tier < 3; ++tier) {
      for (size_t i = 0; i < 12; ++i) {
        dataset.AppendRow({region, tier}, 95.0 + static_cast<double>(i % 7))
            .CheckOK();
      }
    }
  }
  const uint32_t v_row = static_cast<uint32_t>(dataset.num_rows());
  dataset.AppendRow({0, 0}, 400.0).CheckOK();

  ZscoreOptions detector_options;
  detector_options.threshold = 3.0;
  detector_options.min_population = 4;
  ZscoreDetector detector(detector_options);
  PcorEngine engine(dataset, detector);

  // Server: BFS releases at eps=0.2 each, micro-batches of up to 16 held
  // open 500us for stragglers, and a per-tenant budget cap of eps=1.0 —
  // five releases per tenant, then typed rejections.
  ServeOptions options;
  options.release.sampler = SamplerKind::kBfs;
  options.release.num_samples = 8;
  options.release.total_epsilon = 0.2;
  options.max_batch = 16;
  options.max_delay_us = 500;
  options.per_client_epsilon_cap = 1.0;
  options.seed = 2021;
  PcorServer server(engine, options);

  std::printf("three tenants, 7 submissions each, cap admits 5:\n\n");
  std::vector<std::thread> tenants;
  std::mutex print_mu;
  for (int t = 0; t < 3; ++t) {
    tenants.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      for (int k = 0; k < 7; ++k) {
        BatchRequest request;
        request.v_row = v_row;
        auto future = server.SubmitAsync(request, tenant);
        if (!future.ok()) {
          std::unique_lock<std::mutex> lock(print_mu);
          std::printf("%-9s #%d REJECTED: %s\n", tenant.c_str(), k,
                      future.status().ToString().c_str());
          continue;
        }
        BatchEntry entry = future->Get();
        std::unique_lock<std::mutex> lock(print_mu);
        if (entry.status.ok()) {
          std::printf("%-9s #%d released %-28s eps=%.2f (seed %016llx)\n",
                      tenant.c_str(), k, entry.release.description.c_str(),
                      entry.release.epsilon_spent,
                      static_cast<unsigned long long>(entry.rng_seed));
        } else {
          std::printf("%-9s #%d failed: %s\n", tenant.c_str(), k,
                      entry.status.ToString().c_str());
        }
      }
    });
  }
  for (auto& t : tenants) t.join();
  server.Shutdown();

  const ServerStats stats = server.stats();
  std::printf(
      "\nserver: %zu released, %zu budget rejections, %zu micro-batches "
      "(largest %zu), eps ledger total %.2f\n",
      stats.released, stats.rejected_budget, stats.batches,
      stats.max_coalesced, stats.epsilon_spent);
  std::printf(
      "replay: any line above reproduces via PcorEngine::Release with the "
      "printed seed — coalescing never changes an answer.\n");
  return 0;
}
