// Homicide analysis with the *overlap* utility (Section 3.2.2): the analyst
// supplies a starting context of interest, and PCOR privately releases an
// explanation that stays close to it — e.g. "explain this victim-age
// anomaly in terms of handgun cases".
//
//   ./build/examples/homicide_overlap
#include <cstdio>

#include "src/context/starting_context.h"
#include "src/exp/workloads.h"
#include "src/outlier/grubbs.h"
#include "src/search/pcor.h"

using namespace pcor;

int main() {
  std::printf("generating reduced homicide dataset (paper Section 6.1)...\n");
  auto workload = MakeReducedHomicideWorkload(/*scale=*/0.2);
  if (!workload.ok()) {
    std::printf("%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const Dataset& dataset = workload->data.dataset;
  std::printf("  %zu records, t = %zu attribute values\n",
              dataset.num_rows(), dataset.schema().total_values());

  GrubbsOptions grubbs;
  grubbs.alpha = 0.05;
  GrubbsDetector detector(grubbs);
  PcorEngine engine(dataset, detector);

  Rng rng(13);
  auto outliers = SelectQueryOutliers(
      engine.verifier(), workload->data.planted_outlier_rows, 2, &rng);
  if (outliers.empty()) {
    std::printf("no verified contextual outliers under Grubbs; done.\n");
    return 0;
  }

  for (uint32_t row : outliers) {
    std::printf("\nquery record: %s\n", dataset.DescribeRow(row).c_str());

    // Release twice with the two utility families and compare.
    for (UtilityKind kind :
         {UtilityKind::kPopulationSize, UtilityKind::kOverlapWithStart}) {
      PcorOptions options;
      options.sampler = SamplerKind::kBfs;
      options.num_samples = 25;
      options.total_epsilon = 0.2;
      options.utility = kind;
      auto release = engine.Release(row, options, &rng);
      if (!release.ok()) {
        std::printf("  [%s] %s\n", UtilityKindName(kind).c_str(),
                    release.status().ToString().c_str());
        continue;
      }
      std::printf("  [%s]\n    context: %s\n    score  : %.0f\n",
                  UtilityKindName(kind).c_str(),
                  release->description.c_str(), release->utility_score);
      if (kind == UtilityKind::kOverlapWithStart) {
        std::printf("    C_V    : %s\n",
                    context_ops::Describe(dataset.schema(),
                                          release->starting_context)
                        .c_str());
      }
    }
  }
  return 0;
}
