#include "src/dp/utility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "tests/testing_util.h"

namespace pcor {
namespace {

class UtilityTest : public ::testing::Test {
 protected:
  UtilityTest()
      : grid_(testing_util::MakeSpreadGridDataset()),
        index_(grid_.dataset),
        detector_(testing_util::MakeTestDetector()),
        verifier_(index_, detector_) {}

  testing_util::GridData grid_;
  PopulationIndex index_;
  ZscoreDetector detector_;
  OutlierVerifier verifier_;
};

TEST_F(UtilityTest, PopulationSizeScoresMatchingContexts) {
  PopulationSizeUtility utility(verifier_);
  ContextVec exact = context_ops::ExactContext(grid_.dataset.schema(),
                                               grid_.dataset, grid_.v_row);
  ASSERT_TRUE(verifier_.IsOutlierInContext(exact, grid_.v_row));
  EXPECT_DOUBLE_EQ(utility.Score(exact, grid_.v_row),
                   static_cast<double>(index_.PopulationCount(exact)));
  EXPECT_EQ(utility.name(), "population_size");
  EXPECT_DOUBLE_EQ(utility.sensitivity(), 1.0);
}

TEST_F(UtilityTest, NonMatchingContextScoresNegativeInfinity) {
  PopulationSizeUtility utility(verifier_);
  ContextVec c(grid_.dataset.schema().total_values());
  c.Set(1);  // (a1, b1): V not contained
  c.Set(4);
  EXPECT_TRUE(std::isinf(utility.Score(c, grid_.v_row)));
  EXPECT_LT(utility.Score(c, grid_.v_row), 0);
}

TEST_F(UtilityTest, OverlapScoresIntersectionWithStartingContext) {
  ContextVec start = context_ops::ExactContext(grid_.dataset.schema(),
                                               grid_.dataset, grid_.v_row);
  OverlapUtility utility(verifier_, start);
  // Overlap of the starting context with itself is its population.
  EXPECT_DOUBLE_EQ(utility.Score(start, grid_.v_row),
                   static_cast<double>(index_.PopulationCount(start)));
  // A wider matching context still intersects in at most |D_start|.
  ContextVec wider = start;
  wider.Set(1);  // add a1
  if (verifier_.IsOutlierInContext(wider, grid_.v_row)) {
    EXPECT_DOUBLE_EQ(utility.Score(wider, grid_.v_row),
                     static_cast<double>(index_.PopulationCount(start)));
  }
  EXPECT_EQ(utility.name(), "overlap");
  EXPECT_EQ(utility.starting_context(), start);
}

TEST_F(UtilityTest, OverlapOfDisjointMatchingContextsIsCounted) {
  ContextVec start = context_ops::ExactContext(grid_.dataset.schema(),
                                               grid_.dataset, grid_.v_row);
  OverlapUtility utility(verifier_, start);
  // Context (a0|a1, b0) contains V and intersects start in the (a0,b0)
  // group.
  ContextVec c = start;
  c.Set(1);
  const double score = utility.Score(c, grid_.v_row);
  if (std::isfinite(score)) {
    EXPECT_DOUBLE_EQ(score, static_cast<double>(index_.OverlapCount(c, start)));
  }
}

TEST_F(UtilityTest, FactoryBuildsBothKinds) {
  ContextVec start = context_ops::ExactContext(grid_.dataset.schema(),
                                               grid_.dataset, grid_.v_row);
  auto pop = MakeUtility(UtilityKind::kPopulationSize, verifier_, start);
  auto overlap = MakeUtility(UtilityKind::kOverlapWithStart, verifier_, start);
  ASSERT_NE(pop, nullptr);
  ASSERT_NE(overlap, nullptr);
  EXPECT_EQ(pop->name(), "population_size");
  EXPECT_EQ(overlap->name(), "overlap");
  EXPECT_EQ(UtilityKindName(UtilityKind::kPopulationSize),
            "population_size");
  EXPECT_EQ(UtilityKindName(UtilityKind::kOverlapWithStart), "overlap");
}

TEST_F(UtilityTest, PopulationSensitivityHoldsOnNeighborDatasets) {
  // Removing one non-V row changes |D_C| by at most 1 for every context —
  // the sensitivity-1 claim of Section 3.2.1, verified empirically.
  auto smaller = grid_.dataset.RemoveRows({0});
  ASSERT_TRUE(smaller.ok());
  PopulationIndex index2(*smaller);
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    ContextVec c(grid_.dataset.schema().total_values());
    for (size_t bit = 0; bit < c.num_bits(); ++bit) {
      if (rng.NextBernoulli(0.5)) c.Set(bit);
    }
    const double before =
        static_cast<double>(index_.PopulationCount(c));
    const double after = static_cast<double>(index2.PopulationCount(c));
    EXPECT_LE(std::abs(before - after), 1.0) << c.ToBitString();
  }
}

}  // namespace
}  // namespace pcor
