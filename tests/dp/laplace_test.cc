#include "src/dp/laplace.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pcor {
namespace {

TEST(LaplaceMechanismTest, NoiseIsCenteredOnTheValue) {
  LaplaceMechanism mech(/*epsilon=*/1.0, /*sensitivity=*/1.0);
  Rng rng(3);
  const size_t n = 200000;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) sum += mech.AddNoise(10.0, &rng);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(LaplaceMechanismTest, VarianceMatchesScale) {
  // Lap(b) variance is 2*b^2 with b = sensitivity / epsilon.
  const double eps = 0.5, sens = 2.0;
  LaplaceMechanism mech(eps, sens);
  Rng rng(7);
  const size_t n = 200000;
  double sq = 0;
  for (size_t i = 0; i < n; ++i) {
    const double noise = mech.AddNoise(0.0, &rng);
    sq += noise * noise;
  }
  const double b = sens / eps;
  EXPECT_NEAR(sq / n, 2.0 * b * b, 1.5);
}

TEST(LaplaceMechanismTest, SmallerEpsilonMeansMoreNoise) {
  Rng rng1(9), rng2(9);
  LaplaceMechanism tight(10.0, 1.0);
  LaplaceMechanism loose(0.1, 1.0);
  double tight_abs = 0, loose_abs = 0;
  for (int i = 0; i < 20000; ++i) {
    tight_abs += std::abs(tight.AddNoise(0.0, &rng1));
    loose_abs += std::abs(loose.AddNoise(0.0, &rng2));
  }
  EXPECT_LT(tight_abs, loose_abs);
}

TEST(LaplaceMechanismTest, NoisyCountIsNonNegative) {
  LaplaceMechanism mech(0.05, 1.0);  // very noisy
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GE(mech.NoisyCount(2, &rng), 0.0);
  }
}

TEST(LaplaceMechanismTest, ExposesParameters) {
  LaplaceMechanism mech(0.25, 3.0);
  EXPECT_DOUBLE_EQ(mech.epsilon(), 0.25);
  EXPECT_DOUBLE_EQ(mech.sensitivity(), 3.0);
}

}  // namespace
}  // namespace pcor
