#include "src/dp/ocdp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/neighbor.h"
#include "tests/testing_util.h"

namespace pcor {
namespace {

class OcdpTest : public ::testing::Test {
 protected:
  OcdpTest()
      : grid_(testing_util::MakeSpreadGridDataset(/*per_group=*/8)),
        index_(grid_.dataset),
        detector_(testing_util::MakeTestDetector()),
        verifier_(index_, detector_) {}

  testing_util::GridData grid_;
  PopulationIndex index_;
  ZscoreDetector detector_;
  OutlierVerifier verifier_;
};

TEST_F(OcdpTest, IdenticalDatasetsHaveRatioOne) {
  auto result =
      MeasureEmpiricalPrivacy(verifier_, verifier_, grid_.v_row, grid_.v_row,
                              /*eps1=*/0.1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->coe_equal);
  EXPECT_NEAR(result->max_ratio, 1.0, 1e-9);
  EXPECT_TRUE(result->within_bound);
  EXPECT_DOUBLE_EQ(result->epsilon_bound, 0.2);
}

TEST_F(OcdpTest, NeighborAtDistanceOneStaysWithinTheBound) {
  // Remove one random non-V record and measure the selection-probability
  // ratio over the shared contexts — the Section 6.7(ii) experiment.
  Rng rng(5);
  NeighborOptions options;
  options.delta = 1;
  options.protected_rows = {grid_.v_row};
  for (int trial = 0; trial < 10; ++trial) {
    auto neighbor = MakeNeighbor(grid_.dataset, options, &rng);
    ASSERT_TRUE(neighbor.ok());
    PopulationIndex index2(neighbor->dataset);
    OutlierVerifier verifier2(index2, detector_);
    const uint32_t row2 = neighbor->row_mapping[grid_.v_row];
    ASSERT_NE(row2, UINT32_MAX);
    auto result = MeasureEmpiricalPrivacy(verifier_, verifier2, grid_.v_row,
                                          row2, /*eps1=*/0.1);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->shared_contexts, 0u);
    if (result->coe_equal) {
      // When the OCDP f-neighbor condition holds, the e^{2*eps1} bound is a
      // theorem (Theorem 4.1) — assert it strictly. When COE differs, the
      // bound is only an empirical observation in the paper (Section
      // 6.7(ii)); the benchmark reports it instead of asserting.
      EXPECT_TRUE(result->within_bound)
          << "trial " << trial << " ratio " << result->max_ratio << " bound "
          << std::exp(result->epsilon_bound);
    }
  }
}

TEST_F(OcdpTest, CoeEqualityDetectedWhenCoeUnchanged) {
  // Removing a row from the wild group far from V's contexts usually keeps
  // COE(V) identical; verify the flag works in at least one direction by
  // comparing the verifier with itself on a neighbor whose COE matches.
  Rng rng(11);
  NeighborOptions options;
  options.delta = 1;
  options.protected_rows = {grid_.v_row};
  size_t equal_seen = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto neighbor = MakeNeighbor(grid_.dataset, options, &rng);
    ASSERT_TRUE(neighbor.ok());
    PopulationIndex index2(neighbor->dataset);
    OutlierVerifier verifier2(index2, detector_);
    auto result = MeasureEmpiricalPrivacy(
        verifier_, verifier2, grid_.v_row,
        neighbor->row_mapping[grid_.v_row], /*eps1=*/0.1);
    ASSERT_TRUE(result.ok());
    if (result->coe_equal) {
      ++equal_seen;
      EXPECT_DOUBLE_EQ(result->match.jaccard, 1.0);
    }
  }
  // On this tight synthetic dataset most single-record removals preserve
  // COE (the paper's Tables 12/13 report 89-99.8% at delta = 1).
  EXPECT_GT(equal_seen, 10u);
}

TEST_F(OcdpTest, GroupPrivacyDegradesGracefully) {
  // Larger deltas may change COE more; the measurement must still work.
  Rng rng(13);
  NeighborOptions options;
  options.delta = 10;
  options.protected_rows = {grid_.v_row};
  auto neighbor = MakeNeighbor(grid_.dataset, options, &rng);
  ASSERT_TRUE(neighbor.ok());
  PopulationIndex index2(neighbor->dataset);
  OutlierVerifier verifier2(index2, detector_);
  auto result = MeasureEmpiricalPrivacy(verifier_, verifier2, grid_.v_row,
                                        neighbor->row_mapping[grid_.v_row],
                                        /*eps1=*/0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->match.jaccard, 1.0);
  EXPECT_GE(result->match.jaccard, 0.0);
}

}  // namespace
}  // namespace pcor
