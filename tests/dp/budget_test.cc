#include "src/dp/budget.h"

#include <gtest/gtest.h>

namespace pcor {
namespace {

TEST(SamplerKindTest, NamesRoundTrip) {
  for (SamplerKind kind :
       {SamplerKind::kDirect, SamplerKind::kUniform, SamplerKind::kRandomWalk,
        SamplerKind::kDfs, SamplerKind::kBfs}) {
    auto parsed = SamplerKindFromName(SamplerKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_TRUE(SamplerKindFromName("nope").status().IsNotFound());
  EXPECT_EQ(*SamplerKindFromName("rwalk"), SamplerKind::kRandomWalk);
}

TEST(BudgetTest, SingleDrawAlgorithmsSpendTwoEpsilonOne) {
  // Theorems 4.1/5.1/5.3: eps = 2 * eps1.
  for (SamplerKind kind : {SamplerKind::kDirect, SamplerKind::kUniform,
                           SamplerKind::kRandomWalk}) {
    EXPECT_DOUBLE_EQ(Epsilon1ForTotal(kind, 0.2, 50), 0.1);
    EXPECT_DOUBLE_EQ(TotalForEpsilon1(kind, 0.1, 50), 0.2);
  }
}

TEST(BudgetTest, GraphSearchSpendsTwoNPlusTwoEpsilonOne) {
  // Theorems 5.5/5.7: eps = (2n+2) * eps1. The paper's Section 6.3 notes
  // eps = 0.2 with n = 50 gives eps1 ~ 0.002.
  for (SamplerKind kind : {SamplerKind::kDfs, SamplerKind::kBfs}) {
    EXPECT_NEAR(Epsilon1ForTotal(kind, 0.2, 50), 0.2 / 102.0, 1e-12);
    EXPECT_NEAR(Epsilon1ForTotal(kind, 0.2, 50), 0.00196, 1e-4);
    EXPECT_DOUBLE_EQ(TotalForEpsilon1(kind, 0.002, 50), 0.204);
  }
}

TEST(BudgetTest, ConversionsAreInverse) {
  for (SamplerKind kind :
       {SamplerKind::kDirect, SamplerKind::kUniform, SamplerKind::kRandomWalk,
        SamplerKind::kDfs, SamplerKind::kBfs}) {
    for (size_t n : {25ul, 50ul, 100ul, 200ul}) {
      const double eps1 = Epsilon1ForTotal(kind, 0.4, n);
      EXPECT_NEAR(TotalForEpsilon1(kind, eps1, n), 0.4, 1e-12);
    }
  }
}

TEST(BudgetTest, MoreSamplesMeansSmallerEpsilonOne) {
  // The cancellation effect behind Table 11's n=200 utility drop.
  EXPECT_GT(Epsilon1ForTotal(SamplerKind::kBfs, 0.2, 25),
            Epsilon1ForTotal(SamplerKind::kBfs, 0.2, 200));
}

TEST(PrivacyAccountantTest, ChargesUntilExhausted) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Charge(0.4).ok());
  EXPECT_TRUE(accountant.Charge(0.4).ok());
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.8);
  EXPECT_NEAR(accountant.remaining(), 0.2, 1e-12);
  EXPECT_TRUE(accountant.Charge(0.4).IsPrivacyBudgetExceeded());
  EXPECT_DOUBLE_EQ(accountant.spent(), 0.8);  // failed charge records nothing
  EXPECT_EQ(accountant.releases(), 2u);
}

TEST(PrivacyAccountantTest, ExactBudgetFits) {
  PrivacyAccountant accountant(0.6);
  EXPECT_TRUE(accountant.Charge(0.2).ok());
  EXPECT_TRUE(accountant.Charge(0.2).ok());
  EXPECT_TRUE(accountant.Charge(0.2).ok());
  EXPECT_FALSE(accountant.CanAfford(0.01));
}

TEST(PrivacyAccountantTest, RejectsNonPositiveCharge) {
  PrivacyAccountant accountant(1.0);
  EXPECT_TRUE(accountant.Charge(0.0).IsInvalidArgument());
  EXPECT_TRUE(accountant.Charge(-0.1).IsInvalidArgument());
}

}  // namespace
}  // namespace pcor
