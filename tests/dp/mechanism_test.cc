#include "src/dp/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pcor {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ExponentialMechanismTest, ProbabilitiesAreSoftmaxOfScaledScores) {
  ExponentialMechanism mech(/*epsilon1=*/2.0, /*sensitivity=*/1.0);
  std::vector<double> scores{0.0, 1.0};
  auto p = mech.Probabilities(scores);
  // Pr[1]/Pr[0] = exp(eps1 * (u1 - u0) / (2*sens)) = exp(1).
  EXPECT_NEAR(p[1] / p[0], std::exp(1.0), 1e-9);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(ExponentialMechanismTest, SensitivityScalesTheExponent) {
  ExponentialMechanism mech(/*epsilon1=*/2.0, /*sensitivity=*/2.0);
  auto p = mech.Probabilities({0.0, 2.0});
  EXPECT_NEAR(p[1] / p[0], std::exp(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(mech.EpsilonPerDraw(), 8.0);
}

TEST(ExponentialMechanismTest, NegativeInfinityGetsZeroProbability) {
  ExponentialMechanism mech(1.0, 1.0);
  auto p = mech.Probabilities({5.0, -kInf, 5.0});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
}

TEST(ExponentialMechanismTest, ChooseNeverPicksInvalidCandidates) {
  for (auto sampling :
       {ExpMechSampling::kGumbel, ExpMechSampling::kNormalized}) {
    ExponentialMechanism mech(0.5, 1.0, sampling);
    Rng rng(5);
    std::vector<double> scores{-kInf, 3.0, -kInf, 1.0};
    for (int i = 0; i < 500; ++i) {
      auto pick = mech.Choose(scores, &rng);
      ASSERT_TRUE(pick.ok());
      EXPECT_TRUE(*pick == 1 || *pick == 3);
    }
  }
}

TEST(ExponentialMechanismTest, ErrorsOnDegenerateInput) {
  ExponentialMechanism mech(0.5, 1.0);
  Rng rng(7);
  EXPECT_TRUE(mech.Choose({}, &rng).status().IsNoValidContext());
  EXPECT_TRUE(mech.Choose({-kInf, -kInf}, &rng).status().IsNoValidContext());
}

void CheckEmpiricalDistribution(ExpMechSampling sampling) {
  const double eps1 = 1.0;
  ExponentialMechanism mech(eps1, 1.0, sampling);
  std::vector<double> scores{0.0, 1.0, 2.0, -kInf};
  auto expected = mech.Probabilities(scores);
  Rng rng(42);
  const size_t n = 200000;
  std::vector<size_t> counts(scores.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    auto pick = mech.Choose(scores, &rng);
    ASSERT_TRUE(pick.ok());
    ++counts[*pick];
  }
  EXPECT_EQ(counts[3], 0u);
  for (size_t i = 0; i < 3; ++i) {
    const double freq = static_cast<double>(counts[i]) / n;
    const double se = std::sqrt(expected[i] * (1 - expected[i]) / n);
    EXPECT_NEAR(freq, expected[i], 6.0 * se + 1e-4)
        << "sampling mode " << static_cast<int>(sampling) << " index " << i;
  }
}

TEST(ExponentialMechanismTest, GumbelSamplingMatchesTheory) {
  CheckEmpiricalDistribution(ExpMechSampling::kGumbel);
}

TEST(ExponentialMechanismTest, NormalizedSamplingMatchesTheory) {
  CheckEmpiricalDistribution(ExpMechSampling::kNormalized);
}

TEST(ExponentialMechanismTest, EqualScoresAreUniform) {
  ExponentialMechanism mech(1.0, 1.0);
  auto p = mech.Probabilities({7.0, 7.0, 7.0, 7.0});
  for (double v : p) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(ExponentialMechanismTest, LargeScoresDoNotOverflow) {
  ExponentialMechanism mech(1.0, 1.0);
  auto p = mech.Probabilities({1e6, 1e6 + 1.0});
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_TRUE(std::isfinite(p[1]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_GT(p[1], p[0]);
}

TEST(ExponentialMechanismTest, HigherEpsilonConcentratesOnTheMax) {
  std::vector<double> scores{0.0, 1.0};
  ExponentialMechanism weak(0.1, 1.0);
  ExponentialMechanism strong(5.0, 1.0);
  EXPECT_LT(weak.Probabilities(scores)[1], strong.Probabilities(scores)[1]);
}

TEST(ExponentialMechanismTest, PrivacyRatioBoundHoldsOnNeighborScores) {
  // Scores move by at most sensitivity=1 between neighbors; the selection
  // probability ratio for any outcome must stay within exp(2*eps1).
  const double eps1 = 0.7;
  ExponentialMechanism mech(eps1, 1.0);
  std::vector<double> u1{4.0, 9.0, 2.0, 7.0};
  std::vector<double> u2{5.0, 8.0, 3.0, 6.0};  // each moved by exactly 1
  auto p1 = mech.Probabilities(u1);
  auto p2 = mech.Probabilities(u2);
  for (size_t i = 0; i < u1.size(); ++i) {
    const double ratio = std::max(p1[i] / p2[i], p2[i] / p1[i]);
    EXPECT_LE(ratio, std::exp(2.0 * eps1) * (1 + 1e-9));
  }
}

}  // namespace
}  // namespace pcor
