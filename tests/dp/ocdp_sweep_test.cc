// Parameterized sweep of the OCDP bound: on f-neighboring datasets (equal
// COE sets) the direct mechanism's selection-probability ratio must stay
// within e^{2*eps1} for every eps1 — Theorem 4.1 as a property test.
#include <gtest/gtest.h>

#include <cmath>

#include "src/data/neighbor.h"
#include "src/dp/ocdp.h"
#include "tests/testing_util.h"

namespace pcor {
namespace {

class OcdpEpsilonSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(OcdpEpsilonSweepTest, TheoremBoundHoldsOnFNeighbors) {
  const double eps1 = GetParam();
  auto grid = testing_util::MakeSpreadGridDataset(/*per_group=*/12);
  PopulationIndex index(grid.dataset);
  ZscoreDetector detector = testing_util::MakeTestDetector();
  OutlierVerifier verifier(index, detector);

  Rng rng(static_cast<uint64_t>(eps1 * 1e6) + 3);
  NeighborOptions options;
  options.delta = 1;
  options.protected_rows = {grid.v_row};

  size_t equal_pairs = 0;
  for (int trial = 0; trial < 12 && equal_pairs < 5; ++trial) {
    auto neighbor = MakeNeighbor(grid.dataset, options, &rng);
    ASSERT_TRUE(neighbor.ok());
    PopulationIndex index2(neighbor->dataset);
    OutlierVerifier verifier2(index2, detector);
    auto result = MeasureEmpiricalPrivacy(verifier, verifier2, grid.v_row,
                                          neighbor->row_mapping[grid.v_row],
                                          eps1);
    ASSERT_TRUE(result.ok());
    if (!result->coe_equal) continue;
    ++equal_pairs;
    EXPECT_DOUBLE_EQ(result->epsilon_bound, 2.0 * eps1);
    EXPECT_LE(result->max_ratio, std::exp(2.0 * eps1) * (1 + 1e-9))
        << "eps1=" << eps1 << " trial=" << trial;
  }
  EXPECT_GE(equal_pairs, 3u)
      << "too few f-neighbor pairs to exercise the bound";
}

INSTANTIATE_TEST_SUITE_P(EpsilonGrid, OcdpEpsilonSweepTest,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps1_" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

}  // namespace
}  // namespace pcor
