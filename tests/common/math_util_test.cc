#include "src/common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pcor {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogSumExpTest, MatchesNaiveForModerateValues) {
  std::vector<double> x{0.5, 1.5, -2.0, 3.0};
  double naive = 0;
  for (double v : x) naive += std::exp(v);
  EXPECT_NEAR(math::LogSumExp(x), std::log(naive), 1e-12);
}

TEST(LogSumExpTest, StableForHugeValues) {
  std::vector<double> x{1000.0, 1000.0};
  EXPECT_NEAR(math::LogSumExp(x), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> y{-1000.0, -1000.0};
  EXPECT_NEAR(math::LogSumExp(y), -1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, SkipsNegativeInfinity) {
  std::vector<double> x{-kInf, 2.0, -kInf};
  EXPECT_NEAR(math::LogSumExp(x), 2.0, 1e-12);
  EXPECT_EQ(math::LogSumExp({-kInf, -kInf}), -kInf);
  EXPECT_EQ(math::LogSumExp({}), -kInf);
}

TEST(SoftmaxTest, SumsToOneAndOrdersCorrectly) {
  auto p = math::Softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, NegativeInfinityGetsZeroMass) {
  auto p = math::Softmax({0.0, -kInf, 0.0});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
}

TEST(SoftmaxTest, AllInfinityYieldsZeros) {
  auto p = math::Softmax({-kInf, -kInf});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(GammaTest, RegularizedGammaPKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 1.0, 3.0}) {
    EXPECT_NEAR(math::RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  EXPECT_DOUBLE_EQ(math::RegularizedGammaP(2.5, 0.0), 0.0);
  // P(a, x) -> 1 for x >> a.
  EXPECT_NEAR(math::RegularizedGammaP(2.0, 50.0), 1.0, 1e-12);
}

TEST(BetaTest, RegularizedIncompleteBetaKnownValues) {
  // I_x(1, 1) = x (uniform CDF).
  for (double x : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(math::RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-10);
  }
  // I_x(2, 2) = x^2 (3 - 2x).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(math::RegularizedIncompleteBeta(2.0, 2.0, x),
                x * x * (3 - 2 * x), 1e-10);
  }
  // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
  EXPECT_NEAR(math::RegularizedIncompleteBeta(3.0, 5.0, 0.3),
              1.0 - math::RegularizedIncompleteBeta(5.0, 3.0, 0.7), 1e-10);
}

TEST(BetaTest, InverseRoundTrips) {
  for (double a : {0.5, 2.0, 7.5}) {
    for (double b : {1.0, 4.0}) {
      for (double p : {0.05, 0.5, 0.95}) {
        double x = math::InverseRegularizedIncompleteBeta(a, b, p);
        EXPECT_NEAR(math::RegularizedIncompleteBeta(a, b, x), p, 1e-8);
      }
    }
  }
}

TEST(StudentTTest, CdfKnownValues) {
  // t = 0 -> 0.5 for any dof.
  EXPECT_NEAR(math::StudentTCdf(0.0, 5.0), 0.5, 1e-12);
  // nu = 1 is the Cauchy distribution: CDF(1) = 3/4.
  EXPECT_NEAR(math::StudentTCdf(1.0, 1.0), 0.75, 1e-9);
  // Symmetry.
  EXPECT_NEAR(math::StudentTCdf(-2.0, 7.0),
              1.0 - math::StudentTCdf(2.0, 7.0), 1e-12);
}

TEST(StudentTTest, QuantileMatchesPublishedTables) {
  // Two-sided 95% critical values: t_{0.975, nu}.
  EXPECT_NEAR(math::StudentTQuantile(0.975, 10.0), 2.228, 2e-3);
  EXPECT_NEAR(math::StudentTQuantile(0.975, 30.0), 2.042, 2e-3);
  EXPECT_NEAR(math::StudentTQuantile(0.95, 10.0), 1.812, 2e-3);
  EXPECT_NEAR(math::StudentTQuantile(0.5, 12.0), 0.0, 1e-9);
  EXPECT_NEAR(math::StudentTQuantile(0.025, 10.0), -2.228, 2e-3);
}

TEST(StudentTTest, QuantileCdfRoundTrip) {
  for (double nu : {3.0, 9.0, 25.0}) {
    for (double p : {0.01, 0.2, 0.5, 0.8, 0.999}) {
      EXPECT_NEAR(math::StudentTCdf(math::StudentTQuantile(p, nu), nu), p,
                  1e-7);
    }
  }
}

TEST(NormalTest, CdfAndQuantile) {
  EXPECT_NEAR(math::NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(math::NormalCdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(math::NormalQuantile(0.975), 1.959963985, 1e-7);
  EXPECT_NEAR(math::NormalQuantile(0.5), 0.0, 1e-9);
  for (double p : {0.001, 0.1, 0.6, 0.9999}) {
    EXPECT_NEAR(math::NormalCdf(math::NormalQuantile(p)), p, 1e-10);
  }
}

TEST(GrubbsCriticalTest, MatchesPublishedTwoSidedTable) {
  // Published two-sided critical values at alpha = 0.05.
  EXPECT_NEAR(math::GrubbsCriticalValue(8, 0.05), 2.126, 0.02);
  EXPECT_NEAR(math::GrubbsCriticalValue(10, 0.05), 2.290, 0.02);
  EXPECT_NEAR(math::GrubbsCriticalValue(20, 0.05), 2.708, 0.02);
  EXPECT_NEAR(math::GrubbsCriticalValue(50, 0.05), 3.128, 0.02);
}

TEST(GrubbsCriticalTest, MonotoneInSampleSizeAndAlpha) {
  double prev = 0;
  for (size_t n : {5ul, 10ul, 50ul, 200ul, 1000ul}) {
    double g = math::GrubbsCriticalValue(n, 0.05);
    EXPECT_GT(g, prev);
    prev = g;
  }
  EXPECT_GT(math::GrubbsCriticalValue(30, 0.01),
            math::GrubbsCriticalValue(30, 0.10));
}

TEST(AlmostEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(math::AlmostEqual(1.0, 1.0));
  EXPECT_TRUE(math::AlmostEqual(1.0, 1.0 + 1e-13));
  EXPECT_FALSE(math::AlmostEqual(1.0, 1.1));
  EXPECT_TRUE(math::AlmostEqual(0.0, 1e-15));
}

TEST(ClampTest, Clamps) {
  EXPECT_DOUBLE_EQ(math::Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(math::Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(math::Clamp(0.3, 0.0, 1.0), 0.3);
}

}  // namespace
}  // namespace pcor
