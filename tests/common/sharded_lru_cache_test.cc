#include "src/common/sharded_lru_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace pcor {
namespace {

using IntCache = ShardedLruCache<int, int>;

LruCacheOptions SingleShard(size_t max_bytes, size_t max_entries = 0) {
  LruCacheOptions options;
  options.num_shards = 1;
  options.max_bytes = max_bytes;
  options.max_entries = max_entries;
  return options;
}

TEST(ShardedLruCacheTest, PutGetRoundtrip) {
  IntCache cache;
  int value = 0;
  EXPECT_FALSE(cache.Get(1, &value));
  cache.Put(1, 10, 8);
  cache.Put(2, 20, 8);
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 10);
  ASSERT_TRUE(cache.Get(2, &value));
  EXPECT_EQ(value, 20);
  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_entries, 2u);
  EXPECT_GT(stats.resident_bytes, 16u);  // cost + per-entry overhead
}

TEST(ShardedLruCacheTest, PutRefreshesExistingKey) {
  IntCache cache(SingleShard(/*max_bytes=*/0));
  cache.Put(1, 10, 8);
  cache.Put(1, 11, 8);
  int value = 0;
  ASSERT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 11);
  EXPECT_EQ(cache.Stats().resident_entries, 1u);
}

TEST(ShardedLruCacheTest, EvictsFromTheColdEnd) {
  // Entry budget 3 on one shard: inserting a fourth key evicts exactly the
  // least recently used one.
  IntCache cache(SingleShard(/*max_bytes=*/0, /*max_entries=*/3));
  cache.Put(1, 10, 1);
  cache.Put(2, 20, 1);
  cache.Put(3, 30, 1);
  int value = 0;
  ASSERT_TRUE(cache.Get(1, &value));  // refresh 1: now 2 is coldest
  cache.Put(4, 40, 1);
  EXPECT_FALSE(cache.Get(2, &value));
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_TRUE(cache.Get(3, &value));
  EXPECT_TRUE(cache.Get(4, &value));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().resident_entries, 3u);
}

TEST(ShardedLruCacheTest, ByteBudgetForcesEviction) {
  // Each entry charges ~cost + overhead; a budget of ~2.5 entries keeps at
  // most two resident.
  IntCache cache(SingleShard(/*max_bytes=*/1000));
  for (int k = 0; k < 10; ++k) cache.Put(k, k, 300);
  const LruCacheStats stats = cache.Stats();
  EXPECT_LE(stats.resident_entries, 3u);
  EXPECT_GE(stats.evictions, 7u);
  EXPECT_LE(stats.resident_bytes, 1000u + 300u + 100u);
  // The most recent key always survives its own insert.
  int value = 0;
  EXPECT_TRUE(cache.Get(9, &value));
  EXPECT_EQ(value, 9);
}

TEST(ShardedLruCacheTest, OversizedEntryStaysServableAfterInsert) {
  IntCache cache(SingleShard(/*max_bytes=*/64));
  cache.Put(1, 10, 10'000);  // alone exceeds the whole budget
  int value = 0;
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_EQ(value, 10);
  // The next insert displaces it.
  cache.Put(2, 20, 10'000);
  EXPECT_FALSE(cache.Get(1, &value));
  EXPECT_TRUE(cache.Get(2, &value));
}

TEST(ShardedLruCacheTest, WholesaleClearDropsAllButNewest) {
  LruCacheOptions options = SingleShard(/*max_bytes=*/0, /*max_entries=*/4);
  options.wholesale_clear = true;
  IntCache cache(options);
  for (int k = 0; k < 5; ++k) cache.Put(k, k, 1);
  // Crossing the cap dropped the four older entries wholesale.
  int value = 0;
  for (int k = 0; k < 4; ++k) EXPECT_FALSE(cache.Get(k, &value));
  EXPECT_TRUE(cache.Get(4, &value));
  EXPECT_EQ(cache.Stats().evictions, 4u);
  EXPECT_EQ(cache.Stats().resident_entries, 1u);
}

TEST(ShardedLruCacheTest, EraseIfDropsExactlyTheMatchingKeys) {
  IntCache cache;
  for (int k = 0; k < 100; ++k) cache.Put(k, k * 10, 8);
  // Invalidate the even keys across every shard.
  const size_t erased = cache.EraseIf([](int key) { return key % 2 == 0; });
  EXPECT_EQ(erased, 50u);
  int value = 0;
  for (int k = 0; k < 100; ++k) {
    if (k % 2 == 0) {
      EXPECT_FALSE(cache.Get(k, &value)) << k;
    } else {
      ASSERT_TRUE(cache.Get(k, &value)) << k;
      EXPECT_EQ(value, k * 10);
    }
  }
  const LruCacheStats stats = cache.Stats();
  // Invalidations are counted apart from pressure evictions: a sweep is
  // staleness reclamation, not a sign the byte budget is too small.
  EXPECT_EQ(stats.invalidations, 50u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_entries, 50u);
  // A sweep matching nothing is a harmless no-op.
  EXPECT_EQ(cache.EraseIf([](int) { return false; }), 0u);
  EXPECT_EQ(cache.Stats().invalidations, 50u);
}

TEST(ShardedLruCacheTest, EraseIfReleasesBytesAndListLinks) {
  // After sweeping, the freed bytes must be reusable and the recency list
  // intact: filling the budget again evicts cleanly from the cold end.
  IntCache cache(SingleShard(/*max_bytes=*/0, /*max_entries=*/4));
  for (int k = 0; k < 4; ++k) cache.Put(k, k, 8);
  EXPECT_EQ(cache.EraseIf([](int key) { return key == 1 || key == 2; }), 2u);
  EXPECT_EQ(cache.Stats().resident_entries, 2u);
  cache.Put(10, 100, 8);
  cache.Put(11, 110, 8);  // back at the cap, no eviction yet
  EXPECT_EQ(cache.Stats().evictions, 0u);
  cache.Put(12, 120, 8);  // now key 0 (coldest survivor) must go
  int value = 0;
  EXPECT_FALSE(cache.Get(0, &value));
  EXPECT_TRUE(cache.Get(3, &value));
  EXPECT_TRUE(cache.Get(12, &value));
  EXPECT_EQ(cache.Stats().evictions, 1u);
  EXPECT_EQ(cache.Stats().invalidations, 2u);
}

TEST(ShardedLruCacheTest, EraseIfRacesReadersSafely) {
  // Readers hammer Gets while a sweeper repeatedly invalidates half the key
  // space; values served must always be the ones inserted (no torn state).
  IntCache cache;
  for (int k = 0; k < 256; ++k) cache.Put(k, k * 7, 8);
  std::atomic<bool> stop{false};
  std::thread sweeper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.EraseIf([](int key) { return key % 2 == 0; });
      for (int k = 0; k < 256; k += 2) cache.Put(k, k * 7, 8);
    }
  });
  for (int round = 0; round < 200; ++round) {
    for (int k = 0; k < 256; ++k) {
      int value = -1;
      if (cache.Get(k, &value)) {
        EXPECT_EQ(value, k * 7) << k;
      }
    }
  }
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();
}

TEST(ShardedLruCacheTest, ClearEmptiesEveryShard) {
  IntCache cache;
  for (int k = 0; k < 100; ++k) cache.Put(k, k, 8);
  cache.Clear();
  const LruCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.resident_entries, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  int value = 0;
  EXPECT_FALSE(cache.Get(42, &value));
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  LruCacheOptions options;
  options.num_shards = 5;
  IntCache cache(options);
  EXPECT_EQ(cache.num_shards(), 8u);
  options.num_shards = 0;  // auto
  IntCache auto_cache(options);
  EXPECT_GE(auto_cache.num_shards(), 1u);
  EXPECT_EQ(auto_cache.num_shards() & (auto_cache.num_shards() - 1), 0u);
}

TEST(ShardedLruCacheTest, SharedPtrValuesSurviveEviction) {
  // The verifier's usage pattern: values are shared_ptrs, and a copy handed
  // out by Get() must stay valid after the entry is evicted.
  ShardedLruCache<int, std::shared_ptr<const std::string>> cache(
      SingleShard(/*max_bytes=*/0, /*max_entries=*/1));
  cache.Put(1, std::make_shared<const std::string>("alpha"), 5);
  std::shared_ptr<const std::string> held;
  ASSERT_TRUE(cache.Get(1, &held));
  cache.Put(2, std::make_shared<const std::string>("beta"), 4);  // evicts 1
  std::shared_ptr<const std::string> probe;
  EXPECT_FALSE(cache.Get(1, &probe));
  EXPECT_EQ(*held, "alpha");
}

TEST(ShardedLruCacheTest, ConcurrentHammerKeepsValuesConsistent) {
  // 8 threads × mixed Get/Put over a small key space with a budget tight
  // enough to evict constantly. Values are a pure function of the key, so
  // any hit must return exactly f(key).
  LruCacheOptions options;
  options.num_shards = 4;
  options.max_bytes = 4096;
  ShardedLruCache<int, int> cache(options);
  constexpr int kKeys = 64;
  constexpr int kOpsPerThread = 20'000;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        const int key = static_cast<int>((state >> 33) % kKeys);
        int value = -1;
        if (cache.Get(key, &value)) {
          if (value != key * 3) bad.fetch_add(1);
        } else {
          cache.Put(key, key * 3, 64);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad.load(), 0);
  const LruCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<size_t>(8) * kOpsPerThread);
}

// Restores the real host topology and clears the calling thread's node
// override when a NUMA test ends.
class TopologyGuard {
 public:
  ~TopologyGuard() {
    SetCurrentThreadNumaNode(-1);
    SetTopologyForTest(CpuTopology{0, {}});
  }
};

TEST(ShardedLruCacheTest, NumaAwareKeepsOneShardGroupPerNode) {
  TopologyGuard guard;
  CpuTopology topology;
  topology.num_nodes = 2;
  topology.cpus_of_node = {{0}, {1}};
  SetTopologyForTest(topology);

  LruCacheOptions options;
  options.num_shards = 4;
  options.numa_aware = true;
  IntCache cache(options);
  EXPECT_EQ(cache.num_shard_groups(), 2u);
  EXPECT_EQ(cache.num_shards(), 8u);  // 4 per group

  // A key inserted from node 0 lives only in node 0's group: node 1
  // misses it (and may cache its own copy — duplication, never staleness).
  SetCurrentThreadNumaNode(0);
  cache.Put(42, 420, 8);
  int value = 0;
  ASSERT_TRUE(cache.Get(42, &value));
  EXPECT_EQ(value, 420);
  SetCurrentThreadNumaNode(1);
  EXPECT_FALSE(cache.Get(42, &value));
  cache.Put(42, 420, 8);
  ASSERT_TRUE(cache.Get(42, &value));
  // Back on node 0 the original entry is still served.
  SetCurrentThreadNumaNode(0);
  ASSERT_TRUE(cache.Get(42, &value));
  EXPECT_EQ(cache.Stats().resident_entries, 2u);  // one copy per group
}

TEST(ShardedLruCacheTest, NumaAwareIsNoopOnSingleNodeHosts) {
  TopologyGuard guard;
  CpuTopology topology;
  topology.num_nodes = 1;
  topology.cpus_of_node = {{0}};
  SetTopologyForTest(topology);
  LruCacheOptions options;
  options.num_shards = 4;
  options.numa_aware = true;
  IntCache cache(options);
  EXPECT_EQ(cache.num_shard_groups(), 1u);
  EXPECT_EQ(cache.num_shards(), 4u);
}

LruCacheOptions AdaptiveOptions() {
  LruCacheOptions options = SingleShard(/*max_bytes=*/1024);
  options.adaptive_budget = true;
  options.adapt_interval = 0;  // tests step AdaptBudget() by hand
  options.adapt_min_bytes = 256;
  options.adapt_max_bytes = 8192;
  return options;
}

TEST(ShardedLruCacheTest, AdaptiveBudgetGrowsUnderEvictionPressure) {
  IntCache cache(AdaptiveOptions());
  EXPECT_EQ(cache.current_max_bytes(), 1024u);
  // Each window shows a useful hit alongside eviction churn — a squeezed
  // working set — so every step doubles the budget until the ceiling.
  int filler = 1000;
  for (int round = 0; round < 3; ++round) {
    cache.Put(1, 10, 8);
    int value = 0;
    ASSERT_TRUE(cache.Get(1, &value));
    // 8 × ~800 bytes against at most a 4 KiB budget: guaranteed evictions.
    for (int k = 0; k < 8; ++k) cache.Put(++filler, 0, 800);
    cache.AdaptBudget();
  }
  EXPECT_EQ(cache.current_max_bytes(), 8192u);
}

TEST(ShardedLruCacheTest, AdaptiveBudgetShrinksWhenCold) {
  IntCache cache(AdaptiveOptions());
  // All-miss traffic with no evictions: the cache is not earning its
  // budget, so each step halves it down to the floor.
  int key = 0;
  for (int round = 0; round < 4; ++round) {
    int value = 0;
    cache.Get(++key, &value);  // miss
    cache.AdaptBudget();
  }
  EXPECT_EQ(cache.current_max_bytes(), 256u);
}

TEST(ShardedLruCacheTest, AdaptiveBudgetHoldsOnQuietOrHealthyWindows) {
  IntCache cache(AdaptiveOptions());
  cache.AdaptBudget();  // empty window: no counters moved
  EXPECT_EQ(cache.current_max_bytes(), 1024u);
  cache.Put(1, 10, 8);
  int value = 0;
  ASSERT_TRUE(cache.Get(1, &value));
  cache.AdaptBudget();  // healthy: hits, no evictions → no change
  EXPECT_EQ(cache.current_max_bytes(), 1024u);
}

TEST(ShardedLruCacheTest, AdaptiveBudgetStepsAutomaticallyOnInterval) {
  LruCacheOptions options = AdaptiveOptions();
  options.adapt_interval = 8;
  IntCache cache(options);
  // Every 8th Put runs an adaptation step; a hot key hit each iteration
  // plus oversized fillers keep every window in the grow regime, so the
  // budget rises without any manual AdaptBudget call.
  for (int i = 0; i < 32; ++i) {
    cache.Put(1, 10, 8);
    int value = 0;
    ASSERT_TRUE(cache.Get(1, &value));
    cache.Put(1000 + i, 0, 800);
  }
  EXPECT_GT(cache.current_max_bytes(), 1024u);
}

}  // namespace
}  // namespace pcor
