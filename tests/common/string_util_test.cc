#include "src/common/string_util.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pcor {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = strings::Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(strings::Split("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> pieces{"x", "y", "z"};
  EXPECT_EQ(strings::Join(pieces, "-"), "x-y-z");
  EXPECT_EQ(strings::Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(strings::Trim("  hi \t\n"), "hi");
  EXPECT_EQ(strings::Trim(""), "");
  EXPECT_EQ(strings::Trim("   "), "");
  EXPECT_EQ(strings::Trim("inner space"), "inner space");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(strings::StartsWith("hello", "he"));
  EXPECT_FALSE(strings::StartsWith("hello", "lo"));
  EXPECT_TRUE(strings::EndsWith("hello", "lo"));
  EXPECT_FALSE(strings::EndsWith("hello", "he"));
  EXPECT_TRUE(strings::StartsWith("x", ""));
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(strings::ToLower("MiXeD 123"), "mixed 123");
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(strings::Format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strings::Format("%.2f", 1.005), "1.00");
}

TEST(StringUtilTest, HumanDuration) {
  EXPECT_EQ(strings::HumanDuration(0.5), "500ms");
  EXPECT_EQ(strings::HumanDuration(1.5), "1.5s");
  EXPECT_EQ(strings::HumanDuration(61.0), "1m 01.0s");
  EXPECT_EQ(strings::HumanDuration(3700.0), "1h 1m");
}

TEST(StringUtilTest, ParseSizeOr) {
  EXPECT_EQ(strings::ParseSizeOr("42", 0), 42u);
  EXPECT_EQ(strings::ParseSizeOr("bad", 7), 7u);
  EXPECT_EQ(strings::ParseSizeOr("", 7), 7u);
  EXPECT_EQ(strings::ParseSizeOr("12x", 7), 7u);
}

TEST(StringUtilTest, ParseDoubleOr) {
  EXPECT_DOUBLE_EQ(strings::ParseDoubleOr("2.5", 0), 2.5);
  EXPECT_DOUBLE_EQ(strings::ParseDoubleOr("nope", 1.25), 1.25);
}

TEST(StringUtilTest, EnvOverrides) {
  ::setenv("PCOR_TEST_ENV_SIZE", "99", 1);
  EXPECT_EQ(strings::EnvSizeOr("PCOR_TEST_ENV_SIZE", 1), 99u);
  ::unsetenv("PCOR_TEST_ENV_SIZE");
  EXPECT_EQ(strings::EnvSizeOr("PCOR_TEST_ENV_SIZE", 1), 1u);
  ::setenv("PCOR_TEST_ENV_DBL", "0.125", 1);
  EXPECT_DOUBLE_EQ(strings::EnvDoubleOr("PCOR_TEST_ENV_DBL", 9.0), 0.125);
  ::unsetenv("PCOR_TEST_ENV_DBL");
}

}  // namespace
}  // namespace pcor
