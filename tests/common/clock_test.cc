// Clock contract tests. The open-loop trace driver schedules against
// these, so the contracts under test are exactly what keeps its dispatch
// loop honest: monotone time, SleepUntil(d) => Now >= d, a late sleeper
// returns immediately (never re-scheduled), and VirtualClock's two modes
// make all of that assertable with zero wall-clock sleeps.
#include "src/common/clock.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pcor {
namespace {

TEST(RealClockTest, MonotoneAndStartsNearZero) {
  RealClock clock;
  const int64_t a = clock.NowMicros();
  const int64_t b = clock.NowMicros();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(RealClockTest, SleepUntilPastDeadlineReturnsImmediately) {
  RealClock clock;
  const int64_t now = clock.NowMicros();
  // A deadline an hour in the past: must return without sleeping (this
  // test would time out otherwise, and the driver's late-event path
  // depends on it).
  clock.SleepUntil(now - 3'600'000'000);
  EXPECT_GE(clock.NowMicros(), now);
}

TEST(RealClockTest, SharedInstanceIsStable) {
  EXPECT_EQ(RealClock::Get(), RealClock::Get());
}

TEST(VirtualClockTest, StartsAtRequestedOrigin) {
  VirtualClock clock(1'000);
  EXPECT_EQ(clock.NowMicros(), 1'000);
}

TEST(VirtualClockTest, AutoAdvanceJumpsToDeadline) {
  VirtualClock clock;
  clock.SleepUntil(250);
  EXPECT_EQ(clock.NowMicros(), 250);
  clock.SleepUntil(1'000);
  EXPECT_EQ(clock.NowMicros(), 1'000);
  EXPECT_EQ(clock.sleeps(), 2u);
}

TEST(VirtualClockTest, LateSleepIsImmediateAndUncounted) {
  VirtualClock clock(500);
  clock.SleepUntil(100);  // already past: no jump, no sleep counted
  EXPECT_EQ(clock.NowMicros(), 500);
  clock.SleepUntil(500);  // exactly now: same
  EXPECT_EQ(clock.NowMicros(), 500);
  EXPECT_EQ(clock.sleeps(), 0u);
}

TEST(VirtualClockTest, NeverRewinds) {
  VirtualClock clock(1'000);
  clock.AdvanceTo(400);
  EXPECT_EQ(clock.NowMicros(), 1'000);
  clock.AdvanceTo(1'200);
  EXPECT_EQ(clock.NowMicros(), 1'200);
  clock.AdvanceBy(-50);
  EXPECT_EQ(clock.NowMicros(), 1'200);
  clock.AdvanceBy(300);
  EXPECT_EQ(clock.NowMicros(), 1'500);
}

TEST(VirtualClockTest, ManualModeBlocksUntilAdvancedPastDeadline) {
  VirtualClock clock(0, /*auto_advance=*/false);
  std::atomic<int64_t> woke_at{-1};
  std::thread sleeper([&] {
    clock.SleepUntil(1'000);
    woke_at.store(clock.NowMicros());
  });
  // Rendezvous: wait until the sleeper is actually blocked inside
  // SleepUntil (condition-variable registered), without wall sleeps.
  while (clock.waiters() == 0) std::this_thread::yield();
  EXPECT_EQ(woke_at.load(), -1);

  // A partial advance must NOT wake it...
  clock.AdvanceTo(999);
  // ...and we can prove it without sleeping: the waiter is still
  // registered, and when it finally wakes it records the FINAL time, not
  // 999 — an early wake would have stored 999.
  while (clock.waiters() == 0) std::this_thread::yield();
  clock.AdvanceTo(1'000);
  sleeper.join();
  EXPECT_EQ(woke_at.load(), 1'000);
  EXPECT_EQ(clock.waiters(), 0u);
  EXPECT_EQ(clock.sleeps(), 1u);
}

TEST(VirtualClockTest, ManualModeWakesManySleepersInDeadlineOrder) {
  VirtualClock clock(0, /*auto_advance=*/false);
  std::atomic<int64_t> woke_100{-1};
  std::atomic<int64_t> woke_200{-1};
  std::thread a([&] {
    clock.SleepUntil(100);
    woke_100.store(clock.NowMicros());
  });
  std::thread b([&] {
    clock.SleepUntil(200);
    woke_200.store(clock.NowMicros());
  });
  while (clock.waiters() < 2) std::this_thread::yield();

  clock.AdvanceTo(150);  // releases only the 100us sleeper
  a.join();
  EXPECT_EQ(woke_100.load(), 150);
  EXPECT_EQ(woke_200.load(), -1);
  while (clock.waiters() == 0) std::this_thread::yield();

  clock.AdvanceTo(250);
  b.join();
  EXPECT_EQ(woke_200.load(), 250);
}

TEST(VirtualClockTest, AutoAdvanceSupportsConcurrentSleepers) {
  // Auto-advance from several threads: every SleepUntil returns with
  // Now >= its own deadline and time stays monotone. (TSan coverage for
  // the lock discipline.)
  VirtualClock clock;
  std::vector<std::thread> threads;
  std::atomic<bool> violated{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 1; i <= 50; ++i) {
        const int64_t deadline = t * 1'000 + i * 37;
        clock.SleepUntil(deadline);
        if (clock.NowMicros() < deadline) violated.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_GE(clock.NowMicros(), 3 * 1'000 + 50 * 37);
}

}  // namespace
}  // namespace pcor
