#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/random.h"

namespace pcor {
namespace {

TEST(RunningStatsTest, MatchesDirectComputation) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), 5.0, 1e-12);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingleton) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  RunningStats all, left, right;
  for (size_t i = 0; i < xs.size(); ++i) {
    all.Add(xs[i]);
    (i < 4 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(ConfidenceIntervalTest, KnownTValue) {
  // n = 4, stddev = 1, mean = 0: the 95% t-CI half width is
  // t_{0.975,3} / sqrt(4) = 3.1824 / 2.
  std::vector<double> xs{-1.0, -1.0, 1.0, 1.0};
  // stddev = sqrt(4/3)
  auto ci = MeanConfidenceInterval(xs, 0.95);
  const double sd = std::sqrt(4.0 / 3.0);
  const double half = 3.182446 * sd / 2.0;
  EXPECT_NEAR(ci.mean, 0.0, 1e-12);
  EXPECT_NEAR(ci.upper - ci.mean, half, 1e-4);
  EXPECT_NEAR(ci.mean - ci.lower, half, 1e-4);
}

TEST(ConfidenceIntervalTest, DegenerateInputs) {
  auto empty = MeanConfidenceInterval({}, 0.9);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  auto single = MeanConfidenceInterval({5.0}, 0.9);
  EXPECT_DOUBLE_EQ(single.lower, 5.0);
  EXPECT_DOUBLE_EQ(single.upper, 5.0);
}

TEST(ConfidenceIntervalTest, NarrowsWithMoreSamples) {
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(i % 2);
  for (int i = 0; i < 1000; ++i) large.push_back(i % 2);
  auto ci_small = MeanConfidenceInterval(small, 0.9);
  auto ci_large = MeanConfidenceInterval(large, 0.9);
  EXPECT_LT(ci_large.upper - ci_large.lower,
            ci_small.upper - ci_small.lower);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0 / 3.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.9), 7.0);
}

TEST(HistogramBuilderTest, CountsAndClamping) {
  HistogramBuilder h(0.0, 10.0, 5);
  h.AddAll({0.5, 1.5, 2.5, 9.9, -3.0, 42.0});
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.counts()[0], 3u);  // 0.5, 1.5 and clamped -3.0
  EXPECT_EQ(h.counts()[1], 1u);  // 2.5
  EXPECT_EQ(h.counts()[4], 2u);  // 9.9 and clamped 42.0
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramBuilderTest, AsciiRenderingHasOneLinePerBin) {
  HistogramBuilder h(0.0, 1.0, 4);
  h.AddAll({0.1, 0.2, 0.9});
  std::string ascii = h.ToAscii();
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 4);
  EXPECT_NE(ascii.find('#'), std::string::npos);
}

TEST(PercentileOfSortedTest, EdgeCases) {
  const std::vector<double> sorted{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.0), 10.0);  // q = 0: min
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 1.0), 50.0);  // q = 1: max
  // Interpolation midpoints: pos = q * (n-1) lands exactly between ranks.
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.125), 15.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.375), 25.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.625), 35.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0.875), 45.0);
  // Single sample: every quantile is that sample.
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(one, 1.0), 7.0);
}

// ---- LatencyHistogram: the bounded-memory open-loop latency recorder ---

// The documented contract: PercentileUs(q) brackets the ceil(q*n)-th order
// statistic from above within the relative error bound (+1 for the
// integer bucket edge).
void ExpectPercentilesWithinBound(const LatencyHistogram& hist,
                                  std::vector<int64_t> samples) {
  std::sort(samples.begin(), samples.end());
  const double bound = hist.RelativeErrorBound();
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                   0.999, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    const int64_t exact = samples[std::min(rank, samples.size()) - 1];
    const int64_t approx = hist.PercentileUs(q);
    EXPECT_GE(approx, exact) << "q=" << q;
    EXPECT_LE(static_cast<double>(approx),
              static_cast<double>(exact) * (1.0 + bound) + 1.0)
        << "q=" << q;
  }
  EXPECT_EQ(hist.PercentileUs(1.0), samples.back());  // max is exact
  EXPECT_EQ(hist.min_us(), samples.front());
  EXPECT_EQ(hist.max_us(), samples.back());
}

TEST(LatencyHistogramTest, EmptyIsAllZeros) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.PercentileUs(0.5), 0);
  EXPECT_EQ(hist.min_us(), 0);
  EXPECT_EQ(hist.max_us(), 0);
  EXPECT_DOUBLE_EQ(hist.mean_us(), 0.0);
}

TEST(LatencyHistogramTest, UnitRegionIsExact) {
  // Values below 2^precision_bits land in unit-width buckets: every
  // percentile is the exact order statistic, not just within the bound.
  LatencyHistogram hist;
  std::vector<int64_t> samples;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    samples.push_back(static_cast<int64_t>(rng.NextBounded(64)));
  }
  for (int64_t s : samples) hist.Record(s);
  std::sort(samples.begin(), samples.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    EXPECT_EQ(hist.PercentileUs(q), samples[rank - 1]) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, RandomSamplesWithinErrorBound) {
  LatencyHistogram hist;
  std::vector<int64_t> samples;
  Rng rng(2021);
  for (int i = 0; i < 5'000; ++i) {
    // Span many octaves: uniform in the exponent, the adversarial shape
    // for log-linear buckets. 2^25 max stays inside the default 60 s
    // range, so nothing saturates.
    const int64_t v = static_cast<int64_t>(
        rng.NextBounded(uint64_t{1} << rng.NextBounded(26)));
    samples.push_back(v);
    hist.Record(v);
  }
  ExpectPercentilesWithinBound(hist, samples);
  // Mean and count are exact.
  double sum = 0;
  for (int64_t s : samples) sum += static_cast<double>(s);
  EXPECT_EQ(hist.count(), samples.size());
  EXPECT_DOUBLE_EQ(hist.mean_us(), sum / static_cast<double>(samples.size()));
  EXPECT_EQ(hist.saturated(), 0u);
}

TEST(LatencyHistogramTest, SingleBucketPileup) {
  // Adversarial: every sample in ONE sub-bucket high up the range. The
  // whole distribution collapses into a single counter; all percentiles
  // must still bracket the true value within the bound.
  LatencyHistogram hist;
  std::vector<int64_t> samples(1'000, 48'000'123);
  samples.push_back(48'000'124);  // and a tie-breaking neighbor
  for (int64_t s : samples) hist.Record(s);
  ExpectPercentilesWithinBound(hist, samples);
}

TEST(LatencyHistogramTest, HigherPrecisionTightensTheBound) {
  LatencyHistogram::Options coarse;
  coarse.precision_bits = 3;
  LatencyHistogram::Options fine;
  fine.precision_bits = 10;
  LatencyHistogram coarse_hist(coarse), fine_hist(fine);
  EXPECT_DOUBLE_EQ(coarse_hist.RelativeErrorBound(), 0.25);
  EXPECT_DOUBLE_EQ(fine_hist.RelativeErrorBound(), std::ldexp(1.0, -9));
  std::vector<int64_t> samples;
  Rng rng(11);
  for (int i = 0; i < 2'000; ++i) {
    const int64_t v =
        static_cast<int64_t>(1'000'000 + rng.NextBounded(50'000'000));
    samples.push_back(v);
    coarse_hist.Record(v);
    fine_hist.Record(v);
  }
  ExpectPercentilesWithinBound(coarse_hist, samples);
  ExpectPercentilesWithinBound(fine_hist, samples);
  EXPECT_GT(fine_hist.bucket_count(), coarse_hist.bucket_count());
}

TEST(LatencyHistogramTest, ClampsNegativeAndSaturatesAboveRange) {
  LatencyHistogram::Options options;
  options.max_value_us = 1'000;
  LatencyHistogram hist(options);
  hist.Record(-50);       // clamps to 0, not saturated
  hist.Record(999);
  hist.Record(5'000'000);  // clamps to max_value_us, saturated
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.saturated(), 1u);
  EXPECT_EQ(hist.min_us(), 0);
  EXPECT_EQ(hist.max_us(), 1'000);
  EXPECT_EQ(hist.PercentileUs(1.0), 1'000);
}

TEST(LatencyHistogramTest, MergeIsAssociativeAcrossAnyTree) {
  // Cross-thread merging contract: per-thread histograms merged in ANY
  // tree shape yield bit-identical counts and percentiles. Simulate four
  // shards and compare left-fold, right-fold and pairwise trees.
  Rng rng(13);
  std::vector<std::vector<int64_t>> shards(4);
  for (size_t s = 0; s < shards.size(); ++s) {
    for (int i = 0; i < 700; ++i) {
      shards[s].push_back(static_cast<int64_t>(
          rng.NextBounded(uint64_t{1} << rng.NextBounded(26))));
    }
  }
  auto record = [](const std::vector<int64_t>& values) {
    LatencyHistogram h;
    for (int64_t v : values) h.Record(v);
    return h;
  };
  LatencyHistogram left = record(shards[0]);
  left.Merge(record(shards[1]));
  left.Merge(record(shards[2]));
  left.Merge(record(shards[3]));
  LatencyHistogram right = record(shards[3]);
  right.Merge(record(shards[2]));
  right.Merge(record(shards[1]));
  right.Merge(record(shards[0]));
  LatencyHistogram pair_a = record(shards[0]);
  pair_a.Merge(record(shards[1]));
  LatencyHistogram pair_b = record(shards[2]);
  pair_b.Merge(record(shards[3]));
  pair_a.Merge(pair_b);

  std::vector<int64_t> all;
  for (const auto& shard : shards) {
    all.insert(all.end(), shard.begin(), shard.end());
  }
  for (const LatencyHistogram* h : {&left, &right, &pair_a}) {
    EXPECT_EQ(h->count(), all.size());
    EXPECT_EQ(h->min_us(), left.min_us());
    EXPECT_EQ(h->max_us(), left.max_us());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0}) {
      EXPECT_EQ(h->PercentileUs(q), left.PercentileUs(q)) << "q=" << q;
    }
  }
  ExpectPercentilesWithinBound(left, all);
}

TEST(LatencyHistogramTest, MergeWithEmptyKeepsExactExtremes) {
  LatencyHistogram a, b;
  a.Record(42);
  a.Merge(b);  // merging in an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min_us(), 42);
  EXPECT_EQ(a.max_us(), 42);
  b.Merge(a);  // and an empty one adopts the other's extremes
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min_us(), 42);
  EXPECT_EQ(b.max_us(), 42);
}

TEST(RuntimeSummaryTest, MinMaxAvg) {
  auto s = SummarizeRuntimes({2.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_seconds, 2.0);
  EXPECT_EQ(s.trials, 3u);
  auto empty = SummarizeRuntimes({});
  EXPECT_EQ(empty.trials, 0u);
}

}  // namespace
}  // namespace pcor
