#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pcor {
namespace {

TEST(RunningStatsTest, MatchesDirectComputation) {
  std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), 5.0, 1e-12);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, EmptyAndSingleton) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.Add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  RunningStats all, left, right;
  for (size_t i = 0; i < xs.size(); ++i) {
    all.Add(xs[i]);
    (i < 4 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(ConfidenceIntervalTest, KnownTValue) {
  // n = 4, stddev = 1, mean = 0: the 95% t-CI half width is
  // t_{0.975,3} / sqrt(4) = 3.1824 / 2.
  std::vector<double> xs{-1.0, -1.0, 1.0, 1.0};
  // stddev = sqrt(4/3)
  auto ci = MeanConfidenceInterval(xs, 0.95);
  const double sd = std::sqrt(4.0 / 3.0);
  const double half = 3.182446 * sd / 2.0;
  EXPECT_NEAR(ci.mean, 0.0, 1e-12);
  EXPECT_NEAR(ci.upper - ci.mean, half, 1e-4);
  EXPECT_NEAR(ci.mean - ci.lower, half, 1e-4);
}

TEST(ConfidenceIntervalTest, DegenerateInputs) {
  auto empty = MeanConfidenceInterval({}, 0.9);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
  auto single = MeanConfidenceInterval({5.0}, 0.9);
  EXPECT_DOUBLE_EQ(single.lower, 5.0);
  EXPECT_DOUBLE_EQ(single.upper, 5.0);
}

TEST(ConfidenceIntervalTest, NarrowsWithMoreSamples) {
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(i % 2);
  for (int i = 0; i < 1000; ++i) large.push_back(i % 2);
  auto ci_small = MeanConfidenceInterval(small, 0.9);
  auto ci_large = MeanConfidenceInterval(large, 0.9);
  EXPECT_LT(ci_large.upper - ci_large.lower,
            ci_small.upper - ci_small.lower);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 1.0 / 3.0), 20.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0.9), 7.0);
}

TEST(HistogramBuilderTest, CountsAndClamping) {
  HistogramBuilder h(0.0, 10.0, 5);
  h.AddAll({0.5, 1.5, 2.5, 9.9, -3.0, 42.0});
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.counts()[0], 3u);  // 0.5, 1.5 and clamped -3.0
  EXPECT_EQ(h.counts()[1], 1u);  // 2.5
  EXPECT_EQ(h.counts()[4], 2u);  // 9.9 and clamped 42.0
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(HistogramBuilderTest, AsciiRenderingHasOneLinePerBin) {
  HistogramBuilder h(0.0, 1.0, 4);
  h.AddAll({0.1, 0.2, 0.9});
  std::string ascii = h.ToAscii();
  EXPECT_EQ(std::count(ascii.begin(), ascii.end(), '\n'), 4);
  EXPECT_NE(ascii.find('#'), std::string::npos);
}

TEST(RuntimeSummaryTest, MinMaxAvg) {
  auto s = SummarizeRuntimes({2.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.max_seconds, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_seconds, 2.0);
  EXPECT_EQ(s.trials, 3u);
  auto empty = SummarizeRuntimes({});
  EXPECT_EQ(empty.trials, 0u);
}

}  // namespace
}  // namespace pcor
