#include "src/common/threading.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace pcor {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 8, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ComputesCorrectSum) {
  const size_t n = 10000;
  std::vector<double> out(n, 0.0);
  ParallelFor(n, 6, [&](size_t i) { out[i] = static_cast<double>(i); });
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(DefaultThreadCountTest, AtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace pcor
