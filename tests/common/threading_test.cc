#include "src/common/threading.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

namespace pcor {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 8, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SequentialFallback) {
  std::vector<size_t> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, ComputesCorrectSum) {
  const size_t n = 10000;
  std::vector<double> out(n, 0.0);
  ParallelFor(n, 6, [&](size_t i) { out[i] = static_cast<double>(i); });
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0);
}

TEST(DefaultThreadCountTest, AtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

TEST(PoolParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 0, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(PoolParallelForTest, MaxParallelOneRunsSeriallyInOrder) {
  ThreadPool pool(4);
  std::vector<size_t> order;
  pool.ParallelFor(5, 1, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(PoolParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(PoolParallelForTest, PoolIsReusableAfterALoop) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.ParallelFor(100, 0, [&](size_t) { counter.fetch_add(1); });
  pool.ParallelFor(100, 2, [&](size_t) { counter.fetch_add(1); });
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 201);
}

TEST(PoolParallelForTest, OrderedSlotsAreIdenticalForEveryThreadCount) {
  // The determinism contract: fn(i) writing slot i yields the same gathered
  // vector whatever the parallelism, including 1.
  const size_t n = 4096;
  std::vector<double> serial(n);
  for (size_t i = 0; i < n; ++i) serial[i] = static_cast<double>(i) * 1.5;
  for (size_t max_parallel : {size_t{1}, size_t{2}, size_t{0}}) {
    ThreadPool pool(4);
    std::vector<double> out(n, -1.0);
    pool.ParallelFor(n, max_parallel, [&](size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    EXPECT_EQ(out, serial) << "max_parallel=" << max_parallel;
  }
}

TEST(PoolParallelForTest, NestedLoopOnSamePoolDoesNotDeadlock) {
  // Outer chunks run on pool workers; each opens an inner ParallelFor on
  // the SAME pool. The caller-participation design must drain everything
  // even though every worker is already busy in the outer loop.
  ThreadPool pool(2);
  const size_t outer = 8, inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  pool.ParallelFor(outer, 0, [&](size_t o) {
    pool.ParallelFor(inner, 0, [&](size_t i) {
      hits[o * inner + i].fetch_add(1);
    });
  });
  for (size_t k = 0; k < outer * inner; ++k) {
    ASSERT_EQ(hits[k].load(), 1) << k;
  }
}

TEST(PoolParallelForTest, WorkerInitiatedLoopCompletes) {
  // A ParallelFor started from inside Submit'ed work (not the owner
  // thread) must complete too — this is the serving pattern, where batch
  // workers run releases that open intra-release loops.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    pool.ParallelFor(500, 0, [&](size_t) { counter.fetch_add(1); });
    done.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(counter.load(), 500);
}

// Restores the real host topology when a test that injected a fake one
// ends, whatever its outcome.
class TopologyGuard {
 public:
  ~TopologyGuard() { SetTopologyForTest(CpuTopology{0, {}}); }
};

CpuTopology TwoNodeTopology() {
  CpuTopology topology;
  topology.num_nodes = 2;
  topology.cpus_of_node = {{0, 1}, {2, 3}};
  return topology;
}

TEST(CpuTopologyTest, SystemTopologyIsSane) {
  const CpuTopology& topology = SystemTopology();
  EXPECT_GE(topology.num_nodes, 1u);
  EXPECT_EQ(topology.cpus_of_node.size(), topology.num_nodes);
  for (const auto& cpus : topology.cpus_of_node) {
    EXPECT_FALSE(cpus.empty());
    EXPECT_TRUE(std::is_sorted(cpus.begin(), cpus.end()));
  }
  EXPECT_LT(CurrentNumaNode(), topology.num_nodes);
}

TEST(CpuTopologyTest, TestTopologyInjectsAndRestores) {
  {
    TopologyGuard guard;
    SetTopologyForTest(TwoNodeTopology());
    EXPECT_EQ(SystemTopology().num_nodes, 2u);
  }
  // Guard restored the probe: back to the real host.
  EXPECT_GE(SystemTopology().num_nodes, 1u);
}

TEST(CpuTopologyTest, ThreadNodeOverrideWinsAndClears) {
  TopologyGuard guard;
  SetTopologyForTest(TwoNodeTopology());
  SetCurrentThreadNumaNode(1);
  EXPECT_EQ(CurrentNumaNode(), 1u);
  SetCurrentThreadNumaNode(-1);  // back to CPU-derived (node < num_nodes)
  EXPECT_LT(CurrentNumaNode(), 2u);
}

TEST(ThreadPoolTest, PinnedWorkersRoundRobinAcrossNodes) {
  TopologyGuard guard;
  SetTopologyForTest(TwoNodeTopology());
  ThreadPoolOptions options;
  options.pin_to_numa_nodes = true;
  ThreadPool pool(4, options);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pool.worker_node(i), i % 2) << "worker " << i;
  }
  // Each worker observes the node it was placed on, which is what routes
  // it to the node-local cache shard group.
  std::mutex mu;
  std::vector<size_t> seen_nodes;
  for (int task = 0; task < 32; ++task) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      seen_nodes.push_back(CurrentNumaNode());
    });
  }
  pool.Wait();
  for (size_t node : seen_nodes) EXPECT_LT(node, 2u);
  EXPECT_TRUE(std::any_of(seen_nodes.begin(), seen_nodes.end(),
                          [](size_t n) { return n == 0; }));
}

TEST(ThreadPoolTest, UnpinnedPoolKeepsEveryWorkerOnNodeZero) {
  TopologyGuard guard;
  SetTopologyForTest(TwoNodeTopology());
  ThreadPoolOptions options;
  options.pin_to_numa_nodes = false;
  ThreadPool pool(4, options);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(pool.worker_node(i), 0u);
}

TEST(ThreadPoolTest, PinnedPoolStillRunsAllTasks) {
  // On the real host topology (possibly one node, possibly restricted
  // affinity masks) pinning must never lose work — placement is
  // best-effort, completion is not.
  ThreadPoolOptions options;
  options.pin_to_numa_nodes = true;
  ThreadPool pool(4, options);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace pcor
