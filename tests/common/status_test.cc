#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace pcor {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::PrivacyBudgetExceeded("x").IsPrivacyBudgetExceeded());
  EXPECT_TRUE(Status::NoValidContext("x").IsNoValidContext());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kPrivacyBudgetExceeded),
            "PrivacyBudgetExceeded");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNoValidContext),
            "NoValidContext");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnMacro(int x) {
  PCOR_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(UsesReturnMacro(1).ok());
  EXPECT_TRUE(UsesReturnMacro(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  int h = 0;
  PCOR_ASSIGN_OR_RETURN(h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalidArgument());
}

}  // namespace
}  // namespace pcor
