#include "src/common/bitvector.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace pcor {
namespace {

TEST(BitVectorTest, SetClearTest) {
  BitVector b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_FALSE(b.Test(63));
  b.Set(63);
  b.Set(64);
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitVectorTest, FillAllRespectsTailBits) {
  BitVector b(70, true);
  EXPECT_EQ(b.Count(), 70u);  // bits beyond size must not be set
  b.FillAll(false);
  EXPECT_EQ(b.Count(), 0u);
  b.FillAll(true);
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitVectorTest, BooleanAlgebraMatchesManual) {
  Rng rng(3);
  const size_t n = 257;
  BitVector a(n), b(n);
  std::vector<bool> ma(n), mb(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.4)) {
      a.Set(i);
      ma[i] = true;
    }
    if (rng.NextBernoulli(0.6)) {
      b.Set(i);
      mb[i] = true;
    }
  }
  BitVector and_v = a, or_v = a, andnot_v = a, xor_v = a;
  and_v.AndWith(b);
  or_v.OrWith(b);
  andnot_v.AndNotWith(b);
  xor_v.XorWith(b);
  size_t expected_and = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(and_v.Test(i), ma[i] && mb[i]) << i;
    EXPECT_EQ(or_v.Test(i), ma[i] || mb[i]) << i;
    EXPECT_EQ(andnot_v.Test(i), ma[i] && !mb[i]) << i;
    EXPECT_EQ(xor_v.Test(i), ma[i] != mb[i]) << i;
    expected_and += (ma[i] && mb[i]);
  }
  EXPECT_EQ(a.AndCount(b), expected_and);
}

TEST(BitVectorTest, ToIndicesAndForEach) {
  BitVector b(130);
  b.Set(0);
  b.Set(65);
  b.Set(129);
  auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 65u);
  EXPECT_EQ(idx[2], 129u);
  size_t visits = 0;
  uint32_t last = 0;
  b.ForEachSetBit([&](uint32_t i) {
    EXPECT_GE(i, last);
    last = i;
    ++visits;
  });
  EXPECT_EQ(visits, 3u);
}

TEST(BitVectorTest, AnySetAndEquality) {
  BitVector a(10), b(10);
  EXPECT_TRUE(a.NoneSet());
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_TRUE(a.AnySet());
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_EQ(a, b);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.NoneSet());
}

}  // namespace
}  // namespace pcor
