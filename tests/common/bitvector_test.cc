#include "src/common/bitvector.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace pcor {
namespace {

TEST(BitVectorTest, SetClearTest) {
  BitVector b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_FALSE(b.Test(63));
  b.Set(63);
  b.Set(64);
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitVectorTest, FillAllRespectsTailBits) {
  BitVector b(70, true);
  EXPECT_EQ(b.Count(), 70u);  // bits beyond size must not be set
  b.FillAll(false);
  EXPECT_EQ(b.Count(), 0u);
  b.FillAll(true);
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitVectorTest, BooleanAlgebraMatchesManual) {
  Rng rng(3);
  const size_t n = 257;
  BitVector a(n), b(n);
  std::vector<bool> ma(n), mb(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.4)) {
      a.Set(i);
      ma[i] = true;
    }
    if (rng.NextBernoulli(0.6)) {
      b.Set(i);
      mb[i] = true;
    }
  }
  BitVector and_v = a, or_v = a, andnot_v = a, xor_v = a;
  and_v.AndWith(b);
  or_v.OrWith(b);
  andnot_v.AndNotWith(b);
  xor_v.XorWith(b);
  size_t expected_and = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(and_v.Test(i), ma[i] && mb[i]) << i;
    EXPECT_EQ(or_v.Test(i), ma[i] || mb[i]) << i;
    EXPECT_EQ(andnot_v.Test(i), ma[i] && !mb[i]) << i;
    EXPECT_EQ(xor_v.Test(i), ma[i] != mb[i]) << i;
    expected_and += (ma[i] && mb[i]);
  }
  EXPECT_EQ(a.AndCount(b), expected_and);
}

TEST(BitVectorTest, ToIndicesAndForEach) {
  BitVector b(130);
  b.Set(0);
  b.Set(65);
  b.Set(129);
  auto idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 65u);
  EXPECT_EQ(idx[2], 129u);
  size_t visits = 0;
  uint32_t last = 0;
  b.ForEachSetBit([&](uint32_t i) {
    EXPECT_GE(i, last);
    last = i;
    ++visits;
  });
  EXPECT_EQ(visits, 3u);
}

TEST(BitVectorTest, AnySetAndEquality) {
  BitVector a(10), b(10);
  EXPECT_TRUE(a.NoneSet());
  EXPECT_EQ(a, b);
  a.Set(5);
  EXPECT_TRUE(a.AnySet());
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_EQ(a, b);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_TRUE(b.NoneSet());
}

TEST(BitVectorTest, AssignAcrossWordAndChunkBoundaries) {
  // Sizes straddling the word boundary and the compressed-bitmap chunk
  // boundary (64Ki bits): Assign must leave exactly `size` live bits and
  // keep the tail of the last partial word clear, in both directions of
  // resize and both fill values.
  BitVector b(10, true);
  const size_t kChunk = size_t{1} << 16;
  const size_t sizes[] = {63,         64,         65,        128,
                          kChunk - 1, kChunk,     kChunk + 1, 5,
                          3 * kChunk + 17};
  for (const size_t n : sizes) {
    b.Assign(n, true);
    EXPECT_EQ(b.size(), n);
    EXPECT_EQ(b.Count(), n) << n;  // no stray bits beyond size
    b.Assign(n, false);
    EXPECT_EQ(b.Count(), 0u) << n;
  }
}

TEST(BitVectorTest, LastPartialWordStaysCleanThroughOps) {
  // Operations that write whole words (FillAll, XorWith against a full
  // vector) must never leak bits into the dead tail of the last word,
  // which Count and AndCount would otherwise overcount.
  BitVector b(70);
  b.FillAll(true);
  BitVector full(70, true);
  b.XorWith(full);  // word-wise XOR: tail must stay zero
  EXPECT_EQ(b.Count(), 0u);
  b.FillAll(true);
  EXPECT_EQ(b.AndCount(full), 70u);
  b.Set(69);  // last live bit is settable and testable
  EXPECT_TRUE(b.Test(69));
}

TEST(BitVectorTest, AppendSetBitsAtBoundaries) {
  // First/last bit of words at the front, a word boundary pair, and the
  // final partial word — AppendSetBits must emit all of them ascending and
  // append (not clobber) into a non-empty output vector.
  BitVector b(130);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(128);
  b.Set(129);
  std::vector<uint32_t> out{7};  // pre-existing element must survive
  b.AppendSetBits(&out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7, 0, 63, 64, 128, 129}));
  // Empty and full vectors are the container extremes.
  std::vector<uint32_t> none;
  BitVector(200).AppendSetBits(&none);
  EXPECT_TRUE(none.empty());
  std::vector<uint32_t> all;
  BitVector(67, true).AppendSetBits(&all);
  ASSERT_EQ(all.size(), 67u);
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 66u);
}

}  // namespace
}  // namespace pcor
