#include "src/common/mpmc_queue.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pcor {
namespace {

using std::chrono::milliseconds;

TEST(BoundedMpmcQueueTest, FifoSingleThread) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.TryPush(1), QueueOp::kOk);
  EXPECT_EQ(q.TryPush(2), QueueOp::kOk);
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_EQ(q.TryPop(&out), QueueOp::kOk);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.TryPop(&out), QueueOp::kOk);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.TryPop(&out), QueueOp::kEmpty);
}

TEST(BoundedMpmcQueueTest, TryPushReportsFull) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_EQ(q.TryPush(1), QueueOp::kOk);
  EXPECT_EQ(q.TryPush(2), QueueOp::kOk);
  EXPECT_EQ(q.TryPush(3), QueueOp::kFull);
  int out = 0;
  EXPECT_EQ(q.TryPop(&out), QueueOp::kOk);
  EXPECT_EQ(q.TryPush(3), QueueOp::kOk);
}

TEST(BoundedMpmcQueueTest, CloseFailsPushesButDrainsPops) {
  BoundedMpmcQueue<int> q(4);
  ASSERT_EQ(q.TryPush(10), QueueOp::kOk);
  ASSERT_EQ(q.TryPush(11), QueueOp::kOk);
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.TryPush(12), QueueOp::kClosed);
  EXPECT_EQ(q.Push(12), QueueOp::kClosed);
  int out = 0;
  EXPECT_EQ(q.Pop(&out), QueueOp::kOk);
  EXPECT_EQ(out, 10);
  EXPECT_EQ(q.TryPop(&out), QueueOp::kOk);
  EXPECT_EQ(out, 11);
  // Drained: every flavor of pop now reports closed instead of blocking.
  EXPECT_EQ(q.Pop(&out), QueueOp::kClosed);
  EXPECT_EQ(q.TryPop(&out), QueueOp::kClosed);
  EXPECT_EQ(q.PopFor(&out, milliseconds(1)), QueueOp::kClosed);
}

TEST(BoundedMpmcQueueTest, PopForTimesOutOnOpenEmptyQueue) {
  BoundedMpmcQueue<int> q(1);
  int out = 0;
  EXPECT_EQ(q.PopFor(&out, milliseconds(5)), QueueOp::kTimedOut);
}

TEST(BoundedMpmcQueueTest, BlockedPushWakesOnPop) {
  BoundedMpmcQueue<int> q(1);
  ASSERT_EQ(q.TryPush(1), QueueOp::kOk);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_EQ(q.Push(2), QueueOp::kOk);  // blocks until the pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(milliseconds(10));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  EXPECT_EQ(q.Pop(&out), QueueOp::kOk);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(&out), QueueOp::kOk);
  EXPECT_EQ(out, 2);
}

TEST(BoundedMpmcQueueTest, CloseWakesBlockedPush) {
  BoundedMpmcQueue<int> q(1);
  ASSERT_EQ(q.TryPush(1), QueueOp::kOk);
  std::thread producer([&] { EXPECT_EQ(q.Push(2), QueueOp::kClosed); });
  std::this_thread::sleep_for(milliseconds(5));
  q.Close();
  producer.join();
}

TEST(BoundedMpmcQueueTest, CloseWakesBlockedPop) {
  BoundedMpmcQueue<int> q(1);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_EQ(q.Pop(&out), QueueOp::kClosed);
  });
  std::this_thread::sleep_for(milliseconds(5));
  q.Close();
  consumer.join();
}

TEST(BoundedMpmcQueueTest, MoveOnlyElements) {
  BoundedMpmcQueue<std::unique_ptr<int>> q(2);
  EXPECT_EQ(q.TryPush(std::make_unique<int>(7)), QueueOp::kOk);
  std::unique_ptr<int> out;
  EXPECT_EQ(q.Pop(&out), QueueOp::kOk);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

// The stress shape the server relies on: many producers racing many
// consumers through a small buffer, every element delivered exactly once.
TEST(BoundedMpmcQueueTest, ManyProducersManyConsumersDeliverExactlyOnce) {
  constexpr size_t kProducers = 8;
  constexpr size_t kConsumers = 4;
  constexpr size_t kPerProducer = 500;
  BoundedMpmcQueue<size_t> q(16);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(q.Push(p * kPerProducer + i), QueueOp::kOk);
      }
    });
  }

  std::mutex seen_mu;
  std::set<size_t> seen;
  std::vector<std::thread> consumers;
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      size_t item = 0;
      while (q.Pop(&item) == QueueOp::kOk) {
        std::unique_lock<std::mutex> lock(seen_mu);
        const bool inserted = seen.insert(item).second;
        EXPECT_TRUE(inserted) << "duplicate delivery of " << item;
      }
    });
  }

  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
}

}  // namespace
}  // namespace pcor
