#include "src/common/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/random.h"

namespace pcor {
namespace {

// Plain reference implementations in the canonical 4-lane order the kernel
// contract specifies (see simd.h). Exactness against these is what makes
// detector results backend-invariant.
double LaneSum(const std::vector<double>& v) {
  double lane[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < v.size(); ++i) lane[i % 4] += v[i];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

double LaneSumSqDev(const std::vector<double>& v, double c) {
  double lane[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < v.size(); ++i) {
    lane[i % 4] += (v[i] - c) * (v[i] - c);
  }
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

std::vector<simd::Backend> AvailableBackends() {
  std::vector<simd::Backend> backends{simd::Backend::kScalar};
  const int best = static_cast<int>(simd::BestSupportedBackend());
  for (int b = static_cast<int>(simd::Backend::kSse2); b <= best; ++b) {
    backends.push_back(static_cast<simd::Backend>(b));
  }
  return backends;
}

// Restores the backend the dispatcher resolved at startup (which honors
// PCOR_FORCE_SCALAR) when a test scope ends, so test order cannot leak a
// forced backend into other suites.
class BackendGuard {
 public:
  BackendGuard() = default;
  ~BackendGuard() { simd::SetBackendForTest(initial_); }

 private:
  simd::Backend initial_ = simd::ActiveBackend();
};

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = 50.0 + 20.0 * rng.NextGaussian();
  return v;
}

TEST(SimdDispatchTest, BackendNamesAreStable) {
  EXPECT_STREQ(simd::BackendName(simd::Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kSse2), "sse2");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kAvx2), "avx2");
  EXPECT_STREQ(simd::BackendName(simd::Backend::kAvx512), "avx512");
  EXPECT_NE(simd::ActiveBackendName(), nullptr);
}

TEST(SimdDispatchTest, ParseBackendNameRoundTripsAndRejectsJunk) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kAvx512}) {
    const auto parsed = simd::ParseBackendName(simd::BackendName(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(simd::ParseBackendName("").has_value());
  EXPECT_FALSE(simd::ParseBackendName("avx").has_value());
  EXPECT_FALSE(simd::ParseBackendName("AVX2").has_value());
  EXPECT_FALSE(simd::ParseBackendName("avx5120").has_value());
}

TEST(SimdDispatchTest, SetBackendClampsToSupported) {
  BackendGuard guard;
  const simd::Backend installed =
      simd::SetBackendForTest(simd::Backend::kAvx512);
  EXPECT_LE(static_cast<int>(installed),
            static_cast<int>(simd::BestSupportedBackend()));
  EXPECT_EQ(simd::ActiveBackend(), installed);
  EXPECT_EQ(simd::SetBackendForTest(simd::Backend::kScalar),
            simd::Backend::kScalar);
  EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
}

TEST(SimdKernelTest, SumMatchesLaneCanonicalOrderExactly) {
  BackendGuard guard;
  for (size_t n : {0ul, 1ul, 2ul, 3ul, 4ul, 5ul, 7ul, 8ul, 63ul, 1000ul}) {
    const auto v = RandomValues(n, 11 + n);
    const double want = LaneSum(v);
    for (simd::Backend backend : AvailableBackends()) {
      simd::SetBackendForTest(backend);
      EXPECT_EQ(simd::Sum(v), want)
          << "n=" << n << " backend=" << simd::BackendName(backend);
    }
  }
}

TEST(SimdKernelTest, SumSqDevMatchesLaneCanonicalOrderExactly) {
  BackendGuard guard;
  for (size_t n : {1ul, 2ul, 5ul, 16ul, 33ul, 1000ul}) {
    const auto v = RandomValues(n, 23 + n);
    const double want = LaneSumSqDev(v, 50.0);
    for (simd::Backend backend : AvailableBackends()) {
      simd::SetBackendForTest(backend);
      EXPECT_EQ(simd::SumSqDev(v, 50.0), want)
          << "n=" << n << " backend=" << simd::BackendName(backend);
    }
  }
}

TEST(SimdKernelTest, MeanAndVarianceMatchesDefinition) {
  BackendGuard guard;
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  for (simd::Backend backend : AvailableBackends()) {
    simd::SetBackendForTest(backend);
    const simd::MeanVar mv = simd::MeanAndVariance(v);
    EXPECT_DOUBLE_EQ(mv.mean, 3.0);
    EXPECT_DOUBLE_EQ(mv.variance, 2.5);
  }
  EXPECT_EQ(simd::MeanAndVariance({}).variance, 0.0);
  EXPECT_EQ(simd::MeanAndVariance(std::vector<double>{7.0}).mean, 7.0);
}

TEST(SimdKernelTest, MinMaxAgreesAcrossBackends) {
  BackendGuard guard;
  for (size_t n : {1ul, 2ul, 3ul, 9ul, 100ul, 1001ul}) {
    const auto v = RandomValues(n, 37 + n);
    const double want_min = *std::min_element(v.begin(), v.end());
    const double want_max = *std::max_element(v.begin(), v.end());
    for (simd::Backend backend : AvailableBackends()) {
      simd::SetBackendForTest(backend);
      const simd::MinMax mm = simd::MinMaxOf(v);
      EXPECT_EQ(mm.min, want_min) << simd::BackendName(backend);
      EXPECT_EQ(mm.max, want_max) << simd::BackendName(backend);
    }
  }
}

TEST(SimdKernelTest, ArgMaxAbsDeviationIsFirstWins) {
  BackendGuard guard;
  // Duplicated extremes: the earliest must win on every backend.
  const std::vector<double> v{5.0, -3.0, 9.0, 1.0, 9.0, -3.0, 9.0};
  for (simd::Backend backend : AvailableBackends()) {
    simd::SetBackendForTest(backend);
    const simd::ArgAbsDev got = simd::ArgMaxAbsDeviation(v, 0.0);
    EXPECT_EQ(got.index, 2u) << simd::BackendName(backend);
    EXPECT_EQ(got.abs_dev, 9.0) << simd::BackendName(backend);
  }
  // Negative deviation larger in magnitude than any positive one.
  const std::vector<double> w{1.0, -20.0, 3.0, 19.0};
  for (simd::Backend backend : AvailableBackends()) {
    simd::SetBackendForTest(backend);
    EXPECT_EQ(simd::ArgMaxAbsDeviation(w, 0.0).index, 1u);
  }
}

TEST(SimdKernelTest, ScansEmitAscendingIdenticalIndices) {
  BackendGuard guard;
  for (size_t n : {1ul, 5ul, 64ul, 515ul}) {
    const auto v = RandomValues(n, 53 + n);
    std::vector<size_t> want_z, want_range, want_above;
    for (size_t i = 0; i < v.size(); ++i) {
      if (std::abs(v[i] - 50.0) / 20.0 > 1.0) want_z.push_back(i);
      if (v[i] < 40.0 || v[i] > 60.0) want_range.push_back(i);
      if (v[i] > 55.0) want_above.push_back(i);
    }
    for (simd::Backend backend : AvailableBackends()) {
      simd::SetBackendForTest(backend);
      std::vector<size_t> got;
      simd::ScanAbsZAbove(v, 50.0, 20.0, 1.0, &got);
      EXPECT_EQ(got, want_z) << simd::BackendName(backend);
      got.clear();
      simd::ScanOutsideRange(v, 40.0, 60.0, &got);
      EXPECT_EQ(got, want_range) << simd::BackendName(backend);
      got.clear();
      simd::ScanAbove(v, 55.0, &got);
      EXPECT_EQ(got, want_above) << simd::BackendName(backend);
      EXPECT_EQ(simd::CountOutsideRange(v, 40.0, 60.0), want_range.size())
          << simd::BackendName(backend);
    }
  }
}

TEST(SimdKernelTest, ReachSumMatchesLaneCanonicalOrderExactly) {
  BackendGuard guard;
  for (size_t n : {1ul, 3ul, 4ul, 11ul, 21ul}) {
    const auto x = RandomValues(n, 71 + n);
    auto kdist = RandomValues(n, 73 + n);
    for (auto& d : kdist) d = std::abs(d);
    const double xi = x[n / 2];
    double lane[4] = {0, 0, 0, 0};
    for (size_t j = 0; j < n; ++j) {
      lane[j % 4] += std::max(kdist[j], std::abs(xi - x[j]));
    }
    const double want = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    for (simd::Backend backend : AvailableBackends()) {
      simd::SetBackendForTest(backend);
      EXPECT_EQ(simd::ReachSum(x, kdist, xi), want)
          << "n=" << n << " backend=" << simd::BackendName(backend);
    }
  }
}

}  // namespace
}  // namespace pcor
