#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace pcor {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<size_t> counts(bound, 0);
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) ++counts[rng.NextBounded(bound)];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    double p = rng.NextDoublePositive();
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  const size_t n = 100000;
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  const size_t n = 200000;
  double sum = 0, sq = 0;
  for (size_t i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GumbelMeanIsEulerMascheroni) {
  Rng rng(19);
  const size_t n = 200000;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) sum += rng.NextGumbel();
  EXPECT_NEAR(sum / n, 0.5772156649, 0.02);
}

TEST(RngTest, LaplaceHasZeroMeanAndTwoBSquaredVariance) {
  Rng rng(23);
  const double b = 2.0;
  const size_t n = 200000;
  double sum = 0, sq = 0;
  for (size_t i = 0; i < n; ++i) {
    double l = rng.NextLaplace(b);
    sum += l;
    sq += l * l;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 2.0 * b * b, 0.3);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(29);
  const size_t n = 100000;
  double sum = 0;
  for (size_t i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(31);
  std::vector<double> w{1.0, 0.0, 3.0};
  const size_t n = 60000;
  std::vector<size_t> counts(3, 0);
  for (size_t i = 0; i < n; ++i) ++counts[rng.NextDiscrete(w)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, SampleWithoutReplacementDenseAndSparse) {
  Rng rng(37);
  for (size_t n : {10ul, 1000ul}) {
    for (size_t k : {0ul, 1ul, 5ul, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.Fork();
  // The child must differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, LogNormalIsPositiveWithExpectedMedian) {
  Rng rng(43);
  const size_t n = 100001;
  std::vector<double> xs(n);
  for (auto& x : xs) {
    x = rng.NextLogNormal(2.0, 0.5);
    EXPECT_GT(x, 0.0);
  }
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(2.0), 0.15);
}

}  // namespace
}  // namespace pcor
