#include "src/common/compressed_bitmap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/random.h"

namespace pcor {
namespace {

// Builders for bitmaps that land in specific containers: densities well
// below kArrayMax/kChunkBits compress to array chunks, above it to dense
// chunks, and zero density to empty chunks.
BitVector RandomBits(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  BitVector bits(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBernoulli(density)) bits.Set(i);
  }
  return bits;
}

TEST(CompressedBitmapTest, RoundTripIsExactAcrossContainerKinds) {
  // 2.5 chunks of rows: chunk 0 sparse (array), chunk 1 dense, chunk 2
  // partial and empty — one bitmap exercising all three container kinds.
  const size_t n = 2 * CompressedBitmap::kChunkBits + 1000;
  BitVector bits(n);
  for (size_t i = 0; i < 100; ++i) bits.Set(i * 17);  // sparse chunk 0
  for (size_t i = CompressedBitmap::kChunkBits;
       i < 2 * CompressedBitmap::kChunkBits; i += 2) {
    bits.Set(i);  // half-full chunk 1 → dense
  }
  const CompressedBitmap compressed = CompressedBitmap::FromBitVector(bits);
  EXPECT_EQ(compressed.size(), n);
  EXPECT_EQ(compressed.count(), bits.Count());
  const CompressedBitmap::Census census = compressed.ChunkCensus();
  EXPECT_EQ(census.array_chunks, 1u);
  EXPECT_EQ(census.dense_chunks, 1u);
  EXPECT_EQ(census.empty_chunks, 1u);
  EXPECT_EQ(compressed.ToBitVector(), bits);
}

TEST(CompressedBitmapTest, RoundTripUnderRandomFlips) {
  // Random densities straddling the array/dense break-even, re-flipped
  // several times: compress(bits).ToBitVector() must equal bits exactly.
  Rng rng(99);
  const size_t n = CompressedBitmap::kChunkBits + 777;
  BitVector bits = RandomBits(n, 0.02, 7);
  for (int round = 0; round < 5; ++round) {
    for (int f = 0; f < 2000; ++f) {
      const size_t i = rng.NextBounded(n);
      if (bits.Test(i)) {
        bits.Clear(i);
      } else {
        bits.Set(i);
      }
    }
    const CompressedBitmap compressed = CompressedBitmap::FromBitVector(bits);
    EXPECT_EQ(compressed.ToBitVector(), bits) << "round " << round;
    EXPECT_EQ(compressed.count(), bits.Count()) << "round " << round;
  }
}

TEST(CompressedBitmapTest, EmptyAndFullBitmaps) {
  const size_t n = CompressedBitmap::kChunkBits + 321;
  const CompressedBitmap empty =
      CompressedBitmap::FromBitVector(BitVector(n));
  EXPECT_EQ(empty.count(), 0u);
  // Only the fixed per-chunk bookkeeping remains — no container storage.
  EXPECT_LT(empty.MemoryBytes(), 1024u);
  EXPECT_EQ(empty.ToBitVector(), BitVector(n));

  const CompressedBitmap full =
      CompressedBitmap::FromBitVector(BitVector(n, true));
  EXPECT_EQ(full.count(), n);
  EXPECT_EQ(full.ToBitVector(), BitVector(n, true));
  // A default-constructed bitmap behaves as a zero-row bitmap.
  EXPECT_EQ(CompressedBitmap().count(), 0u);
  EXPECT_EQ(CompressedBitmap().ToBitVector().size(), 0u);
}

// Every container-pair kernel must agree exactly with the dense AndWith /
// AndCount on the same bits, across sparse∩sparse (array∩array, both
// galloping and linear-merge regimes), sparse∩dense, and dense∩dense.
TEST(CompressedBitmapTest, IntersectionKernelsMatchDenseReference) {
  const size_t n = 3 * CompressedBitmap::kChunkBits / 2;
  struct Pair {
    double da, db;
  };
  // Densities per side: 0.0005 → tiny arrays (galloping against bigger
  // partners), 0.02 → large arrays, 0.4 → dense chunks.
  const Pair pairs[] = {{0.0005, 0.0005}, {0.0005, 0.02}, {0.0005, 0.4},
                        {0.02, 0.02},     {0.02, 0.4},    {0.4, 0.4}};
  uint64_t seed = 1000;
  for (const Pair& p : pairs) {
    const BitVector a = RandomBits(n, p.da, ++seed);
    const BitVector b = RandomBits(n, p.db, ++seed);
    BitVector dense_and = a;
    dense_and.AndWith(b);
    const size_t want = dense_and.Count();

    const CompressedBitmap ca = CompressedBitmap::FromBitVector(a);
    const CompressedBitmap cb = CompressedBitmap::FromBitVector(b);
    EXPECT_EQ(ca.AndCountWith(cb), want) << p.da << " x " << p.db;
    EXPECT_EQ(cb.AndCountWith(ca), want) << p.da << " x " << p.db;
    EXPECT_EQ(ca.AndCountDense(b), want) << p.da << " x " << p.db;

    BitVector inout = b;
    ca.AndIntoDense(&inout);
    EXPECT_EQ(inout, dense_and) << p.da << " x " << p.db;

    CompressedBitmap out;
    CompressedBitmap::IntersectInto(ca, cb, &out);
    EXPECT_EQ(out.count(), want) << p.da << " x " << p.db;
    EXPECT_EQ(out.ToBitVector(), dense_and) << p.da << " x " << p.db;
  }
}

TEST(CompressedBitmapTest, OrIntoDenseMatchesDenseReference) {
  const size_t n = CompressedBitmap::kChunkBits + 123;
  const BitVector a = RandomBits(n, 0.01, 5);
  const BitVector b = RandomBits(n, 0.3, 6);
  BitVector want = a;
  want.OrWith(b);
  BitVector got(n);
  CompressedBitmap::FromBitVector(a).OrIntoDense(&got);
  CompressedBitmap::FromBitVector(b).OrIntoDense(&got);
  EXPECT_EQ(got, want);
}

TEST(CompressedBitmapTest, IntersectIntoReusesOutputStorage) {
  // Steady-state reuse: a second IntersectInto through the same output
  // object must produce the second result exactly, not leak the first.
  const size_t n = 2 * CompressedBitmap::kChunkBits;
  const CompressedBitmap a =
      CompressedBitmap::FromBitVector(RandomBits(n, 0.01, 21));
  const CompressedBitmap b =
      CompressedBitmap::FromBitVector(RandomBits(n, 0.01, 22));
  const CompressedBitmap c =
      CompressedBitmap::FromBitVector(RandomBits(n, 0.3, 23));
  CompressedBitmap out;
  CompressedBitmap::IntersectInto(a, b, &out);
  CompressedBitmap::IntersectInto(a, c, &out);
  BitVector want = a.ToBitVector();
  want.AndWith(c.ToBitVector());
  EXPECT_EQ(out.ToBitVector(), want);
}

TEST(CompressedBitmapTest, SparseBitmapIsMuchSmallerThanDense) {
  // The tentpole's memory claim at unit scale: a 1/64 density bitmap must
  // compress well below half the dense footprint (it lands near 2 bytes
  // per set bit = n/32 bytes vs n/8 dense).
  const size_t n = 4 * CompressedBitmap::kChunkBits;
  const BitVector bits = RandomBits(n, 1.0 / 64.0, 77);
  const CompressedBitmap compressed = CompressedBitmap::FromBitVector(bits);
  const size_t dense_bytes = bits.num_words() * sizeof(uint64_t);
  EXPECT_LT(compressed.MemoryBytes(), dense_bytes / 2);
}

}  // namespace
}  // namespace pcor
