#include "src/common/future.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pcor {
namespace {

using std::chrono::milliseconds;

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
}

TEST(FutureTest, SetBeforeGet) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.Ready());
  p.Set(42);
  EXPECT_TRUE(f.Ready());
  EXPECT_EQ(f.Get(), 42);
  EXPECT_FALSE(f.valid()) << "Get() consumes the future";
}

TEST(FutureTest, GetBlocksUntilProducerDelivers) {
  Promise<std::string> p;
  Future<std::string> f = p.GetFuture();
  std::thread producer([&p] {
    std::this_thread::sleep_for(milliseconds(10));
    p.Set("done");
  });
  EXPECT_EQ(f.Get(), "done");
  producer.join();
}

TEST(FutureTest, WaitForTimesOutThenSucceeds) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  EXPECT_FALSE(f.WaitFor(milliseconds(1)));
  p.Set(1);
  EXPECT_TRUE(f.WaitFor(milliseconds(1)));
}

// The satellite contract: a worker-side exception must surface at the
// waiting client's Get(), not crash the worker.
TEST(FutureTest, ExceptionPropagatesThroughGet) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  std::thread producer([&p] {
    try {
      throw std::runtime_error("kernel panic in the micro-batch");
    } catch (...) {
      p.SetException(std::current_exception());
    }
  });
  producer.join();
  EXPECT_TRUE(f.Ready());
  try {
    f.Get();
    FAIL() << "Get() should rethrow the producer's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "kernel panic in the micro-batch");
  }
}

TEST(FutureTest, AbandonedPromiseDeliversBrokenPromise) {
  Future<int> f;
  {
    Promise<int> p;
    f = p.GetFuture();
  }  // p dies without a value
  EXPECT_TRUE(f.Ready());
  EXPECT_THROW(f.Get(), BrokenPromise);
}

TEST(FutureTest, MoveAssignedPromiseAbandonsItsOldState) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  p = Promise<int>();  // the original shared state is abandoned
  EXPECT_THROW(f.Get(), BrokenPromise);
  Future<int> f2 = p.GetFuture();
  p.Set(5);
  EXPECT_EQ(f2.Get(), 5);
}

TEST(FutureTest, MoveOnlyValueType) {
  Promise<std::unique_ptr<int>> p;
  Future<std::unique_ptr<int>> f = p.GetFuture();
  p.Set(std::make_unique<int>(9));
  std::unique_ptr<int> v = f.Get();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 9);
}

TEST(FutureTest, ManyWaitersStyleFanOut) {
  // One producer completing many futures while consumers block on Get —
  // the exact shape of a server completing a coalesced micro-batch.
  constexpr size_t kN = 64;
  std::vector<Promise<size_t>> promises(kN);
  std::vector<Future<size_t>> futures;
  futures.reserve(kN);
  for (auto& p : promises) futures.push_back(p.GetFuture());

  std::atomic<size_t> sum{0};
  std::vector<std::thread> consumers;
  for (size_t i = 0; i < kN; ++i) {
    consumers.emplace_back(
        [&futures, &sum, i] { sum.fetch_add(futures[i].Get()); });
  }
  std::thread producer([&promises] {
    for (size_t i = 0; i < kN; ++i) promises[i].Set(i + 1);
  });
  producer.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(sum.load(), kN * (kN + 1) / 2);
}

}  // namespace
}  // namespace pcor
