#include "src/data/discretizer.h"

#include <gtest/gtest.h>

namespace pcor {
namespace {

TEST(DiscretizerTest, EqualWidthBuckets) {
  auto d = Discretizer::EqualWidth(0.0, 10.0, 5);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_buckets(), 5u);
  EXPECT_EQ(d->Bucket(0.0), 0u);
  EXPECT_EQ(d->Bucket(1.99), 0u);
  EXPECT_EQ(d->Bucket(2.0), 1u);
  EXPECT_EQ(d->Bucket(9.99), 4u);
}

TEST(DiscretizerTest, ClampsOutOfRange) {
  auto d = Discretizer::EqualWidth(0.0, 10.0, 5);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Bucket(-100.0), 0u);
  EXPECT_EQ(d->Bucket(100.0), 4u);
  EXPECT_EQ(d->Bucket(10.0), 4u);  // right edge joins last bucket
}

TEST(DiscretizerTest, LabelsDescribeRanges) {
  auto d = Discretizer::EqualWidth(0.0, 4.0, 2);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->labels().size(), 2u);
  EXPECT_EQ(d->labels()[0], "[0, 2)");
  EXPECT_EQ(d->labels()[1], "[2, 4)");
}

TEST(DiscretizerTest, RejectsDegenerateInput) {
  EXPECT_FALSE(Discretizer::EqualWidth(0.0, 10.0, 0).ok());
  EXPECT_FALSE(Discretizer::EqualWidth(5.0, 5.0, 3).ok());
  EXPECT_FALSE(Discretizer::Quantile({1.0}, 2).ok());
  EXPECT_FALSE(Discretizer::Quantile({1.0, 1.0, 1.0}, 2).ok());
}

TEST(DiscretizerTest, QuantileBucketsBalanceMass) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  auto d = Discretizer::Quantile(values, 4);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_buckets(), 4u);
  std::vector<size_t> counts(d->num_buckets(), 0);
  for (double v : values) ++counts[d->Bucket(v)];
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 250.0, 3.0);
  }
}

TEST(DiscretizerTest, QuantileCollapsesDuplicateCuts) {
  // Heavily repeated values: 900 zeros and 100 ascending values.
  std::vector<double> values(900, 0.0);
  for (int i = 1; i <= 100; ++i) values.push_back(i);
  auto d = Discretizer::Quantile(values, 10);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(d->num_buckets(), 10u);  // duplicate cut points collapsed
  EXPECT_GE(d->num_buckets(), 1u);
  EXPECT_EQ(d->Bucket(0.0), 0u);
}

TEST(DiscretizerTest, BucketIsMonotoneInInput) {
  auto d = Discretizer::Quantile({1, 5, 7, 9, 22, 30, 31, 90}, 3);
  ASSERT_TRUE(d.ok());
  uint32_t prev = 0;
  for (double x = 0.0; x < 100.0; x += 0.5) {
    uint32_t b = d->Bucket(x);
    EXPECT_GE(b, prev);
    prev = b;
  }
}

}  // namespace
}  // namespace pcor
