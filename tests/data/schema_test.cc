#include "src/data/schema.h"

#include <gtest/gtest.h>

#include "src/data/dictionary.h"

namespace pcor {
namespace {

Schema MakeSchema() {
  Schema s;
  s.AddAttribute("Jobtitle", {"CEO", "MedicalDoctor", "Lawyer"}).CheckOK();
  s.AddAttribute("City", {"Montreal", "Ottawa", "Toronto"}).CheckOK();
  s.AddAttribute("District", {"Business", "Historic", "Diplomatic"})
      .CheckOK();
  s.SetMetricName("Salary");
  return s;
}

TEST(SchemaTest, BasicShape) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(s.total_values(), 9u);
  EXPECT_EQ(s.metric_name(), "Salary");
  EXPECT_EQ(s.attribute(1).name, "City");
  EXPECT_EQ(s.attribute(1).domain_size(), 3u);
}

TEST(SchemaTest, ValueOffsetsArePrefixSums) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.value_offset(0), 0u);
  EXPECT_EQ(s.value_offset(1), 3u);
  EXPECT_EQ(s.value_offset(2), 6u);
}

TEST(SchemaTest, RejectsEmptyDomain) {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("X", {}).IsInvalidArgument());
}

TEST(SchemaTest, RejectsDuplicateAttribute) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("X", {"a"}).ok());
  EXPECT_EQ(s.AddAttribute("X", {"b"}).code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsDuplicateDomainValue) {
  Schema s;
  EXPECT_TRUE(s.AddAttribute("X", {"a", "a"}).IsInvalidArgument());
}

TEST(SchemaTest, AttributeIndexLookup) {
  Schema s = MakeSchema();
  EXPECT_EQ(*s.AttributeIndex("District"), 2u);
  EXPECT_TRUE(s.AttributeIndex("Nope").status().IsNotFound());
}

TEST(SchemaTest, BitToAttributeValueMapsTheWholeVector) {
  Schema s = MakeSchema();
  size_t attr = 99, value = 99;
  ASSERT_TRUE(s.BitToAttributeValue(0, &attr, &value).ok());
  EXPECT_EQ(attr, 0u);
  EXPECT_EQ(value, 0u);
  ASSERT_TRUE(s.BitToAttributeValue(5, &attr, &value).ok());
  EXPECT_EQ(attr, 1u);
  EXPECT_EQ(value, 2u);
  ASSERT_TRUE(s.BitToAttributeValue(8, &attr, &value).ok());
  EXPECT_EQ(attr, 2u);
  EXPECT_EQ(value, 2u);
  EXPECT_TRUE(s.BitToAttributeValue(9, &attr, &value).IsOutOfRange());
}

TEST(SchemaTest, ValueCode) {
  Schema s = MakeSchema();
  EXPECT_EQ(*s.ValueCode(0, "Lawyer"), 2u);
  EXPECT_TRUE(s.ValueCode(0, "Plumber").status().IsNotFound());
  EXPECT_TRUE(s.ValueCode(7, "CEO").status().IsOutOfRange());
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(MakeSchema() == MakeSchema());
  Schema other = MakeSchema();
  other.SetMetricName("Other");
  EXPECT_FALSE(MakeSchema() == other);
}

TEST(DictionaryTest, EncodeDecodeRoundTrip) {
  Schema s = MakeSchema();
  ValueDictionary dict(s.attribute(0));
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(*dict.Encode("MedicalDoctor"), 1u);
  EXPECT_EQ(*dict.Decode(1), "MedicalDoctor");
  EXPECT_TRUE(dict.Encode("nope").status().IsNotFound());
  EXPECT_TRUE(dict.Decode(3).status().IsOutOfRange());
}

TEST(DictionaryTest, SchemaDictionariesCoverAllAttributes) {
  Schema s = MakeSchema();
  SchemaDictionaries dicts(s);
  EXPECT_EQ(dicts.num_attributes(), 3u);
  EXPECT_EQ(*dicts.attribute(2).Encode("Diplomatic"), 2u);
}

}  // namespace
}  // namespace pcor
