#include "src/data/csv.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "tests/testing_util.h"

namespace pcor {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test *and* process: ctest runs each test as its own
    // parallel job, so a shared fixed path races with -j.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/pcor_csv_" + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvTest, RoundTripPreservesData) {
  Dataset d(testing_util::GridSchema());
  ASSERT_TRUE(d.AppendRow({0, 1}, 100.25).ok());
  ASSERT_TRUE(d.AppendRow({2, 2}, -3.5).ok());
  ASSERT_TRUE(csv::WriteDataset(d, path_).ok());
  auto loaded = csv::ReadDataset(d.schema(), path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_rows(), 2u);
  EXPECT_EQ(loaded->code(0, 1), 1u);
  EXPECT_EQ(loaded->code(1, 0), 2u);
  EXPECT_DOUBLE_EQ(loaded->metric(0), 100.25);
  EXPECT_DOUBLE_EQ(loaded->metric(1), -3.5);
}

TEST_F(CsvTest, QuotedFieldsRoundTrip) {
  Schema schema;
  schema.AddAttribute("Name", {"plain", "has,comma", "has\"quote"})
      .CheckOK();
  Dataset d(schema);
  ASSERT_TRUE(d.AppendRow({1}, 1.0).ok());
  ASSERT_TRUE(d.AppendRow({2}, 2.0).ok());
  ASSERT_TRUE(csv::WriteDataset(d, path_).ok());
  auto loaded = csv::ReadDataset(schema, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->code(0, 0), 1u);
  EXPECT_EQ(loaded->code(1, 0), 2u);
}

TEST_F(CsvTest, RejectsUnknownDomainValue) {
  std::ofstream out(path_);
  out << "A,B,value\nnot_in_domain,b0,1.0\n";
  out.close();
  auto loaded = csv::ReadDataset(testing_util::GridSchema(), path_);
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST_F(CsvTest, RejectsBadHeader) {
  std::ofstream out(path_);
  out << "X,B,value\na0,b0,1.0\n";
  out.close();
  auto loaded = csv::ReadDataset(testing_util::GridSchema(), path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(CsvTest, RejectsNonNumericMetric) {
  std::ofstream out(path_);
  out << "A,B,value\na0,b0,abc\n";
  out.close();
  auto loaded = csv::ReadDataset(testing_util::GridSchema(), path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(CsvTest, RejectsWrongFieldCount) {
  std::ofstream out(path_);
  out << "A,B,value\na0,b0\n";
  out.close();
  auto loaded = csv::ReadDataset(testing_util::GridSchema(), path_);
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
}

TEST_F(CsvTest, MissingFileIsIOError) {
  auto loaded =
      csv::ReadDataset(testing_util::GridSchema(), "/nonexistent/x.csv");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST(CsvLineTest, ParseLineHandlesQuotes) {
  auto fields = csv::ParseLine("a,\"b,c\",\"d\"\"e\"", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "d\"e");
}

TEST(CsvLineTest, EscapeFieldQuotesWhenNeeded) {
  EXPECT_EQ(csv::EscapeField("plain", ','), "plain");
  EXPECT_EQ(csv::EscapeField("a,b", ','), "\"a,b\"");
  EXPECT_EQ(csv::EscapeField("a\"b", ','), "\"a\"\"b\"");
}

}  // namespace
}  // namespace pcor
