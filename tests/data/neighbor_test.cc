#include "src/data/neighbor.h"

#include <gtest/gtest.h>

#include "tests/testing_util.h"

namespace pcor {
namespace {

TEST(NeighborTest, RemoveModeDropsExactlyDelta) {
  auto grid = testing_util::MakeGridDataset();
  Rng rng(3);
  NeighborOptions options;
  options.mode = NeighborMode::kRemove;
  options.delta = 5;
  auto neighbor = MakeNeighbor(grid.dataset, options, &rng);
  ASSERT_TRUE(neighbor.ok());
  EXPECT_EQ(neighbor->dataset.num_rows(), grid.dataset.num_rows() - 5);
  EXPECT_EQ(neighbor->changed_rows.size(), 5u);
}

TEST(NeighborTest, ProtectedRowsSurvive) {
  auto grid = testing_util::MakeGridDataset();
  Rng rng(7);
  NeighborOptions options;
  options.delta = 10;
  options.protected_rows = {grid.v_row};
  for (int trial = 0; trial < 20; ++trial) {
    auto neighbor = MakeNeighbor(grid.dataset, options, &rng);
    ASSERT_TRUE(neighbor.ok());
    const uint32_t mapped = neighbor->row_mapping[grid.v_row];
    ASSERT_NE(mapped, UINT32_MAX);
    EXPECT_DOUBLE_EQ(neighbor->dataset.metric(mapped),
                     grid.dataset.metric(grid.v_row));
  }
}

TEST(NeighborTest, RowMappingIsConsistent) {
  auto grid = testing_util::MakeGridDataset();
  Rng rng(11);
  NeighborOptions options;
  options.delta = 7;
  auto neighbor = MakeNeighbor(grid.dataset, options, &rng);
  ASSERT_TRUE(neighbor.ok());
  size_t mapped = 0;
  for (uint32_t row = 0; row < grid.dataset.num_rows(); ++row) {
    const uint32_t new_row = neighbor->row_mapping[row];
    if (new_row == UINT32_MAX) continue;
    ++mapped;
    EXPECT_DOUBLE_EQ(neighbor->dataset.metric(new_row),
                     grid.dataset.metric(row));
    for (size_t a = 0; a < grid.dataset.num_attributes(); ++a) {
      EXPECT_EQ(neighbor->dataset.code(new_row, a),
                grid.dataset.code(row, a));
    }
  }
  EXPECT_EQ(mapped, neighbor->dataset.num_rows());
}

TEST(NeighborTest, ReplaceModeKeepsSizeAndChangesOnlyVictims) {
  auto grid = testing_util::MakeGridDataset();
  Rng rng(13);
  NeighborOptions options;
  options.mode = NeighborMode::kReplace;
  options.delta = 3;
  auto neighbor = MakeNeighbor(grid.dataset, options, &rng);
  ASSERT_TRUE(neighbor.ok());
  EXPECT_EQ(neighbor->dataset.num_rows(), grid.dataset.num_rows());
  std::set<uint32_t> victims(neighbor->changed_rows.begin(),
                             neighbor->changed_rows.end());
  for (uint32_t row = 0; row < grid.dataset.num_rows(); ++row) {
    if (victims.count(row)) continue;
    EXPECT_DOUBLE_EQ(neighbor->dataset.metric(row), grid.dataset.metric(row));
  }
}

TEST(NeighborTest, RejectsImpossibleRequests) {
  auto grid = testing_util::MakeGridDataset(/*per_group=*/1);
  Rng rng(17);
  NeighborOptions options;
  options.delta = 0;
  EXPECT_FALSE(MakeNeighbor(grid.dataset, options, &rng).ok());
  options.delta = grid.dataset.num_rows() + 1;
  EXPECT_FALSE(MakeNeighbor(grid.dataset, options, &rng).ok());
}

TEST(NeighborTest, DeterministicGivenRngState) {
  auto grid = testing_util::MakeGridDataset();
  NeighborOptions options;
  options.delta = 4;
  Rng rng1(42), rng2(42);
  auto n1 = MakeNeighbor(grid.dataset, options, &rng1);
  auto n2 = MakeNeighbor(grid.dataset, options, &rng2);
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n1->changed_rows, n2->changed_rows);
}

}  // namespace
}  // namespace pcor
