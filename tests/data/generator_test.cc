#include "src/data/generator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/data/homicide_generator.h"
#include "src/data/salary_generator.h"
#include "tests/testing_util.h"

namespace pcor {
namespace {

MixtureGeneratorConfig SmallConfig() {
  MixtureGeneratorConfig config;
  config.schema = testing_util::GridSchema();
  config.num_rows = 500;
  config.seed = 11;
  config.num_planted = 10;
  config.metric_model = MetricModel::kTruncatedNormal;
  config.base_mean = 100.0;
  config.value_effect_scale = 5.0;
  config.noise_sigma = 2.0;
  config.metric_lo = 0.0;
  config.metric_hi = 1000.0;
  return config;
}

TEST(MixtureGeneratorTest, ProducesRequestedShape) {
  auto data = GenerateMixtureData(SmallConfig());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->dataset.num_rows(), 500u);
  EXPECT_EQ(data->planted_outlier_rows.size(), 10u);
  for (uint32_t row : data->planted_outlier_rows) {
    EXPECT_LT(row, 500u);
  }
  EXPECT_TRUE(std::is_sorted(data->planted_outlier_rows.begin(),
                             data->planted_outlier_rows.end()));
}

TEST(MixtureGeneratorTest, DeterministicForSameSeed) {
  auto a = GenerateMixtureData(SmallConfig());
  auto b = GenerateMixtureData(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->dataset.num_rows(), b->dataset.num_rows());
  for (size_t i = 0; i < a->dataset.num_rows(); ++i) {
    EXPECT_EQ(a->dataset.code(i, 0), b->dataset.code(i, 0));
    EXPECT_DOUBLE_EQ(a->dataset.metric(i), b->dataset.metric(i));
  }
  EXPECT_EQ(a->planted_outlier_rows, b->planted_outlier_rows);
}

TEST(MixtureGeneratorTest, SeedsChangeTheData) {
  auto a = GenerateMixtureData(SmallConfig());
  auto config = SmallConfig();
  config.seed = 12;
  auto b = GenerateMixtureData(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  size_t diff = 0;
  for (size_t i = 0; i < a->dataset.num_rows(); ++i) {
    if (a->dataset.metric(i) != b->dataset.metric(i)) ++diff;
  }
  EXPECT_GT(diff, 100u);
}

TEST(MixtureGeneratorTest, MetricRespectsClamps) {
  auto data = GenerateMixtureData(SmallConfig());
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < data->dataset.num_rows(); ++i) {
    EXPECT_GE(data->dataset.metric(i), 0.0);
    EXPECT_LE(data->dataset.metric(i), 1000.0);
  }
}

TEST(MixtureGeneratorTest, RejectsBadConfigs) {
  auto config = SmallConfig();
  config.num_rows = 0;
  EXPECT_FALSE(GenerateMixtureData(config).ok());
  config = SmallConfig();
  config.num_planted = 501;
  EXPECT_FALSE(GenerateMixtureData(config).ok());
  config = SmallConfig();
  config.schema = Schema();
  EXPECT_FALSE(GenerateMixtureData(config).ok());
}

TEST(MixtureGeneratorTest, ZipfWeightsAreSkewedAndShuffled) {
  Rng rng(5);
  auto w = internal::ZipfWeights(8, 1.0, &rng);
  ASSERT_EQ(w.size(), 8u);
  auto sorted = w;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  EXPECT_DOUBLE_EQ(sorted[0], 1.0);
  EXPECT_DOUBLE_EQ(sorted[7], 1.0 / 8.0);
}

TEST(SalaryGeneratorTest, ReducedSpecMatchesPaperShape) {
  SalaryDatasetSpec spec = ReducedSalarySpec();
  Schema schema = SalarySchema(spec);
  // The paper's reduced salary dataset: 11,000 rows, 3 attributes, 14
  // attribute values in total (Section 6.7).
  EXPECT_EQ(spec.num_rows, 11000u);
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.total_values(), 14u);
}

TEST(SalaryGeneratorTest, FullSpecMatchesPaperShape) {
  SalaryDatasetSpec spec = FullSalarySpec();
  Schema schema = SalarySchema(spec);
  EXPECT_EQ(spec.num_rows, 51000u);
  EXPECT_EQ(schema.total_values(), 25u);  // 9 + 8 + 8
  EXPECT_EQ(schema.metric_name(), "Salary");
}

TEST(SalaryGeneratorTest, SalariesRespectTheHundredKFloor) {
  SalaryDatasetSpec spec = ReducedSalarySpec();
  spec.num_rows = 2000;
  spec.num_planted = 10;
  auto data = GenerateSalaryDataset(spec);
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < data->dataset.num_rows(); ++i) {
    EXPECT_GE(data->dataset.metric(i), 100000.0);
  }
}

TEST(HomicideGeneratorTest, ReducedSpecMatchesPaperShape) {
  HomicideDatasetSpec spec = ReducedHomicideSpec();
  Schema schema = HomicideSchema(spec);
  // 28,000 rows, 3 attributes, 12 attribute values (Section 6.7).
  EXPECT_EQ(spec.num_rows, 28000u);
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.total_values(), 12u);
}

TEST(HomicideGeneratorTest, AgesStayInRange) {
  HomicideDatasetSpec spec = ReducedHomicideSpec();
  spec.num_rows = 2000;
  spec.num_planted = 10;
  auto data = GenerateHomicideDataset(spec);
  ASSERT_TRUE(data.ok());
  for (size_t i = 0; i < data->dataset.num_rows(); ++i) {
    EXPECT_GE(data->dataset.metric(i), 0.0);
    EXPECT_LE(data->dataset.metric(i), 99.0);
  }
}

TEST(GeneratorPlantingTest, PlantedRowsAreGroupExtreme) {
  auto config = SmallConfig();
  config.num_rows = 3000;
  config.num_planted = 30;
  auto data = GenerateMixtureData(config);
  ASSERT_TRUE(data.ok());
  const Dataset& d = data->dataset;
  // For each planted row, its metric should exceed the mean of its exact
  // attribute group by a wide margin (it was planted at +4.5 sigma).
  size_t clearly_extreme = 0;
  for (uint32_t row : data->planted_outlier_rows) {
    double sum = 0;
    size_t count = 0;
    for (size_t i = 0; i < d.num_rows(); ++i) {
      if (d.code(i, 0) == d.code(row, 0) && d.code(i, 1) == d.code(row, 1) &&
          i != row) {
        sum += d.metric(i);
        ++count;
      }
    }
    if (count < 5) continue;
    if (d.metric(row) > sum / count + 2.0 * config.noise_sigma) {
      ++clearly_extreme;
    }
  }
  EXPECT_GT(clearly_extreme, data->planted_outlier_rows.size() / 2);
}

}  // namespace
}  // namespace pcor
