#include "src/data/dataset.h"

#include <gtest/gtest.h>

#include "tests/testing_util.h"

namespace pcor {
namespace {

TEST(DatasetTest, AppendAndRead) {
  Dataset d(testing_util::GridSchema());
  ASSERT_TRUE(d.AppendRow({0, 1}, 100.0).ok());
  ASSERT_TRUE(d.AppendRow({2, 2}, 200.0).ok());
  EXPECT_EQ(d.num_rows(), 2u);
  EXPECT_EQ(d.code(0, 1), 1u);
  EXPECT_EQ(d.code(1, 0), 2u);
  EXPECT_DOUBLE_EQ(d.metric(1), 200.0);
}

TEST(DatasetTest, RejectsWrongArityAndBadCodes) {
  Dataset d(testing_util::GridSchema());
  EXPECT_TRUE(d.AppendRow({0}, 1.0).IsInvalidArgument());
  EXPECT_TRUE(d.AppendRow({0, 3}, 1.0).IsOutOfRange());
  EXPECT_EQ(d.num_rows(), 0u);
}

TEST(DatasetTest, AppendRowByName) {
  Dataset d(testing_util::GridSchema());
  ASSERT_TRUE(d.AppendRowByName({"a1", "b2"}, 5.0).ok());
  EXPECT_EQ(d.code(0, 0), 1u);
  EXPECT_EQ(d.code(0, 1), 2u);
  EXPECT_TRUE(d.AppendRowByName({"a1", "nope"}, 5.0).IsNotFound());
  EXPECT_TRUE(d.AppendRowByName({"a1"}, 5.0).IsInvalidArgument());
}

TEST(DatasetTest, GetRowMaterializes) {
  Dataset d(testing_util::GridSchema());
  ASSERT_TRUE(d.AppendRow({1, 0}, 42.0).ok());
  Row row = d.GetRow(0);
  EXPECT_EQ(row.codes, (std::vector<uint32_t>{1, 0}));
  EXPECT_DOUBLE_EQ(row.metric, 42.0);
}

TEST(DatasetTest, SelectRowsKeepsOrder) {
  Dataset d(testing_util::GridSchema());
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(d.AppendRow({i % 3, i % 3}, i).ok());
  }
  auto sel = d.SelectRows({1, 3});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sel->metric(0), 1.0);
  EXPECT_DOUBLE_EQ(sel->metric(1), 3.0);
  EXPECT_TRUE(d.SelectRows({9}).status().IsOutOfRange());
}

TEST(DatasetTest, RemoveRowsDeduplicatesAndValidates) {
  Dataset d(testing_util::GridSchema());
  for (uint32_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(d.AppendRow({0, 0}, i).ok());
  }
  auto removed = d.RemoveRows({1, 1, 4});
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed->num_rows(), 4u);
  EXPECT_DOUBLE_EQ(removed->metric(0), 0.0);
  EXPECT_DOUBLE_EQ(removed->metric(1), 2.0);
  EXPECT_DOUBLE_EQ(removed->metric(3), 5.0);
  EXPECT_TRUE(d.RemoveRows({6}).status().IsOutOfRange());
}

TEST(DatasetTest, DescribeRowIsHumanReadable) {
  Dataset d(testing_util::GridSchema());
  ASSERT_TRUE(d.AppendRow({0, 2}, 123.5).ok());
  std::string desc = d.DescribeRow(0);
  EXPECT_NE(desc.find("A=a0"), std::string::npos);
  EXPECT_NE(desc.find("B=b2"), std::string::npos);
  EXPECT_NE(desc.find("value=123.5"), std::string::npos);
}

}  // namespace
}  // namespace pcor
