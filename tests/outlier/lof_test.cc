#include "src/outlier/lof.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace pcor {
namespace {

// Naive O(n^2) LOF reference with the same deterministic k-NN convention
// (exactly k neighbors, distance ties toward smaller values).
std::vector<double> NaiveLofScores(const std::vector<double>& values,
                                   size_t k) {
  const size_t n = values.size();
  std::vector<double> scores(n, 1.0);
  if (n <= k + 1) return scores;

  // Neighbor lists by (distance, value, index) lexicographic order.
  std::vector<std::vector<size_t>> knn(n);
  std::vector<double> kdist(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<size_t> others;
    for (size_t j = 0; j < n; ++j) {
      if (j != i) others.push_back(j);
    }
    std::sort(others.begin(), others.end(), [&](size_t a, size_t b) {
      double da = std::abs(values[a] - values[i]);
      double db = std::abs(values[b] - values[i]);
      if (da != db) return da < db;
      if (values[a] != values[b]) return values[a] < values[b];
      return a < b;
    });
    others.resize(k);
    kdist[i] = std::abs(values[others.back()] - values[i]);
    for (size_t j : others) {
      kdist[i] = std::max(kdist[i], std::abs(values[j] - values[i]));
    }
    knn[i] = std::move(others);
  }
  std::vector<double> lrd(n);
  for (size_t i = 0; i < n; ++i) {
    double reach = 0;
    for (size_t j : knn[i]) {
      reach += std::max(kdist[j], std::abs(values[i] - values[j]));
    }
    lrd[i] = reach > 0 ? static_cast<double>(k) / reach
                       : std::numeric_limits<double>::infinity();
  }
  for (size_t i = 0; i < n; ++i) {
    double acc = 0;
    for (size_t j : knn[i]) {
      if (std::isinf(lrd[i])) {
        acc += std::isinf(lrd[j]) ? 1.0 : 0.0;
      } else {
        acc += lrd[j] / lrd[i];
      }
    }
    scores[i] = acc / static_cast<double>(k);
  }
  return scores;
}

LofOptions SmallOptions() {
  LofOptions options;
  options.k = 3;
  options.score_threshold = 1.5;
  options.min_population = 8;
  return options;
}

TEST(LofTest, FlagsIsolatedPoint) {
  LofDetector detector(SmallOptions());
  std::vector<double> values{1.0, 1.1, 1.2, 0.9, 1.05, 0.95, 1.15, 9.0};
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 7u);
}

TEST(LofTest, UniformDataHasScoresNearOne) {
  LofDetector detector(SmallOptions());
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(static_cast<double>(i));
  auto scores = detector.Scores(values);
  for (size_t i = 2; i + 2 < scores.size(); ++i) {
    EXPECT_NEAR(scores[i], 1.0, 0.35) << i;
  }
  EXPECT_TRUE(detector.Detect(values).empty());
}

TEST(LofTest, MatchesNaiveReferenceOnDistinctValues) {
  // Distinct values (no k-NN ties): the windowed and naive versions must
  // agree exactly.
  Rng rng(17);
  std::vector<double> values;
  for (int i = 0; i < 120; ++i) {
    values.push_back(rng.NextGaussian() * 10.0);
  }
  for (size_t k : {3ul, 5ul, 10ul}) {
    LofOptions options = SmallOptions();
    options.k = k;
    LofDetector detector(options);
    auto fast = detector.Scores(values);
    auto naive = NaiveLofScores(values, k);
    ASSERT_EQ(fast.size(), naive.size());
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], naive[i], 1e-9) << "k=" << k << " i=" << i;
    }
  }
}

TEST(LofTest, DuplicateHeavyDataDoesNotBlowUp) {
  LofDetector detector(SmallOptions());
  std::vector<double> values(30, 4.0);
  values.push_back(9.0);
  auto scores = detector.Scores(values);
  // Duplicates are an infinitely dense cluster: their lrd is +inf, their
  // LOF resolves to 1 (inliers). The isolated point's score may itself be
  // +inf — infinitely less dense than its neighbors — which is exactly the
  // outlier signal.
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(std::isfinite(scores[i])) << i;
    EXPECT_NEAR(scores[i], 1.0, 1e-9) << i;
  }
  EXPECT_GT(scores[30], detector.options().score_threshold);
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 30u);
}

TEST(LofTest, AffineInvariance) {
  // LOF is a ratio of densities: invariant under positive affine maps.
  LofDetector detector(SmallOptions());
  Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(rng.NextGaussian());
  values.push_back(7.5);
  auto base = detector.Scores(values);
  std::vector<double> mapped;
  for (double v : values) mapped.push_back(3.0 * v + 100.0);
  auto transformed = detector.Scores(mapped);
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i], transformed[i], 1e-9);
  }
}

TEST(LofTest, SmallPopulationsReportNothing) {
  LofDetector detector(SmallOptions());
  std::vector<double> values{1, 2, 3, 100};
  EXPECT_TRUE(detector.Detect(values).empty());
}

TEST(LofTest, ThresholdControlsSensitivity) {
  std::vector<double> values{1.0, 1.1, 1.2, 0.9, 1.05, 0.95, 1.15, 3.0};
  LofOptions loose = SmallOptions();
  loose.score_threshold = 1.1;
  LofOptions strict = SmallOptions();
  strict.score_threshold = 100.0;
  EXPECT_FALSE(LofDetector(loose).Detect(values).empty());
  EXPECT_TRUE(LofDetector(strict).Detect(values).empty());
}

TEST(LofTest, DeterministicAcrossCalls) {
  LofDetector detector(SmallOptions());
  Rng rng(29);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.NextGaussian());
  EXPECT_EQ(detector.Scores(values), detector.Scores(values));
}

}  // namespace
}  // namespace pcor
