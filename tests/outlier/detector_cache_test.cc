#include "src/context/detector_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/threading.h"
#include "src/search/pcor.h"
#include "tests/testing_util.h"

namespace pcor {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : grid_(testing_util::MakeSpreadGridDataset()),
        index_(grid_.dataset),
        detector_(testing_util::MakeTestDetector()) {}

  ContextVec FullCtx() const {
    return context_ops::FullContext(grid_.dataset.schema());
  }

  testing_util::GridData grid_;
  PopulationIndex index_;
  ZscoreDetector detector_;
};

TEST_F(VerifierTest, AgreesWithDirectDetectorRun) {
  OutlierVerifier verifier(index_, detector_);
  ContextVec full = FullCtx();
  auto metric = index_.MetricOf(full);
  auto rows = index_.RowIdsOf(full);
  auto direct = detector_.Detect(metric);
  auto cached = verifier.OutliersInContext(full);
  ASSERT_EQ(cached->size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ((*cached)[i], rows[direct[i]]);
  }
}

TEST_F(VerifierTest, MemoizesRepeatedQueries) {
  OutlierVerifier verifier(index_, detector_);
  ContextVec full = FullCtx();
  verifier.OutliersInContext(full);
  EXPECT_EQ(verifier.evaluations(), 1u);
  verifier.OutliersInContext(full);
  verifier.OutliersInContext(full);
  EXPECT_EQ(verifier.evaluations(), 1u);
  EXPECT_EQ(verifier.cache_hits(), 2u);
}

TEST_F(VerifierTest, RowOutsidePopulationIsNeverAnOutlier) {
  OutlierVerifier verifier(index_, detector_);
  ContextVec c(grid_.dataset.schema().total_values());
  c.Set(1);  // a1
  c.Set(4);  // b1
  // V = (a0, b0) is not in this context; the fast path must not even run
  // the detector.
  EXPECT_FALSE(verifier.IsOutlierInContext(c, grid_.v_row));
  EXPECT_EQ(verifier.evaluations(), 0u);
}

TEST_F(VerifierTest, ClearCacheForcesRecomputation) {
  OutlierVerifier verifier(index_, detector_);
  verifier.OutliersInContext(FullCtx());
  verifier.ClearCache();
  verifier.OutliersInContext(FullCtx());
  EXPECT_EQ(verifier.evaluations(), 2u);
}

TEST_F(VerifierTest, CacheDisableAlwaysRecomputes) {
  VerifierOptions options;
  options.enable_cache = false;
  OutlierVerifier verifier(index_, detector_, options);
  verifier.OutliersInContext(FullCtx());
  verifier.OutliersInContext(FullCtx());
  EXPECT_EQ(verifier.evaluations(), 2u);
  EXPECT_EQ(verifier.cache_hits(), 0u);
}

TEST_F(VerifierTest, EntryBudgetEvictsLruButStaysCorrect) {
  VerifierOptions options;
  options.max_cache_entries = 4;
  options.num_shards = 1;
  OutlierVerifier verifier(index_, detector_, options);
  // Query more distinct contexts than the cap: the cold end is evicted
  // entry by entry, never the whole cache.
  const size_t t = grid_.dataset.schema().total_values();
  for (size_t bit = 0; bit < t; ++bit) {
    ContextVec c = FullCtx();
    c.Clear(bit);
    verifier.OutliersInContext(c);
  }
  const VerifierStats stats = verifier.Stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(stats.resident_entries, 4u);
  // Still answers correctly afterwards: agree with an uncached verifier.
  VerifierOptions no_cache;
  no_cache.enable_cache = false;
  OutlierVerifier fresh(index_, detector_, no_cache);
  EXPECT_EQ(*verifier.OutliersInContext(FullCtx()),
            *fresh.OutliersInContext(FullCtx()));
}

TEST_F(VerifierTest, StatsSnapshotTracksResidency) {
  OutlierVerifier verifier(index_, detector_);
  verifier.OutliersInContext(FullCtx());
  verifier.OutliersInContext(FullCtx());
  const VerifierStats stats = verifier.Stats();
  EXPECT_EQ(stats.evaluations, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.resident_entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
  verifier.ClearCache();
  EXPECT_EQ(verifier.Stats().resident_entries, 0u);
  EXPECT_EQ(verifier.Stats().resident_bytes, 0u);
}

TEST_F(VerifierTest, HammerAllCachePoliciesAgree) {
  // Satellite coverage: one deterministic probe mix answered by four
  // verifiers — cache disabled, wholesale-clear ablation, a tiny LRU budget
  // that forces constant eviction, and the default — must be identical
  // under 8-way concurrent hammering.
  VerifierOptions no_cache;
  no_cache.enable_cache = false;
  OutlierVerifier uncached(index_, detector_, no_cache);

  VerifierOptions wholesale;
  wholesale.wholesale_clear = true;
  wholesale.max_cache_bytes = 2048;
  wholesale.num_shards = 1;
  OutlierVerifier clearing(index_, detector_, wholesale);

  VerifierOptions tiny_lru;
  tiny_lru.max_cache_bytes = 1024;
  tiny_lru.num_shards = 2;
  OutlierVerifier evicting(index_, detector_, tiny_lru);

  OutlierVerifier roomy(index_, detector_);

  // All 2^t subsets of the full context, visited repeatedly from all
  // threads so entries are hammered while being evicted.
  const size_t t = grid_.dataset.schema().total_values();
  const size_t num_contexts = size_t{1} << t;
  std::atomic<size_t> mismatches{0};
  ParallelFor(num_contexts * 4, 8, [&](size_t i) {
    ContextVec c(t);
    const size_t bits = i % num_contexts;
    for (size_t bit = 0; bit < t; ++bit) {
      if ((bits >> bit) & 1) c.Set(bit);
    }
    const auto expected = uncached.OutliersInContext(c);
    if (*clearing.OutliersInContext(c) != *expected ||
        *evicting.OutliersInContext(c) != *expected ||
        *roomy.OutliersInContext(c) != *expected) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  // The tiny budget must actually have been under pressure.
  EXPECT_GT(evicting.Stats().cache_evictions, 0u);
  EXPECT_GT(clearing.Stats().cache_evictions, 0u);
}

TEST_F(VerifierTest, SmallPopulationGatedByDetectorMinPopulation) {
  OutlierVerifier verifier(index_, detector_);
  // A context with an empty attribute has population 0 — below any
  // detector's min_population — and must report no outliers.
  ContextVec c(grid_.dataset.schema().total_values());
  c.Set(0);
  auto outliers = verifier.OutliersInContext(c);  // population 0
  EXPECT_TRUE(outliers->empty());
}

TEST_F(VerifierTest, ConcurrentQueriesAreConsistent) {
  OutlierVerifier verifier(index_, detector_);
  const auto expected = *verifier.OutliersInContext(FullCtx());
  std::atomic<bool> mismatch{false};
  ParallelFor(64, 8, [&](size_t i) {
    ContextVec c = FullCtx();
    if (i % 2 == 0) c.Clear(i % c.num_bits());
    auto result = verifier.OutliersInContext(FullCtx());
    if (*result != expected) mismatch.store(true);
    verifier.IsOutlierInContext(c, grid_.v_row);
  });
  EXPECT_FALSE(mismatch.load());
}

// The engine shares one verifier across all Release() calls; these tests
// cover that cache under real concurrent releases (the ReleaseBatch
// fan-out path) rather than bare verifier queries.

TEST_F(VerifierTest, ConcurrentReleasesThroughSharedCacheAreDeterministic) {
  PcorEngine engine(grid_.dataset, detector_);
  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = 8;

  // Serial baseline on a cold engine.
  constexpr size_t kReleases = 48;
  PcorEngine baseline_engine(grid_.dataset, detector_);
  std::vector<ContextVec> expected(kReleases);
  std::vector<double> expected_scores(kReleases, 0.0);
  for (size_t i = 0; i < kReleases; ++i) {
    Rng rng(1000 + i);
    auto release = baseline_engine.Release(grid_.v_row, options, &rng);
    ASSERT_TRUE(release.ok()) << release.status().ToString();
    expected[i] = release->context;
    expected_scores[i] = release->utility_score;
  }

  // Same releases, 8-way concurrent, one shared verifier cache.
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  ParallelFor(kReleases, 8, [&](size_t i) {
    Rng rng(1000 + i);
    auto release = engine.Release(grid_.v_row, options, &rng);
    if (!release.ok()) {
      failures.fetch_add(1);
      return;
    }
    if (release->context != expected[i] ||
        release->utility_score != expected_scores[i]) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  // The shared cache must actually have been shared: far fewer detector
  // runs than 48 cold releases would need.
  EXPECT_LT(engine.verifier().evaluations(),
            baseline_engine.verifier().evaluations() * kReleases);
  EXPECT_GT(engine.verifier().cache_hits(), 0u);
}

TEST_F(VerifierTest, ConcurrentReleasesSurviveCacheClears) {
  // ClearCache() concurrent with releases must never change results —
  // the cache is a pure memo over a deterministic function.
  PcorEngine engine(grid_.dataset, detector_);
  PcorOptions options;
  options.sampler = SamplerKind::kUniform;
  options.num_samples = 6;

  Rng baseline_rng(77);
  auto baseline = engine.Release(grid_.v_row, options, &baseline_rng);
  ASSERT_TRUE(baseline.ok());

  std::atomic<bool> stop{false};
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.verifier().ClearCache();
      std::this_thread::yield();
    }
  });
  std::atomic<size_t> mismatches{0};
  ParallelFor(32, 4, [&](size_t) {
    Rng rng(77);
    auto release = engine.Release(grid_.v_row, options, &rng);
    if (!release.ok() || release->context != baseline->context) {
      mismatches.fetch_add(1);
    }
  });
  stop.store(true);
  clearer.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_F(VerifierTest, CacheBudgetEvictionUnderConcurrentReleases) {
  // A tiny byte budget forces LRU eviction mid-release; correctness must
  // not depend on entries staying resident.
  VerifierOptions small_cache;
  small_cache.max_cache_bytes = 2048;
  PcorEngine engine(grid_.dataset, detector_, small_cache);
  PcorEngine reference(grid_.dataset, detector_);
  PcorOptions options;
  options.sampler = SamplerKind::kBfs;
  options.num_samples = 8;

  std::atomic<size_t> mismatches{0};
  ParallelFor(16, 4, [&](size_t i) {
    Rng rng(500 + i);
    auto capped = engine.Release(grid_.v_row, options, &rng);
    Rng ref_rng(500 + i);
    auto full = reference.Release(grid_.v_row, options, &ref_rng);
    if (!capped.ok() || !full.ok() || capped->context != full->context) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace pcor
