#include "src/outlier/detector_cache.h"

#include <gtest/gtest.h>

#include "src/common/threading.h"
#include "tests/testing_util.h"

namespace pcor {
namespace {

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest()
      : grid_(testing_util::MakeSpreadGridDataset()),
        index_(grid_.dataset),
        detector_(testing_util::MakeTestDetector()) {}

  ContextVec FullCtx() const {
    return context_ops::FullContext(grid_.dataset.schema());
  }

  testing_util::GridData grid_;
  PopulationIndex index_;
  ZscoreDetector detector_;
};

TEST_F(VerifierTest, AgreesWithDirectDetectorRun) {
  OutlierVerifier verifier(index_, detector_);
  ContextVec full = FullCtx();
  auto metric = index_.MetricOf(full);
  auto rows = index_.RowIdsOf(full);
  auto direct = detector_.Detect(metric);
  auto cached = verifier.OutliersInContext(full);
  ASSERT_EQ(cached->size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ((*cached)[i], rows[direct[i]]);
  }
}

TEST_F(VerifierTest, MemoizesRepeatedQueries) {
  OutlierVerifier verifier(index_, detector_);
  ContextVec full = FullCtx();
  verifier.OutliersInContext(full);
  EXPECT_EQ(verifier.evaluations(), 1u);
  verifier.OutliersInContext(full);
  verifier.OutliersInContext(full);
  EXPECT_EQ(verifier.evaluations(), 1u);
  EXPECT_EQ(verifier.cache_hits(), 2u);
}

TEST_F(VerifierTest, RowOutsidePopulationIsNeverAnOutlier) {
  OutlierVerifier verifier(index_, detector_);
  ContextVec c(grid_.dataset.schema().total_values());
  c.Set(1);  // a1
  c.Set(4);  // b1
  // V = (a0, b0) is not in this context; the fast path must not even run
  // the detector.
  EXPECT_FALSE(verifier.IsOutlierInContext(c, grid_.v_row));
  EXPECT_EQ(verifier.evaluations(), 0u);
}

TEST_F(VerifierTest, ClearCacheForcesRecomputation) {
  OutlierVerifier verifier(index_, detector_);
  verifier.OutliersInContext(FullCtx());
  verifier.ClearCache();
  verifier.OutliersInContext(FullCtx());
  EXPECT_EQ(verifier.evaluations(), 2u);
}

TEST_F(VerifierTest, CacheDisableAlwaysRecomputes) {
  VerifierOptions options;
  options.enable_cache = false;
  OutlierVerifier verifier(index_, detector_, options);
  verifier.OutliersInContext(FullCtx());
  verifier.OutliersInContext(FullCtx());
  EXPECT_EQ(verifier.evaluations(), 2u);
  EXPECT_EQ(verifier.cache_hits(), 0u);
}

TEST_F(VerifierTest, CacheCapClearsWholesale) {
  VerifierOptions options;
  options.max_cache_entries = 4;
  OutlierVerifier verifier(index_, detector_, options);
  // Query more distinct contexts than the cap.
  const size_t t = grid_.dataset.schema().total_values();
  for (size_t bit = 0; bit < t; ++bit) {
    ContextVec c = FullCtx();
    c.Clear(bit);
    verifier.OutliersInContext(c);
  }
  // Still answers correctly afterwards: agree with an uncached verifier.
  VerifierOptions no_cache;
  no_cache.enable_cache = false;
  OutlierVerifier fresh(index_, detector_, no_cache);
  EXPECT_EQ(*verifier.OutliersInContext(FullCtx()),
            *fresh.OutliersInContext(FullCtx()));
}

TEST_F(VerifierTest, SmallPopulationGatedByDetectorMinPopulation) {
  OutlierVerifier verifier(index_, detector_);
  // A context with an empty attribute has population 0 — below any
  // detector's min_population — and must report no outliers.
  ContextVec c(grid_.dataset.schema().total_values());
  c.Set(0);
  auto outliers = verifier.OutliersInContext(c);  // population 0
  EXPECT_TRUE(outliers->empty());
}

TEST_F(VerifierTest, ConcurrentQueriesAreConsistent) {
  OutlierVerifier verifier(index_, detector_);
  const auto expected = *verifier.OutliersInContext(FullCtx());
  std::atomic<bool> mismatch{false};
  ParallelFor(64, 8, [&](size_t i) {
    ContextVec c = FullCtx();
    if (i % 2 == 0) c.Clear(i % c.num_bits());
    auto result = verifier.OutliersInContext(FullCtx());
    if (*result != expected) mismatch.store(true);
    verifier.IsOutlierInContext(c, grid_.v_row);
  });
  EXPECT_FALSE(mismatch.load());
}

}  // namespace
}  // namespace pcor
