// Scalar/SIMD parity property tests: every registered detector must flag
// the *identical* outlier index set (exact, not approximate) under the
// forced-scalar kernel path and the runtime-dispatched path, across input
// families chosen to stress the kernels — random, constant, NaN-free
// adversarial magnitudes, and tie-heavy duplicates. The kernels'
// lane-canonical reduction contract (src/common/simd.h) is what makes this
// equality achievable bit-for-bit; these tests are the enforcement.
//
// On hosts without SIMD support the dispatched path *is* the scalar path
// and the tests pass trivially; the ctest registration in
// tests/CMakeLists.txt additionally re-runs this binary under
// PCOR_FORCE_SIMD=scalar|sse2|avx2|avx512 (plus the legacy
// PCOR_FORCE_SCALAR=1 alias) so every kernel tier gets explicit — and
// sanitizer — coverage. A forced tier above the host's degrades in the
// dispatcher; the env-override test below detects that and skips instead
// of asserting the pin.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/simd.h"
#include "src/outlier/detector.h"

namespace pcor {
namespace {

// The backend the dispatcher resolved at startup — honoring
// PCOR_FORCE_SIMD / PCOR_FORCE_SCALAR — captured before any test calls
// SetBackendForTest. Under a forced-tier ctest entry this is the pinned
// tier, so the "dispatched" half of every parity check below really runs
// that tier's kernels (and the env-override path itself gets asserted in
// EnvOverride below).
const simd::Backend kDispatched = simd::ActiveBackend();

struct NamedInput {
  std::string name;
  std::vector<double> values;
};

std::vector<NamedInput> ParityInputs() {
  std::vector<NamedInput> inputs;

  // Random gaussians at sizes straddling the kernels' 4-lane blocking
  // (multiples of four, off-by-one sizes, and a large population).
  for (size_t n : {8ul, 31ul, 32ul, 33ul, 100ul, 1023ul, 4096ul}) {
    Rng rng(1000 + n);
    NamedInput input{"gaussian_" + std::to_string(n), {}};
    input.values.resize(n);
    for (auto& v : input.values) v = 100.0 + 15.0 * rng.NextGaussian();
    input.values[n / 2] = 500.0;  // one planted outlier
    inputs.push_back(std::move(input));
  }

  // Constant population: zero variance, every detector must stay silent
  // on both paths.
  inputs.push_back({"constant", std::vector<double>(64, 42.0)});

  // NaN-free adversarial magnitudes: alternating huge/tiny values,
  // sign flips, and denormal-scale entries — maximal cancellation stress
  // for the sum reductions.
  {
    NamedInput input{"adversarial_magnitudes", {}};
    for (int i = 0; i < 97; ++i) {
      const double sign = (i % 2 == 0) ? 1.0 : -1.0;
      switch (i % 5) {
        case 0:
          input.values.push_back(sign * 1e12);
          break;
        case 1:
          input.values.push_back(sign * 1e-12);
          break;
        case 2:
          input.values.push_back(sign * 1e300 * 1e-290);  // 1e10
          break;
        case 3:
          input.values.push_back(sign * 5e-324);  // smallest denormal
          break;
        default:
          input.values.push_back(sign * static_cast<double>(i));
      }
    }
    inputs.push_back(std::move(input));
  }

  // Tie-heavy: few distinct values, many duplicates — stresses the
  // first-wins tie-breaking of argmax and the duplicate conventions of
  // LOF's k-distance windows.
  {
    Rng rng(77);
    NamedInput input{"tie_heavy", {}};
    for (int i = 0; i < 200; ++i) {
      input.values.push_back(
          static_cast<double>(rng.NextBounded(4)) * 10.0);
    }
    input.values.push_back(1000.0);
    input.values.push_back(1000.0);  // duplicated extreme
    inputs.push_back(std::move(input));
  }

  return inputs;
}

TEST(SimdEnvOverrideTest, ForcedTierEnvPinsTheBackend) {
  // Same resolution the dispatcher uses: PCOR_FORCE_SIMD wins, the legacy
  // PCOR_FORCE_SCALAR alias is honored, and an unset/unparseable pin means
  // the best supported tier dispatches.
  const std::optional<simd::Backend> forced = simd::ForcedBackendFromEnv();
  if (!forced.has_value()) {
    EXPECT_EQ(kDispatched, simd::BestSupportedBackend());
    return;
  }
  if (static_cast<int>(*forced) >
      static_cast<int>(simd::BestSupportedBackend())) {
    GTEST_SKIP() << "forced tier " << simd::BackendName(*forced)
                 << " is not supported on this host (dispatcher degraded to "
                 << simd::ActiveBackendName()
                 << "); the parity tests still ran against that tier";
  }
  EXPECT_EQ(kDispatched, *forced)
      << "PCOR_FORCE_SIMD/PCOR_FORCE_SCALAR must pin the requested tier";
}

class DetectorParityTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { simd::SetBackendForTest(kDispatched); }
};

TEST_P(DetectorParityTest, ScalarAndDispatchedFlagIdenticalSets) {
  auto detector = MakeDetector(GetParam());
  ASSERT_TRUE(detector.ok());
  for (const NamedInput& input : ParityInputs()) {
    simd::SetBackendForTest(simd::Backend::kScalar);
    std::vector<size_t> scalar_flagged;
    (*detector)->Detect(input.values, &scalar_flagged);

    simd::SetBackendForTest(kDispatched);
    std::vector<size_t> dispatched_flagged;
    (*detector)->Detect(input.values, &dispatched_flagged);

    EXPECT_EQ(scalar_flagged, dispatched_flagged)
        << "detector=" << GetParam() << " input=" << input.name
        << " dispatched=" << simd::ActiveBackendName();

    // The single-target probe (the verifier's f_M entry point) must agree
    // with the full detection on both paths.
    if (!dispatched_flagged.empty()) {
      const size_t target = dispatched_flagged.front();
      simd::SetBackendForTest(simd::Backend::kScalar);
      EXPECT_TRUE((*detector)->IsOutlier(input.values, target))
          << "detector=" << GetParam() << " input=" << input.name;
    }
  }
}

TEST_P(DetectorParityTest, RepeatedDetectionIsDeterministicPerBackend) {
  auto detector = MakeDetector(GetParam());
  ASSERT_TRUE(detector.ok());
  const NamedInput input = ParityInputs().front();
  std::vector<size_t> first, again;
  (*detector)->Detect(input.values, &first);
  (*detector)->Detect(input.values, &again);
  EXPECT_EQ(first, again) << "detector=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorParityTest,
                         ::testing::ValuesIn(RegisteredDetectorNames()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace pcor
