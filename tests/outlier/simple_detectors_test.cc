#include <gtest/gtest.h>

#include "src/outlier/detector.h"
#include "src/outlier/iqr.h"
#include "src/outlier/zscore.h"

namespace pcor {
namespace {

TEST(IqrDetectorTest, FlagsPointsOutsideTukeyFences) {
  IqrOptions options;
  options.min_population = 4;
  IqrDetector detector(options);
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 100};
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 8u);
}

TEST(IqrDetectorTest, SymmetricFences) {
  IqrOptions options;
  options.min_population = 4;
  IqrDetector detector(options);
  std::vector<double> values{-100, 1, 2, 3, 4, 5, 6, 7, 8, 100};
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0], 0u);
  EXPECT_EQ(flagged[1], 9u);
}

TEST(IqrDetectorTest, MultiplierWidensFences) {
  IqrOptions narrow;
  narrow.min_population = 4;
  narrow.multiplier = 0.5;
  IqrOptions wide;
  wide.min_population = 4;
  wide.multiplier = 10.0;
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8, 20};
  EXPECT_FALSE(IqrDetector(narrow).Detect(values).empty());
  EXPECT_TRUE(IqrDetector(wide).Detect(values).empty());
}

TEST(ZscoreDetectorTest, FlagsBeyondThreeSigma) {
  ZscoreOptions options;
  options.min_population = 4;
  ZscoreDetector detector(options);
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(10.0 + 0.1 * (i % 5));
  values.push_back(30.0);
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 50u);
}

TEST(ZscoreDetectorTest, ConstantSampleHasNoOutliers) {
  ZscoreOptions options;
  options.min_population = 4;
  ZscoreDetector detector(options);
  EXPECT_TRUE(detector.Detect(std::vector<double>(10, 3.0)).empty());
}

TEST(ZscoreDetectorTest, MinPopulationGates) {
  ZscoreOptions options;
  options.min_population = 100;
  ZscoreDetector detector(options);
  std::vector<double> values{1, 1, 1, 50};
  EXPECT_TRUE(detector.Detect(values).empty());
}

TEST(DetectorRegistryTest, MakeDetectorKnowsAllNames) {
  for (const std::string& name : RegisteredDetectorNames()) {
    auto detector = MakeDetector(name);
    ASSERT_TRUE(detector.ok()) << name;
    EXPECT_EQ((*detector)->name(), name);
  }
  EXPECT_TRUE(MakeDetector("nope").status().IsNotFound());
}

TEST(DetectorRegistryTest, PaperTrioIsRegistered) {
  auto names = RegisteredDetectorNames();
  for (const char* required : {"grubbs", "histogram", "lof"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), required) !=
                names.end())
        << required;
  }
}

TEST(DetectorInterfaceTest, DefaultIsOutlierUsesDetect) {
  ZscoreOptions options;
  options.min_population = 4;
  ZscoreDetector detector(options);
  // With n-1 identical values and one extreme point, the extreme point's
  // z-score is (n-1)/sqrt(n); n = 31 gives ~5.4, well above threshold 3.
  std::vector<double> values(30, 1.0);
  values.push_back(25.0);
  EXPECT_TRUE(detector.IsOutlier(values, 30));
  EXPECT_FALSE(detector.IsOutlier(values, 0));
}

}  // namespace
}  // namespace pcor
