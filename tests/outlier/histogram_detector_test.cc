#include "src/outlier/histogram_detector.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace pcor {
namespace {

HistogramDetectorOptions SmallOptions() {
  HistogramDetectorOptions options;
  options.frequency_fraction = 0.01;  // scaled for small test populations
  options.min_population = 16;
  return options;
}

std::vector<double> ClusterWithOutlier(size_t n, double outlier) {
  Rng rng(5);
  std::vector<double> values;
  for (size_t i = 0; i < n; ++i) values.push_back(100.0 + rng.NextGaussian());
  values.push_back(outlier);
  return values;
}

TEST(HistogramDetectorTest, FlagsIsolatedPoint) {
  HistogramDetector detector(SmallOptions());
  auto values = ClusterWithOutlier(400, 200.0);
  auto flagged = detector.Detect(values);
  ASSERT_FALSE(flagged.empty());
  EXPECT_TRUE(std::find(flagged.begin(), flagged.end(), values.size() - 1) !=
              flagged.end());
}

TEST(HistogramDetectorTest, DensePointIsNotFlagged) {
  HistogramDetector detector(SmallOptions());
  auto values = ClusterWithOutlier(400, 200.0);
  EXPECT_FALSE(detector.IsOutlier(values, 0));
}

TEST(HistogramDetectorTest, SmallPopulationsReportNothing) {
  HistogramDetector detector(SmallOptions());
  std::vector<double> values{1, 2, 3, 100};
  EXPECT_TRUE(detector.Detect(values).empty());
}

TEST(HistogramDetectorTest, ConstantSampleHasNoOutliers) {
  HistogramDetector detector(SmallOptions());
  std::vector<double> values(100, 7.0);
  EXPECT_TRUE(detector.Detect(values).empty());
}

TEST(HistogramDetectorTest, ShiftInvariance) {
  // Equal-width binning over [min, max] is invariant under shifts.
  HistogramDetector detector(SmallOptions());
  auto values = ClusterWithOutlier(300, 180.0);
  auto base = detector.Detect(values);
  std::vector<double> shifted;
  for (double v : values) shifted.push_back(v + 1234.5);
  EXPECT_EQ(detector.Detect(shifted), base);
}

TEST(HistogramDetectorTest, ThresholdFractionControlsStrictness) {
  auto values = ClusterWithOutlier(400, 150.0);
  HistogramDetectorOptions strict = SmallOptions();
  strict.frequency_fraction = 1e-9;  // only empty bins flagged -> nothing
  HistogramDetectorOptions loose = SmallOptions();
  loose.frequency_fraction = 0.05;
  EXPECT_TRUE(HistogramDetector(strict).Detect(values).empty());
  EXPECT_FALSE(HistogramDetector(loose).Detect(values).empty());
}

TEST(HistogramDetectorTest, PaperDefaultsExposed) {
  HistogramDetector detector;  // paper's 2.5e-3 threshold
  EXPECT_DOUBLE_EQ(detector.options().frequency_fraction, 2.5e-3);
}

TEST(HistogramDetectorTest, PaperThresholdOnLargePopulation) {
  // With the paper's 2.5e-3 fraction, a 2000-point population flags bins
  // with fewer than 5 members; a 3-member far-away cluster is caught.
  HistogramDetector detector;
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(50.0 + rng.NextGaussian());
  values.push_back(500.0);
  values.push_back(501.0);
  values.push_back(502.0);
  auto flagged = detector.Detect(values);
  ASSERT_GE(flagged.size(), 3u);
  EXPECT_TRUE(std::find(flagged.begin(), flagged.end(), 2000u) !=
              flagged.end());
}

}  // namespace
}  // namespace pcor
