#include "src/outlier/grubbs.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace pcor {
namespace {

GrubbsOptions SmallOptions() {
  GrubbsOptions options;
  options.alpha = 0.05;
  options.max_iterations = 5;
  options.min_population = 3;
  return options;
}

TEST(GrubbsTest, FlagsAnObviousOutlier) {
  GrubbsDetector detector(SmallOptions());
  std::vector<double> values{8.0, 8.1, 7.9, 8.2, 8.0, 7.8, 8.1, 20.0};
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 7u);
  EXPECT_TRUE(detector.IsOutlier(values, 7));
  EXPECT_FALSE(detector.IsOutlier(values, 0));
}

TEST(GrubbsTest, CleanSampleHasNoOutliers) {
  GrubbsDetector detector(SmallOptions());
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.NextGaussian());
  // A standard normal sample rarely exceeds the n=100 critical value
  // (~3.38 sigma with this seed's draw).
  auto flagged = detector.Detect(values);
  EXPECT_LE(flagged.size(), 1u);
}

TEST(GrubbsTest, IterativeRemovalFindsMultipleOutliers) {
  GrubbsDetector detector(SmallOptions());
  std::vector<double> values{10.0, 10.1, 9.9, 10.2, 10.0, 9.8,
                             10.1, 10.0, 50.0, -40.0};
  auto flagged = detector.Detect(values);
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0], 8u);
  EXPECT_EQ(flagged[1], 9u);
}

TEST(GrubbsTest, MaxIterationsBoundsTheFlagCount) {
  GrubbsOptions options = SmallOptions();
  options.max_iterations = 1;
  GrubbsDetector detector(options);
  std::vector<double> values{10.0, 10.1, 9.9, 10.2, 10.0, 9.8,
                             10.1, 10.0, 50.0, -40.0};
  EXPECT_LE(detector.Detect(values).size(), 1u);
}

TEST(GrubbsTest, SmallPopulationsReportNothing) {
  GrubbsOptions options = SmallOptions();
  options.min_population = 8;
  GrubbsDetector detector(options);
  std::vector<double> values{1.0, 1.0, 100.0};
  EXPECT_TRUE(detector.Detect(values).empty());
  EXPECT_EQ(detector.min_population(), 8u);
}

TEST(GrubbsTest, ConstantSampleHasNoOutliers) {
  GrubbsDetector detector(SmallOptions());
  std::vector<double> values(20, 5.0);
  EXPECT_TRUE(detector.Detect(values).empty());
}

TEST(GrubbsTest, AffineInvariance) {
  // Grubbs' statistic is invariant under x -> a*x + b (a > 0).
  GrubbsDetector detector(SmallOptions());
  std::vector<double> values{3.0, 3.2, 2.9, 3.1, 3.0, 2.8, 3.05, 9.0, 3.1};
  auto base = detector.Detect(values);
  std::vector<double> scaled;
  for (double v : values) scaled.push_back(250.0 * v - 17.0);
  EXPECT_EQ(detector.Detect(scaled), base);
}

TEST(GrubbsTest, DeterministicAcrossCalls) {
  GrubbsDetector detector(SmallOptions());
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 60; ++i) values.push_back(rng.NextGaussian());
  values.push_back(8.0);
  auto a = detector.Detect(values);
  auto b = detector.Detect(values);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(GrubbsTest, AlphaControlsStrictness) {
  // A borderline point flagged at alpha = 0.10 may survive alpha = 0.01.
  std::vector<double> values{0.0, 0.1, -0.1, 0.2, -0.2, 0.15, -0.15, 0.62};
  GrubbsOptions loose = SmallOptions();
  loose.alpha = 0.10;
  GrubbsOptions strict = SmallOptions();
  strict.alpha = 0.001;
  const auto loose_flags = GrubbsDetector(loose).Detect(values).size();
  const auto strict_flags = GrubbsDetector(strict).Detect(values).size();
  EXPECT_GE(loose_flags, strict_flags);
}

}  // namespace
}  // namespace pcor
