#pragma once

#include <vector>

#include "src/data/dataset.h"
#include "src/outlier/zscore.h"

namespace pcor {
namespace testing_util {

/// Schema with two categorical attributes A (3 values) and B (3 values);
/// t = 6, m = 2.
inline Schema GridSchema() {
  Schema schema;
  schema.AddAttribute("A", {"a0", "a1", "a2"}).CheckOK();
  schema.AddAttribute("B", {"b0", "b1", "b2"}).CheckOK();
  schema.SetMetricName("value");
  return schema;
}

/// Deterministic dataset over GridSchema: every (a, b) group gets
/// `per_group` rows with metric values 99..103 (tight cluster around 101),
/// plus one target row V = (a0, b0) with the given extreme metric.
/// With a z-score detector (threshold 3), V is an outlier in every context
/// containing it, so COE(V) is all 2^(t-m) = 16 contexts containing V.
///
/// Note the default group size: a z-score cannot exceed (n-1)/sqrt(n), so
/// a population of n rows can only cross threshold 3 when n >= 11; groups
/// of 12 give the exact context of V (13 rows) a headroom of ~3.3.
struct GridData {
  Dataset dataset;
  uint32_t v_row;
};

inline GridData MakeGridDataset(size_t per_group = 12,
                                double v_metric = 200.0) {
  Dataset dataset(GridSchema());
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      for (size_t i = 0; i < per_group; ++i) {
        dataset.AppendRow({a, b}, 99.0 + static_cast<double>(i % 5))
            .CheckOK();
      }
    }
  }
  const uint32_t v_row = static_cast<uint32_t>(dataset.num_rows());
  dataset.AppendRow({0, 0}, v_metric).CheckOK();
  return GridData{std::move(dataset), v_row};
}

/// Like MakeGridDataset, but group (a2, b2) is wildly spread (values up to
/// v_metric and beyond), so V stops being an outlier in any context that
/// includes both a2 and b2 — giving COE a non-trivial shape for search
/// tests.
inline GridData MakeSpreadGridDataset(size_t per_group = 12,
                                      double v_metric = 200.0) {
  Dataset dataset(GridSchema());
  for (uint32_t a = 0; a < 3; ++a) {
    for (uint32_t b = 0; b < 3; ++b) {
      const bool wild = (a == 2 && b == 2);
      for (size_t i = 0; i < per_group * (wild ? 6 : 1); ++i) {
        const double base =
            wild ? 90.0 + 25.0 * static_cast<double>(i % 10)
                 : 99.0 + static_cast<double>(i % 5);
        dataset.AppendRow({a, b}, base).CheckOK();
      }
    }
  }
  const uint32_t v_row = static_cast<uint32_t>(dataset.num_rows());
  dataset.AppendRow({0, 0}, v_metric).CheckOK();
  return GridData{std::move(dataset), v_row};
}

/// Z-score detector configured for the tiny grid datasets.
inline ZscoreDetector MakeTestDetector() {
  ZscoreOptions options;
  options.threshold = 3.0;
  options.min_population = 4;
  return ZscoreDetector(options);
}

}  // namespace testing_util
}  // namespace pcor
