// Trace format contract: generator -> FormatTrace -> ParseTrace is an
// identity on the event stream (bit-exact doubles included), and
// malformed input fails with a typed error naming the exact line.
#include "src/exp/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace pcor {
namespace {

void ExpectRoundTrip(const std::vector<TraceEvent>& events) {
  const std::string text = FormatTrace(events);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*parsed)[i], events[i]) << "event " << i;
  }
}

TEST(TraceFormatTest, HandWrittenRoundTrip) {
  std::vector<TraceEvent> events;
  events.push_back({0, "acme", TraceEventKind::kRelease, 0.2, 3});
  events.push_back({1'000, "acme", TraceEventKind::kAppend, 0.0, 64});
  events.push_back({2'000, "other", TraceEventKind::kSeal, 0.0, 0});
  // An epsilon that is NOT a round decimal: %.17g must carry it bit-exact.
  events.push_back({3'000, "acme", TraceEventKind::kRelease, 0.1 + 0.2, 7});
  ExpectRoundTrip(events);
}

TEST(TraceFormatTest, GeneratorRoundTrips) {
  ExpectRoundTrip(MakeDiurnalTrace(DiurnalTraceOptions{}));
  ExpectRoundTrip(MakeFloodTrace(FloodTraceOptions{}));
  ExpectRoundTrip(MakeBudgetStormTrace(BudgetStormTraceOptions{}));
  ExpectRoundTrip(MakeStreamingTrace(StreamingTraceOptions{}));
}

TEST(TraceFormatTest, GeneratorsAreDeterministic) {
  DiurnalTraceOptions options;
  options.seed = 99;
  EXPECT_EQ(MakeDiurnalTrace(options), MakeDiurnalTrace(options));
  options.seed = 100;  // and actually seed-dependent
  EXPECT_NE(MakeDiurnalTrace(options), MakeDiurnalTrace(DiurnalTraceOptions{
                                           .seed = 99}));
}

TEST(TraceFormatTest, CommentsAndBlankLinesAreIgnored) {
  auto parsed = ParseTrace(
      "# recorded 2026-08-07\n"
      "\n"
      "at_us,tenant,kind,eps,rows\n"
      "# mid-file comment\n"
      "5,acme,release,0.5,2\n"
      "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].at_us, 5);
  EXPECT_EQ((*parsed)[0].tenant, "acme");
  EXPECT_EQ((*parsed)[0].kind, TraceEventKind::kRelease);
  EXPECT_DOUBLE_EQ((*parsed)[0].epsilon, 0.5);
  EXPECT_EQ((*parsed)[0].rows, 2u);
}

TEST(TraceFormatTest, MissingHeaderIsTyped) {
  auto no_header = ParseTrace("5,acme,release,0.5,2\n");
  EXPECT_TRUE(no_header.status().IsInvalidArgument());
  EXPECT_NE(no_header.status().ToString().find("line 1"),
            std::string::npos);
  auto empty = ParseTrace("# only a comment\n");
  EXPECT_TRUE(empty.status().IsInvalidArgument());
  EXPECT_NE(empty.status().ToString().find("header"), std::string::npos);
}

// Every malformed-line case: the error is typed and names the exact
// 1-based line number (comments and blanks count toward it).
TEST(TraceFormatTest, MalformedLinesNameTheLine) {
  const std::string header = "at_us,tenant,kind,eps,rows\n";

  struct Case {
    const char* name;
    const char* line;       // becomes line 3 (header is 1, comment is 2)
    const char* fragment;   // expected message substring
  };
  const Case cases[] = {
      {"bad kind", "5,acme,mutate,0.5,2", "unknown event kind"},
      {"negative at_us", "-5,acme,release,0.5,2", "negative at_us"},
      {"unparsable at_us", "soon,acme,release,0.5,2", "malformed at_us"},
      {"empty tenant", "5,,release,0.5,2", "empty tenant"},
      {"bad eps", "5,acme,release,banana,2", "malformed eps"},
      {"negative eps", "5,acme,release,-0.5,2", "malformed eps"},
      {"bad rows", "5,acme,release,0.5,-2", "malformed rows"},
      {"too few fields", "5,acme,release", "expected 5 fields, got 3"},
      {"too many fields", "5,acme,release,0.5,2,9", "expected 5 fields"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto parsed =
        ParseTrace(header + "# comment\n" + c.line + "\n");
    ASSERT_FALSE(parsed.ok());
    EXPECT_TRUE(parsed.status().IsInvalidArgument())
        << parsed.status().ToString();
    const std::string message = parsed.status().ToString();
    EXPECT_NE(message.find("line 3"), std::string::npos) << message;
    EXPECT_NE(message.find(c.fragment), std::string::npos) << message;
  }
}

TEST(TraceFormatTest, UnknownTenantIsNotFoundWithLineNumber) {
  TraceParseOptions options;
  options.allowed_tenants = {"alpha", "beta"};
  auto parsed = ParseTrace(
      "at_us,tenant,kind,eps,rows\n"
      "1,alpha,release,0.2,0\n"
      "2,gamma,release,0.2,0\n",
      options);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsNotFound()) << parsed.status().ToString();
  const std::string message = parsed.status().ToString();
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("gamma"), std::string::npos) << message;
}

TEST(TraceFormatTest, QuotedTenantsSurviveRoundTrip) {
  std::vector<TraceEvent> events;
  events.push_back({10, "weird,tenant \"inc\"", TraceEventKind::kRelease,
                    0.25, 1});
  ExpectRoundTrip(events);
}

TEST(TraceGeneratorTest, FloodShapesTheBurst) {
  FloodTraceOptions options;
  options.flood_events = 32;
  const std::vector<TraceEvent> events = MakeFloodTrace(options);
  size_t flood_count = 0;
  int64_t previous = 0;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.kind, TraceEventKind::kRelease);
    EXPECT_GE(e.at_us, previous);  // sorted by schedule
    previous = e.at_us;
    if (e.tenant == options.flood_tenant) ++flood_count;
  }
  EXPECT_EQ(flood_count, options.flood_events);
}

TEST(TraceGeneratorTest, StormIsExactArithmetic) {
  BudgetStormTraceOptions options;
  options.tenant_count = 3;
  options.events_per_tenant = 5;
  const std::vector<TraceEvent> events = MakeBudgetStormTrace(options);
  ASSERT_EQ(events.size(), 15u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at_us,
              static_cast<int64_t>(i) * options.interval_us);
    EXPECT_DOUBLE_EQ(events[i].epsilon, options.epsilon_per_release);
  }
}

TEST(TraceGeneratorTest, StreamingInterleavesEpochLifecycles) {
  StreamingTraceOptions options;
  options.epochs = 2;
  options.appends_per_epoch = 3;
  options.releases_per_epoch = 4;
  const std::vector<TraceEvent> events = MakeStreamingTrace(options);
  ASSERT_EQ(events.size(), 2u * (3 + 1 + 4));
  // Within each epoch: appends, then exactly one seal, then releases.
  for (size_t epoch = 0; epoch < 2; ++epoch) {
    const size_t base = epoch * 8;
    for (size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(events[base + a].kind, TraceEventKind::kAppend);
      EXPECT_EQ(events[base + a].rows, options.rows_per_append);
    }
    EXPECT_EQ(events[base + 3].kind, TraceEventKind::kSeal);
    for (size_t r = 0; r < 4; ++r) {
      EXPECT_EQ(events[base + 4 + r].kind, TraceEventKind::kRelease);
    }
  }
}

}  // namespace
}  // namespace pcor
