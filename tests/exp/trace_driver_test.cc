// TraceDriver dispatch-loop contract, proven deterministically on a
// VirtualClock with ZERO wall-clock sleeps: exact fire order under
// bursty / simultaneous / out-of-order timestamps, no event dispatches
// before its scheduled time, and a driver that falls behind fires missed
// events immediately (recording the omission gap) instead of
// re-scheduling them.
#include "src/exp/trace_driver.h"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/exp/trace.h"

namespace pcor {
namespace {

TraceEvent Release(int64_t at_us, const char* tenant, uint64_t rows = 0) {
  TraceEvent e;
  e.at_us = at_us;
  e.tenant = tenant;
  e.kind = TraceEventKind::kRelease;
  e.rows = rows;
  return e;
}

struct Fired {
  TraceEvent event;
  int64_t scheduled_us;
  int64_t fired_us;
};

TEST(TraceDriverTest, FiresOutOfOrderInputInScheduleOrder) {
  VirtualClock clock;
  std::vector<TraceEvent> events{Release(300, "c"), Release(100, "a"),
                                 Release(200, "b")};
  TraceDriver driver(events, &clock);
  std::vector<Fired> fired;
  const TraceDriver::Stats stats =
      driver.Run([&](const TraceEvent& e, int64_t scheduled, int64_t at) {
        fired.push_back({e, scheduled, at});
      });
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].event.tenant, "a");
  EXPECT_EQ(fired[1].event.tenant, "b");
  EXPECT_EQ(fired[2].event.tenant, "c");
  for (const Fired& f : fired) {
    EXPECT_EQ(f.scheduled_us, f.event.at_us);
    // Auto-advance: the clock jumps exactly to each deadline, so an
    // on-time driver fires at the scheduled instant, never before.
    EXPECT_EQ(f.fired_us, f.scheduled_us);
  }
  EXPECT_EQ(stats.dispatched, 3u);
  EXPECT_EQ(stats.late, 0u);
  EXPECT_EQ(stats.max_lag_us, 0);
  EXPECT_EQ(clock.sleeps(), 3u);  // one real sleep per future deadline
}

TEST(TraceDriverTest, SimultaneousEventsKeepRecordedOrder) {
  VirtualClock clock;
  // A burst: three events at t=100 plus neighbors. The stable sort must
  // keep the recorded order of the t=100 tie.
  std::vector<TraceEvent> events{Release(100, "tie-0", 7),
                                 Release(50, "early"),
                                 Release(100, "tie-1", 8),
                                 Release(100, "tie-2", 9),
                                 Release(150, "late")};
  TraceDriver driver(events, &clock);
  std::vector<std::string> order;
  const TraceDriver::Stats stats =
      driver.Run([&](const TraceEvent& e, int64_t, int64_t fired) {
        order.push_back(e.tenant);
        EXPECT_GE(fired, e.at_us);
      });
  EXPECT_EQ(order, (std::vector<std::string>{"early", "tie-0", "tie-1",
                                             "tie-2", "late"}));
  EXPECT_EQ(stats.late, 0u);
  // Only 3 distinct future deadlines: the tied events after the first
  // find the clock already at their deadline and never sleep.
  EXPECT_EQ(clock.sleeps(), 3u);
}

TEST(TraceDriverTest, NoEarlyDispatchUnderManualClock) {
  // Manual mode: the driver runs on its own thread and time moves ONLY
  // when this test advances it — so "never dispatches early" is asserted
  // exactly, with no wall-clock sleeps anywhere.
  VirtualClock clock(0, /*auto_advance=*/false);
  TraceDriver driver({Release(100, "a"), Release(200, "b")}, &clock);
  std::mutex mu;
  std::vector<Fired> fired;
  std::thread runner([&] {
    driver.Run([&](const TraceEvent& e, int64_t scheduled, int64_t at) {
      std::lock_guard<std::mutex> lock(mu);
      fired.push_back({e, scheduled, at});
    });
  });

  auto fired_count = [&] {
    std::lock_guard<std::mutex> lock(mu);
    return fired.size();
  };
  // Driver blocks on the first deadline.
  while (clock.waiters() == 0) std::this_thread::yield();
  EXPECT_EQ(fired_count(), 0u);

  // Advancing short of the deadline must not release anything: the
  // driver wakes, re-checks, and re-registers as a waiter — and the
  // fired list is still empty.
  clock.AdvanceTo(99);
  while (clock.waiters() == 0) std::this_thread::yield();
  EXPECT_EQ(fired_count(), 0u);

  clock.AdvanceTo(100);  // releases exactly event "a"
  while (fired_count() < 1) std::this_thread::yield();
  // ...and the driver is now parked on the second deadline.
  while (clock.waiters() == 0) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].event.tenant, "a");
    EXPECT_EQ(fired[0].fired_us, 100);
  }

  clock.AdvanceTo(200);
  runner.join();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].event.tenant, "b");
  EXPECT_EQ(fired[1].fired_us, 200);
}

TEST(TraceDriverTest, LateRunnerFiresImmediatelyAndRecordsTheGap) {
  VirtualClock clock;
  std::vector<TraceEvent> events{Release(100, "slow"), Release(200, "a"),
                                 Release(300, "b"), Release(1'000, "c")};
  TraceDriver driver(events, &clock);
  std::vector<Fired> fired;
  const TraceDriver::Stats stats =
      driver.Run([&](const TraceEvent& e, int64_t scheduled, int64_t at) {
        fired.push_back({e, scheduled, at});
        // The first event's handling is slow: it drags the clock 500us
        // past its schedule, making the driver late for t=200 and t=300.
        if (e.tenant == "slow") clock.AdvanceBy(500);
      });

  ASSERT_EQ(fired.size(), 4u);
  // Every event fired exactly once, in schedule order — a late event is
  // NEVER re-scheduled, deferred, or dropped.
  EXPECT_EQ(fired[0].event.tenant, "slow");
  EXPECT_EQ(fired[1].event.tenant, "a");
  EXPECT_EQ(fired[2].event.tenant, "b");
  EXPECT_EQ(fired[3].event.tenant, "c");
  // The missed events fired immediately at the dragged clock (600), each
  // recording its own omission gap against its original schedule.
  EXPECT_EQ(fired[1].fired_us, 600);
  EXPECT_EQ(fired[1].fired_us - fired[1].scheduled_us, 400);
  EXPECT_EQ(fired[2].fired_us, 600);
  EXPECT_EQ(fired[2].fired_us - fired[2].scheduled_us, 300);
  // Once the schedule runs ahead of the clock again, dispatch is on time.
  EXPECT_EQ(fired[3].fired_us, 1'000);

  EXPECT_EQ(stats.dispatched, 4u);
  EXPECT_EQ(stats.late, 2u);
  EXPECT_EQ(stats.max_lag_us, 400);
  EXPECT_EQ(stats.total_lag_us, 700);
  // The late events never slept: 100 and 1000 were the only real waits.
  EXPECT_EQ(clock.sleeps(), 2u);
}

TEST(TraceDriverTest, EmptyTraceIsANoOp) {
  VirtualClock clock;
  TraceDriver driver({}, &clock);
  const TraceDriver::Stats stats = driver.Run(
      [](const TraceEvent&, int64_t, int64_t) { FAIL() << "no events"; });
  EXPECT_EQ(stats.dispatched, 0u);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(TraceDriverTest, UniformRowSourcePlantsOutliersOnStride) {
  Schema schema;
  ASSERT_TRUE(schema.AddAttribute("A", {"x", "y", "z"}).ok());
  ASSERT_TRUE(schema.AddAttribute("B", {"p", "q"}).ok());
  auto source = MakeUniformRowSource(schema, 42, /*outlier_stride=*/5,
                                     /*outlier_metric=*/777.0);
  for (uint64_t i = 0; i < 50; ++i) {
    const Row row = source(i);
    ASSERT_EQ(row.codes.size(), 2u);
    EXPECT_LT(row.codes[0], 3u);
    EXPECT_LT(row.codes[1], 2u);
    if (i % 5 == 0) {
      EXPECT_DOUBLE_EQ(row.metric, 777.0);
    } else {
      EXPECT_GE(row.metric, 10.0);
      EXPECT_LT(row.metric, 20.0);
    }
    // Deterministic: the same index always synthesizes the same row.
    const Row again = source(i);
    EXPECT_EQ(again.codes, row.codes);
    EXPECT_DOUBLE_EQ(again.metric, row.metric);
  }
}

}  // namespace
}  // namespace pcor
