#include "src/exp/report.h"

#include <gtest/gtest.h>

namespace pcor {
namespace {

TEST(TableRendererTest, AlignsColumns) {
  TableRenderer table({"Algorithm", "Tavg"});
  table.AddRow({"uniform", "97m"});
  table.AddRow({"bfs", "37m"});
  std::string out = table.Render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("| Algorithm | Tavg |"), std::string::npos);
  EXPECT_NE(out.find("| uniform"), std::string::npos);
  // Every line has the same width.
  size_t width = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TableRendererTest, ShortRowsArePadded) {
  TableRenderer table({"A", "B", "C"});
  table.AddRow({"x"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(ReportTest, FormatUtilityCiMatchesPaperStyle) {
  ConfidenceInterval ci;
  ci.mean = 0.90;
  ci.lower = 0.88;
  ci.upper = 0.93;
  EXPECT_EQ(report::FormatUtilityCi(ci), "0.90 (0.88, 0.93)");
}

TEST(ReportTest, FormatRuntimeUsesHumanUnits) {
  EXPECT_EQ(report::FormatRuntime(0.25), "250ms");
  EXPECT_EQ(report::FormatRuntime(90.0), "1m 30.0s");
}

TEST(ReportTest, PrintHistogramDoesNotCrashOnEdgeCases) {
  report::PrintHistogram("empty", {}, 0.0, 1.0, 4);
  report::PrintHistogram("single", {0.5}, 0.0, 1.0, 4);
}

}  // namespace
}  // namespace pcor
