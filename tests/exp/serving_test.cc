#include "src/exp/serving.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "tests/testing_util.h"

namespace pcor {
namespace {

class ServingWorkloadTest : public ::testing::Test {
 protected:
  ServingWorkloadTest()
      : grid_(testing_util::MakeSpreadGridDataset()),
        detector_(testing_util::MakeTestDetector()),
        engine_(grid_.dataset, detector_) {}

  testing_util::GridData grid_;
  ZscoreDetector detector_;
  PcorEngine engine_;
};

TEST_F(ServingWorkloadTest, DrivesConcurrentClientsToCompletion) {
  ServingConfig config;
  config.clients = 3;
  config.requests_per_client = 5;
  config.serve.release.sampler = SamplerKind::kBfs;
  config.serve.release.num_samples = 6;
  config.serve.release.total_epsilon = 0.2;
  config.serve.max_batch = 8;
  config.serve.max_delay_us = 100;
  config.serve.seed = 11;

  auto result = RunServingWorkload(engine_, {grid_.v_row}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->released, 15u);
  EXPECT_EQ(result->failed, 0u);
  EXPECT_EQ(result->rejected_budget, 0u);
  EXPECT_EQ(result->rejected_queue, 0u);
  EXPECT_EQ(result->latencies_s.size(), 15u);
  EXPECT_GE(result->batches, 1u);
  EXPECT_GE(result->max_coalesced, 1u);
  EXPECT_NEAR(result->epsilon_spent, 15 * 0.2, 1e-9);
  EXPECT_GT(result->wall_seconds, 0.0);
  EXPECT_GT(result->releases_per_second(), 0.0);
  // Quantiles are well-formed over the collected latencies.
  EXPECT_GE(result->latency_quantile(0.99), result->latency_quantile(0.50));
}

TEST_F(ServingWorkloadTest, SurfacesBudgetRejectionCounts) {
  ServingConfig config;
  config.clients = 2;
  config.requests_per_client = 6;
  config.serve.release.sampler = SamplerKind::kBfs;
  config.serve.release.num_samples = 6;
  config.serve.release.total_epsilon = 0.25;
  // cap admits exactly 4 of the 6 requests per client.
  config.serve.per_client_epsilon_cap = 1.0;
  config.serve.seed = 12;

  auto result = RunServingWorkload(engine_, {grid_.v_row}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->released, 8u);
  EXPECT_EQ(result->rejected_budget, 4u);
  EXPECT_EQ(result->rejected_queue, 0u);
  EXPECT_NEAR(result->epsilon_spent, 8 * 0.25, 1e-9);
}

TEST_F(ServingWorkloadTest, ContainsWorkerExceptionsInsteadOfTerminating) {
  ServingConfig config;
  config.clients = 2;
  config.requests_per_client = 3;
  config.serve.release.sampler = SamplerKind::kBfs;
  config.serve.release.num_samples = 6;
  config.serve.seed = 13;
  // Every micro-batch is poisoned: each Get() rethrows inside a client
  // thread, which the driver must absorb as a tallied exception rather
  // than letting std::terminate take the process down.
  config.serve.pre_batch_hook = [](std::span<const BatchRequest>) {
    throw std::runtime_error("poisoned batch");
  };

  auto result = RunServingWorkload(engine_, {grid_.v_row}, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->exceptions, 6u);
  EXPECT_EQ(result->released, 0u);
  EXPECT_TRUE(result->latencies_s.empty());
}

TEST_F(ServingWorkloadTest, RejectsDegenerateConfigurations) {
  ServingConfig config;
  EXPECT_TRUE(RunServingWorkload(engine_, {}, config)
                  .status()
                  .IsInvalidArgument());
  config.clients = 0;
  EXPECT_TRUE(RunServingWorkload(engine_, {grid_.v_row}, config)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace pcor
